// Ablation A1: drop the noise floor. The related-work critique (§6) is
// that analyses which "regularly drop the noise floor term ... completely
// wipe the long range regime from view". With N -> 0 every network
// becomes interference-limited: the optimal threshold keeps growing as
// ~sqrt(Rmax) * N^{-1/(2 alpha)} and the short-range regime never ends.
#include <cstdio>

#include "bench/common.hpp"
#include "src/core/regimes.hpp"
#include "src/core/threshold.hpp"

using namespace csense;

CSENSE_SCENARIO_EX(abl01_no_noise_floor,
                "Ablation A1: optimal threshold and regime with the noise "
                "floor removed",
                   bench::runtime_tier::fast, "") {
    bench::print_header("Ablation A1 - removing the noise floor",
                        "optimal threshold and regime vs Rmax, with the "
                        "thesis' N = -65 dB versus a negligible floor");
    core::quadrature_options quad;
    quad.radial_nodes = bench::fast_mode() ? 20 : 32;
    quad.angular_nodes = bench::fast_mode() ? 24 : 40;
    quad.shadow_nodes = 8;

    std::printf("%8s | %14s %12s | %14s %12s\n", "Rmax", "thresh(N=-65)",
                "regime", "thresh(N=-140)", "regime");
    for (double rmax : {10.0, 20.0, 40.0, 80.0, 120.0}) {
        core::model_params with_noise;
        with_noise.sigma_db = 0.0;
        core::expectation_engine engine_n(with_noise, quad, {20000, ctx.seed, ctx.threads});
        const auto t_n = core::optimal_threshold(engine_n, rmax);
        const auto r_n = core::classify_with_threshold(with_noise, rmax, t_n);

        core::model_params no_noise = with_noise;
        no_noise.noise_db = -140.0;  // effectively gone at these ranges
        core::expectation_engine engine_0(no_noise, quad, {20000, ctx.seed, ctx.threads});
        const auto t_0 = core::optimal_threshold(engine_0, rmax);
        const auto r_0 = core::classify_with_threshold(no_noise, rmax, t_0);

        std::printf("%8.0f | %14.1f %12s | %14.1f %12s\n", rmax, t_n.d_thresh,
                    std::string(core::regime_name(r_n.regime)).c_str(),
                    t_0.d_thresh,
                    std::string(core::regime_name(r_0.regime)).c_str());
        if (rmax == 120.0) {
            ctx.metric("thresh_rmax120_noise", t_n.d_thresh);
            ctx.metric("thresh_rmax120_no_noise", t_0.d_thresh);
            ctx.metric("regime_rmax120_noise",
                       std::string_view(core::regime_name(r_n.regime)));
            ctx.metric("regime_rmax120_no_noise",
                       std::string_view(core::regime_name(r_0.regime)));
        }
    }
    std::printf("\nWithout a noise floor the threshold/Rmax ratio never "
                "falls: no network is ever 'long range', interference never "
                "blends into noise, and the fairness pathology of §3.3.3 "
                "becomes invisible - exactly the blind spot the thesis "
                "ascribes to noise-free analyses.\n");
    return 0;
}
