// Ablation A2: fixed bitrate vs adaptive. §3.3.2 argues the smooth
// Shannon gradient is what keeps receiver disagreement mild; a fixed-rate
// radio turns it into a step ("cookie cutter"), making carrier sense's
// single threshold genuinely painful. We compare efficiency of the best
// single threshold under both capacity models.
#include <algorithm>
#include <cstdio>

#include "bench/common.hpp"
#include "src/core/efficiency.hpp"
#include "src/core/threshold.hpp"

using namespace csense;

CSENSE_SCENARIO_EX(abl02_fixed_bitrate,
                "Ablation A2: adaptive (Shannon) vs fixed-bitrate carrier "
                "sense efficiency",
                   bench::runtime_tier::fast, "") {
    bench::print_header("Ablation A2 - adaptive (Shannon) vs fixed bitrate",
                        "sigma = 0, Rmax = 55; fixed-rate capacity is "
                        "rate * 1{SINR >= requirement}");
    const auto engine = bench::make_engine(ctx, 0.0);
    const double rmax = 55.0;
    const double rate = 2.0;  // bits/s/Hz ~ mid-table 802.11a rate

    // Sweep D and compare CS (with each model's own best threshold)
    // against that model's optimal-branch envelope.
    const auto adaptive_thresh = core::optimal_threshold(engine, rmax);

    // Fixed-rate crossing: where fixed-rate concurrency passes fixed
    // multiplexing.
    const double fixed_mux =
        engine.expected_multiplexing_fixed_rate(rmax, rate);
    double fixed_thresh = adaptive_thresh.d_thresh;
    for (double d = 5.0; d < 6.0 * rmax; d += 1.0) {
        if (engine.expected_concurrent_fixed_rate(rmax, d, rate) >= fixed_mux) {
            fixed_thresh = d;
            break;
        }
    }

    std::printf("best thresholds: adaptive %.1f, fixed-rate %.1f\n\n",
                adaptive_thresh.d_thresh, fixed_thresh);
    std::printf("%8s | %10s %10s %8s | %10s %10s %8s\n", "D", "cs(adpt)",
                "env(adpt)", "eff", "cs(fix)", "env(fix)", "eff");
    double worst_adaptive = 1.0, worst_fixed = 1.0;
    for (double d = 10.0; d <= 3.0 * rmax; d += 10.0) {
        const double mux = engine.expected_multiplexing(rmax);
        const double conc = engine.expected_concurrent(rmax, d);
        const double cs = (d < adaptive_thresh.d_thresh) ? mux : conc;
        const double envelope = std::max(mux, conc);
        const double eff = cs / envelope;

        const double fconc =
            engine.expected_concurrent_fixed_rate(rmax, d, rate);
        const double fcs = (d < fixed_thresh) ? fixed_mux : fconc;
        const double fenv = std::max(fixed_mux, fconc);
        const double feff = (fenv > 0.0) ? fcs / fenv : 1.0;

        worst_adaptive = std::min(worst_adaptive, eff);
        worst_fixed = std::min(worst_fixed, feff);
        std::printf("%8.0f | %10.4f %10.4f %7.1f%% | %10.4f %10.4f %7.1f%%\n",
                    d, cs, envelope, 100.0 * eff, fcs, fenv, 100.0 * feff);
    }
    std::printf("\nworst-case CS efficiency vs its own best branch: adaptive "
                "%.1f%%, fixed-rate %.1f%%\n",
                100.0 * worst_adaptive, 100.0 * worst_fixed);
    ctx.metric("adaptive_thresh", adaptive_thresh.d_thresh);
    ctx.metric("fixed_thresh", fixed_thresh);
    ctx.metric("worst_eff_adaptive", worst_adaptive);
    ctx.metric("worst_eff_fixed", worst_fixed);
    std::printf("The fixed-rate radio also *loses coverage*: receivers past "
                "the SINR wall get zero, so CS's compromises throw away "
                "whole receivers rather than a rate step - the step-function "
                "world where hidden/exposed terminals deserve their "
                "reputation.\n");
    return 0;
}
