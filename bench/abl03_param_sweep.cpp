// Ablation A3: robustness across propagation environments. The thesis
// omits the figures but states: "alpha varying from 2 to 4 and sigma from
// 4 dB to 12 dB ... very little change is observed." We regenerate the
// omitted sweep on the transition-region cell (the least favourable one).
#include <algorithm>
#include <cstdio>

#include "bench/common.hpp"
#include "src/core/efficiency.hpp"
#include "src/core/regimes.hpp"
#include "src/core/threshold.hpp"
#include "src/report/table.hpp"

using namespace csense;

CSENSE_SCENARIO_EX(abl03_param_sweep,
                "Ablation A3: carrier-sense efficiency across alpha x sigma "
                "environments",
                   bench::runtime_tier::medium, "") {
    bench::print_header("Ablation A3 - alpha x sigma robustness sweep",
                        "CS efficiency with the factory threshold (55 at "
                        "alpha = 3), at the equivalent sensed power per "
                        "alpha; Rmax and D scaled to matching edge SNR");
    core::quadrature_options quad;
    quad.radial_nodes = bench::fast_mode() ? 20 : 32;
    quad.angular_nodes = bench::fast_mode() ? 24 : 40;
    quad.shadow_nodes = bench::fast_mode() ? 8 : 12;
    const std::size_t samples = bench::fast_mode() ? 20000 : 80000;

    report::text_table table({"alpha \\ sigma", "4 dB", "8 dB", "12 dB"});
    double min_eff = 1.0, max_eff = 0.0;
    for (double alpha : {2.0, 2.5, 3.0, 3.5, 4.0}) {
        std::vector<std::string> row{report::fmt(alpha, 1)};
        for (double sigma : {4.0, 8.0, 12.0}) {
            core::model_params params;
            params.alpha = alpha;
            params.sigma_db = sigma;
            core::expectation_engine engine(params, quad, {samples, ctx.seed, ctx.threads});
            // Hold the *power-domain* quantities fixed across alpha: the
            // factory threshold P_thresh and the network's edge SNR.
            const double d_thresh = core::threshold_distance_from_power_db(
                core::threshold_power_db(55.0, 3.0), alpha);
            const double rmax = core::rmax_for_edge_snr(
                params, core::edge_snr_db(core::model_params{}, 40.0));
            const double d = core::threshold_distance_from_power_db(
                core::threshold_power_db(55.0, 3.0), alpha);
            const auto point =
                core::evaluate_policies(engine, rmax, d, d_thresh);
            min_eff = std::min(min_eff, point.efficiency());
            max_eff = std::max(max_eff, point.efficiency());
            row.push_back(report::fmt_percent(point.efficiency()));
        }
        table.add_row(std::move(row));
    }
    std::printf("%s", table.render().c_str());
    ctx.metric("min_efficiency", min_eff);
    ctx.metric("max_efficiency", max_eff);
    std::printf("\nAll cells sit in the mid-80%%s-to-90%%s: the transition "
                "cell is the worst case, and even there the factory "
                "threshold survives the whole environment range - the "
                "paper's 'very little change is observed'.\n");
    return 0;
}
