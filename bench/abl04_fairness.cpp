// Ablation A4: fairness across regimes (§3.3.3's starvation claim made
// quantitative). For a short-range and a long-range network, sweep the
// interferer distance and report the starved receiver fraction, Jain's
// index, and the 10th-percentile receiver throughput under carrier sense
// with the regime's own optimal threshold.
#include <cstdio>
#include <string>

#include "bench/common.hpp"
#include "src/core/fairness.hpp"
#include "src/core/threshold.hpp"

using namespace csense;

CSENSE_SCENARIO_EX(abl04_fairness,
                "Ablation A4: fairness and starvation across regimes",
                   bench::runtime_tier::medium, "") {
    bench::print_header("Ablation A4 - fairness across regimes",
                        "short range: no one starves at any D; long range: "
                        "a small nearby fraction is smothered once "
                        "concurrency engages inside the network");
    const auto engine = bench::make_engine(ctx, 0.0);
    const std::size_t samples = bench::fast_mode() ? 8000 : 40000;

    for (double rmax : {20.0, 120.0}) {
        const auto thresh = core::optimal_threshold(engine, rmax);
        std::printf("\n-- Rmax = %.0f (threshold %.1f, %s) --\n", rmax,
                    thresh.d_thresh,
                    thresh.d_thresh > 2.0 * rmax   ? "short range"
                    : thresh.d_thresh < rmax       ? "long range"
                                                   : "transition");
        std::printf("%8s %10s %10s %10s %12s\n", "D", "mean", "p10", "Jain",
                    "starved");
        for (double factor : {0.5, 0.9, 1.05, 1.3, 2.0, 3.0}) {
            const double d = thresh.d_thresh * factor;
            const auto report = core::analyze_fairness(
                engine, rmax, d, thresh.d_thresh, samples);
            std::printf("%8.1f %10.4f %10.4f %10.3f %11.2f%%\n", d,
                        report.mean, report.p10, report.jain_index,
                        100.0 * report.starved_fraction);
            if (factor == 1.05) {
                const std::string prefix =
                    "rmax" + std::to_string(static_cast<int>(rmax));
                ctx.metric(prefix + "_jain_just_past_thresh",
                           report.jain_index);
                ctx.metric(prefix + "_starved_just_past_thresh",
                           report.starved_fraction);
            }
        }
    }
    std::printf("\nReading: in the short-range network the starved column "
                "is ~0 everywhere - concurrency only runs with interferers "
                "far outside. In the long-range network, D just beyond the "
                "threshold (concurrency with the interferer *inside* the "
                "network) starves a few percent of receivers: good average, "
                "imperfect fairness - the thesis' long-range caveat.\n");
    return 0;
}
