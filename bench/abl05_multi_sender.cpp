// Ablation A5: n > 2 senders. The thesis: "Small n > 2 does not appear
// to fundamentally alter the results" (§3.2.1), with [Cheng06] arguing
// high concurrency is rare in deployments anyway. We sweep n = 2..5 over
// the (Rmax, D) grid and report carrier-sense efficiency per pair.
//
// The factory threshold (D_thresh 55) rides along in the tuned sweep's
// candidate list: every threshold shares one common set of sampled
// configurations, so each grid cell pays for its Monte Carlo geometry
// once (previously twice - once for the factory point, once for the
// sweep). The sampling itself is sharded over the campaign layer.
#include <algorithm>
#include <cstdio>

#include "bench/common.hpp"
#include "src/core/multi_sender.hpp"
#include "src/report/table.hpp"

using namespace csense;

namespace {
constexpr double factory_d_thresh = 55.0;
}

CSENSE_SCENARIO_EX(abl05_multi_sender,
                "Ablation A5: carrier sense with n = 2..5 competing "
                "senders",
                   bench::runtime_tier::medium,
                   "CSENSE_FAST trims the Monte-Carlo sample budget; one "
                   "shared threshold sweep feeds both the factory and tuned "
                   "rows") {
    bench::print_header("Ablation A5 - carrier sense with n = 2..5 senders",
                        "per-pair CS efficiency vs the binary-choice genie; "
                        "alpha = 3, sigma = 8 dB, D_thresh = 55");
    core::model_params params;
    params.alpha = 3.0;
    params.sigma_db = 8.0;
    const std::size_t samples = bench::fast_mode() ? 8000 : 60000;

    std::vector<double> candidates;
    for (double t = 25.0; t <= 220.0; t *= 1.2) candidates.push_back(t);
    candidates.push_back(factory_d_thresh);  // the factory point rides along
    double min_factory_eff = 1.0, min_tuned_eff = 1.0;
    for (double rmax : {20.0, 40.0, 120.0}) {
        std::printf("\n-- Rmax = %.0f (factory = D_thresh 55 / per-n tuned) "
                    "--\n", rmax);
        report::text_table table({"n \\ D", "20", "55", "120"});
        for (int n : {2, 3, 4, 5}) {
            std::vector<std::string> row{report::fmt(n, 0)};
            for (double d : {20.0, 55.0, 120.0}) {
                const auto sweep = core::evaluate_multi_sender_thresholds(
                    params, n, rmax, d, candidates, samples, /*seed=*/42,
                    ctx.threads);
                double factory = 0.0, tuned = 0.0;
                for (const auto& point : sweep) {
                    if (point.d_thresh == factory_d_thresh) {
                        factory = point.efficiency();
                    }
                    tuned = std::max(tuned, point.efficiency());
                }
                min_factory_eff = std::min(min_factory_eff, factory);
                min_tuned_eff = std::min(min_tuned_eff, tuned);
                row.push_back(report::fmt_percent(factory) + " / " +
                              report::fmt_percent(tuned));
            }
            table.add_row(std::move(row));
        }
        std::printf("%s", table.render().c_str());
    }
    ctx.metric("min_factory_efficiency", min_factory_eff);
    ctx.metric("min_tuned_efficiency", min_tuned_eff);
    std::printf("\nThe n = 2 rows are the thesis' model. Tuned per-n "
                "thresholds keep efficiency in the same band for n up to 5, "
                "supporting the paper's restriction to two senders; the "
                "factory column also shows the one genuine n-dependence - "
                "aggregate interference grows with n, so a threshold "
                "calibrated for n = 2 under-defers for crowded channels.\n");
    return 0;
}
