// Campaign C1: cumulative interference at N = 5/10/20 competing pairs.
//
// The thesis' model is pairwise; cumulative-interference analyses (Fu,
// Liew & Huang; Kai & Liew) show many-sender aggregates are exactly
// where pairwise carrier-sense models drift. This campaign samples
// random planar topologies, runs the packet-level DCF simulator with
// carrier sense on and off over each, and checks the §3-style analytic
// prediction against the simulation:
//
//  - the predicted concurrent capacity must correlate with the
//    simulated no-carrier-sense throughput across topologies;
//  - where the binary-cluster model says the group defers, carrier
//    sense must actually suppress busy starts in the simulator.
//
// Replications shard over the deterministic campaign layer: the JSON is
// byte-identical for every --threads value.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "src/mac/multi_pair.hpp"
#include "src/report/table.hpp"
#include "src/sim/campaign.hpp"

using namespace csense;

namespace {

struct replication_outcome {
    mac::multi_pair_prediction prediction;
    double conc_pps = 0.0;        ///< carrier sense disabled
    double cs_pps = 0.0;          ///< energy + preamble sensing
    double conc_busy_rate = 0.0;  ///< busy starts / transmissions, CS off
    double cs_busy_rate = 0.0;    ///< busy starts / transmissions, CS on
};

double busy_rate(const mac::medium_counters& counters) {
    return counters.transmissions > 0
               ? static_cast<double>(counters.busy_starts) /
                     static_cast<double>(counters.transmissions)
               : 0.0;
}

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
    const std::size_t n = x.size();
    if (n < 2) return 0.0;
    double mx = 0.0, my = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        mx += x[i];
        my += y[i];
    }
    mx /= static_cast<double>(n);
    my /= static_cast<double>(n);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        sxy += (x[i] - mx) * (y[i] - my);
        sxx += (x[i] - mx) * (x[i] - mx);
        syy += (y[i] - my) * (y[i] - my);
    }
    return (sxx > 0.0 && syy > 0.0) ? sxy / std::sqrt(sxx * syy) : 0.0;
}

}  // namespace

CSENSE_SCENARIO_EX(camp01_cumulative_interference,
                "Campaign C1: random many-pair topologies under cumulative "
                "interference, model vs simulation",
                   bench::runtime_tier::slow,
                   "CSENSE_FAST caps replications at 5 and run length at 0.3 s "
                   "(metrics only, no gate); --threads shards whole "
                   "packet-level replications") {
    bench::print_header(
        "Campaign C1 - cumulative interference, N = 5/10/20 pairs",
        "random planar topologies; packet-level DCF vs the Shannon "
        "prediction; sharded over the campaign layer");
    const std::size_t replications = bench::fast_mode() ? 5 : 20;
    const double duration_us = bench::fast_mode() ? 3e5 : 2e6;

    report::text_table table({"N", "pred conc", "sim conc pps", "sim cs pps",
                              "corr", "defer ok"});
    double min_corr = 1.0, min_defer_ok = 1.0;
    for (int pairs : {5, 10, 20}) {
        mac::multi_pair_config config;
        config.rate = &capacity::rate_by_mbps(6.0);
        config.duration_us = duration_us;

        sim::campaign_options campaign;
        campaign.replications = replications;
        campaign.shard_size = 1;  // one packet-level run per task
        campaign.threads = ctx.threads;
        campaign.seed = ctx.seed ^ (0xca4901ULL + 1000ULL * pairs);
        const auto outcomes = sim::run_replications<replication_outcome>(
            campaign, [&](std::size_t, stats::rng& gen) {
                const auto topology = mac::sample_multi_pair_topology(
                    pairs, /*arena_m=*/120.0, /*rmax_m=*/25.0, gen);
                // Common random numbers across the mode axis: both modes
                // replay the same seed over the same topology.
                const std::uint64_t sim_seed = gen.next();
                replication_outcome outcome;
                outcome.prediction = mac::predict_multi_pair(topology, config);
                auto run_cfg = config;
                run_cfg.seed = sim_seed;
                run_cfg.sense = mac::cs_mode::disabled;
                const auto conc = mac::run_multi_pair(topology, run_cfg);
                run_cfg.sense = mac::cs_mode::energy_and_preamble;
                const auto cs = mac::run_multi_pair(topology, run_cfg);
                outcome.conc_pps = conc.total_pps;
                outcome.cs_pps = cs.total_pps;
                outcome.conc_busy_rate = busy_rate(conc.counters);
                outcome.cs_busy_rate = busy_rate(cs.counters);
                return outcome;
            });

        // Model-vs-sim agreement #1: predicted concurrent capacity must
        // track the simulated CS-off throughput across topologies.
        std::vector<double> predicted, simulated;
        double mean_pred = 0.0, mean_conc = 0.0, mean_cs = 0.0;
        for (const auto& o : outcomes) {
            predicted.push_back(o.prediction.concurrent);
            simulated.push_back(o.conc_pps);
            mean_pred += o.prediction.concurrent;
            mean_conc += o.conc_pps;
            mean_cs += o.cs_pps;
        }
        const double n = static_cast<double>(outcomes.size());
        mean_pred /= n;
        mean_conc /= n;
        mean_cs /= n;
        const double corr = pearson(predicted, simulated);

        // Model-vs-sim agreement #2: where the binary-cluster model says
        // the group defers, carrier sense must visibly suppress busy
        // starts relative to the CS-off run of the same topology.
        std::size_t defer_predicted = 0, defer_confirmed = 0;
        for (const auto& o : outcomes) {
            if (!o.prediction.cs_defers) continue;
            ++defer_predicted;
            if (o.cs_busy_rate < 0.5 * o.conc_busy_rate) ++defer_confirmed;
        }
        const double defer_ok =
            defer_predicted > 0
                ? static_cast<double>(defer_confirmed) /
                      static_cast<double>(defer_predicted)
                : 1.0;

        min_corr = std::min(min_corr, corr);
        min_defer_ok = std::min(min_defer_ok, defer_ok);
        std::string prefix = "n";
        prefix += std::to_string(pairs);
        ctx.metric(prefix + "_pred_conc_mean", mean_pred);
        ctx.metric(prefix + "_sim_conc_pps", mean_conc);
        ctx.metric(prefix + "_sim_cs_pps", mean_cs);
        ctx.metric(prefix + "_model_sim_corr", corr);
        ctx.metric(prefix + "_defer_agreement", defer_ok);
        table.add_row({report::fmt(pairs, 0), report::fmt(mean_pred, 3),
                       report::fmt(mean_conc, 0), report::fmt(mean_cs, 0),
                       report::fmt(corr, 2), report::fmt(defer_ok, 2)});
    }
    std::printf("%s", table.render().c_str());
    ctx.metric("min_model_sim_corr", min_corr);
    ctx.metric("min_defer_agreement", min_defer_ok);
    std::printf(
        "\nAgreement checks: 'corr' is Pearson correlation between the "
        "predicted concurrent capacity and the simulated CS-off "
        "throughput across topologies; 'defer ok' is the fraction of "
        "defer-predicted topologies where sensing actually suppressed "
        "busy starts. Both should stay high as N grows - the regime "
        "where pairwise models are known to drift.\n");
    // The correlation gate needs the full replication budget to be
    // statistically meaningful; at CSENSE_FAST's handful of topologies a
    // single outlier swings Pearson across zero, so fast runs only
    // record the metrics.
    if (bench::fast_mode()) return 0;
    return (min_corr > 0.2 && min_defer_ok > 0.5) ? 0 : 1;
}
