// Campaign C2: sensing modes under many-sender interference (N = 10).
//
// The §5 pathology discussion distinguishes energy detection from
// preamble-based sensing: a node that is transmitting cannot decode
// preambles, so preamble-only carrier sense suffers chain collisions
// (starting over an audible frame whose preamble it missed). With ten
// saturated senders the channel is rarely quiet, which makes this the
// harshest regime for preamble sensing. Each random topology is
// replayed under all four cs_modes with common random numbers.
//
// Sharded over the deterministic campaign layer: JSON is byte-identical
// for every --threads value.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "src/mac/multi_pair.hpp"
#include "src/report/table.hpp"
#include "src/sim/campaign.hpp"

using namespace csense;

namespace {

constexpr int campaign_pairs = 10;

struct mode_outcome {
    double total_pps = 0.0;
    double jain = 0.0;
    double chain_per_tx = 0.0;
    double busy_per_tx = 0.0;
};

struct replication_outcome {
    mode_outcome modes[4];
};

constexpr mac::cs_mode all_modes[4] = {
    mac::cs_mode::disabled, mac::cs_mode::energy, mac::cs_mode::preamble,
    mac::cs_mode::energy_and_preamble};

const char* mode_name(int index) {
    switch (index) {
        case 0: return "disabled";
        case 1: return "energy";
        case 2: return "preamble";
        default: return "energy+preamble";
    }
}

}  // namespace

CSENSE_SCENARIO_EX(camp02_sensing_modes,
                "Campaign C2: energy vs preamble sensing with 10 competing "
                "pairs (chain-collision pathology)",
                   bench::runtime_tier::slow,
                   "CSENSE_FAST caps replications and run length; --threads "
                   "shards replications") {
    bench::print_header(
        "Campaign C2 - sensing modes, N = 10 pairs",
        "same random topologies replayed under all four cs_modes; "
        "preamble-only sensing meets the chain-collision pathology");
    const std::size_t replications = bench::fast_mode() ? 5 : 20;
    const double duration_us = bench::fast_mode() ? 3e5 : 2e6;

    mac::multi_pair_config base_config;
    base_config.rate = &capacity::rate_by_mbps(6.0);
    base_config.duration_us = duration_us;

    sim::campaign_options campaign;
    campaign.replications = replications;
    campaign.shard_size = 1;
    campaign.threads = ctx.threads;
    campaign.seed = ctx.seed ^ 0xca4902ULL;
    const auto outcomes = sim::run_replications<replication_outcome>(
        campaign, [&](std::size_t, stats::rng& gen) {
            const auto topology = mac::sample_multi_pair_topology(
                campaign_pairs, /*arena_m=*/100.0, /*rmax_m=*/25.0, gen);
            const std::uint64_t sim_seed = gen.next();
            replication_outcome outcome;
            for (int m = 0; m < 4; ++m) {
                auto cfg = base_config;
                cfg.sense = all_modes[m];
                cfg.seed = sim_seed;  // common random numbers across modes
                const auto run = mac::run_multi_pair(topology, cfg);
                auto& mode = outcome.modes[m];
                mode.total_pps = run.total_pps;
                mode.jain = run.jain_index();
                const double tx =
                    std::max<double>(1.0, static_cast<double>(
                                              run.counters.transmissions));
                mode.chain_per_tx =
                    static_cast<double>(run.counters.chain_collisions) / tx;
                mode.busy_per_tx =
                    static_cast<double>(run.counters.busy_starts) / tx;
            }
            return outcome;
        });

    report::text_table table(
        {"mode", "pkt/s", "Jain", "chain/tx", "busy/tx"});
    double mean[4] = {}, jain[4] = {}, chain[4] = {}, busy[4] = {};
    const double n = static_cast<double>(outcomes.size());
    for (const auto& o : outcomes) {
        for (int m = 0; m < 4; ++m) {
            mean[m] += o.modes[m].total_pps / n;
            jain[m] += o.modes[m].jain / n;
            chain[m] += o.modes[m].chain_per_tx / n;
            busy[m] += o.modes[m].busy_per_tx / n;
        }
    }
    for (int m = 0; m < 4; ++m) {
        table.add_row({mode_name(m), report::fmt(mean[m], 0),
                       report::fmt(jain[m], 3), report::fmt(chain[m], 4),
                       report::fmt(busy[m], 4)});
        const std::string prefix = std::string("mode_") + mode_name(m);
        ctx.metric(prefix + "_pps", mean[m]);
        ctx.metric(prefix + "_jain", jain[m]);
        ctx.metric(prefix + "_chain_per_tx", chain[m]);
    }
    std::printf("%s", table.render().c_str());

    // The pathology ordering the §5 discussion predicts: preamble-only
    // sensing starts over audible frames it missed the preamble of
    // (chain collisions), so it sits between no sensing and energy
    // detection in busy starts and shows more chain collisions than
    // energy detection does.
    const bool chain_pathology = chain[2] > chain[1];
    const bool busy_ordering = busy[0] > busy[2] && busy[2] > busy[1] * 0.999;
    ctx.metric("preamble_chain_exceeds_energy", chain_pathology);
    ctx.metric("busy_ordering_holds", busy_ordering);
    std::printf(
        "\nReading: with ten saturated senders the air is rarely quiet; "
        "preamble-only sensing misses preambles while transmitting and "
        "chain-collides (%0.4f/tx vs %0.4f/tx for energy detection). "
        "Energy detection, the thesis' recommendation, keeps busy starts "
        "lowest; disabled sensing shows the cumulative-interference "
        "free-for-all.\n",
        chain[2], chain[1]);
    // Like camp01, the pathology gate only binds at the full replication
    // budget; fast runs record metrics without failing on noise.
    if (bench::fast_mode()) return 0;
    return chain_pathology ? 0 : 1;
}
