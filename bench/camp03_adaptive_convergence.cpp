// Campaign C3: does closed-loop carrier-sense adaptation converge, and
// to what threshold?
//
// Every sender starts from a deliberately mis-set (deaf, -70 dBm)
// threshold on a random N = 10/20-pair topology and runs one of the
// adaptive policies (src/mac/adaptive_cs.hpp). Per topology we record
// whether the across-sender mean threshold settles, and how far the
// settled value sits from two offline references computed in the
// simulator's dBm units:
//
//  - the offline-tuned optimum: the S3.3.3 concurrency/multiplexing
//    crossing (core::optimal_threshold, the tab02 criterion) for the
//    scenario's pair radius, mapped through the campaign path loss;
//  - the Kim & Kim fixed-point solution
//    (core::solve_threshold_fixed_point), which must agree with the
//    crossing to solver precision - simulation and model compared
//    point-by-point.
//
// A per-topology offline *simulated* grid tuning (static threshold
// sweep under common random numbers) is also reported, showing how the
// throughput-optimal static threshold scatters around the model's.
//
// Replications shard over the deterministic campaign layer; per-node
// controller dither draws from split streams keyed by node index, so
// the JSON is byte-identical for every --threads value.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "src/core/adaptive_threshold.hpp"
#include "src/core/threshold.hpp"
#include "src/mac/multi_pair.hpp"
#include "src/report/table.hpp"
#include "src/sim/campaign.hpp"

using namespace csense;

namespace {

constexpr double arena_m = 120.0;
constexpr double rmax_m = 25.0;
constexpr double misconfigured_dbm = -70.0;  ///< adaptive starting point

const mac::cs_adapt_policy policies[] = {
    mac::cs_adapt_policy::aimd,
    mac::cs_adapt_policy::target_busy,
    mac::cs_adapt_policy::iterative_fixed_point,
};

const char* policy_name(mac::cs_adapt_policy policy) {
    switch (policy) {
        case mac::cs_adapt_policy::fixed: return "fixed";
        case mac::cs_adapt_policy::aimd: return "aimd";
        case mac::cs_adapt_policy::target_busy: return "target_busy";
        case mac::cs_adapt_policy::iterative_fixed_point:
            return "iterative_fixed_point";
    }
    return "?";
}

/// Settled mean (over the last quarter of the epoch trajectory) and a
/// convergence flag (the mean threshold moved less than 2 dB over that
/// window).
struct settle_stats {
    double mean_dbm = 0.0;
    bool converged = false;
};

settle_stats settle(const std::vector<double>& trajectory) {
    settle_stats stats;
    if (trajectory.empty()) return stats;
    const std::size_t begin = 3 * trajectory.size() / 4;
    double lo = trajectory[begin], hi = trajectory[begin], sum = 0.0;
    for (std::size_t i = begin; i < trajectory.size(); ++i) {
        lo = std::min(lo, trajectory[i]);
        hi = std::max(hi, trajectory[i]);
        sum += trajectory[i];
    }
    stats.mean_dbm = sum / static_cast<double>(trajectory.size() - begin);
    stats.converged = (hi - lo) < 2.0;
    return stats;
}

struct replication_outcome {
    settle_stats by_policy[3];
    double grid_opt_dbm = 0.0;  ///< best static threshold by total pps
};

}  // namespace

CSENSE_SCENARIO_EX(camp03_adaptive_convergence,
                   "Campaign C3: adaptive carrier-sense threshold "
                   "convergence vs the offline-tuned optimum and the "
                   "Kim & Kim fixed point",
                   bench::runtime_tier::slow,
                   "CSENSE_FAST caps topologies at 4 and run length at 1 s "
                   "(metrics only, no gate); --threads shards topologies; "
                   "all policies start from a mis-set -70 dBm threshold") {
    bench::print_header(
        "Campaign C3 - adaptive threshold convergence, N = 10/20 pairs",
        "per-node closed-loop control from a mis-set -70 dBm start; "
        "settled thresholds vs the offline-tuned crossing and the "
        "fixed-point solution");
    const std::size_t replications = bench::fast_mode() ? 4 : 10;
    const double duration_us = bench::fast_mode() ? 1e6 : 2e6;
    const double grid_duration_us = bench::fast_mode() ? 3e5 : 1e6;

    mac::multi_pair_config base;
    base.rate = &capacity::rate_by_mbps(6.0);

    // Offline references. The analytic model lives in normalized units
    // (signal at unit distance = 0 dB), so the campaign environment maps
    // to noise_db = noise_floor - (tx_power - reference_loss): with the
    // default radio, -95 - (15 - 47) = -63 dB.
    core::model_params params;
    params.alpha = base.alpha;
    params.sigma_db = 0.0;
    params.noise_db = base.radio.noise_floor_dbm -
                      (base.radio.tx_power_dbm - base.reference_loss_db);
    core::quadrature_options quad;
    quad.radial_nodes = 32;
    quad.angular_nodes = 48;
    quad.shadow_nodes = 8;
    core::mc_options mc;
    mc.seed = ctx.seed;
    mc.threads = ctx.threads;
    const core::expectation_engine engine(params, quad, mc);
    const auto tuned = core::optimal_threshold(engine, rmax_m);
    const auto fixed_point = core::solve_threshold_fixed_point(engine, rmax_m);
    const double tuned_dbm = base.threshold_dbm_for_distance(tuned.d_thresh);
    const double fp_dbm =
        base.threshold_dbm_for_distance(fixed_point.d_thresh);
    ctx.metric("offline_tuned_thr_dbm", tuned_dbm);
    ctx.metric("fixed_point_thr_dbm", fp_dbm);
    ctx.metric("fixed_point_iterations", fixed_point.iterations);
    ctx.metric("fixed_point_converged", fixed_point.converged);
    ctx.metric("model_solver_gap_db", std::abs(tuned_dbm - fp_dbm));
    std::printf(
        "offline-tuned crossing: D* = %.2f m -> %.2f dBm; fixed point: "
        "%.2f dBm in %d iterations (factory default: %.0f dBm)\n\n",
        tuned.d_thresh, tuned_dbm, fp_dbm, fixed_point.iterations,
        base.radio.cs_threshold_dbm);

    report::text_table table({"N", "policy", "settled thr", "|d tuned|",
                              "|d fixed pt|", "conv", "within 2 dB"});
    double min_gate_frac = 1.0;
    for (int pairs : {10, 20}) {
        sim::campaign_options campaign;
        campaign.replications = replications;
        campaign.shard_size = 1;  // one topology's runs per task
        campaign.threads = ctx.threads;
        campaign.seed = ctx.seed ^ (0xca4903ULL + 1000ULL * pairs);
        const auto outcomes = sim::run_replications<replication_outcome>(
            campaign, [&](std::size_t, stats::rng& gen) {
                const auto topology = mac::sample_multi_pair_topology(
                    pairs, arena_m, rmax_m, gen);
                // Common random numbers across the policy and grid axes.
                const std::uint64_t sim_seed = gen.next();
                replication_outcome outcome;
                for (int p = 0; p < 3; ++p) {
                    auto config = base;
                    config.seed = sim_seed;
                    config.duration_us = duration_us;
                    config.radio.cs_threshold_dbm = misconfigured_dbm;
                    config.adapt.policy = policies[p];
                    const auto run = mac::run_multi_pair(topology, config);
                    outcome.by_policy[p] =
                        settle(run.mean_threshold_trajectory_dbm);
                }
                double best_pps = -1.0;
                for (double thr = -90.0; thr <= -74.0; thr += 2.0) {
                    auto config = base;
                    config.seed = sim_seed;
                    config.duration_us = grid_duration_us;
                    config.radio.cs_threshold_dbm = thr;
                    const auto run = mac::run_multi_pair(topology, config);
                    if (run.total_pps > best_pps) {
                        best_pps = run.total_pps;
                        outcome.grid_opt_dbm = thr;
                    }
                }
                return outcome;
            });

        const double n = static_cast<double>(outcomes.size());
        double grid_mean = 0.0;
        for (const auto& o : outcomes) grid_mean += o.grid_opt_dbm;
        grid_mean /= n;
        std::string prefix = "n";
        prefix += std::to_string(pairs);
        ctx.metric(prefix + "_sim_grid_opt_mean_dbm", grid_mean);

        for (int p = 0; p < 3; ++p) {
            double thr_mean = 0.0, dev_tuned = 0.0, dev_fp = 0.0;
            double converged = 0.0, within = 0.0;
            for (const auto& o : outcomes) {
                const auto& s = o.by_policy[p];
                thr_mean += s.mean_dbm;
                dev_tuned += std::abs(s.mean_dbm - tuned_dbm);
                dev_fp += std::abs(s.mean_dbm - fp_dbm);
                if (s.converged) converged += 1.0;
                if (std::abs(s.mean_dbm - tuned_dbm) <= 2.0) within += 1.0;
            }
            thr_mean /= n;
            dev_tuned /= n;
            dev_fp /= n;
            converged /= n;
            within /= n;
            std::string key = prefix;
            key += '_';
            key += policy_name(policies[p]);
            ctx.metric(key + "_settled_thr_dbm", thr_mean);
            ctx.metric(key + "_mean_abs_dev_tuned_db", dev_tuned);
            ctx.metric(key + "_mean_abs_dev_fixed_point_db", dev_fp);
            ctx.metric(key + "_converged_frac", converged);
            ctx.metric(key + "_within_2db_frac", within);
            table.add_row({report::fmt(pairs, 0), policy_name(policies[p]),
                           report::fmt(thr_mean, 2), report::fmt(dev_tuned, 2),
                           report::fmt(dev_fp, 2), report::fmt_percent(converged),
                           report::fmt_percent(within)});
            // The acceptance gate covers the two principled policies;
            // aimd's loss-driven equilibrium is reported but not gated.
            if (policies[p] == mac::cs_adapt_policy::target_busy ||
                policies[p] == mac::cs_adapt_policy::iterative_fixed_point) {
                min_gate_frac = std::min(min_gate_frac, within);
            }
        }
    }
    std::printf("%s", table.render().c_str());
    ctx.metric("min_gated_within_2db_frac", min_gate_frac);
    std::printf(
        "\nEvery policy starts 12 dB deaf of the factory default; "
        "'within 2 dB' compares the settled across-sender mean threshold "
        "to the offline-tuned crossing. target_busy and "
        "iterative_fixed_point must land within 2 dB on >= 80%% of "
        "topologies; the simulated grid optimum (per-topology static "
        "sweep by total throughput) is reported for contrast - it sits "
        "deafer because total throughput rewards unfairness.\n");
    // Fast mode's 4 topologies and short runs make an 80% fraction too
    // coarse to gate on; record metrics only (mirrors camp01).
    if (bench::fast_mode()) return 0;
    return min_gate_frac >= 0.8 ? 0 : 1;
}
