// Campaign C4: adaptive carrier-sense policies vs static thresholds
// across density.
//
// The paper argues a *well-tuned* static threshold already closes most
// of the gap to optimal scheduling; the adaptive policies' job is to
// find that tuning online, starting from a bad factory setting and
// without per-deployment calibration. This campaign sweeps density
// (N = 5/10/20 pairs in a fixed arena) and compares, per random
// topology under common random numbers:
//
//  - static thresholds: the -82 dBm factory default, the offline
//    model-tuned crossing, and a deliberately deaf -70 dBm misconfig;
//  - the three adaptive policies, all starting from the deaf -70 dBm
//    setting (so any gain is recovered, not configured).
//
// Headline: delivered aggregate throughput and Jain fairness. The
// expected picture, mirroring tab01/tab02's "very little change"
// result: factory ~ tuned ~ adaptive >> mis-set static in fairness,
// with adaptive recovering most of the tuned throughput from the bad
// start - carrier sense defended, plus a recovery path when the
// factory value is wrong for the deployment.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "src/core/threshold.hpp"
#include "src/mac/multi_pair.hpp"
#include "src/report/table.hpp"
#include "src/sim/campaign.hpp"

using namespace csense;

namespace {

constexpr double arena_m = 120.0;
constexpr double rmax_m = 25.0;
constexpr double deaf_dbm = -70.0;

enum class contender {
    static_factory,
    static_tuned,
    static_deaf,
    adaptive_aimd,
    adaptive_target_busy,
    adaptive_fixed_point,
};

constexpr contender contenders[] = {
    contender::static_factory,    contender::static_tuned,
    contender::static_deaf,       contender::adaptive_aimd,
    contender::adaptive_target_busy, contender::adaptive_fixed_point,
};
constexpr std::size_t contender_count =
    sizeof(contenders) / sizeof(contenders[0]);

const char* contender_name(contender c) {
    switch (c) {
        case contender::static_factory: return "static_factory";
        case contender::static_tuned: return "static_tuned";
        case contender::static_deaf: return "static_deaf";
        case contender::adaptive_aimd: return "adaptive_aimd";
        case contender::adaptive_target_busy: return "adaptive_target_busy";
        case contender::adaptive_fixed_point: return "adaptive_fixed_point";
    }
    return "?";
}

struct replication_outcome {
    double pps[contender_count] = {};
    double jain[contender_count] = {};
};

}  // namespace

CSENSE_SCENARIO_EX(camp04_adaptive_vs_static,
                   "Campaign C4: adaptive carrier-sense policies vs "
                   "factory/tuned/mis-set static thresholds across density",
                   bench::runtime_tier::slow,
                   "CSENSE_FAST caps topologies at 3 and run length at "
                   "0.8 s (metrics only, no gate); --threads shards "
                   "topologies; adaptive policies start from the deaf "
                   "-70 dBm misconfig")  {
    bench::print_header(
        "Campaign C4 - adaptive vs static thresholds, N = 5/10/20 pairs",
        "aggregate throughput and Jain fairness per policy; adaptive "
        "policies must recover a mis-set radio online");
    const std::size_t replications = bench::fast_mode() ? 3 : 10;
    const double duration_us = bench::fast_mode() ? 8e5 : 2e6;

    mac::multi_pair_config base;
    base.rate = &capacity::rate_by_mbps(6.0);

    // Offline model-tuned threshold for this environment (see camp03 for
    // the unit mapping).
    core::model_params params;
    params.alpha = base.alpha;
    params.sigma_db = 0.0;
    params.noise_db = base.radio.noise_floor_dbm -
                      (base.radio.tx_power_dbm - base.reference_loss_db);
    core::quadrature_options quad;
    quad.radial_nodes = 32;
    quad.angular_nodes = 48;
    quad.shadow_nodes = 8;
    core::mc_options mc;
    mc.seed = ctx.seed;
    mc.threads = ctx.threads;
    const core::expectation_engine engine(params, quad, mc);
    const double tuned_dbm = base.threshold_dbm_for_distance(
        core::optimal_threshold(engine, rmax_m).d_thresh);
    ctx.metric("tuned_thr_dbm", tuned_dbm);

    report::text_table table(
        {"N", "policy", "mean pps", "vs tuned", "Jain"});
    double worst_recovery = 1e9, worst_busy_share = 1e9;
    double worst_busy_jain = 1e9, worst_fairness_edge = 1e9;
    for (int pairs : {5, 10, 20}) {
        sim::campaign_options campaign;
        campaign.replications = replications;
        campaign.shard_size = 1;
        campaign.threads = ctx.threads;
        campaign.seed = ctx.seed ^ (0xca4904ULL + 1000ULL * pairs);
        const auto outcomes = sim::run_replications<replication_outcome>(
            campaign, [&](std::size_t, stats::rng& gen) {
                const auto topology = mac::sample_multi_pair_topology(
                    pairs, arena_m, rmax_m, gen);
                const std::uint64_t sim_seed = gen.next();
                replication_outcome outcome;
                for (std::size_t c = 0; c < contender_count; ++c) {
                    auto config = base;
                    config.seed = sim_seed;
                    config.duration_us = duration_us;
                    switch (contenders[c]) {
                        case contender::static_factory:
                            break;  // radio default, -82 dBm
                        case contender::static_tuned:
                            config.radio.cs_threshold_dbm = tuned_dbm;
                            break;
                        case contender::static_deaf:
                            config.radio.cs_threshold_dbm = deaf_dbm;
                            break;
                        case contender::adaptive_aimd:
                            config.radio.cs_threshold_dbm = deaf_dbm;
                            config.adapt.policy = mac::cs_adapt_policy::aimd;
                            break;
                        case contender::adaptive_target_busy:
                            config.radio.cs_threshold_dbm = deaf_dbm;
                            config.adapt.policy =
                                mac::cs_adapt_policy::target_busy;
                            break;
                        case contender::adaptive_fixed_point:
                            config.radio.cs_threshold_dbm = deaf_dbm;
                            config.adapt.policy =
                                mac::cs_adapt_policy::iterative_fixed_point;
                            break;
                    }
                    const auto run = mac::run_multi_pair(topology, config);
                    outcome.pps[c] = run.total_pps;
                    outcome.jain[c] = run.jain_index();
                }
                return outcome;
            });

        const double n = static_cast<double>(outcomes.size());
        double pps_mean[contender_count] = {};
        double jain_mean[contender_count] = {};
        for (const auto& o : outcomes) {
            for (std::size_t c = 0; c < contender_count; ++c) {
                pps_mean[c] += o.pps[c];
                jain_mean[c] += o.jain[c];
            }
        }
        std::string prefix = "n";
        prefix += std::to_string(pairs);
        const double tuned_pps =
            pps_mean[static_cast<std::size_t>(contender::static_tuned)] / n;
        const double deaf_jain =
            jain_mean[static_cast<std::size_t>(contender::static_deaf)] / n;
        for (std::size_t c = 0; c < contender_count; ++c) {
            pps_mean[c] /= n;
            jain_mean[c] /= n;
            std::string key = prefix;
            key += '_';
            key += contender_name(contenders[c]);
            ctx.metric(key + "_pps", pps_mean[c]);
            ctx.metric(key + "_jain", jain_mean[c]);
            table.add_row(
                {report::fmt(pairs, 0), contender_name(contenders[c]),
                 report::fmt(pps_mean[c], 0),
                 report::fmt_percent(tuned_pps > 0.0
                                         ? pps_mean[c] / tuned_pps
                                         : 0.0),
                 report::fmt(jain_mean[c], 2)});
        }
        // Gate inputs. The two principled policies trade differently:
        // iterative_fixed_point chases the tuned operating point, so it
        // must recover the tuned throughput; target_busy equalizes
        // airtime, so it must deliver high absolute fairness (and beat
        // the deaf misconfig's fairness) while keeping a sane share of
        // the tuned throughput.
        if (tuned_pps > 0.0) {
            worst_recovery = std::min(
                worst_recovery,
                pps_mean[static_cast<std::size_t>(
                    contender::adaptive_fixed_point)] /
                    tuned_pps);
            worst_busy_share = std::min(
                worst_busy_share,
                pps_mean[static_cast<std::size_t>(
                    contender::adaptive_target_busy)] /
                    tuned_pps);
        }
        const double busy_jain = jain_mean[static_cast<std::size_t>(
            contender::adaptive_target_busy)];
        worst_busy_jain = std::min(worst_busy_jain, busy_jain);
        worst_fairness_edge =
            std::min(worst_fairness_edge, busy_jain - deaf_jain);
    }
    std::printf("%s", table.render().c_str());
    ctx.metric("min_fixed_point_recovery_vs_tuned", worst_recovery);
    ctx.metric("min_target_busy_share_vs_tuned", worst_busy_share);
    ctx.metric("min_target_busy_jain", worst_busy_jain);
    ctx.metric("min_target_busy_jain_edge_vs_deaf", worst_fairness_edge);
    std::printf(
        "\n'vs tuned' normalizes by the offline model-tuned static "
        "threshold. The adaptive rows start 12 dB deaf of the factory "
        "default: iterative_fixed_point must recover the tuned "
        "throughput, while target_busy trades some aggregate throughput "
        "for the fairness the misconfig destroyed.\n");
    if (bench::fast_mode()) return 0;
    return (worst_recovery >= 0.85 && worst_busy_share >= 0.45 &&
            worst_busy_jain >= 0.80 && worst_fairness_edge >= -0.05)
               ? 0
               : 1;
}
