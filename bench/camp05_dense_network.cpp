// Campaign C5: production-scale dense networks under cumulative
// interference - the neighbor-culled medium's flagship workload.
//
// The paper's claim (a well-tuned carrier-sense threshold stays near
// optimal) is most at risk exactly where pairwise models drift: dense
// CSMA networks where the *aggregate* of many individually-weak
// interferers breaks receivers (Fu, Liew & Huang; Chau et al.). This
// campaign sweeps density in a fixed 600 m arena - N = 100 / 500 /
// 1000 / 2000 sender-receiver pairs - and compares, per random
// topology under common random numbers:
//
//  - a static threshold tuned offline by the §3 expectation engine
//    (the same concurrency-vs-multiplexing crossing tab02 computes);
//  - the online iterative_fixed_point adaptive policy starting from a
//    12 dB-deaf -70 dBm misconfig (so any parity is *recovered*).
//
// Packet-level runs at this scale only work on the neighbor-culled
// medium (radio_config::audibility_floor_dbm = noise - 20 dB): event
// fan-out is O(audible neighbors), not O(N), and per-node external
// power is tracked incrementally in mW. Replications shard over the
// deterministic campaign layer: JSON is byte-identical at any
// --threads, which the CI heavy-tier smoke pins at N = 500.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <cmath>

#include "bench/common.hpp"
#include "src/core/threshold.hpp"
#include "src/mac/multi_pair.hpp"
#include "src/propagation/units.hpp"
#include "src/report/table.hpp"
#include "src/sim/campaign.hpp"

using namespace csense;

namespace {

constexpr double arena_m = 600.0;
constexpr double rmax_m = 10.0;
constexpr double deaf_dbm = -70.0;

/// Sweep cap from CSENSE_CAMP05_NMAX (e.g. CI caps at 500); 0 = no cap.
int sweep_cap() {
    const char* env = std::getenv("CSENSE_CAMP05_NMAX");
    if (env == nullptr) return 0;
    const int cap = std::atoi(env);
    return cap > 0 ? cap : 0;
}

/// Replication override from CSENSE_CAMP05_REPS; 0 = tier default.
/// Shard-equivalence tests raise it so a k-way partition gives every
/// process some work even in fast mode (1 replication = 1 shard would
/// leave k-1 processes idle).
std::size_t reps_override() {
    const char* env = std::getenv("CSENSE_CAMP05_REPS");
    if (env == nullptr) return 0;
    const int reps = std::atoi(env);
    return reps > 0 ? static_cast<std::size_t>(reps) : 0;
}

struct replication_outcome {
    double tuned_pps = 0.0;
    double tuned_jain = 0.0;
    double tuned_busy_rate = 0.0;
    double adaptive_pps = 0.0;
    double adaptive_jain = 0.0;
    double adaptive_busy_rate = 0.0;
    double adaptive_final_thr_dbm = 0.0;  ///< across-sender mean
    double culled_worstcase_dbm = 0.0;    ///< see culled_residual_dbm
    double tuned_duty = 0.0;              ///< mean per-sender airtime share
};

/// Honesty metric for the culling approximation: mean over nodes of the
/// aggregate power of all *culled* (sub-floor) sender links, in dBm,
/// assuming every sender transmits at once. The per-link floor drops
/// negligible power, but thousands of sub-floor links sum; this is the
/// worst-case bias the culled medium hides, to be compared against the
/// noise floor after scaling by the measured duty cycle. O(N^2) but a
/// few hundred ms even at N = 2000 - it runs once per replication.
double culled_residual_dbm(const mac::multi_pair_topology& topology,
                           const mac::multi_pair_config& config) {
    const double floor_dbm = config.radio.audibility_floor_dbm -
                             3.0 * config.radio.fading_sigma_db;
    const std::size_t n = topology.pairs();
    double sum_mw = 0.0;
    std::size_t nodes = 0;
    const auto accumulate = [&](double x, double y) {
        double culled_mw = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            const double d = std::hypot(topology.senders[j].x - x,
                                        topology.senders[j].y - y);
            if (d == 0.0) continue;  // the sender itself
            const double rx_dbm =
                config.radio.tx_power_dbm + config.gain_db(d);
            if (rx_dbm < floor_dbm) {
                culled_mw += propagation::dbm_to_mw(rx_dbm);
            }
        }
        sum_mw += culled_mw;
        ++nodes;
    };
    for (std::size_t i = 0; i < n; ++i) {
        accumulate(topology.senders[i].x, topology.senders[i].y);
        accumulate(topology.receivers[i].x, topology.receivers[i].y);
    }
    return propagation::mw_to_dbm(
        std::max(sum_mw / static_cast<double>(nodes), 1e-300));
}

double busy_rate(const mac::medium_counters& counters) {
    return counters.transmissions > 0
               ? static_cast<double>(counters.busy_starts) /
                     static_cast<double>(counters.transmissions)
               : 0.0;
}

}  // namespace

CSENSE_SCENARIO_EX(camp05_dense_network,
                   "Campaign C5: dense-network density sweep (N = 100-2000 "
                   "pairs) on the neighbor-culled medium, tuned static vs "
                   "adaptive fixed-point thresholds",
                   bench::runtime_tier::heavy,
                   "CSENSE_FAST caps the sweep at N=1000, replications at 1 "
                   "and run length at 0.2 s (metrics only, no gate); "
                   "CSENSE_CAMP05_NMAX=<n> caps the sweep (CI uses 500); "
                   "CSENSE_CAMP05_REPS=<n> overrides the replication count "
                   "(shard-equivalence tests); --threads shards whole "
                   "packet-level replications") {
    bench::print_header(
        "Campaign C5 - dense networks, N = 100/500/1000/2000 pairs",
        "fixed 600 m arena, cumulative interference; neighbor-culled "
        "medium (floor = noise - 20 dB); tuned static vs adaptive "
        "iterative_fixed_point from a deaf misconfig");
    std::size_t replications = bench::fast_mode() ? 1 : 2;
    if (const std::size_t reps = reps_override(); reps > 0) {
        replications = reps;
    }
    const double duration_us = bench::fast_mode() ? 2e5 : 6e5;

    mac::multi_pair_config base;
    base.rate = &capacity::rate_by_mbps(6.0);
    base.alpha = 4.0;  // urban falloff: finite audible range in the arena
    base.radio.audibility_floor_dbm = base.radio.noise_floor_dbm - 20.0;

    // Offline model-tuned threshold for this environment (camp03/camp04's
    // unit mapping: engine distances -> the simulator's dBm thresholds).
    core::model_params params;
    params.alpha = base.alpha;
    params.sigma_db = 0.0;
    params.noise_db = base.radio.noise_floor_dbm -
                      (base.radio.tx_power_dbm - base.reference_loss_db);
    core::quadrature_options quad;
    quad.radial_nodes = 32;
    quad.angular_nodes = 48;
    quad.shadow_nodes = 8;
    core::mc_options mc;
    mc.seed = ctx.seed;
    mc.threads = ctx.threads;
    const core::expectation_engine engine(params, quad, mc);
    const double tuned_dbm = base.threshold_dbm_for_distance(
        core::optimal_threshold(engine, rmax_m).d_thresh);
    ctx.metric("tuned_thr_dbm", tuned_dbm);

    std::vector<int> sweep = {100, 500, 1000, 2000};
    if (bench::fast_mode()) sweep.pop_back();
    if (const int cap = sweep_cap(); cap > 0) {
        std::erase_if(sweep, [cap](int pairs) { return pairs > cap; });
        if (sweep.empty()) sweep.push_back(cap);
    }

    report::text_table table({"N", "tuned pps", "adapt pps", "recovery",
                              "tuned Jain", "adapt Jain", "adapt thr"});
    double min_recovery = 1e9, max_busy_gap = -1e9;
    for (const int pairs : sweep) {
        sim::campaign_options campaign;
        campaign.replications = replications;
        campaign.shard_size = 1;
        campaign.threads = ctx.threads;
        campaign.seed = ctx.seed ^ (0xca4905ULL + 1000ULL * pairs);
        // --shard i/k: compute only this process's slice and tell the
        // driver what full coverage looks like (for the shard manifest).
        campaign.process_shards = ctx.shard_count;
        campaign.process_shard = ctx.shard_index;
        if (ctx.campaign_units != nullptr) {
            campaign.unit_sink = [&ctx](const sim::campaign_unit& unit) {
                ctx.campaign_units->push_back(unit);
            };
        }
        // Each replication is a whole packet-level run (seconds to
        // minutes at N = 2000), so completed replications checkpoint
        // individually under --checkpoint: a killed sweep resumes at the
        // first unfinished replication. encode/decode round-trip the
        // outcome's doubles exactly (store::encode_doubles), keeping the
        // resumed JSON byte-identical to an uninterrupted run.
        const auto encode = [](const replication_outcome& o) {
            const double fields[] = {
                o.tuned_pps,          o.tuned_jain,
                o.tuned_busy_rate,    o.adaptive_pps,
                o.adaptive_jain,      o.adaptive_busy_rate,
                o.adaptive_final_thr_dbm, o.culled_worstcase_dbm,
                o.tuned_duty};
            return store::encode_doubles(fields, 9);
        };
        const auto decode = [](std::string_view payload,
                               replication_outcome& o) {
            double fields[9];
            if (!store::decode_doubles(payload, fields, 9)) return false;
            o.tuned_pps = fields[0];
            o.tuned_jain = fields[1];
            o.tuned_busy_rate = fields[2];
            o.adaptive_pps = fields[3];
            o.adaptive_jain = fields[4];
            o.adaptive_busy_rate = fields[5];
            o.adaptive_final_thr_dbm = fields[6];
            o.culled_worstcase_dbm = fields[7];
            o.tuned_duty = fields[8];
            return true;
        };
        const auto outcomes =
            sim::run_replications_checkpointed<replication_outcome>(
                campaign, ctx.checkpoint,
                ctx.checkpoint_prefix + "/n" + std::to_string(pairs),
                [&](std::size_t, stats::rng& gen) {
                const auto topology = mac::sample_multi_pair_topology(
                    pairs, arena_m, rmax_m, gen);
                const std::uint64_t sim_seed = gen.next();
                replication_outcome outcome;
                outcome.culled_worstcase_dbm =
                    culled_residual_dbm(topology, base);

                auto tuned = base;
                tuned.seed = sim_seed;
                tuned.duration_us = duration_us;
                tuned.radio.cs_threshold_dbm = tuned_dbm;
                const auto tuned_run = mac::run_multi_pair(topology, tuned);
                outcome.tuned_pps = tuned_run.total_pps;
                outcome.tuned_jain = tuned_run.jain_index();
                outcome.tuned_busy_rate = busy_rate(tuned_run.counters);
                outcome.tuned_duty =
                    static_cast<double>(tuned_run.counters.transmissions) *
                    capacity::frame_airtime_us(*base.rate,
                                               base.payload_bytes) /
                    (duration_us * static_cast<double>(pairs));

                auto adaptive = base;
                adaptive.seed = sim_seed;
                adaptive.duration_us = duration_us;
                adaptive.radio.cs_threshold_dbm = deaf_dbm;
                adaptive.adapt.policy =
                    mac::cs_adapt_policy::iterative_fixed_point;
                adaptive.adapt.epoch_us = 20'000.0;
                const auto adaptive_run =
                    mac::run_multi_pair(topology, adaptive);
                outcome.adaptive_pps = adaptive_run.total_pps;
                outcome.adaptive_jain = adaptive_run.jain_index();
                outcome.adaptive_busy_rate = busy_rate(adaptive_run.counters);
                double mean_thr = 0.0;
                for (const double thr : adaptive_run.final_cs_threshold_dbm) {
                    mean_thr += thr;
                }
                outcome.adaptive_final_thr_dbm =
                    mean_thr /
                    static_cast<double>(
                        adaptive_run.final_cs_threshold_dbm.size());
                return outcome;
                },
                encode, decode);

        const double n = static_cast<double>(outcomes.size());
        replication_outcome mean;
        for (const auto& o : outcomes) {
            mean.tuned_pps += o.tuned_pps / n;
            mean.tuned_jain += o.tuned_jain / n;
            mean.tuned_busy_rate += o.tuned_busy_rate / n;
            mean.adaptive_pps += o.adaptive_pps / n;
            mean.adaptive_jain += o.adaptive_jain / n;
            mean.adaptive_busy_rate += o.adaptive_busy_rate / n;
            mean.adaptive_final_thr_dbm += o.adaptive_final_thr_dbm / n;
            mean.culled_worstcase_dbm += o.culled_worstcase_dbm / n;
            mean.tuned_duty += o.tuned_duty / n;
        }
        // The approximation bill: the culled medium models this much
        // aggregate sub-floor power as silence. Worst case assumes all
        // senders on the air at once; the expected figure scales it by
        // the measured per-sender duty cycle. Both printed against the
        // noise floor so every density states its own bias.
        const double expected_residual_dbm =
            mean.culled_worstcase_dbm +
            10.0 * std::log10(std::max(mean.tuned_duty, 1e-12));
        const double recovery =
            mean.tuned_pps > 0.0 ? mean.adaptive_pps / mean.tuned_pps : 0.0;
        min_recovery = std::min(min_recovery, recovery);
        max_busy_gap = std::max(
            max_busy_gap, mean.adaptive_busy_rate - mean.tuned_busy_rate);

        std::string prefix = "n";
        prefix += std::to_string(pairs);
        ctx.metric(prefix + "_tuned_pps", mean.tuned_pps);
        ctx.metric(prefix + "_tuned_jain", mean.tuned_jain);
        ctx.metric(prefix + "_tuned_busy_rate", mean.tuned_busy_rate);
        ctx.metric(prefix + "_adaptive_pps", mean.adaptive_pps);
        ctx.metric(prefix + "_adaptive_jain", mean.adaptive_jain);
        ctx.metric(prefix + "_adaptive_busy_rate", mean.adaptive_busy_rate);
        ctx.metric(prefix + "_adaptive_final_thr_dbm",
                   mean.adaptive_final_thr_dbm);
        ctx.metric(prefix + "_recovery_vs_tuned", recovery);
        ctx.metric(prefix + "_culled_residual_worstcase_dbm",
                   mean.culled_worstcase_dbm);
        ctx.metric(prefix + "_culled_residual_expected_dbm",
                   expected_residual_dbm);
        std::printf(
            "N=%d culling bias: worst-case aggregate sub-floor power "
            "%.1f dBm, expected at the measured %.1f%% duty cycle "
            "%.1f dBm (noise floor %.1f dBm)\n",
            pairs, mean.culled_worstcase_dbm, 100.0 * mean.tuned_duty,
            expected_residual_dbm, base.radio.noise_floor_dbm);
        table.add_row({report::fmt(pairs, 0), report::fmt(mean.tuned_pps, 0),
                       report::fmt(mean.adaptive_pps, 0),
                       report::fmt_percent(recovery),
                       report::fmt(mean.tuned_jain, 2),
                       report::fmt(mean.adaptive_jain, 2),
                       report::fmt(mean.adaptive_final_thr_dbm, 1)});
    }
    std::printf("%s", table.render().c_str());
    ctx.metric("min_recovery_vs_tuned", min_recovery);
    ctx.metric("max_busy_rate_gap", max_busy_gap);
    std::printf(
        "\n'recovery' is adaptive/tuned aggregate throughput per density "
        "(common random numbers). The adaptive rows start 12 dB deaf; "
        "the fixed-point controller must walk back to the tuned "
        "operating point even when thousands of senders share the "
        "arena, the regime where cumulative interference makes pairwise "
        "carrier-sense models optimistic.\n");
    // The gate needs the full replication budget and run length; fast
    // and capped sweeps record metrics only. A process shard sees only
    // its own slice of each campaign, so its aggregates are partial by
    // construction — never gate on them.
    if (bench::fast_mode() || sweep_cap() > 0 || ctx.shard_count > 1) {
        return 0;
    }
    return (min_recovery >= 0.60) ? 0 : 1;
}
