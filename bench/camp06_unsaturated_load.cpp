// Campaign C6: unsaturated offered load x carrier-sense threshold.
//
// Every other campaign runs saturated senders, but the paper's
// carrier-sense tradeoffs look different when the network is not
// load-saturated (Kai & Liew's critique of saturation-calibrated
// models; Chau et al.'s adaptive sensing under non-uniform load). This
// campaign drives N = 10 / 50 / 200 sender-receiver pairs with Poisson
// unicast traffic through finite per-node FIFOs, with ARF rate
// adaptation live on the ACK feedback path, and sweeps per-sender
// offered load x energy-detect threshold per random topology under
// common random numbers. The first-class outputs are the metrics a
// production WLAN reports: queueing-delay p50/p99, jitter, and drop
// rate - and the latency/throughput knee they trace as the sensing
// threshold moves: a deaf threshold collapses the exposed-terminal tax
// at light load but melts down first as offered load climbs.
//
// Replications shard over the deterministic campaign layer (split-RNG
// per index; streaming-quantile merges in pair-index order), so JSON is
// byte-identical at any --threads and under --checkpoint kill-resume.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "src/mac/multi_pair.hpp"
#include "src/report/table.hpp"
#include "src/sim/campaign.hpp"

using namespace csense;

namespace {

constexpr double arena_m = 300.0;
constexpr double rmax_m = 10.0;

constexpr double loads_pps[] = {100.0, 400.0, 1600.0};
constexpr double thresholds_dbm[] = {-95.0, -82.0, -70.0};
constexpr std::size_t n_loads = std::size(loads_pps);
constexpr std::size_t n_thresholds = std::size(thresholds_dbm);
constexpr std::size_t n_combos = n_loads * n_thresholds;

/// Sweep cap from CSENSE_CAMP06_NMAX (CI smokes cap at 50); 0 = no cap.
int sweep_cap() {
    const char* env = std::getenv("CSENSE_CAMP06_NMAX");
    if (env == nullptr) return 0;
    const int cap = std::atoi(env);
    return cap > 0 ? cap : 0;
}

/// Replication override from CSENSE_CAMP06_REPS; 0 = tier default.
/// Shard-equivalence tests raise it so a k-way partition gives every
/// process some work even in fast mode.
std::size_t reps_override() {
    const char* env = std::getenv("CSENSE_CAMP06_REPS");
    if (env == nullptr) return 0;
    const int reps = std::atoi(env);
    return reps > 0 ? static_cast<std::size_t>(reps) : 0;
}

/// One load x threshold cell of a replication.
struct cell_outcome {
    double delay_p50_us = 0.0;
    double delay_p99_us = 0.0;
    double jitter_us = 0.0;
    double drop_rate = 0.0;
    double delivered_pps = 0.0;  ///< aggregate across pairs
};

/// All cells of one replication, load-major (combo = load * n_thresholds
/// + threshold), flattened to 5 doubles per cell for the checkpoint
/// store's exact round-trip encoding.
struct replication_outcome {
    cell_outcome cells[n_combos];
};

constexpr std::size_t n_fields = 5 * n_combos;

}  // namespace

CSENSE_SCENARIO_EX(camp06_unsaturated_load,
                   "Campaign C6: Poisson unicast offered load x CS threshold "
                   "at N = 10/50/200 pairs - queueing-delay p50/p99, jitter "
                   "and drop rate through per-node FIFOs with ARF live",
                   bench::runtime_tier::slow,
                   "CSENSE_FAST caps the sweep at N=50, replications at 1 and "
                   "run length at 0.2 s; CSENSE_CAMP06_NMAX=<n> caps the "
                   "sweep (CI smokes use 50); CSENSE_CAMP06_REPS=<n> "
                   "overrides the replication count (shard-equivalence "
                   "tests); --threads shards whole packet-level "
                   "replications") {
    bench::print_header(
        "Campaign C6 - unsaturated load, N = 10/50/200 pairs",
        "Poisson unicast through finite FIFOs, ARF rate adaptation; "
        "per-sender offered load x energy-detect threshold under common "
        "random numbers; latency percentiles as first-class outputs");
    std::size_t replications = bench::fast_mode() ? 1 : 2;
    if (const std::size_t reps = reps_override(); reps > 0) {
        replications = reps;
    }
    const double duration_us = bench::fast_mode() ? 2e5 : 6e5;

    mac::multi_pair_config base;
    base.rate = &capacity::rate_by_mbps(24.0);
    base.alpha = 4.0;
    base.radio.audibility_floor_dbm = base.radio.noise_floor_dbm - 20.0;
    base.unicast = true;
    base.rate_adapt = mac::rate_adapt_mode::arf;
    base.traffic.model = mac::traffic_model::poisson;
    base.traffic.queue_capacity = 32;

    std::vector<int> sweep = {10, 50, 200};
    if (bench::fast_mode()) sweep.pop_back();
    if (const int cap = sweep_cap(); cap > 0) {
        std::erase_if(sweep, [cap](int pairs) { return pairs > cap; });
        if (sweep.empty()) sweep.push_back(cap);
    }

    const auto encode = [](const replication_outcome& o) {
        double fields[n_fields];
        for (std::size_t c = 0; c < n_combos; ++c) {
            fields[5 * c + 0] = o.cells[c].delay_p50_us;
            fields[5 * c + 1] = o.cells[c].delay_p99_us;
            fields[5 * c + 2] = o.cells[c].jitter_us;
            fields[5 * c + 3] = o.cells[c].drop_rate;
            fields[5 * c + 4] = o.cells[c].delivered_pps;
        }
        return store::encode_doubles(fields, n_fields);
    };
    const auto decode = [](std::string_view payload, replication_outcome& o) {
        double fields[n_fields];
        if (!store::decode_doubles(payload, fields, n_fields)) return false;
        for (std::size_t c = 0; c < n_combos; ++c) {
            o.cells[c].delay_p50_us = fields[5 * c + 0];
            o.cells[c].delay_p99_us = fields[5 * c + 1];
            o.cells[c].jitter_us = fields[5 * c + 2];
            o.cells[c].drop_rate = fields[5 * c + 3];
            o.cells[c].delivered_pps = fields[5 * c + 4];
        }
        return true;
    };

    bool structurally_sound = true;
    for (const int pairs : sweep) {
        sim::campaign_options campaign;
        campaign.replications = replications;
        campaign.shard_size = 1;
        campaign.threads = ctx.threads;
        campaign.seed = ctx.seed ^ (0xca4906ULL + 1000ULL * pairs);
        // --shard i/k: compute only this process's slice and tell the
        // driver what full coverage looks like (for the shard manifest).
        campaign.process_shards = ctx.shard_count;
        campaign.process_shard = ctx.shard_index;
        if (ctx.campaign_units != nullptr) {
            campaign.unit_sink = [&ctx](const sim::campaign_unit& unit) {
                ctx.campaign_units->push_back(unit);
            };
        }
        const auto outcomes =
            sim::run_replications_checkpointed<replication_outcome>(
                campaign, ctx.checkpoint,
                ctx.checkpoint_prefix + "/n" + std::to_string(pairs),
                [&](std::size_t, stats::rng& gen) {
                    // One topology per replication; every load x threshold
                    // cell replays it (common random numbers), so cell
                    // deltas isolate the knobs, not the map.
                    const auto topology = mac::sample_multi_pair_topology(
                        pairs, arena_m, rmax_m, gen);
                    const std::uint64_t sim_seed = gen.next();
                    replication_outcome outcome;
                    for (std::size_t li = 0; li < n_loads; ++li) {
                        for (std::size_t ti = 0; ti < n_thresholds; ++ti) {
                            auto config = base;
                            config.seed = sim_seed;
                            config.duration_us = duration_us;
                            config.traffic.offered_load_pps = loads_pps[li];
                            config.radio.cs_threshold_dbm =
                                thresholds_dbm[ti];
                            const auto run =
                                mac::run_multi_pair(topology, config);
                            auto& cell =
                                outcome.cells[li * n_thresholds + ti];
                            cell.delay_p50_us = run.sojourn_us.quantile(0.5);
                            cell.delay_p99_us = run.sojourn_us.quantile(0.99);
                            cell.jitter_us = run.sojourn_us.jitter();
                            cell.drop_rate = run.drop_rate;
                            cell.delivered_pps = run.total_pps;
                        }
                    }
                    return outcome;
                },
                encode, decode);

        const double n = static_cast<double>(outcomes.size());
        replication_outcome mean;
        for (const auto& o : outcomes) {
            for (std::size_t c = 0; c < n_combos; ++c) {
                mean.cells[c].delay_p50_us += o.cells[c].delay_p50_us / n;
                mean.cells[c].delay_p99_us += o.cells[c].delay_p99_us / n;
                mean.cells[c].jitter_us += o.cells[c].jitter_us / n;
                mean.cells[c].drop_rate += o.cells[c].drop_rate / n;
                mean.cells[c].delivered_pps += o.cells[c].delivered_pps / n;
            }
        }

        report::text_table table({"load pps", "thr dBm", "p50 us", "p99 us",
                                  "jitter us", "drop", "delivered pps"});
        for (std::size_t li = 0; li < n_loads; ++li) {
            for (std::size_t ti = 0; ti < n_thresholds; ++ti) {
                const auto& cell = mean.cells[li * n_thresholds + ti];
                std::string prefix = "n";
                prefix += std::to_string(pairs);
                prefix += "_load";
                prefix += std::to_string(static_cast<int>(loads_pps[li]));
                prefix += "_thr";
                prefix += std::to_string(static_cast<int>(thresholds_dbm[ti]));
                ctx.metric(prefix + "_delay_p50_us", cell.delay_p50_us);
                ctx.metric(prefix + "_delay_p99_us", cell.delay_p99_us);
                ctx.metric(prefix + "_jitter_us", cell.jitter_us);
                ctx.metric(prefix + "_drop_rate", cell.drop_rate);
                ctx.metric(prefix + "_delivered_pps", cell.delivered_pps);
                structurally_sound =
                    structurally_sound && cell.delay_p50_us > 0.0 &&
                    cell.delay_p99_us >= cell.delay_p50_us &&
                    cell.drop_rate >= 0.0 && cell.drop_rate <= 1.0;
                table.add_row({report::fmt(loads_pps[li], 0),
                               report::fmt(thresholds_dbm[ti], 0),
                               report::fmt(cell.delay_p50_us, 0),
                               report::fmt(cell.delay_p99_us, 0),
                               report::fmt(cell.jitter_us, 0),
                               report::fmt(cell.drop_rate, 3),
                               report::fmt(cell.delivered_pps, 0)});
            }
        }
        std::printf("N = %d pairs\n%s", pairs, table.render().c_str());

        // The knee, made explicit: per threshold, the offered load (per
        // sender) at which mean p99 delay first exceeds 10 ms - higher
        // is better. Emitted as a metric so sweeps can track the knee
        // moving with the sensing threshold.
        for (std::size_t ti = 0; ti < n_thresholds; ++ti) {
            double knee_pps = loads_pps[n_loads - 1];  // never exceeded
            for (std::size_t li = 0; li < n_loads; ++li) {
                if (mean.cells[li * n_thresholds + ti].delay_p99_us >
                    10'000.0) {
                    knee_pps = loads_pps[li];
                    break;
                }
            }
            std::string knee_name = "n";
            knee_name += std::to_string(pairs);
            knee_name += "_thr";
            knee_name += std::to_string(static_cast<int>(thresholds_dbm[ti]));
            knee_name += "_knee_load_pps";
            ctx.metric(knee_name, knee_pps);
        }
    }
    std::printf(
        "\nEach cell: Poisson unicast at the given per-sender offered "
        "load, energy-detect threshold fixed at the given dBm, finite "
        "32-deep FIFOs, ARF adapting the bitrate on ACK feedback. The "
        "knee metric is the lowest offered load whose p99 sojourn "
        "crosses 10 ms at that threshold.\n");
    // Structural gate (all tiers, including fast): latency percentiles
    // must be present and ordered, drop rates must be probabilities. A
    // process shard averages over a partial replication vector (holes
    // are zero-filled), so the invariants only hold unsharded.
    if (ctx.shard_count > 1) return 0;
    return structurally_sound ? 0 : 1;
}
