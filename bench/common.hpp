// Shared helpers for the reproduction scenarios. Every scenario prints
// the paper artifact it regenerates (rows/series) and, where helpful, an
// ASCII rendering, and records its headline numbers on the
// scenario_context. Setting CSENSE_FAST=1 shrinks run counts for quick
// iteration; default settings aim at the fidelity of the thesis' plots.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/registry.hpp"
#include "src/core/expected.hpp"

namespace csense::bench {

/// True when CSENSE_FAST=1: cut Monte Carlo and simulation budgets.
inline bool fast_mode() {
    const char* env = std::getenv("CSENSE_FAST");
    return env != nullptr && env[0] == '1';
}

/// Engine with the thesis' default environment (alpha 3, N = -65 dB),
/// seeded from the run's --seed so Monte Carlo terms are reproducible.
inline core::expectation_engine make_engine(const scenario_context& ctx,
                                            double sigma_db,
                                            bool high_accuracy = false) {
    core::model_params params;
    params.alpha = 3.0;
    params.sigma_db = sigma_db;
    params.noise_db = -65.0;
    core::quadrature_options quad;
    core::mc_options mc;
    mc.seed = ctx.seed;
    mc.threads = ctx.threads;
    if (fast_mode()) {
        quad.radial_nodes = 24;
        quad.angular_nodes = 32;
        quad.shadow_nodes = 8;
        mc.samples = 20000;
    } else if (high_accuracy) {
        quad.radial_nodes = 48;
        quad.angular_nodes = 64;
        quad.shadow_nodes = 16;
        mc.samples = 400000;
    } else {
        quad.radial_nodes = 40;
        quad.angular_nodes = 48;
        quad.shadow_nodes = 12;
        mc.samples = 150000;
    }
    return core::expectation_engine(params, quad, mc);
}

/// Print a standard header naming the reproduced artifact.
inline void print_header(const char* artifact, const char* description) {
    std::printf("==============================================================\n");
    std::printf("%s\n%s\n", artifact, description);
    if (fast_mode()) std::printf("(CSENSE_FAST=1: reduced accuracy)\n");
    std::printf("==============================================================\n");
}

}  // namespace csense::bench
