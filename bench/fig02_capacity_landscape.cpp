// Figure 2: the capacity "landscape" C_i(r, theta) as a function of
// receiver position, for no competition, multiplexing, and concurrency at
// interferer distances D = 20, 55, 120 (alpha = 3, sigma = 0,
// P0/N0 = 65 dB).
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "src/core/policies.hpp"
#include "src/report/ascii_plot.hpp"

using namespace csense;

namespace {

constexpr int grid = 41;
constexpr double extent = 120.0;

std::vector<double> landscape(const core::model_params& params, double d,
                              bool multiplexing, bool competition) {
    std::vector<double> values(grid * grid);
    const double step = 2.0 * extent / (grid - 1);
    for (int iy = 0; iy < grid; ++iy) {
        for (int ix = 0; ix < grid; ++ix) {
            const double x = -extent + step * ix;
            const double y = -extent + step * iy;
            const double r = std::hypot(x, y);
            double c;
            if (r < 1e-6) {
                c = core::capacity_single(params, 1e-3);  // clip the peak
            } else if (!competition) {
                c = core::capacity_single(params, r);
            } else if (multiplexing) {
                c = core::capacity_multiplexing(params, r);
            } else {
                c = core::capacity_concurrent(params, r, std::atan2(y, x), d);
            }
            // Log-compress like the figure's vertical axis to keep the
            // interferer "hole" visible next to the sender peak.
            values[iy * grid + ix] = std::log1p(c);
        }
    }
    return values;
}

void show(const char* title, const std::vector<double>& values) {
    std::printf("\n-- %s (extent +-%.0f, sender at centre) --\n", title, extent);
    std::printf("%s", report::render_heatmap(values, grid, grid,
                                             "log(1 + capacity)").c_str());
}

}  // namespace

CSENSE_SCENARIO_EX(fig02_capacity_landscape,
                "Figure 2: capacity landscape C_i(r, theta) vs receiver "
                "position",
                   bench::runtime_tier::fast, "") {
    bench::print_header("Figure 2 - capacity landscape C_i(r, theta)",
                        "alpha = 3, sigma = 0, P0/N0 = 65 dB; capacity as a "
                        "function of receiver position");
    core::model_params params;
    params.alpha = 3.0;
    params.sigma_db = 0.0;
    params.noise_db = -65.0;

    show("no competition", landscape(params, 0.0, false, false));
    show("multiplexing (any D)", landscape(params, 0.0, true, true));
    for (double d : {20.0, 55.0, 120.0}) {
        char title[64];
        std::snprintf(title, sizeof(title), "concurrency, D = %.0f", d);
        show(title, landscape(params, d, false, true));
    }

    // Numeric slice along the x-axis, the figure's most telling cut.
    std::printf("\ncapacity along the x-axis (receiver at (x, 0)):\n");
    std::printf("%8s %12s %12s %12s %12s\n", "x", "single", "mux", "conc D=55",
                "conc D=120");
    for (double x = -110.0; x <= 110.0; x += 10.0) {
        if (std::abs(x) < 1e-9) continue;
        const double r = std::abs(x);
        const double theta = x > 0 ? 0.0 : 3.14159265358979;
        std::printf("%8.0f %12.4f %12.4f %12.4f %12.4f\n", x,
                    core::capacity_single(params, r),
                    core::capacity_multiplexing(params, r),
                    core::capacity_concurrent(params, r, theta, 55.0),
                    core::capacity_concurrent(params, r, theta, 120.0));
    }
    std::printf("\nNote the interferer 'hole' on the -x axis and the global "
                "droop as D shrinks - not a cookie-cutter region.\n");
    ctx.metric("single_r55", core::capacity_single(params, 55.0));
    ctx.metric("mux_r55", core::capacity_multiplexing(params, 55.0));
    ctx.metric("conc_r55_D55",
               core::capacity_concurrent(params, 55.0, 0.0, 55.0));
    ctx.metric("conc_r55_D120",
               core::capacity_concurrent(params, 55.0, 0.0, 120.0));
    return 0;
}
