// Figure 3: receiver preference regions at D = 20, 55, 120 - dark =
// prefers concurrency, light = prefers multiplexing, white = prefers
// multiplexing and is starved (< 10% of C_UBmax) without it.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "src/core/preference_map.hpp"
#include "src/report/ascii_plot.hpp"

using namespace csense;

CSENSE_SCENARIO_EX(fig03_preference_regions,
                "Figure 3: receiver preference regions at D = 20, 55, 120",
                   bench::runtime_tier::fast, "") {
    bench::print_header("Figure 3 - receiver preference regions",
                        "alpha = 3, sigma = 0; interferer on the -x axis; "
                        "'#' prefers concurrency, '.' multiplexing, ' ' "
                        "starved multiplexing (<10% C_UBmax)");
    core::model_params params;
    params.sigma_db = 0.0;

    const int res = bench::fast_mode() ? 41 : 61;
    for (double d : {20.0, 55.0, 120.0}) {
        const auto map =
            core::build_preference_map(params, d, 130.0, 130.0, res);
        std::vector<int> cells;
        cells.reserve(map.cells.size());
        for (const auto& cell : map.cells) {
            if (!cell.inside) {
                cells.push_back(3);  // outside: render as ','
                continue;
            }
            switch (cell.preference) {
                case core::receiver_preference::concurrency:
                    cells.push_back(0);
                    break;
                case core::receiver_preference::multiplexing:
                    cells.push_back(1);
                    break;
                case core::receiver_preference::starved_multiplexing:
                    cells.push_back(2);
                    break;
            }
        }
        std::printf("\n-- D = %.0f --\n", d);
        std::printf("%s", report::render_category_map(cells, res, res,
                                                      "#. ,").c_str());
        // The thesis reads three facts off this figure; print them.
        for (double rmax : {50.0, 100.0}) {
            const auto summary = core::summarize(
                core::build_preference_map(params, d, rmax, rmax, res));
            std::printf("Rmax = %3.0f: %4.1f%% prefer concurrency, %4.1f%% "
                        "multiplexing (%4.1f%% starved)\n",
                        rmax, 100.0 * summary.fraction_concurrency,
                        100.0 * summary.fraction_multiplexing,
                        100.0 * summary.fraction_starved);
            if (d == 55.0) {
                const std::string prefix =
                    "D55_rmax" + std::to_string(static_cast<int>(rmax));
                ctx.metric(prefix + "_frac_concurrency",
                           summary.fraction_concurrency);
                ctx.metric(prefix + "_frac_starved",
                           summary.fraction_starved);
            }
        }
    }
    std::printf("\nPaper: at D = 20 multiplexing is optimal for all Rmax up "
                "to ~100; at D = 120 concurrency for Rmax up to ~50; at "
                "D = 55 receivers split nearly down the middle.\n");
    return 0;
}
