// Figure 4: average MAC throughput versus inter-sender distance D for the
// non-shadowing model (alpha = 3, P0/N0 = 65 dB), one panel per
// Rmax in {20, 55, 120}; curves: multiplexing, concurrency, optimal.
// Vertical axis normalized to the Rmax = 20, D = infinity throughput.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "src/report/ascii_plot.hpp"

using namespace csense;

CSENSE_SCENARIO_EX(fig04_throughput_curves,
                "Figure 4: average MAC throughput vs inter-sender distance "
                "(sigma = 0)",
                   bench::runtime_tier::medium, "") {
    bench::print_header("Figure 4 - average MAC throughput curves (sigma = 0)",
                        "normalized to Rmax = 20, D = inf; optimal converges "
                        "to multiplexing at small D and concurrency at large D");
    const auto engine = bench::make_engine(ctx, 0.0);
    const double unit = engine.normalization();

    for (double rmax : {20.0, 55.0, 120.0}) {
        const double mux = engine.expected_multiplexing(rmax) / unit;
        report::series s_mux{"multiplexing", {}, {}, 'm'};
        report::series s_conc{"concurrency", {}, {}, 'c'};
        report::series s_opt{"optimal", {}, {}, 'o'};
        std::printf("\n-- Rmax = %.0f --\n", rmax);
        std::printf("%8s %14s %14s %14s\n", "D", "multiplexing", "concurrency",
                    "optimal");
        const double d_max = 3.0 * rmax;
        const int points = bench::fast_mode() ? 12 : 24;
        for (int i = 1; i <= points; ++i) {
            const double d = d_max * i / points;
            const double conc = engine.expected_concurrent(rmax, d) / unit;
            const double opt = engine.expected_optimal(rmax, d).mean / unit;
            std::printf("%8.1f %14.4f %14.4f %14.4f\n", d, mux, conc, opt);
            s_mux.x.push_back(d);
            s_mux.y.push_back(mux);
            s_conc.x.push_back(d);
            s_conc.y.push_back(conc);
            s_opt.x.push_back(d);
            s_opt.y.push_back(opt);
        }
        report::plot_options opts;
        opts.x_label = "inter-sender distance D";
        opts.y_label = "normalized throughput";
        std::printf("%s", report::render_chart({s_mux, s_conc, s_opt},
                                               opts).c_str());
        const std::string prefix =
            "rmax" + std::to_string(static_cast<int>(rmax));
        ctx.metric(prefix + "_mux", mux);
        ctx.metric(prefix + "_conc_at_3rmax", s_conc.y.back());
        ctx.metric(prefix + "_opt_at_3rmax", s_opt.y.back());
    }
    ctx.metric("normalization", unit);
    return 0;
}
