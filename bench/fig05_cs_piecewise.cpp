// Figure 5: the Rmax = 55 panel with carrier-sense throughput for a
// chosen threshold highlighted - the piecewise multiplexing/concurrency
// curve with the switch at D_thresh.
#include <cstdio>

#include "bench/common.hpp"
#include "src/core/threshold.hpp"
#include "src/report/ascii_plot.hpp"

using namespace csense;

CSENSE_SCENARIO_EX(fig05_cs_piecewise,
                "Figure 5: carrier-sense piecewise curve at Rmax = 55",
                   bench::runtime_tier::medium,
                   "the opt_at_3rmax_norm metric carries the Monte-Carlo "
                   "U-statistic term (seed-sensitive)") {
    bench::print_header("Figure 5 - carrier sense piecewise curve, Rmax = 55",
                        "sigma = 0; CS follows multiplexing left of the "
                        "threshold and concurrency right of it");
    const auto engine = bench::make_engine(ctx, 0.0);
    const double unit = engine.normalization();
    const double rmax = 55.0;
    const auto thresh = core::optimal_threshold(engine, rmax);
    std::printf("optimal threshold for Rmax = 55: D_thresh = %.1f "
                "(crossing value %.4f normalized)\n",
                thresh.d_thresh, thresh.crossing_value / unit);

    const double mux = engine.expected_multiplexing(rmax) / unit;
    report::series s_cs{"carrier sense", {}, {}, 'S'};
    report::series s_opt{"optimal", {}, {}, 'o'};
    std::printf("\n%8s %12s %12s %12s %12s\n", "D", "mux", "conc", "CS",
                "optimal");
    const int points = bench::fast_mode() ? 12 : 28;
    for (int i = 1; i <= points; ++i) {
        const double d = 3.0 * rmax * i / points;
        const double conc = engine.expected_concurrent(rmax, d) / unit;
        const double cs =
            engine.expected_carrier_sense(rmax, d, thresh.d_thresh) / unit;
        const double opt = engine.expected_optimal(rmax, d).mean / unit;
        std::printf("%8.1f %12.4f %12.4f %12.4f %12.4f\n", d, mux, conc, cs,
                    opt);
        s_cs.x.push_back(d);
        s_cs.y.push_back(cs);
        s_opt.x.push_back(d);
        s_opt.y.push_back(opt);
    }
    report::plot_options opts;
    opts.x_label = "inter-sender distance D (threshold at the CS kink)";
    opts.y_label = "normalized throughput";
    std::printf("%s", report::render_chart({s_cs, s_opt}, opts).c_str());
    ctx.metric("d_thresh", thresh.d_thresh);
    ctx.metric("crossing_value_norm", thresh.crossing_value / unit);
    ctx.metric("mux_norm", mux);
    // Monte Carlo term: seed-sensitive, exercised by the determinism test.
    ctx.metric("opt_at_3rmax_norm", s_opt.y.back());
    ctx.metric("cs_at_3rmax_norm", s_cs.y.back());
    return 0;
}
