// Figure 6: the shaded inefficiency decomposition at Rmax = 55 - the gap
// between optimal and carrier sense split into "exposed terminal"
// inefficiency (left of the threshold) and "hidden terminal" inefficiency
// (right of it), plus the avoidable "triangles" created by a mistuned
// threshold.
#include <cstdio>

#include "bench/common.hpp"
#include "src/core/efficiency.hpp"
#include "src/core/threshold.hpp"

using namespace csense;

CSENSE_SCENARIO_EX(fig06_inefficiency_regions,
                "Figure 6: exposed/hidden inefficiency decomposition at "
                "Rmax = 55",
                   bench::runtime_tier::medium, "") {
    bench::print_header("Figure 6 - inefficiency decomposition, Rmax = 55",
                        "sigma = 0; gaps integrate optimal-minus-CS over D "
                        "on each side of the threshold");
    const auto engine = bench::make_engine(ctx, 0.0);
    const double rmax = 55.0;
    const auto best = core::optimal_threshold(engine, rmax);
    const int grid = bench::fast_mode() ? 20 : 50;

    std::printf("%10s %14s %14s %16s %16s\n", "D_thresh", "exposed-area",
                "hidden-area", "avoidable-expo", "avoidable-hidden");
    for (double d_thresh :
         {0.6 * best.d_thresh, 0.8 * best.d_thresh, best.d_thresh,
          1.2 * best.d_thresh, 1.5 * best.d_thresh}) {
        const auto parts = core::decompose_inefficiency(
            engine, rmax, d_thresh, 5.0, 3.0 * rmax, grid);
        std::printf("%10.1f %14.4f %14.4f %16.4f %16.4f\n", d_thresh,
                    parts.exposed_area, parts.hidden_area,
                    parts.avoidable_exposed, parts.avoidable_hidden);
        if (d_thresh == best.d_thresh) {
            ctx.metric("best_d_thresh", best.d_thresh);
            ctx.metric("exposed_area", parts.exposed_area);
            ctx.metric("hidden_area", parts.hidden_area);
            ctx.metric("avoidable_exposed", parts.avoidable_exposed);
            ctx.metric("avoidable_hidden", parts.avoidable_hidden);
        }
    }
    std::printf("\nAt the optimal threshold (%.1f) both avoidable triangles "
                "nearly vanish; moving the threshold left grows the hidden "
                "triangle, right grows the exposed one - the graphical "
                "argument for picking the crossing point (S3.3.3).\n",
                best.d_thresh);
    return 0;
}
