// Figure 7: optimal threshold (as the alpha = 3 equivalent distance)
// versus network radius Rmax, for alpha in {2, 2.5, 3, 3.5, 4} at
// sigma = 8 dB, with the Rmax = R_thresh and Rmax = 2 R_thresh regime
// boundaries and footnote 13's short-range asymptote.
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "src/core/regimes.hpp"
#include "src/core/threshold.hpp"
#include "src/report/ascii_plot.hpp"
#include "src/report/table.hpp"

using namespace csense;

CSENSE_SCENARIO_EX(fig07_optimal_threshold,
                "Figure 7: optimal threshold vs network radius for alpha "
                "2..4",
                   bench::runtime_tier::medium,
                   "threshold sweeps reuse the per-engine <C_conc> memo; "
                   "--threads parallelizes the quadrature") {
    bench::print_header("Figure 7 - optimal threshold vs network radius",
                        "sigma = 8 dB; thresholds expressed as the "
                        "equivalent distance at alpha = 3");
    const std::vector<double> alphas =
        bench::fast_mode() ? std::vector<double>{2.0, 3.0, 4.0}
                           : std::vector<double>{2.0, 2.5, 3.0, 3.5, 4.0};
    std::vector<double> rmax_values;
    for (double r = 5.0; r <= 130.0; r *= bench::fast_mode() ? 1.5 : 1.25) {
        rmax_values.push_back(r);
    }

    std::vector<report::series> chart;
    std::printf("%8s", "Rmax");
    for (double alpha : alphas) std::printf("  a=%.1f ", alpha);
    std::printf("  [boundaries: Rthresh=Rmax, Rthresh=2Rmax]\n");

    std::vector<std::vector<double>> table(rmax_values.size());
    char marker = '2';
    for (double alpha : alphas) {
        core::model_params params;
        params.alpha = alpha;
        params.sigma_db = 8.0;
        core::quadrature_options quad;
        quad.radial_nodes = bench::fast_mode() ? 20 : 32;
        quad.angular_nodes = bench::fast_mode() ? 24 : 40;
        quad.shadow_nodes = bench::fast_mode() ? 8 : 10;
        core::expectation_engine engine(params, quad, {20000, ctx.seed, ctx.threads});
        report::series s{std::string("alpha ") + report::fmt(alpha, 1), {}, {},
                         marker};
        for (std::size_t i = 0; i < rmax_values.size(); ++i) {
            // Rescale the radius so each alpha covers the same edge-SNR
            // span as alpha = 3 (the paper's horizontal axis convention).
            const double rmax = core::rmax_for_edge_snr(
                params, core::edge_snr_db(core::model_params{}, rmax_values[i]));
            const auto result = core::optimal_threshold(engine, rmax);
            const double equivalent =
                result.found
                    ? core::equivalent_distance_alpha3(result.d_thresh, alpha)
                    : 0.0;
            table[i].push_back(equivalent);
            s.x.push_back(rmax_values[i]);
            s.y.push_back(equivalent);
        }
        chart.push_back(std::move(s));
        ++marker;
    }
    for (std::size_t i = 0; i < rmax_values.size(); ++i) {
        std::printf("%8.1f", rmax_values[i]);
        for (double v : table[i]) std::printf(" %7.1f", v);
        std::printf("\n");
    }

    report::series eq{"Rthresh = Rmax", {}, {}, '-'};
    report::series eq2{"Rthresh = 2 Rmax", {}, {}, '='};
    for (double r : rmax_values) {
        eq.x.push_back(r);
        eq.y.push_back(r);
        eq2.x.push_back(r);
        eq2.y.push_back(2.0 * r);
    }
    chart.push_back(eq);
    chart.push_back(eq2);
    report::plot_options opts;
    opts.x_label = "network radius Rmax (alpha=3 SNR-equivalent)";
    opts.y_label = "optimal threshold (alpha=3 equivalent distance)";
    std::printf("%s", report::render_chart(chart, opts).c_str());

    // Footnote 13's asymptote at alpha = 3, short range.
    core::model_params p3;
    p3.sigma_db = 0.0;
    const auto engine3 = bench::make_engine(ctx, 0.0);
    std::printf("\nshort-range asymptote check (alpha = 3, sigma = 0):\n");
    std::printf("%8s %12s %12s %8s\n", "Rmax", "exact", "asymptote", "ratio");
    for (double rmax : {0.5, 1.0, 2.0, 5.0}) {
        const double exact = core::optimal_threshold(engine3, rmax).d_thresh;
        const double approx = core::short_range_threshold_asymptote(p3, rmax);
        std::printf("%8.1f %12.2f %12.2f %8.3f\n", rmax, exact, approx,
                    exact / approx);
        if (rmax == 1.0) ctx.metric("asymptote_ratio_rmax1", exact / approx);
    }
    // Equivalent thresholds at the largest radius, one per alpha curve.
    for (std::size_t a = 0; a < alphas.size(); ++a) {
        ctx.metric("equiv_thresh_a" + report::fmt(alphas[a], 1) + "_rmax_max",
                   table.back()[a]);
    }
    std::printf("\nPaper: short range clusters together (thresholds scale "
                "~sqrt(Rmax)); long range spreads with alpha; the regime "
                "boundaries enclose the behavioural change (~18 < Rmax < 60 "
                "at alpha = 3).\n");
    return 0;
}
