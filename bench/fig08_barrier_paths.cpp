// Figure 8: propagation pathways past a barrier - the §3.4 argument that
// a carrier-sense signal cannot be confined: through-wall attenuation is
// < 10 dB, reflections lose < 10 dB, and even pure knife-edge diffraction
// around an opaque barrier at 5 m costs only ~30 dB at 2.4 GHz.
#include <cstdio>

#include "bench/common.hpp"
#include "src/propagation/diffraction.hpp"
#include "src/propagation/units.hpp"

using namespace csense;
using namespace csense::propagation;

CSENSE_SCENARIO_EX(fig08_barrier_paths,
                "Figure 8: propagation pathways past a barrier (why hidden "
                "terminals are hard to build)",
                   bench::runtime_tier::fast, "") {
    bench::print_header("Figure 8 - propagation pathways past a barrier",
                        "why hidden-terminal configurations are hard to "
                        "build: every leakage path, quantified");

    std::printf("through-wall attenuation (COST 231-style):\n");
    std::printf("  drywall          %5.1f dB\n",
                wall_attenuation_db(wall_material::drywall));
    std::printf("  interior wall    %5.1f dB   (paper: 'less than 10 dB')\n",
                wall_attenuation_db(wall_material::interior_wall));
    std::printf("  brick            %5.1f dB\n",
                wall_attenuation_db(wall_material::brick));
    std::printf("  concrete         %5.1f dB\n",
                wall_attenuation_db(wall_material::concrete));
    std::printf("  reinforced slab  %5.1f dB   (the floor term, fn. 1)\n",
                wall_attenuation_db(wall_material::reinforced_slab));
    std::printf("  metal barrier    %5.1f dB   (opaque case below)\n\n",
                wall_attenuation_db(wall_material::metal));

    std::printf("single reflection off a far wall: %.1f dB "
                "(paper: 'less than 10 dB')\n\n",
                typical_reflection_loss_db());

    std::printf("knife-edge diffraction around an opaque barrier, 2.4 GHz, "
                "5 m from each node:\n");
    std::printf("%14s %10s %10s\n", "clearance (m)", "Fresnel v", "loss (dB)");
    for (double h : {0.0, 0.5, 1.0, 2.0, 3.0, 5.0}) {
        const double v = fresnel_v(h, 5.0, 5.0, wavelength_m(2.4e9));
        std::printf("%14.1f %10.2f %10.1f\n", h, v,
                    knife_edge_loss_db(h, 5.0, 5.0, 2.4e9));
    }
    std::printf("(paper: 'the diffraction loss at 2.4 GHz would be around "
                "30 dB')\n\n");

    // Combine the three escape paths of Figure 8's red arrows.
    const double paths[] = {
        wall_attenuation_db(wall_material::metal),          // through
        typical_reflection_loss_db() + 6.0,                 // far-wall bounce
        knife_edge_loss_db(3.0, 5.0, 5.0, 2.4e9),           // around the edge
    };
    std::printf("combined carrier-sense leakage past an opaque barrier "
                "(through + reflection + diffraction): %.1f dB\n",
                combine_paths_db(paths, 3));
    std::printf("=> even an aggressive barrier leaves the senders mutually "
                "audible at WLAN link budgets; shadowing is a ~%.0f dB-scale "
                "effect, not an on/off wall.\n",
                combine_paths_db(paths, 3));
    ctx.metric("interior_wall_db",
               wall_attenuation_db(wall_material::interior_wall));
    ctx.metric("reflection_loss_db", typical_reflection_loss_db());
    ctx.metric("knife_edge_3m_db", knife_edge_loss_db(3.0, 5.0, 5.0, 2.4e9));
    ctx.metric("combined_leakage_db", combine_paths_db(paths, 3));
    return 0;
}
