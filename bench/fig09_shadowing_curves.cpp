// Figure 9: average MAC throughput curves with 8 dB shadowing, with the
// non-shadowing curves for reference. Carrier sense now interpolates
// smoothly between branches (the sensed power is random), and long-range
// concurrency is *raised* by shadowing (the Jensen effect of §3.4).
#include <cstdio>

#include "bench/common.hpp"
#include "src/core/threshold.hpp"
#include "src/report/ascii_plot.hpp"

using namespace csense;

CSENSE_SCENARIO_EX(fig09_shadowing_curves,
                "Figure 9: throughput curves with 8 dB shadowing vs the "
                "sigma = 0 reference",
                   bench::runtime_tier::medium, "") {
    bench::print_header("Figure 9 - throughput curves with 8 dB shadowing",
                        "solid model sigma = 8 dB vs sigma = 0 reference; "
                        "normalized to sigma = 0 Rmax = 20, D = inf");
    const auto shadowed = bench::make_engine(ctx, 8.0);
    const auto reference = bench::make_engine(ctx, 0.0);
    const double unit = reference.normalization();
    const double d_thresh = 55.0;

    for (double rmax : {20.0, 55.0, 120.0}) {
        std::printf("\n-- Rmax = %.0f (D_thresh = 55) --\n", rmax);
        std::printf("%8s | %10s %10s %10s %10s | %10s %10s\n", "D",
                    "mux(s8)", "conc(s8)", "CS(s8)", "opt(s8)", "mux(s0)",
                    "conc(s0)");
        const double mux8 = shadowed.expected_multiplexing(rmax) / unit;
        const double mux0 = reference.expected_multiplexing(rmax) / unit;
        report::series s_cs{"CS (sigma 8)", {}, {}, 'S'};
        report::series s_conc{"conc (sigma 8)", {}, {}, 'c'};
        report::series s_conc0{"conc (sigma 0)", {}, {}, '.'};
        const int points = bench::fast_mode() ? 10 : 20;
        for (int i = 1; i <= points; ++i) {
            const double d = 3.0 * rmax * i / points;
            const double conc8 = shadowed.expected_concurrent(rmax, d) / unit;
            const double cs8 =
                shadowed.expected_carrier_sense(rmax, d, d_thresh) / unit;
            const double opt8 = shadowed.expected_optimal(rmax, d).mean / unit;
            const double conc0 = reference.expected_concurrent(rmax, d) / unit;
            std::printf("%8.1f | %10.4f %10.4f %10.4f %10.4f | %10.4f %10.4f\n",
                        d, mux8, conc8, cs8, opt8, mux0, conc0);
            s_cs.x.push_back(d);
            s_cs.y.push_back(cs8);
            s_conc.x.push_back(d);
            s_conc.y.push_back(conc8);
            s_conc0.x.push_back(d);
            s_conc0.y.push_back(conc0);
        }
        report::plot_options opts;
        opts.x_label = "inter-sender distance D";
        opts.y_label = "normalized throughput";
        std::printf("%s",
                    report::render_chart({s_cs, s_conc, s_conc0}, opts).c_str());
    }

    // The two §3.4 observations worth printing explicitly. In the
    // long-range transition (D = 60, Rmax = 120), shadowing lifts
    // concurrency relative to multiplexing - Jensen's effect on the
    // concave-in-dB capacity at low SNR.
    const double gap_8 = shadowed.expected_concurrent(120.0, 60.0) /
                         shadowed.expected_multiplexing(120.0);
    const double gap_0 = reference.expected_concurrent(120.0, 60.0) /
                         reference.expected_multiplexing(120.0);
    std::printf("\nlong-range transition conc/mux ratio at D = 60: sigma 8 "
                "-> %.2f, sigma 0 -> %.2f (shadowing raises concurrency and "
                "shrinks the gap).\n", gap_8, gap_0);
    const auto t8 = core::optimal_threshold(shadowed, 120.0);
    const auto t0 = core::optimal_threshold(reference, 120.0);
    std::printf("optimal threshold at Rmax = 120: sigma 8 -> %.1f, sigma 0 "
                "-> %.1f (the leftward shift).\n", t8.d_thresh, t0.d_thresh);
    ctx.metric("conc_mux_ratio_sigma8", gap_8);
    ctx.metric("conc_mux_ratio_sigma0", gap_0);
    ctx.metric("thresh_rmax120_sigma8", t8.d_thresh);
    ctx.metric("thresh_rmax120_sigma0", t0.d_thresh);
    return 0;
}
