// Figure 10: short-range competitive comparison - per-run multiplexing
// and concurrency totals plotted against the same run's carrier-sense
// total (CS on the identity line). Points at or below the identity line
// mean CS is not beaten.
#include <cstdio>

#include "bench/testbed_common.hpp"
#include "src/report/ascii_plot.hpp"

using namespace csense;

CSENSE_SCENARIO_EX(fig10_short_scatter,
                "Figure 10: short-range competitive comparison vs carrier "
                "sense",
                   bench::runtime_tier::slow,
                   "writes the short-range testbed ensemble cache in "
                   "./csense_bench_cache (keyed by config + seed)") {
    bench::print_header("Figure 10 - short range competitive comparison vs CS",
                        "pairs with >= 94% delivery at 6 Mb/s; mux and conc "
                        "totals vs the CS total per run");
    const auto data = bench::dataset(ctx, /*short_range=*/true);

    std::printf("\n%10s %10s %10s %10s\n", "CS pkt/s", "mux", "conc", "rssi");
    report::series s_mux{"multiplexing", {}, {}, 'm'};
    report::series s_conc{"concurrency", {}, {}, 'c'};
    report::series s_id{"CS identity", {}, {}, '+'};
    for (const auto& r : data.runs) {
        std::printf("%10.0f %10.0f %10.0f %10.1f\n", r.cs_pps, r.mux_pps,
                    r.conc_pps, r.sender_rssi_db);
        s_mux.x.push_back(r.cs_pps);
        s_mux.y.push_back(r.mux_pps);
        s_conc.x.push_back(r.cs_pps);
        s_conc.y.push_back(r.conc_pps);
        s_id.x.push_back(r.cs_pps);
        s_id.y.push_back(r.cs_pps);
    }
    report::plot_options opts;
    opts.x_label = "CS throughput (pkt/s)";
    opts.y_label = "throughput (pkt/s)";
    std::printf("%s", report::render_chart({s_mux, s_conc, s_id}, opts).c_str());

    int beaten = 0;
    double worst = 1.0;
    for (const auto& r : data.runs) {
        const double best = r.optimal_pps();
        if (r.cs_pps < 0.95 * best) ++beaten;
        worst = std::min(worst, r.cs_pps / best);
    }
    std::printf("\nCS beaten by > 5%% in %d of %zu runs (worst run: %.0f%% of "
                "optimal).\nPaper: 'carrier sense is quite infrequently "
                "bested by multiplexing or concurrency ... the gains are not "
                "especially compelling.'\n",
                beaten, data.runs.size(), 100.0 * worst);
    ctx.metric("runs", static_cast<std::int64_t>(data.runs.size()));
    ctx.metric("cs_beaten_runs", beaten);
    ctx.metric("worst_cs_fraction", worst);
    ctx.metric("avg_cs_pps", data.avg_cs);
    return 0;
}
