// Figure 11: short-range throughput versus sender-sender RSSI - the
// three-region structure (close: CS = mux; transition; far: CS = conc,
// mux lags by ~2x).
#include <cstdio>

#include "bench/testbed_common.hpp"
#include "src/report/ascii_plot.hpp"

using namespace csense;

CSENSE_SCENARIO_EX(fig11_short_rssi,
                "Figure 11: short-range throughput vs sender-sender RSSI",
                   bench::runtime_tier::slow,
                   "reuses the fig10 ensemble cache; fast when warm") {
    bench::print_header("Figure 11 - short range throughput vs sender RSSI",
                        "same dataset as Figure 10, plotted against the "
                        "metric carrier sense actually thresholds on");
    const auto data = bench::dataset(ctx, /*short_range=*/true);

    std::printf("\n%10s %10s %10s %10s\n", "rssi dB", "mux", "conc", "CS");
    report::series s_mux{"multiplexing", {}, {}, 'm'};
    report::series s_conc{"concurrency", {}, {}, 'c'};
    report::series s_cs{"carrier sense", {}, {}, 'S'};
    for (const auto& r : data.runs) {
        std::printf("%10.1f %10.0f %10.0f %10.0f\n", r.sender_rssi_db,
                    r.mux_pps, r.conc_pps, r.cs_pps);
        // The paper plots RSSI decreasing to the right; negate x.
        s_mux.x.push_back(-r.sender_rssi_db);
        s_mux.y.push_back(r.mux_pps);
        s_conc.x.push_back(-r.sender_rssi_db);
        s_conc.y.push_back(r.conc_pps);
        s_cs.x.push_back(-r.sender_rssi_db);
        s_cs.y.push_back(r.cs_pps);
    }
    report::plot_options opts;
    opts.x_label = "-(sender-sender RSSI dB): close pairs left, far right";
    opts.y_label = "throughput (pkt/s)";
    std::printf("%s", report::render_chart({s_mux, s_conc, s_cs}, opts).c_str());

    // Quantify the three regions like the paper's reading of the figure.
    double close_cs = 0, close_mux = 0, far_cs = 0, far_mux = 0, far_conc = 0;
    int n_close = 0, n_far = 0;
    for (const auto& r : data.runs) {
        if (r.sender_rssi_db > 20.0) {
            close_cs += r.cs_pps;
            close_mux += r.mux_pps;
            ++n_close;
        } else if (r.sender_rssi_db < 5.0) {
            far_cs += r.cs_pps;
            far_mux += r.mux_pps;
            far_conc += r.conc_pps;
            ++n_far;
        }
    }
    if (n_close > 0) {
        std::printf("\nclose region (RSSI > 20 dB, %d runs): CS/mux = %.2f "
                    "(paper: coincide)\n",
                    n_close, close_cs / close_mux);
        ctx.metric("close_runs", n_close);
        ctx.metric("close_cs_over_mux", close_cs / close_mux);
    }
    if (n_far > 0) {
        std::printf("far region (RSSI < 5 dB, %d runs): CS/conc = %.2f "
                    "(coincide), conc/mux = %.2f (approaching 2)\n",
                    n_far, far_cs / far_conc, far_conc / far_mux);
        ctx.metric("far_runs", n_far);
        ctx.metric("far_cs_over_conc", far_cs / far_conc);
        ctx.metric("far_conc_over_mux", far_conc / far_mux);
    }
    return 0;
}
