// Figure 12: long-range competitive comparison versus CS (pairs with
// 80-95% delivery at 6 Mb/s). Transition-region concurrency crashes pile
// up on the left of the plot, muddling the regions (as the paper notes).
#include <cstdio>

#include "bench/testbed_common.hpp"
#include "src/report/ascii_plot.hpp"

using namespace csense;

CSENSE_SCENARIO_EX(fig12_long_scatter,
                "Figure 12: long-range competitive comparison vs carrier "
                "sense",
                   bench::runtime_tier::slow,
                   "writes the long-range testbed ensemble cache in "
                   "./csense_bench_cache") {
    bench::print_header("Figure 12 - long range competitive comparison vs CS",
                        "pairs with 80-95% delivery at 6 Mb/s");
    const auto data = bench::dataset(ctx, /*short_range=*/false);

    std::printf("\n%10s %10s %10s %10s\n", "CS pkt/s", "mux", "conc", "rssi");
    report::series s_mux{"multiplexing", {}, {}, 'm'};
    report::series s_conc{"concurrency", {}, {}, 'c'};
    report::series s_id{"CS identity", {}, {}, '+'};
    for (const auto& r : data.runs) {
        std::printf("%10.0f %10.0f %10.0f %10.1f\n", r.cs_pps, r.mux_pps,
                    r.conc_pps, r.sender_rssi_db);
        s_mux.x.push_back(r.cs_pps);
        s_mux.y.push_back(r.mux_pps);
        s_conc.x.push_back(r.cs_pps);
        s_conc.y.push_back(r.conc_pps);
        s_id.x.push_back(r.cs_pps);
        s_id.y.push_back(r.cs_pps);
    }
    report::plot_options opts;
    opts.x_label = "CS throughput (pkt/s)";
    opts.y_label = "throughput (pkt/s)";
    std::printf("%s", report::render_chart({s_mux, s_conc, s_id}, opts).c_str());

    // The paper's "intermediate throughput" observation: CS in transition
    // runs sits between pure concurrency and pure multiplexing because the
    // CS decision flutters (and deferral can be asymmetric).
    int intermediate = 0, transition = 0;
    for (const auto& r : data.runs) {
        if (r.sender_rssi_db < 5.0 || r.sender_rssi_db > 15.0) continue;
        ++transition;
        const double lo = std::min(r.conc_pps, r.mux_pps);
        const double hi = std::max(r.conc_pps, r.mux_pps);
        if (r.cs_pps > lo + 0.1 * (hi - lo) && r.cs_pps < hi - 0.1 * (hi - lo)) {
            ++intermediate;
        }
    }
    std::printf("\ntransition runs (5-15 dB RSSI): %d, of which %d show CS "
                "intermediate between pure concurrency and multiplexing - "
                "the paper's 'fluttering' CS decisions.\n",
                transition, intermediate);
    ctx.metric("runs", static_cast<std::int64_t>(data.runs.size()));
    ctx.metric("transition_runs", transition);
    ctx.metric("intermediate_runs", intermediate);
    ctx.metric("avg_cs_pps", data.avg_cs);
    return 0;
}
