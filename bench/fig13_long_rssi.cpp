// Figure 13: long-range throughput versus sender-sender RSSI. The same
// three regions as Figure 11, but with the transition shifted several dB
// lower (the paper: just shy of 10 dB vs ~15 dB short-range) and the
// transition mistakes being mainly undesirable concurrency.
#include <cstdio>

#include "bench/testbed_common.hpp"
#include "src/report/ascii_plot.hpp"

using namespace csense;

CSENSE_SCENARIO_EX(fig13_long_rssi,
                "Figure 13: long-range throughput vs sender-sender RSSI",
                   bench::runtime_tier::slow,
                   "reuses the fig12 ensemble cache; fast when warm") {
    bench::print_header("Figure 13 - long range throughput vs sender RSSI",
                        "transition sits lower than short range and consists "
                        "mainly of hidden-terminal-style concurrency");
    const auto data = bench::dataset(ctx, /*short_range=*/false);

    std::printf("\n%10s %10s %10s %10s\n", "rssi dB", "mux", "conc", "CS");
    report::series s_mux{"multiplexing", {}, {}, 'm'};
    report::series s_conc{"concurrency", {}, {}, 'c'};
    report::series s_cs{"carrier sense", {}, {}, 'S'};
    for (const auto& r : data.runs) {
        std::printf("%10.1f %10.0f %10.0f %10.0f\n", r.sender_rssi_db,
                    r.mux_pps, r.conc_pps, r.cs_pps);
        s_mux.x.push_back(-r.sender_rssi_db);
        s_mux.y.push_back(r.mux_pps);
        s_conc.x.push_back(-r.sender_rssi_db);
        s_conc.y.push_back(r.conc_pps);
        s_cs.x.push_back(-r.sender_rssi_db);
        s_cs.y.push_back(r.cs_pps);
    }
    report::plot_options opts;
    opts.x_label = "-(sender-sender RSSI dB): close pairs left, far right";
    opts.y_label = "throughput (pkt/s)";
    std::printf("%s", report::render_chart({s_mux, s_conc, s_cs}, opts).c_str());

    // Transition mistakes: count undesirable concurrency (mux clearly
    // better but CS stayed concurrent) vs undesirable multiplexing.
    int undesirable_conc = 0, undesirable_mux = 0;
    for (const auto& r : data.runs) {
        if (r.mux_pps > 1.2 * r.conc_pps && r.cs_pps < 0.9 * r.mux_pps) {
            ++undesirable_conc;
        }
        if (r.conc_pps > 1.2 * r.mux_pps && r.cs_pps < 0.9 * r.conc_pps) {
            ++undesirable_mux;
        }
    }
    std::printf("\nmistake mix: %d undesirable-concurrency runs (hidden "
                "terminals) vs %d undesirable-multiplexing runs; the paper "
                "predicts the former dominates for a threshold tuned to the "
                "average case rather than long range.\n",
                undesirable_conc, undesirable_mux);
    ctx.metric("undesirable_concurrency_runs", undesirable_conc);
    ctx.metric("undesirable_multiplexing_runs", undesirable_mux);
    ctx.metric("avg_cs_pps", data.avg_cs);
    return 0;
}
