// Figure 14: measured wideband signal strengths for all testbed pairs at
// 2.4 GHz with the censored maximum-likelihood fit of the path-loss /
// shadowing model. The thesis recovers alpha = 3.6, sigma = 10.4 dB on
// its hardware; we recover the parameters the synthetic channel was
// generated with, and show the bias of ignoring invisible links.
#include <cmath>
#include <cstdio>

#include "bench/common.hpp"
#include "src/report/ascii_plot.hpp"
#include "src/testbed/rssi_survey.hpp"

using namespace csense;

CSENSE_SCENARIO_EX(fig14_propagation_fit,
                "Figure 14: 2.4 GHz propagation survey with censored ML "
                "path-loss fit",
                   bench::runtime_tier::fast, "") {
    bench::print_header("Figure 14 - propagation survey and ML fit (2.4 GHz)",
                        "SNR vs distance for all pairs; censored-ML fit with "
                        "+-1 sigma bounds; paper: alpha 3.6, sigma 10.4 dB");
    const auto bed = testbed::make_default_testbed();
    testbed::rssi_survey_config cfg;
    const auto survey = run_rssi_survey(bed, cfg);

    report::series points{"pair SNR", {}, {}, '*'};
    report::series mean{"fit mean", {}, {}, '-'};
    report::series hi{"fit +1 sigma", {}, {}, '\''};
    report::series lo{"fit -1 sigma", {}, {}, ','};
    for (const auto& obs : survey.observations) {
        if (obs.censored) continue;
        points.x.push_back(std::log10(obs.distance));
        points.y.push_back(obs.snr_db);
    }
    for (double d = 3.0; d <= 200.0; d *= 1.15) {
        const double m = propagation::fit_mean_snr_db(
            survey.fit, cfg.reference_distance_m, d);
        mean.x.push_back(std::log10(d));
        mean.y.push_back(m);
        hi.x.push_back(std::log10(d));
        hi.y.push_back(m + survey.fit.sigma_db);
        lo.x.push_back(std::log10(d));
        lo.y.push_back(m - survey.fit.sigma_db);
    }
    report::plot_options opts;
    opts.x_label = "log10(distance, m)";
    opts.y_label = "SNR (dB)";
    opts.y_from_zero = false;
    std::printf("%s",
                report::render_chart({points, mean, hi, lo}, opts).c_str());

    std::printf("\npairs: %zu, censored (below %.0f dB detection): %d\n",
                survey.observations.size(), cfg.detection_threshold_db,
                survey.censored_count);
    std::printf("%-24s %8s %10s %12s\n", "", "alpha", "sigma(dB)",
                "RSSI0(R=20)");
    std::printf("%-24s %8.2f %10.2f %12.1f\n", "ground truth",
                survey.true_alpha, survey.true_sigma_db,
                propagation::fit_mean_snr_db(survey.fit,
                                             cfg.reference_distance_m,
                                             cfg.reference_distance_m));
    std::printf("%-24s %8.2f %10.2f %12.1f\n", "censored ML fit",
                survey.fit.alpha, survey.fit.sigma_db, survey.fit.rssi0_db);
    std::printf("%-24s %8.2f %10.2f %12.1f   <- biased flat\n",
                "naive fit (drop hidden)", survey.naive_fit.alpha,
                survey.naive_fit.sigma_db, survey.naive_fit.rssi0_db);
    std::printf("\n(the thesis' fit 'accounts for the invisibility of "
                "sub-threshold links'; the naive row shows why that "
                "correction matters)\n");
    ctx.metric("fit_alpha", survey.fit.alpha);
    ctx.metric("fit_sigma_db", survey.fit.sigma_db);
    ctx.metric("naive_alpha", survey.naive_fit.alpha);
    ctx.metric("censored_count", survey.censored_count);
    return 0;
}
