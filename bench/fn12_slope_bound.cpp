// Footnote 12: "for alpha = 3, sigma = 0, the slope of the concurrency
// curve (in our Rmax = 20 normalized capacity units) is bounded above by
// 1.37 / Rmax for all D > Rmax" - the formal version of "interference
// changes only on the length scale of the network radius", which is why
// small threshold errors cost little.
#include <algorithm>
#include <cstdio>

#include "bench/common.hpp"

using namespace csense;

CSENSE_SCENARIO_EX(fn12_slope_bound,
                "Footnote 12: concurrency-curve slope bound 1.37 / Rmax",
                   bench::runtime_tier::medium, "") {
    bench::print_header("Footnote 12 - concurrency curve slope bound",
                        "max_D d<C_conc>/dD for D > Rmax, normalized; bound "
                        "is 1.37 / Rmax");
    const auto engine = bench::make_engine(ctx, 0.0);
    const double unit = engine.normalization();

    std::printf("%8s %16s %12s %10s\n", "Rmax", "max slope (1/D)", "1.37/Rmax",
                "at D =");
    double worst_margin = 0.0;  // max over Rmax of slope / bound
    for (double rmax : {20.0, 40.0, 55.0, 80.0, 120.0}) {
        double worst = 0.0, worst_d = 0.0;
        for (double d = rmax * 1.02; d < rmax * 8.0; d *= 1.08) {
            const double h = d * 0.01;
            const double slope = (engine.expected_concurrent(rmax, d + h) -
                                  engine.expected_concurrent(rmax, d - h)) /
                                 (2.0 * h) / unit;
            if (slope > worst) {
                worst = slope;
                worst_d = d;
            }
        }
        std::printf("%8.0f %16.5f %12.5f %10.1f   %s\n", rmax, worst,
                    1.37 / rmax, worst_d,
                    worst <= 1.37 / rmax * 1.01 ? "OK" : "VIOLATED");
        worst_margin = std::max(worst_margin, worst / (1.37 / rmax));
    }
    ctx.metric("worst_slope_over_bound", worst_margin);
    ctx.metric("bound_holds", worst_margin <= 1.01);
    std::printf("\nThe bound holding means the throughput cost of a "
                "threshold error of dD is at most 1.37 * dD / Rmax "
                "normalized units - small thresholds mistakes are cheap.\n");
    return 0;
}
