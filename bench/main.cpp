// csense_bench: the unified scenario runner. All figures, tables,
// ablations and microbenchmarks of the reproduction live behind one
// binary:
//
//   csense_bench --list                  enumerate scenarios
//   csense_bench --list-markdown         emit the docs/scenarios.md
//                                        catalog (name, description,
//                                        runtime tier, knobs) to stdout
//   csense_bench --list-json             emit the same catalog as a
//                                        csense-bench-catalog/1 JSON
//                                        document for scripting (CI
//                                        matrix generation, tooling)
//   csense_bench                         run everything
//   csense_bench --filter 'fig*'         run the figure scenarios
//   csense_bench --filter 'fig*,camp05*' comma-separated glob list:
//                                        run scenarios matching any glob
//                                        (zero matches is a fatal error
//                                        and suggests nearby names)
//   csense_bench --seed 1234             base seed for all RNG
//   csense_bench --threads 4             engine worker threads (0 = auto:
//                                        CSENSE_THREADS env, else hardware;
//                                        output is identical at any count)
//   csense_bench --json out.json         machine-readable results/timings
//   csense_bench --no-timings            omit wall-clock fields from the
//                                        JSON (byte-identical reruns)
//   csense_bench --repeat 3              run each scenario N times and
//                                        record mean/min/max wall time
//                                        per scenario in the JSON (perf
//                                        baselines; metrics come from
//                                        the last repetition and are
//                                        identical across repetitions
//                                        for a fixed seed; scenarios
//                                        marked non-repeatable, i.e.
//                                        perf_micro, run once; cached
//                                        testbed scenarios reload
//                                        ./csense_bench_cache/ on
//                                        repetitions 2..N, so run them
//                                        from a scratch dir for cold
//                                        timings)
//   csense_bench --checkpoint <dir>      crash-safe campaigns: completed
//                                        scenario results (and campaign
//                                        replication shards) persist in a
//                                        keyed result store under <dir>
//                                        as they finish; a rerun after a
//                                        crash/kill loads completed units
//                                        and the merged JSON is
//                                        byte-identical to an
//                                        uninterrupted run (with
//                                        --no-timings)
//   csense_bench --watchdog-ms <n>       per-scenario wall-clock budget
//                                        override (default: the tier
//                                        budgets in bench/registry.cpp;
//                                        0 disables the watchdog)
//   csense_bench --shard <i>/<k>         multi-process partition: this
//                                        process computes only the
//                                        campaign replications shard i
//                                        of k owns (fixed shard
//                                        boundaries, so k processes
//                                        cover every campaign disjointly)
//                                        into its own --checkpoint store,
//                                        and records a coverage manifest
//                                        on success. csense_merge splices
//                                        k such stores into one that
//                                        replays byte-identically to an
//                                        unsharded run. Requires
//                                        --checkpoint; conflicts with
//                                        --repeat. Scenario JSON records
//                                        and acceptance gates are
//                                        suppressed (a shard sees only
//                                        its slice); the merged store is
//                                        the run's result.
//
// Exit-code taxonomy (docs/robustness.md):
//   0  ok       every selected scenario completed and passed its gate
//   1  fatal    the driver could not complete the run (no scenario
//               matched, unwritable --json/--checkpoint, ...)
//   2  usage    malformed command line
//   3  partial  the run completed, but at least one scenario degraded
//               (threw or exceeded its watchdog budget — see its
//               "degraded" JSON record) or failed its acceptance gate
//
// Setting CSENSE_FAST=1 shrinks Monte Carlo / simulation budgets.
#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "bench/registry.hpp"
#include "src/core/parallel.hpp"
#include "src/report/json.hpp"
#include "src/sim/campaign.hpp"
#include "src/store/result_store.hpp"
#include "src/store/run_keys.hpp"
#include "src/store/shard_merge.hpp"

namespace {

using csense::bench::scenario;

constexpr int kExitOk = 0;
constexpr int kExitFatal = 1;
constexpr int kExitUsage = 2;
constexpr int kExitPartial = 3;

struct options {
    bool list = false;
    bool list_markdown = false;
    bool list_json = false;
    bool timings = true;
    std::uint64_t seed = 7;
    int threads = 0;
    int repeat = 1;
    std::int64_t watchdog_ms = -1;  ///< -1 = tier default, 0 = disabled
    bool shard = false;             ///< --shard given (shard mode)
    int shard_index = 0;
    int shard_count = 1;
    std::string filter = "*";
    std::string json_path;
    std::string checkpoint_dir;
};

void print_usage(std::FILE* out) {
    std::fprintf(out,
                 "usage: csense_bench [--list] [--list-markdown] "
                 "[--list-json] "
                 "[--filter <glob>] [--seed <n>] [--threads <n>] "
                 "[--repeat <n>] [--json <path>] [--no-timings] "
                 "[--checkpoint <dir>] [--watchdog-ms <n>] "
                 "[--shard <i>/<k>]\n");
}

bool parse_args(int argc, char** argv, options& opts) {
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        auto value = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "csense_bench: %s needs a value\n", flag);
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--list" || arg == "-l") {
            opts.list = true;
        } else if (arg == "--list-markdown") {
            opts.list_markdown = true;
        } else if (arg == "--list-json") {
            opts.list_json = true;
        } else if (arg == "--filter" || arg == "-f") {
            const char* v = value("--filter");
            if (v == nullptr) return false;
            opts.filter = v;
        } else if (arg == "--seed" || arg == "-s") {
            const char* v = value("--seed");
            if (v == nullptr) return false;
            // strtoull silently wraps negatives and saturates on overflow;
            // both would make distinct-looking seeds alias, so reject them.
            errno = 0;
            char* end = nullptr;
            opts.seed = std::strtoull(v, &end, 10);
            if (v[0] == '-' || end == v || *end != '\0' || errno == ERANGE) {
                std::fprintf(stderr,
                             "csense_bench: bad --seed '%s' (need an "
                             "unsigned 64-bit integer)\n", v);
                return false;
            }
        } else if (arg == "--threads" || arg == "-t") {
            const char* v = value("--threads");
            if (v == nullptr) return false;
            errno = 0;
            char* end = nullptr;
            const long n = std::strtol(v, &end, 10);
            if (end == v || *end != '\0' || errno == ERANGE || n < 0 ||
                n > 4096) {
                std::fprintf(stderr,
                             "csense_bench: bad --threads '%s' (need an "
                             "integer in [0, 4096]; 0 = auto)\n", v);
                return false;
            }
            opts.threads = static_cast<int>(n);
        } else if (arg == "--repeat" || arg == "-r") {
            const char* v = value("--repeat");
            if (v == nullptr) return false;
            errno = 0;
            char* end = nullptr;
            const long n = std::strtol(v, &end, 10);
            if (end == v || *end != '\0' || errno == ERANGE || n < 1 ||
                n > 1000) {
                std::fprintf(stderr,
                             "csense_bench: bad --repeat '%s' (need an "
                             "integer in [1, 1000])\n", v);
                return false;
            }
            opts.repeat = static_cast<int>(n);
        } else if (arg == "--watchdog-ms") {
            const char* v = value("--watchdog-ms");
            if (v == nullptr) return false;
            errno = 0;
            char* end = nullptr;
            const long long n = std::strtoll(v, &end, 10);
            if (end == v || *end != '\0' || errno == ERANGE || n < 0) {
                std::fprintf(stderr,
                             "csense_bench: bad --watchdog-ms '%s' (need a "
                             "non-negative integer; 0 disables)\n", v);
                return false;
            }
            opts.watchdog_ms = n;
        } else if (arg == "--shard") {
            const char* v = value("--shard");
            if (v == nullptr) return false;
            errno = 0;
            char* end = nullptr;
            const long index = std::strtol(v, &end, 10);
            bool ok = end != v && *end == '/' && errno != ERANGE;
            long count = 0;
            if (ok) {
                const char* count_text = end + 1;
                errno = 0;
                count = std::strtol(count_text, &end, 10);
                ok = end != count_text && *end == '\0' && errno != ERANGE;
            }
            if (!ok || count < 1 || count > 1024 || index < 0 ||
                index >= count) {
                std::fprintf(stderr,
                             "csense_bench: bad --shard '%s' (need "
                             "<i>/<k> with 0 <= i < k <= 1024)\n", v);
                return false;
            }
            opts.shard = true;
            opts.shard_index = static_cast<int>(index);
            opts.shard_count = static_cast<int>(count);
        } else if (arg == "--checkpoint") {
            const char* v = value("--checkpoint");
            if (v == nullptr) return false;
            opts.checkpoint_dir = v;
        } else if (arg == "--json" || arg == "-j") {
            const char* v = value("--json");
            if (v == nullptr) return false;
            opts.json_path = v;
        } else if (arg == "--no-timings") {
            opts.timings = false;
        } else if (arg == "--help" || arg == "-h") {
            print_usage(stdout);
            std::exit(kExitOk);
        } else {
            std::fprintf(stderr, "csense_bench: unknown argument '%s'\n",
                         argv[i]);
            print_usage(stderr);
            return false;
        }
    }
    // Cross-option constraints of shard mode: without a store the
    // computed slice would be discarded, and --repeat's timing wrappers
    // are per-process (k processes would each claim repeat-indexed
    // records for the same configuration), so both are usage errors.
    if (opts.shard && opts.checkpoint_dir.empty() && !opts.list &&
        !opts.list_markdown && !opts.list_json) {
        std::fprintf(stderr,
                     "csense_bench: --shard requires --checkpoint (each "
                     "shard persists its slice into its own store)\n");
        return false;
    }
    if (opts.shard && opts.repeat != 1) {
        std::fprintf(stderr,
                     "csense_bench: --shard cannot be combined with "
                     "--repeat (timing repetitions are per-process and "
                     "would double-count shard records)\n");
        return false;
    }
    return true;
}

std::vector<std::string> split_globs(const std::string& filter) {
    std::vector<std::string> globs;
    std::size_t begin = 0;
    while (begin <= filter.size()) {
        const std::size_t comma = filter.find(',', begin);
        const std::size_t end =
            comma == std::string::npos ? filter.size() : comma;
        if (end > begin) globs.push_back(filter.substr(begin, end - begin));
        if (comma == std::string::npos) break;
        begin = comma + 1;
    }
    return globs;
}

std::vector<const scenario*> select(const std::string& filter) {
    // --filter takes a comma-separated glob list; a scenario is selected
    // when any glob matches.
    const std::vector<std::string> globs = split_globs(filter);
    std::vector<const scenario*> selected;
    for (const auto& s : csense::bench::scenarios()) {
        for (const auto& glob : globs) {
            if (csense::bench::glob_match(glob, s.name)) {
                selected.push_back(&s);
                break;
            }
        }
    }
    return selected;
}

std::size_t levenshtein(std::string_view a, std::string_view b) {
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diag = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t sub = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
            diag = row[j];
            row[j] = std::min({row[j] + 1, row[j - 1] + 1, sub});
        }
    }
    return row[b.size()];
}

/// Fatal-error message for a filter matching nothing: name the nearest
/// scenarios so a typo ('fig7*', 'camp5*') is a one-glance fix.
void report_no_match(const std::string& filter) {
    std::fprintf(stderr, "csense_bench: no scenario matches '%s'\n",
                 filter.c_str());
    struct ranked {
        std::size_t distance;
        const std::string* name;
    };
    std::vector<ranked> candidates;
    for (const auto& s : csense::bench::scenarios()) {
        std::size_t best = std::string::npos;
        for (const auto& glob : split_globs(filter)) {
            // Compare against the glob with its wildcards stripped; a
            // substring hit counts as an immediate near-miss.
            std::string core;
            for (const char c : glob) {
                if (c != '*' && c != '?') core += c;
            }
            if (core.empty()) continue;
            // Distances are doubled so the subsequence tier can slot
            // between exact-substring hits and one-edit prefixes.
            std::size_t d = 2 * levenshtein(core, s.name);
            if (s.name.find(core) != std::string::npos) d = 0;
            // A glob core is usually a prefix; also rank against the
            // name truncated to the core's length so long names are not
            // penalized for their tails.
            d = std::min(
                d, 2 * levenshtein(
                           core, std::string_view(s.name).substr(
                                     0, std::min(core.size(),
                                                 s.name.size()))));
            // A dropped character ('camp5' for camp05) leaves the core a
            // subsequence of the intended name; rank those right after
            // substring hits, ahead of every one-edit sibling.
            std::size_t ci = 0;
            for (const char c : s.name) {
                if (ci < core.size() && c == core[ci]) ++ci;
            }
            if (ci == core.size()) d = std::min(d, std::size_t{1});
            best = std::min(best, d);
        }
        if (best != std::string::npos) {
            candidates.push_back({best, &s.name});
        }
    }
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const ranked& a, const ranked& b) {
                         return a.distance < b.distance;
                     });
    std::string nearest;
    std::size_t shown = 0;
    for (const auto& c : candidates) {
        if (shown == 3 || c.distance > 8) break;
        if (!nearest.empty()) nearest += ", ";
        nearest += *c.name;
        ++shown;
    }
    if (!nearest.empty()) {
        std::fprintf(stderr, "  nearest scenarios: %s\n", nearest.c_str());
    }
    std::fprintf(stderr,
                 "  (use --list to see all %zu scenarios)\n",
                 csense::bench::scenarios().size());
}

/// Arms a one-shot wall-clock budget on construction; if the scenario
/// has not disarmed it within the budget, the cancellation token fires
/// and the in-flight run unwinds at its next cooperative cancellation
/// point (core::cancelled_error). Runs in bench/main.cpp so the
/// wall-clock read stays inside the determinism linter's timing
/// whitelist.
class watchdog {
public:
    watchdog(std::uint64_t budget_ms, std::atomic<bool>* cancel)
        : thread_([this, budget_ms, cancel] {
              std::unique_lock lock(mutex_);
              if (!cv_.wait_for(lock, std::chrono::milliseconds(budget_ms),
                                [this] { return disarmed_; })) {
                  cancel->store(true, std::memory_order_release);
                  fired_ = true;
              }
          }) {}

    watchdog(const watchdog&) = delete;
    watchdog& operator=(const watchdog&) = delete;
    ~watchdog() { disarm(); }

    void disarm() {
        {
            std::scoped_lock lock(mutex_);
            disarmed_ = true;
        }
        cv_.notify_all();
        if (thread_.joinable()) thread_.join();
    }

    /// True when the budget elapsed before disarm (call after disarm).
    bool fired() {
        std::scoped_lock lock(mutex_);
        return fired_;
    }

private:
    std::mutex mutex_;
    std::condition_variable cv_;
    bool disarmed_ = false;
    bool fired_ = false;
    std::thread thread_;
};

}  // namespace

int main(int argc, char** argv) {
    options opts;
    if (!parse_args(argc, argv, opts)) return kExitUsage;

    if (opts.list_markdown) {
        // The catalog always covers the whole registry (ignoring
        // --filter) so docs/scenarios.md is complete by construction.
        std::fputs(csense::bench::markdown_catalog().c_str(), stdout);
        return kExitOk;
    }
    if (opts.list_json) {
        // Whole-registry like --list-markdown: tooling that scripts over
        // scenarios sees the complete catalog regardless of --filter.
        std::fputs(csense::bench::json_catalog().c_str(), stdout);
        std::fputc('\n', stdout);
        return kExitOk;
    }

    const auto selected = select(opts.filter);
    if (selected.empty()) {
        report_no_match(opts.filter);
        return kExitFatal;
    }

    if (opts.list) {
        for (const auto* s : selected) {
            std::printf("%-28s %s\n", s->name.c_str(),
                        s->description.c_str());
        }
        std::printf("(%zu scenarios)\n", selected.size());
        return kExitOk;
    }

    std::unique_ptr<csense::store::result_store> checkpoint;
    if (!opts.checkpoint_dir.empty()) {
        try {
            checkpoint = std::make_unique<csense::store::result_store>(
                opts.checkpoint_dir,
                std::string(csense::store::kBenchStoreSchema));
        } catch (const std::exception& e) {
            std::fprintf(stderr, "csense_bench: --checkpoint: %s\n",
                         e.what());
            return kExitFatal;
        }
    }
    // The CSENSE_* env fingerprint that keys every checkpoint record
    // (CSENSE_THREADS excluded: output is thread-count invariant), so a
    // run under different knobs can never load another configuration's
    // records. Shared with csense_merge/csense_sweep_serve, which must
    // agree on it byte-for-byte.
    const std::string env_fp = csense::store::current_env_fingerprint();
    const bool fast = csense::bench::fast_mode();

    using clock = std::chrono::steady_clock;
    namespace report = csense::report;

    report::json_value doc = report::json_value::object();
    doc["schema"] = "csense-bench/1";
    doc["seed"] = opts.seed;
    doc["fast_mode"] = fast;
    doc["filter"] = std::string_view(opts.filter);
    doc["repeat"] = opts.repeat;
    if (opts.shard) {
        // Marks this document as one shard's partial view: it must
        // never be compared against (or mistaken for) a merged run.
        const std::string shard_label = std::to_string(opts.shard_index) +
                                        "/" +
                                        std::to_string(opts.shard_count);
        doc["shard"] = std::string_view(shard_label);
    }
    report::json_value results = report::json_value::array();

    enum class outcome { ok, gate_failed, degraded, cached };
    struct timing {
        const scenario* s;
        outcome result;
        double elapsed_ms;
    };
    std::vector<timing> timings;

    int gate_failures = 0;
    int degraded_count = 0;
    std::vector<csense::sim::campaign_unit> campaign_units;
    const auto run_start = clock::now();
    for (std::size_t i = 0; i < selected.size(); ++i) {
        const scenario& s = *selected[i];

        // The run-configuration fingerprint every checkpoint record of
        // this scenario keys on. Replication shards exclude the
        // repeat/timings wrapper knobs (they never reach shard payloads).
        const std::string unit_fp = csense::store::scenario_unit_fingerprint(
            s.name, opts.seed, env_fp);
        const std::string scenario_key = csense::store::scenario_record_key(
            unit_fp, opts.repeat, opts.timings);

        // Shard mode neither loads nor stores whole-scenario records:
        // this process's metrics aggregate a partial replication vector,
        // so only the per-replication records it owns are real.
        if (checkpoint != nullptr && !opts.shard) {
            if (const auto payload = checkpoint->load(scenario_key)) {
                std::string error;
                if (auto entry = report::json_value::parse(*payload, &error)) {
                    std::printf("\n### [%zu/%zu] %s (loaded from "
                                "checkpoint)\n",
                                i + 1, selected.size(), s.name.c_str());
                    const report::json_value* status = entry->find("status");
                    if (status != nullptr && status->to_int64() != 0) {
                        ++gate_failures;
                    }
                    timings.push_back({&s, outcome::cached, 0.0});
                    results.push_back(std::move(*entry));
                    continue;
                }
                // A payload that passed the store checksum but fails to
                // parse means a foreign writer; recompute and overwrite.
                std::fprintf(stderr,
                             "csense_bench: checkpoint record for %s "
                             "unparseable (%s); recomputing\n",
                             s.name.c_str(), error.c_str());
            }
        }

        // --repeat: every repetition runs the scenario in full with the
        // same seed, so metrics are identical and only wall time moves;
        // the last repetition's metrics and status are recorded, and the
        // per-scenario mean/min/max land next to them in the JSON.
        // Non-repeatable scenarios (perf_micro) are capped at one run.
        const int repeat = s.repeatable ? opts.repeat : 1;
        if (repeat < opts.repeat) {
            std::printf("\n(%s runs once: not repeatable in-process)\n",
                        s.name.c_str());
        }
        const std::uint64_t budget_ms =
            opts.watchdog_ms >= 0
                ? static_cast<std::uint64_t>(opts.watchdog_ms)
                : csense::bench::tier_budget_ms(s.tier, fast);

        int status = 0;
        std::string degraded_reason;
        std::string degraded_detail;
        double elapsed_sum_ms = 0.0;
        double elapsed_min_ms = 0.0;
        double elapsed_max_ms = 0.0;
        double elapsed_last_ms = 0.0;
        int reps_run = 0;
        csense::bench::scenario_context ctx;
        for (int rep = 0; rep < repeat; ++rep) {
            std::printf("\n### [%zu/%zu] %s", i + 1, selected.size(),
                        s.name.c_str());
            if (repeat > 1) {
                std::printf(" (repetition %d/%d)", rep + 1, repeat);
            }
            std::printf("\n");
            std::atomic<bool> cancel{false};
            ctx = csense::bench::scenario_context{};
            ctx.seed = opts.seed;
            ctx.threads = opts.threads;
            ctx.cancel = &cancel;
            ctx.checkpoint = checkpoint.get();
            ctx.checkpoint_prefix = csense::store::replication_prefix(unit_fp);
            ctx.shard_count = opts.shard_count;
            ctx.shard_index = opts.shard_index;
            ctx.campaign_units = opts.shard ? &campaign_units : nullptr;
            csense::core::set_cancellation_token(&cancel);
            std::unique_ptr<watchdog> dog;
            if (budget_ms > 0) {
                dog = std::make_unique<watchdog>(budget_ms, &cancel);
            }
            const auto start = clock::now();
            int rep_status = 0;
            try {
                rep_status = s.run(ctx);
            } catch (const csense::core::cancelled_error&) {
                degraded_reason = "watchdog_timeout";
                degraded_detail = "exceeded the " +
                                  std::string(csense::bench::tier_name(
                                      s.tier)) +
                                  "-tier wall-clock budget";
            } catch (const std::exception& e) {
                degraded_reason = "exception";
                degraded_detail = e.what();
            } catch (...) {
                degraded_reason = "exception";
                degraded_detail = "unknown exception";
            }
            if (dog != nullptr) {
                dog->disarm();
                // A scenario that never reached a cancellation point can
                // outlive its budget and still return normally; budget
                // overruns degrade either way so tier budgets stay
                // meaningful.
                if (degraded_reason.empty() && dog->fired()) {
                    degraded_reason = "watchdog_timeout";
                    degraded_detail =
                        "completed only after the " +
                        std::string(csense::bench::tier_name(s.tier)) +
                        "-tier wall-clock budget elapsed";
                }
            }
            csense::core::set_cancellation_token(nullptr);
            elapsed_last_ms =
                std::chrono::duration<double, std::milli>(clock::now() - start)
                    .count();
            elapsed_sum_ms += elapsed_last_ms;
            elapsed_min_ms = (rep == 0) ? elapsed_last_ms
                                        : std::min(elapsed_min_ms,
                                                   elapsed_last_ms);
            elapsed_max_ms = std::max(elapsed_max_ms, elapsed_last_ms);
            ++reps_run;
            if (!degraded_reason.empty()) {
                std::printf("(%s degraded: %s — continuing with the "
                            "remaining scenarios)\n",
                            s.name.c_str(), degraded_reason.c_str());
                break;  // remaining repetitions would degrade identically
            }
            if (rep_status != 0) status = rep_status;
        }

        const bool degraded = !degraded_reason.empty();
        if (degraded) ++degraded_count;
        if (!degraded && status != 0) ++gate_failures;
        timings.push_back({&s,
                           degraded ? outcome::degraded
                           : status != 0 ? outcome::gate_failed
                                         : outcome::ok,
                           elapsed_sum_ms / reps_run});

        report::json_value entry = report::json_value::object();
        entry["name"] = std::string_view(s.name);
        entry["description"] = std::string_view(s.description);
        entry["status"] = degraded ? -1 : status;
        if (degraded) {
            report::json_value info = report::json_value::object();
            info["reason"] = std::string_view(degraded_reason);
            info["detail"] = std::string_view(degraded_detail);
            info["budget_ms"] = static_cast<std::int64_t>(budget_ms);
            entry["degraded"] = std::move(info);
        }
        entry["metrics"] = std::move(ctx.metrics);
        if (opts.timings) {
            entry["elapsed_ms"] = elapsed_last_ms;
            if (reps_run > 1) {
                entry["elapsed_ms_mean"] = elapsed_sum_ms / reps_run;
                entry["elapsed_ms_min"] = elapsed_min_ms;
                entry["elapsed_ms_max"] = elapsed_max_ms;
            }
        }
        // Completed units (including gate failures: they are complete,
        // deterministic results) checkpoint; degraded units must
        // recompute on resume, so they are never stored. Shard-mode
        // scenario records would be partial — never stored either.
        if (checkpoint != nullptr && !degraded && !opts.shard) {
            checkpoint->put(scenario_key, entry.dump(0));
        }
        results.push_back(std::move(entry));
    }

    // A shard run that completed every scenario un-degraded publishes
    // its coverage manifest: the merge tool refuses stores without one
    // (an absent manifest is exactly what a killed shard leaves behind).
    if (opts.shard && checkpoint != nullptr && degraded_count == 0) {
        csense::store::shard_manifest manifest;
        manifest.shard_index = opts.shard_index;
        manifest.shard_count = opts.shard_count;
        manifest.seed = opts.seed;
        manifest.filter = opts.filter;
        manifest.repeat = opts.repeat;
        manifest.timings = opts.timings;
        manifest.env_fp = env_fp;
        for (const auto* s : selected) {
            manifest.scenarios.push_back(s->name);
        }
        for (const auto& unit : campaign_units) {
            manifest.units.push_back(
                {unit.prefix, static_cast<std::int64_t>(unit.replications),
                 static_cast<std::int64_t>(unit.shard_size)});
        }
        if (!checkpoint->put(csense::store::kManifestKey,
                             csense::store::encode_manifest(manifest))) {
            std::fprintf(stderr,
                         "csense_bench: cannot write the shard manifest "
                         "to '%s'\n", opts.checkpoint_dir.c_str());
            return kExitFatal;
        }
    }
    const double total_ms =
        std::chrono::duration<double, std::milli>(clock::now() - run_start)
            .count();

    doc["scenarios"] = std::move(results);
    if (opts.timings) doc["total_elapsed_ms"] = total_ms;

    std::printf("\n%-28s %8s %12s\n", "scenario", "status", "elapsed");
    for (const auto& t : timings) {
        const char* label = "ok";
        switch (t.result) {
            case outcome::ok: label = "ok"; break;
            case outcome::gate_failed: label = "FAIL"; break;
            case outcome::degraded: label = "DEGRADED"; break;
            case outcome::cached: label = "cached"; break;
        }
        std::printf("%-28s %8s %10.1f ms\n", t.s->name.c_str(), label,
                    t.elapsed_ms);
    }
    std::printf("%zu scenario(s), %d failure(s), %d degraded, %.1f ms "
                "total\n",
                timings.size(), gate_failures, degraded_count, total_ms);
    if (checkpoint != nullptr) {
        const auto stats = checkpoint->stats();
        std::printf("checkpoint: %llu loaded, %llu stored, %llu "
                    "quarantined (%s)\n",
                    static_cast<unsigned long long>(stats.hits),
                    static_cast<unsigned long long>(stats.writes),
                    static_cast<unsigned long long>(stats.quarantined),
                    opts.checkpoint_dir.c_str());
    }

    if (!opts.json_path.empty()) {
        std::ofstream out(opts.json_path);
        if (!out) {
            std::fprintf(stderr, "csense_bench: cannot write '%s'\n",
                         opts.json_path.c_str());
            return kExitFatal;
        }
        out << doc.dump(2);
        std::printf("wrote %s\n", opts.json_path.c_str());
    }
    // Shard mode: gates evaluated over a partial replication vector are
    // not meaningful, so only degradation (a shard whose records cannot
    // be trusted complete) reaches the exit code.
    if (degraded_count > 0) return kExitPartial;
    if (gate_failures > 0 && !opts.shard) return kExitPartial;
    return kExitOk;
}
