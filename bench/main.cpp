// csense_bench: the unified scenario runner. All figures, tables,
// ablations and microbenchmarks of the reproduction live behind one
// binary:
//
//   csense_bench --list                  enumerate scenarios
//   csense_bench --list-markdown         emit the docs/scenarios.md
//                                        catalog (name, description,
//                                        runtime tier, knobs) to stdout
//   csense_bench                         run everything
//   csense_bench --filter 'fig*'         run the figure scenarios
//   csense_bench --filter 'fig*,camp05*' comma-separated glob list:
//                                        run scenarios matching any glob
//   csense_bench --seed 1234             base seed for all RNG
//   csense_bench --threads 4             engine worker threads (0 = auto:
//                                        CSENSE_THREADS env, else hardware;
//                                        output is identical at any count)
//   csense_bench --json out.json         machine-readable results/timings
//   csense_bench --no-timings            omit wall-clock fields from the
//                                        JSON (byte-identical reruns)
//   csense_bench --repeat 3              run each scenario N times and
//                                        record mean/min/max wall time
//                                        per scenario in the JSON (perf
//                                        baselines; metrics come from
//                                        the last repetition and are
//                                        identical across repetitions
//                                        for a fixed seed; scenarios
//                                        marked non-repeatable, i.e.
//                                        perf_micro, run once; cached
//                                        testbed scenarios reload
//                                        ./csense_bench_cache/ on
//                                        repetitions 2..N, so run them
//                                        from a scratch dir for cold
//                                        timings)
//
// Setting CSENSE_FAST=1 shrinks Monte Carlo / simulation budgets.
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "bench/registry.hpp"
#include "src/report/json.hpp"

namespace {

using csense::bench::scenario;

struct options {
    bool list = false;
    bool list_markdown = false;
    bool timings = true;
    std::uint64_t seed = 7;
    int threads = 0;
    int repeat = 1;
    std::string filter = "*";
    std::string json_path;
};

void print_usage(std::FILE* out) {
    std::fprintf(out,
                 "usage: csense_bench [--list] [--list-markdown] "
                 "[--filter <glob>] [--seed <n>] [--threads <n>] "
                 "[--repeat <n>] [--json <path>] [--no-timings]\n");
}

bool parse_args(int argc, char** argv, options& opts) {
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        auto value = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "csense_bench: %s needs a value\n", flag);
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--list" || arg == "-l") {
            opts.list = true;
        } else if (arg == "--list-markdown") {
            opts.list_markdown = true;
        } else if (arg == "--filter" || arg == "-f") {
            const char* v = value("--filter");
            if (v == nullptr) return false;
            opts.filter = v;
        } else if (arg == "--seed" || arg == "-s") {
            const char* v = value("--seed");
            if (v == nullptr) return false;
            // strtoull silently wraps negatives and saturates on overflow;
            // both would make distinct-looking seeds alias, so reject them.
            errno = 0;
            char* end = nullptr;
            opts.seed = std::strtoull(v, &end, 10);
            if (v[0] == '-' || end == v || *end != '\0' || errno == ERANGE) {
                std::fprintf(stderr,
                             "csense_bench: bad --seed '%s' (need an "
                             "unsigned 64-bit integer)\n", v);
                return false;
            }
        } else if (arg == "--threads" || arg == "-t") {
            const char* v = value("--threads");
            if (v == nullptr) return false;
            errno = 0;
            char* end = nullptr;
            const long n = std::strtol(v, &end, 10);
            if (end == v || *end != '\0' || errno == ERANGE || n < 0 ||
                n > 4096) {
                std::fprintf(stderr,
                             "csense_bench: bad --threads '%s' (need an "
                             "integer in [0, 4096]; 0 = auto)\n", v);
                return false;
            }
            opts.threads = static_cast<int>(n);
        } else if (arg == "--repeat" || arg == "-r") {
            const char* v = value("--repeat");
            if (v == nullptr) return false;
            errno = 0;
            char* end = nullptr;
            const long n = std::strtol(v, &end, 10);
            if (end == v || *end != '\0' || errno == ERANGE || n < 1 ||
                n > 1000) {
                std::fprintf(stderr,
                             "csense_bench: bad --repeat '%s' (need an "
                             "integer in [1, 1000])\n", v);
                return false;
            }
            opts.repeat = static_cast<int>(n);
        } else if (arg == "--json" || arg == "-j") {
            const char* v = value("--json");
            if (v == nullptr) return false;
            opts.json_path = v;
        } else if (arg == "--no-timings") {
            opts.timings = false;
        } else if (arg == "--help" || arg == "-h") {
            print_usage(stdout);
            std::exit(0);
        } else {
            std::fprintf(stderr, "csense_bench: unknown argument '%s'\n",
                         argv[i]);
            print_usage(stderr);
            return false;
        }
    }
    return true;
}

std::vector<const scenario*> select(const std::string& filter) {
    // --filter takes a comma-separated glob list; a scenario is selected
    // when any glob matches.
    std::vector<std::string> globs;
    std::size_t begin = 0;
    while (begin <= filter.size()) {
        const std::size_t comma = filter.find(',', begin);
        const std::size_t end =
            comma == std::string::npos ? filter.size() : comma;
        if (end > begin) globs.push_back(filter.substr(begin, end - begin));
        if (comma == std::string::npos) break;
        begin = comma + 1;
    }
    std::vector<const scenario*> selected;
    for (const auto& s : csense::bench::scenarios()) {
        for (const auto& glob : globs) {
            if (csense::bench::glob_match(glob, s.name)) {
                selected.push_back(&s);
                break;
            }
        }
    }
    return selected;
}

}  // namespace

int main(int argc, char** argv) {
    options opts;
    if (!parse_args(argc, argv, opts)) return 2;

    if (opts.list_markdown) {
        // The catalog always covers the whole registry (ignoring
        // --filter) so docs/scenarios.md is complete by construction.
        std::fputs(csense::bench::markdown_catalog().c_str(), stdout);
        return 0;
    }

    const auto selected = select(opts.filter);
    if (selected.empty()) {
        std::fprintf(stderr, "csense_bench: no scenario matches '%s'\n",
                     opts.filter.c_str());
        return 1;
    }

    if (opts.list) {
        for (const auto* s : selected) {
            std::printf("%-28s %s\n", s->name.c_str(),
                        s->description.c_str());
        }
        std::printf("(%zu scenarios)\n", selected.size());
        return 0;
    }

    using clock = std::chrono::steady_clock;
    namespace report = csense::report;

    report::json_value doc = report::json_value::object();
    doc["schema"] = "csense-bench/1";
    doc["seed"] = opts.seed;
    doc["fast_mode"] = csense::bench::fast_mode();
    doc["filter"] = std::string_view(opts.filter);
    doc["repeat"] = opts.repeat;
    report::json_value results = report::json_value::array();

    struct timing {
        const scenario* s;
        int status;
        double elapsed_ms;
    };
    std::vector<timing> timings;

    int failures = 0;
    const auto run_start = clock::now();
    for (std::size_t i = 0; i < selected.size(); ++i) {
        const scenario& s = *selected[i];
        // --repeat: every repetition runs the scenario in full with the
        // same seed, so metrics are identical and only wall time moves;
        // the last repetition's metrics and status are recorded, and the
        // per-scenario mean/min/max land next to them in the JSON.
        // Non-repeatable scenarios (perf_micro) are capped at one run.
        const int repeat = s.repeatable ? opts.repeat : 1;
        if (repeat < opts.repeat) {
            std::printf("\n(%s runs once: not repeatable in-process)\n",
                        s.name.c_str());
        }
        int status = 0;
        double elapsed_sum_ms = 0.0;
        double elapsed_min_ms = 0.0;
        double elapsed_max_ms = 0.0;
        double elapsed_last_ms = 0.0;
        csense::bench::scenario_context ctx;
        for (int rep = 0; rep < repeat; ++rep) {
            std::printf("\n### [%zu/%zu] %s", i + 1, selected.size(),
                        s.name.c_str());
            if (repeat > 1) {
                std::printf(" (repetition %d/%d)", rep + 1, repeat);
            }
            std::printf("\n");
            ctx = csense::bench::scenario_context{};
            ctx.seed = opts.seed;
            ctx.threads = opts.threads;
            const auto start = clock::now();
            const int rep_status = s.run(ctx);
            elapsed_last_ms =
                std::chrono::duration<double, std::milli>(clock::now() - start)
                    .count();
            if (rep_status != 0) status = rep_status;
            elapsed_sum_ms += elapsed_last_ms;
            elapsed_min_ms = (rep == 0) ? elapsed_last_ms
                                        : std::min(elapsed_min_ms,
                                                   elapsed_last_ms);
            elapsed_max_ms = std::max(elapsed_max_ms, elapsed_last_ms);
        }
        if (status != 0) ++failures;
        timings.push_back({&s, status, elapsed_sum_ms / repeat});

        report::json_value entry = report::json_value::object();
        entry["name"] = std::string_view(s.name);
        entry["description"] = std::string_view(s.description);
        entry["status"] = status;
        entry["metrics"] = std::move(ctx.metrics);
        if (opts.timings) {
            entry["elapsed_ms"] = elapsed_last_ms;
            if (repeat > 1) {
                entry["elapsed_ms_mean"] = elapsed_sum_ms / repeat;
                entry["elapsed_ms_min"] = elapsed_min_ms;
                entry["elapsed_ms_max"] = elapsed_max_ms;
            }
        }
        results.push_back(std::move(entry));
    }
    const double total_ms =
        std::chrono::duration<double, std::milli>(clock::now() - run_start)
            .count();

    doc["scenarios"] = std::move(results);
    if (opts.timings) doc["total_elapsed_ms"] = total_ms;

    std::printf("\n%-28s %8s %12s\n", "scenario", "status", "elapsed");
    for (const auto& t : timings) {
        std::printf("%-28s %8s %10.1f ms\n", t.s->name.c_str(),
                    t.status == 0 ? "ok" : "FAIL", t.elapsed_ms);
    }
    std::printf("%zu scenario(s), %d failure(s), %.1f ms total\n",
                timings.size(), failures, total_ms);

    if (!opts.json_path.empty()) {
        std::ofstream out(opts.json_path);
        if (!out) {
            std::fprintf(stderr, "csense_bench: cannot write '%s'\n",
                         opts.json_path.c_str());
            return 1;
        }
        out << doc.dump(2);
        std::printf("wrote %s\n", opts.json_path.c_str());
    }
    return failures == 0 ? 0 : 1;
}
