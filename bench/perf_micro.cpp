// Performance microbenchmarks (google-benchmark) for the numerical and
// simulation hot paths: point capacities, disc quadrature, the shadowed
// concurrency expectation, the U-statistic optimal-MAC estimator, the
// event queue, and a saturated DCF second.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/common.hpp"
#include "src/capacity/rate_table.hpp"
#include "src/core/expected.hpp"
#include "src/core/policies.hpp"
#include "src/mac/multi_pair.hpp"
#include "src/mac/network.hpp"
#include "src/sim/simulator.hpp"
#include "src/stats/quadrature.hpp"
#include "src/stats/rng.hpp"

namespace {

using namespace csense;

// In fast mode, shrink every benchmark's measuring time. Applied via the
// double-typed MinTime() API, which is stable across google-benchmark
// 1.7/1.8 (unlike the --benchmark_min_time flag, whose format changed).
void tune(benchmark::internal::Benchmark* b) {
    if (csense::bench::fast_mode()) b->MinTime(0.05);
}

void bm_capacity_concurrent_point(benchmark::State& state) {
    core::model_params params;
    params.sigma_db = 0.0;
    double r = 5.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::capacity_concurrent(params, r, 1.0, 55.0));
        r = (r < 100.0) ? r + 0.1 : 5.0;
    }
}
BENCHMARK(bm_capacity_concurrent_point)->Apply(tune);

void bm_disc_average(benchmark::State& state) {
    const auto n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(stats::disc_average(
            [](double r, double theta) { return r * std::cos(theta) + r; },
            55.0, n, n));
    }
}
BENCHMARK(bm_disc_average)->Arg(16)->Arg(32)->Arg(64)->Apply(tune);

// The engine memoizes <C_conc> by (rmax, d), so concurrency benchmarks
// move d every iteration to measure the integral, not the map lookup.
// Monotone (never cycling back to a seen value): the quadrature cost is
// independent of d, so the drift is free and the memo never hits.
double next_d(double d) { return d + 0.25; }

void bm_expected_concurrent_shadowed(benchmark::State& state) {
    core::model_params params;
    params.sigma_db = 8.0;
    core::quadrature_options quad;
    quad.radial_nodes = 24;
    quad.angular_nodes = 32;
    quad.shadow_nodes = static_cast<int>(state.range(0));
    // threads pinned to 1: this is a serial baseline comparable across
    // machines and against the pre-parallel perf trajectory.
    core::expectation_engine engine(params, quad, {1000, 1, 1});
    double d = 55.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.expected_concurrent(55.0, d));
        d = next_d(d);
    }
}
BENCHMARK(bm_expected_concurrent_shadowed)->Arg(8)->Arg(16)->Apply(tune);

void bm_expected_concurrent(benchmark::State& state) {
    // The serial reference point for the thread-scaling runs below:
    // default bench accuracy, one worker.
    core::model_params params;
    params.sigma_db = 8.0;
    core::quadrature_options quad;
    quad.radial_nodes = 40;
    quad.angular_nodes = 48;
    quad.shadow_nodes = 12;
    core::mc_options mc{1000, 1, 1};
    core::expectation_engine engine(params, quad, mc);
    double d = 55.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.expected_concurrent(55.0, d));
        d = next_d(d);
    }
}
BENCHMARK(bm_expected_concurrent)->Apply(tune);

void bm_expected_concurrent_threads(benchmark::State& state) {
    // Deterministic parallel scaling of the disc quadrature: identical
    // work at 1/2/4 workers (results are bit-identical; only the wall
    // clock moves, hence UseRealTime).
    core::model_params params;
    params.sigma_db = 8.0;
    core::quadrature_options quad;
    quad.radial_nodes = 40;
    quad.angular_nodes = 48;
    quad.shadow_nodes = 12;
    core::mc_options mc{1000, 1, static_cast<int>(state.range(0))};
    core::expectation_engine engine(params, quad, mc);
    double d = 55.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.expected_concurrent(55.0, d));
        d = next_d(d);
    }
}
BENCHMARK(bm_expected_concurrent_threads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Apply(tune);

void bm_expected_optimal(benchmark::State& state) {
    core::model_params params;
    params.sigma_db = 8.0;
    core::quadrature_options quad;
    quad.radial_nodes = 24;
    quad.angular_nodes = 32;
    quad.shadow_nodes = 8;
    core::mc_options mc;
    mc.samples = static_cast<std::size_t>(state.range(0));
    mc.threads = 1;  // serial baseline; scaling measured below
    core::expectation_engine engine(params, quad, mc);
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.expected_optimal(55.0, 55.0));
    }
}
BENCHMARK(bm_expected_optimal)->Arg(10000)->Arg(100000)->Apply(tune);

void bm_expected_optimal_threads(benchmark::State& state) {
    // Scaling of the Monte Carlo delta sampling behind <C_max>.
    core::model_params params;
    params.sigma_db = 8.0;
    core::quadrature_options quad;
    quad.radial_nodes = 24;
    quad.angular_nodes = 32;
    quad.shadow_nodes = 8;
    core::mc_options mc{100000, 1, static_cast<int>(state.range(0))};
    core::expectation_engine engine(params, quad, mc);
    double d = 55.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.expected_optimal(55.0, d));
        d = next_d(d);
    }
}
BENCHMARK(bm_expected_optimal_threads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Apply(tune);

void bm_rectified_pair_mean(benchmark::State& state) {
    stats::rng gen(7);
    std::vector<double> samples;
    for (std::int64_t i = 0; i < state.range(0); ++i) {
        samples.push_back(gen.normal());
    }
    for (auto _ : state) {
        auto copy = samples;
        benchmark::DoNotOptimize(core::rectified_pair_mean(std::move(copy)));
    }
}
BENCHMARK(bm_rectified_pair_mean)->Arg(10000)->Arg(100000)->Apply(tune);

void bm_event_queue(benchmark::State& state) {
    for (auto _ : state) {
        sim::simulator simulator;
        int counter = 0;
        for (int i = 0; i < 1000; ++i) {
            simulator.schedule_in(i * 3.0, [&counter] { ++counter; });
        }
        simulator.run_all();
        benchmark::DoNotOptimize(counter);
    }
}
BENCHMARK(bm_event_queue)->Apply(tune);

void bm_event_schedule_cancel(benchmark::State& state) {
    // The MAC's dominant scheduler pattern at dense-network scale: every
    // node keeps a backoff/DIFS timer armed, and a channel busy/idle
    // flip cancels and re-arms a whole cohort of them at once, so a
    // camp05/camp06-sized run holds thousands of pending timers while
    // near-term events churn. bm_event_queue only drains; this maintains
    // one outstanding timer per "node" (2000, the camp05 dense sweep's
    // top N), re-arms a cohort per simulated slot, and measures the
    // schedule -> cancel -> reschedule cycle against that standing
    // population. The timer closure carries the same 32-byte payload as
    // the DCF's timer dispatch (this + generation + member-function
    // handler), so the cost of type-erasing the callable is the cost the
    // MAC actually pays per arm.
    constexpr int kNodes = 2000;
    constexpr int kCohort = 40;
    constexpr int kRounds = 1000;
    std::vector<sim::event_id> timers(kNodes);
    for (auto _ : state) {
        sim::simulator simulator;
        std::uint64_t fired = 0;
        std::uint64_t generation = 0;
        const auto arm = [&](int n) {
            const double deadline = 500.0 + 9.0 * (n % 64);
            const auto node = static_cast<std::uint64_t>(n);
            return simulator.schedule_in(
                deadline, [&fired, generation, node, deadline] {
                    fired += generation + node + static_cast<std::uint64_t>(deadline);
                });
        };
        for (int n = 0; n < kNodes; ++n) timers[n] = arm(n);
        for (int i = 0; i < kRounds; ++i) {
            for (int j = 0; j < kCohort; ++j) {
                const int n = (i * kCohort + j) % kNodes;
                ++generation;
                simulator.cancel(timers[n]);
                timers[n] = arm(n);
            }
            simulator.schedule_in(9.0, [&fired] { ++fired; });
            simulator.run_until(simulator.now() + 9.0);
        }
        for (const auto id : timers) simulator.cancel(id);
        simulator.run_all();
        benchmark::DoNotOptimize(fired);
    }
}
BENCHMARK(bm_event_schedule_cancel)
    ->Unit(benchmark::kMillisecond)
    ->Apply(tune);

void bm_dcf_packet_path(benchmark::State& state) {
    // End-to-end per-packet cost of the DCF hot path with no contention:
    // arrival -> backoff timers -> preamble/energy updates -> tx end,
    // 100 ms of a saturated single pair. Isolates scheduler + node state
    // cost from medium fan-out (bm_medium_dense covers that axis).
    const auto& rate = capacity::rate_by_mbps(24.0);
    std::uint64_t seed = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mac::run_single_pair(
            mac::radio_config{}, -60.0, rate, 1e5, 1400, seed++));
    }
}
BENCHMARK(bm_dcf_packet_path)
    ->Unit(benchmark::kMillisecond)
    ->Apply(tune);

void bm_medium_dense(benchmark::State& state) {
    // Dense-network medium scaling: a 20 ms slice of a saturated
    // N-pair arena (fixed 600 m, alpha 4), network construction
    // included - the camp05 workload in miniature. culled = 1 runs the
    // neighbor-culled medium (audibility floor at noise - 20 dB,
    // O(neighbors) per event); culled = 0 the dense O(N) medium. The
    // per-N ratio is the headline: sub-quadratic growth for the culled
    // medium, and >= 5x over dense at N = 1000.
    const auto pairs = static_cast<int>(state.range(0));
    const bool culled = state.range(1) != 0;
    stats::rng gen(1234 + static_cast<std::uint64_t>(pairs));
    const auto topology =
        mac::sample_multi_pair_topology(pairs, 600.0, 10.0, gen);
    mac::multi_pair_config config;
    config.rate = &capacity::rate_by_mbps(6.0);
    config.alpha = 4.0;
    config.duration_us = 2e4;
    if (culled) {
        config.radio.audibility_floor_dbm =
            config.radio.noise_floor_dbm - 20.0;
    }
    std::uint64_t seed = 1;
    for (auto _ : state) {
        config.seed = seed++;
        const auto result = mac::run_multi_pair(topology, config);
        benchmark::DoNotOptimize(result.total_pps);
    }
}
void medium_dense_args(benchmark::internal::Benchmark* b) {
    b->ArgNames({"pairs", "culled"});
    b->Args({50, 0})->Args({50, 1});
    b->Args({200, 0})->Args({200, 1});
    // The dense N = 1000 reference costs ~2 min per iteration (that is
    // the point of the refactor: 112.8 s dense vs 0.19 s culled, ~600x).
    // Fast mode (the CI perf artifact) tracks the culled trajectory and
    // the N <= 200 dense references every push; the full-accuracy run
    // measures the headline ratio.
    if (!csense::bench::fast_mode()) b->Args({1000, 0});
    b->Args({1000, 1});
    b->Unit(benchmark::kMillisecond);
    tune(b);
}
BENCHMARK(bm_medium_dense)->Apply(medium_dense_args);

void bm_dcf_simulated_second(benchmark::State& state) {
    const auto& rate = capacity::rate_by_mbps(24.0);
    std::uint64_t seed = 1;
    for (auto _ : state) {
        mac::two_pair_gains gains;
        gains.s1_r1 = gains.s2_r2 = -60.0;
        gains.s1_s2 = gains.s1_r2 = gains.s2_r1 = gains.r1_r2 = -70.0;
        const auto result = mac::run_two_pair_competition(
            mac::radio_config{}, gains, rate, rate,
            mac::cs_mode::energy_and_preamble, 1e6, 1400, seed++);
        benchmark::DoNotOptimize(result.total_pps());
    }
}
BENCHMARK(bm_dcf_simulated_second)
    ->Unit(benchmark::kMillisecond)
    ->Apply(tune);

// Console reporter that also lands every benchmark's per-iteration
// real time in the scenario metrics, so the --json document (the
// BENCH_ci artifact and the committed BENCH_pr5.json baseline) carries
// the actual numbers, not just a benchmark count. Only fields stable
// across google-benchmark 1.6-1.8 are touched.
class recording_reporter final : public benchmark::ConsoleReporter {
public:
    explicit recording_reporter(csense::bench::scenario_context& ctx)
        : ctx_(&ctx) {}

    void ReportRuns(const std::vector<Run>& runs) override {
        for (const auto& run : runs) {
            if (run.iterations <= 0) continue;
            std::string name = run.benchmark_name();
            for (char& c : name) {
                if (c == '/' || c == ':') c = '_';
            }
            ctx_->metric(name + "_ms",
                         run.real_accumulated_time /
                             static_cast<double>(run.iterations) * 1e3);
        }
        ConsoleReporter::ReportRuns(runs);
    }

private:
    csense::bench::scenario_context* ctx_;
};

}  // namespace

CSENSE_SCENARIO_EX_ONCE(perf_micro,
                "Microbenchmarks for the numerical and simulation hot paths "
                "(google-benchmark)",
                   bench::runtime_tier::slow,
                   "drives google-benchmark in-process; JSON doubles as the CI "
                   "perf artifact (BENCH_ci); runs once regardless of "
                   "--repeat (google-benchmark is single-shot per process)") {
    csense::bench::print_header(
        "perf_micro - hot path microbenchmarks",
        "point capacities, disc quadrature, shadowed expectations, the "
        "U-statistic estimator, the event queue, a saturated DCF second");
    std::string program = "csense_bench";
    std::vector<char*> argv = {program.data()};
    int argc = static_cast<int>(argv.size());
    benchmark::Initialize(&argc, argv.data());
    recording_reporter reporter(ctx);
    const std::size_t run = benchmark::RunSpecifiedBenchmarks(&reporter);
    ctx.metric("benchmarks_run", static_cast<std::int64_t>(run));
    return run > 0 ? 0 : 1;
}
