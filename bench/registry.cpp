#include "bench/registry.hpp"

#include <algorithm>

namespace csense::bench {
namespace {

std::vector<scenario>& mutable_registry() {
    static std::vector<scenario> registry;
    return registry;
}

bool sorted = false;

}  // namespace

bool register_scenario(std::string_view name, std::string_view description,
                       scenario_fn fn) {
    mutable_registry().push_back(
        {std::string(name), std::string(description), fn});
    sorted = false;
    return true;
}

const std::vector<scenario>& scenarios() {
    auto& registry = mutable_registry();
    if (!sorted) {
        // Registration order depends on link order; sort so --list and
        // the JSON document are stable.
        std::sort(registry.begin(), registry.end(),
                  [](const scenario& a, const scenario& b) {
                      return a.name < b.name;
                  });
        sorted = true;
    }
    return registry;
}

bool glob_match(std::string_view pattern, std::string_view text) {
    // Iterative glob with '*' backtracking.
    std::size_t p = 0, t = 0;
    std::size_t star = std::string_view::npos, star_t = 0;
    while (t < text.size()) {
        // '*' must be checked before the literal branch, or a literal '*'
        // in the text would consume the wildcard as a one-character match.
        if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            star_t = t;
        } else if (p < pattern.size() &&
                   (pattern[p] == '?' || pattern[p] == text[t])) {
            ++p;
            ++t;
        } else if (star != std::string_view::npos) {
            p = star + 1;
            t = ++star_t;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*') ++p;
    return p == pattern.size();
}

}  // namespace csense::bench
