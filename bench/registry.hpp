// The bench scenario registry. Every reproduction artifact (figure,
// table, ablation, campaign, microbenchmark) is one scenario: a named
// function that prints its human-readable output and records headline
// numbers into the run's JSON document. Scenarios self-register at
// static-initialisation time via CSENSE_SCENARIO / CSENSE_SCENARIO_EX,
// and the csense_bench driver selects them with --list / --filter.
// --list-markdown renders the whole registry as the docs/scenarios.md
// catalog (name, description, runtime tier, scenario-specific knobs).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/report/json.hpp"

namespace csense::store {
class result_store;
}  // namespace csense::store

namespace csense::sim {
struct campaign_unit;
}  // namespace csense::sim

namespace csense::bench {

/// Coarse full-accuracy (no CSENSE_FAST) single-thread runtime class,
/// for the scenario catalog. Boundaries: fast < 1 s, medium 1-30 s,
/// slow > 30 s. `heavy` marks production-scale packet campaigns
/// (thousand-node topologies on the neighbor-culled medium): their
/// runtime is set by the sweep budget, and they expose a capping knob
/// (e.g. CSENSE_CAMP05_NMAX) so CI can smoke them at reduced scale.
enum class runtime_tier {
    fast,
    medium,
    slow,
    heavy,
};

/// Stable lower-case name ("fast" / "medium" / "slow" / "heavy").
std::string_view tier_name(runtime_tier tier);

/// Default per-scenario watchdog wall-clock budget for a tier, in
/// milliseconds. Budgets are deliberately generous multiples of the
/// tier's documented single-thread runtime (a loaded CI runner must
/// never trip them on a healthy scenario); `fast_mode` (CSENSE_FAST=1)
/// shrinks them alongside the simulation budgets. The csense_bench
/// driver arms a watchdog with this budget per scenario and overrides
/// it with --watchdog-ms.
std::uint64_t tier_budget_ms(runtime_tier tier, bool fast_mode);

/// Per-run state handed to each scenario.
struct scenario_context {
    /// Base RNG seed (--seed). Scenarios must derive every stochastic
    /// component from this so a run is reproducible byte-for-byte.
    std::uint64_t seed = 7;

    /// Worker threads for the expectation engines (--threads). 0 = auto
    /// (CSENSE_THREADS env, else hardware concurrency). Never emitted
    /// into metrics: output is bit-identical across thread counts.
    int threads = 0;

    /// Headline numbers recorded by the scenario; emitted under
    /// "metrics" in the --json document, in insertion order.
    report::json_value metrics = report::json_value::object();

    /// Cooperative cancellation token armed by the driver's scenario
    /// watchdog; null when no watchdog runs. The same token is installed
    /// process-wide via core::set_cancellation_token, so campaign shards
    /// and expectation-engine chunks already observe it; scenarios with
    /// long hand-rolled loops should call core::throw_if_cancelled()
    /// periodically.
    const std::atomic<bool>* cancel = nullptr;

    /// Checkpoint store (--checkpoint <dir>); null when checkpointing is
    /// off. Scenarios with expensive deterministic sub-units (campaign
    /// replications) may persist them under keys prefixed with
    /// `checkpoint_prefix` — see sim::run_replications_checkpointed.
    store::result_store* checkpoint = nullptr;

    /// Run-config fingerprint ("<scenario>?seed=..&env=..") that keys
    /// this scenario's checkpoint records; sub-unit keys must extend it.
    std::string checkpoint_prefix;

    /// Multi-process partition (--shard i/k): campaign-backed scenarios
    /// must copy these into campaign_options::process_shard(s) so each
    /// of k processes computes only its own slice of every campaign.
    /// 1/0 = unsharded. Scenario-level metrics and gates computed from
    /// a partial replication vector are meaningless under a partition;
    /// the driver discards them in shard mode.
    int shard_count = 1;
    int shard_index = 0;

    /// When non-null (shard mode), campaign-backed scenarios must also
    /// route campaign_options::unit_sink here so the driver can record
    /// every campaign's coverage promise in the shard manifest.
    std::vector<sim::campaign_unit>* campaign_units = nullptr;

    /// Records one named metric (number, string or bool).
    void metric(std::string_view name, report::json_value value) {
        metrics[name] = std::move(value);
    }
};

using scenario_fn = int (*)(scenario_context&);

struct scenario {
    std::string name;         ///< e.g. "fig05_cs_piecewise"
    std::string description;  ///< one line for --list
    std::string knobs;        ///< scenario-specific knobs beyond the
                              ///< global --seed/--threads/CSENSE_FAST;
                              ///< empty = none
    runtime_tier tier = runtime_tier::medium;
    /// False for scenarios that may only run once per process (e.g.
    /// perf_micro: google-benchmark's globals cannot survive a second
    /// RunSpecifiedBenchmarks). The driver caps --repeat at 1 for them.
    bool repeatable = true;
    scenario_fn run = nullptr;
};

/// Registers a scenario; called by the CSENSE_SCENARIO macros.
bool register_scenario(std::string_view name, std::string_view description,
                       scenario_fn fn);
bool register_scenario(std::string_view name, std::string_view description,
                       std::string_view knobs, runtime_tier tier,
                       scenario_fn fn);
bool register_scenario(std::string_view name, std::string_view description,
                       std::string_view knobs, runtime_tier tier,
                       bool repeatable, scenario_fn fn);

/// All registered scenarios, sorted by name (stable across link order).
const std::vector<scenario>& scenarios();

/// Case-sensitive glob match supporting '*' and '?'.
bool glob_match(std::string_view pattern, std::string_view text);

/// Renders the registry as the docs/scenarios.md catalog: a generated
/// preamble, the global-knob table, and one row per scenario with its
/// runtime tier and scenario-specific knobs. Deterministic byte-for-byte
/// for a fixed registry (`cmake --build build --target docs_scenarios`
/// regenerates the checked-in file; CI diffs it).
std::string markdown_catalog();

/// Renders the registry as a machine-readable catalog: a
/// `csense-bench-catalog/1` JSON document with one record per scenario
/// (name, runtime tier, description, knobs, repeatable). Like the
/// markdown catalog it always covers the whole registry and is
/// deterministic byte-for-byte for a fixed registry; `csense_bench
/// --list-json` prints it for tooling that scripts over scenarios.
std::string json_catalog();

/// Defines and registers a scenario with catalog metadata. The tier is
/// a normal expression (qualify it as visibility requires). Usage:
///   CSENSE_SCENARIO_EX(fig05_cs_piecewise, "Figure 5 - ...",
///                      bench::runtime_tier::medium,
///                      "knob notes or \"\"") {
///       ...use ctx...
///       return 0;
///   }
#define CSENSE_SCENARIO_EX(ident, desc, tier, knobs)                        \
    static int csense_scenario_##ident(                                     \
        [[maybe_unused]] ::csense::bench::scenario_context& ctx);           \
    [[maybe_unused]] static const bool csense_scenario_reg_##ident =        \
        ::csense::bench::register_scenario(#ident, desc, knobs, tier,       \
                                           &csense_scenario_##ident);       \
    static int csense_scenario_##ident(                                     \
        [[maybe_unused]] ::csense::bench::scenario_context& ctx)

/// CSENSE_SCENARIO_EX for a scenario that may only run once per process
/// (the driver caps --repeat at 1; see scenario::repeatable).
#define CSENSE_SCENARIO_EX_ONCE(ident, desc, tier, knobs)                    \
    static int csense_scenario_##ident(                                     \
        [[maybe_unused]] ::csense::bench::scenario_context& ctx);           \
    [[maybe_unused]] static const bool csense_scenario_reg_##ident =        \
        ::csense::bench::register_scenario(#ident, desc, knobs, tier,       \
                                           /*repeatable=*/false,            \
                                           &csense_scenario_##ident);       \
    static int csense_scenario_##ident(                                     \
        [[maybe_unused]] ::csense::bench::scenario_context& ctx)

/// Defines and registers a scenario with default metadata (medium tier,
/// no scenario-specific knobs). Prefer CSENSE_SCENARIO_EX for anything
/// that should document itself in the catalog.
#define CSENSE_SCENARIO(ident, desc)                                        \
    static int csense_scenario_##ident(                                     \
        [[maybe_unused]] ::csense::bench::scenario_context& ctx);           \
    [[maybe_unused]] static const bool csense_scenario_reg_##ident =        \
        ::csense::bench::register_scenario(#ident, desc,                    \
                                           &csense_scenario_##ident);       \
    static int csense_scenario_##ident(                                     \
        [[maybe_unused]] ::csense::bench::scenario_context& ctx)

}  // namespace csense::bench
