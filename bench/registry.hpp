// The bench scenario registry. Every reproduction artifact (figure,
// table, ablation, microbenchmark) is one scenario: a named function that
// prints its human-readable output and records headline numbers into the
// run's JSON document. Scenarios self-register at static-initialisation
// time via CSENSE_SCENARIO, and the csense_bench driver selects them with
// --list / --filter.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/report/json.hpp"

namespace csense::bench {

/// Per-run state handed to each scenario.
struct scenario_context {
    /// Base RNG seed (--seed). Scenarios must derive every stochastic
    /// component from this so a run is reproducible byte-for-byte.
    std::uint64_t seed = 7;

    /// Worker threads for the expectation engines (--threads). 0 = auto
    /// (CSENSE_THREADS env, else hardware concurrency). Never emitted
    /// into metrics: output is bit-identical across thread counts.
    int threads = 0;

    /// Headline numbers recorded by the scenario; emitted under
    /// "metrics" in the --json document, in insertion order.
    report::json_value metrics = report::json_value::object();

    /// Records one named metric (number, string or bool).
    void metric(std::string_view name, report::json_value value) {
        metrics[name] = std::move(value);
    }
};

using scenario_fn = int (*)(scenario_context&);

struct scenario {
    std::string name;         ///< e.g. "fig05_cs_piecewise"
    std::string description;  ///< one line for --list
    scenario_fn run = nullptr;
};

/// Registers a scenario; called by the CSENSE_SCENARIO macro.
bool register_scenario(std::string_view name, std::string_view description,
                       scenario_fn fn);

/// All registered scenarios, sorted by name (stable across link order).
const std::vector<scenario>& scenarios();

/// Case-sensitive glob match supporting '*' and '?'.
bool glob_match(std::string_view pattern, std::string_view text);

/// Defines and registers a scenario. Usage:
///   CSENSE_SCENARIO(fig05_cs_piecewise, "Figure 5 - ...") {
///       ...use ctx...
///       return 0;
///   }
#define CSENSE_SCENARIO(ident, desc)                                       \
    static int csense_scenario_##ident(                                    \
        [[maybe_unused]] ::csense::bench::scenario_context& ctx);          \
    [[maybe_unused]] static const bool csense_scenario_reg_##ident =       \
        ::csense::bench::register_scenario(#ident, desc,                   \
                                           &csense_scenario_##ident);      \
    static int csense_scenario_##ident(                                    \
        [[maybe_unused]] ::csense::bench::scenario_context& ctx)

}  // namespace csense::bench
