// csense_sweep_serve: the long-running sweep server (see
// src/serve/sweep_server.hpp for the protocol).
//
//   csense_sweep_serve --store <dir> --socket <path>
//       [--bench <path>] [--shards <k>] [--threads <n>]
//
// Queries hit the checkpoint store at --store; a missing cell is
// computed by scheduling csense_bench subprocess jobs against the same
// store and then served like any other hit. With --shards k > 1 each
// job fans out into k `csense_bench --shard i/k` processes over
// per-job shard stores under <store>/jobs/, merges them back into the
// main store (src/store/shard_merge.*), and replays once to produce
// the scenario record.
//
// Each job runs under a *scrubbed* environment: every inherited
// CSENSE_* variable is dropped and exactly the query's env pairs are
// installed, so the record the job writes is keyed by the same
// fingerprint the query asked for — never by whatever knobs the server
// process happened to inherit.
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/registry.hpp"
#include "src/serve/sweep_server.hpp"
#include "src/store/result_store.hpp"
#include "src/store/run_keys.hpp"
#include "src/store/shard_merge.hpp"

extern char** environ;

namespace {

using namespace csense;

struct options {
    std::string store_dir;
    std::string socket_path;
    std::string bench_path;
    int shards = 1;
    int threads = 0;
};

void print_usage(std::FILE* out) {
    std::fprintf(out,
                 "usage: csense_sweep_serve --store <dir> --socket <path> "
                 "[--bench <path>] [--shards <k>] [--threads <n>]\n");
}

bool parse_args(int argc, char** argv, options& opts) {
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        auto value = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "csense_sweep_serve: %s needs a "
                                     "value\n", flag);
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--store") {
            const char* v = value("--store");
            if (v == nullptr) return false;
            opts.store_dir = v;
        } else if (arg == "--socket") {
            const char* v = value("--socket");
            if (v == nullptr) return false;
            opts.socket_path = v;
        } else if (arg == "--bench") {
            const char* v = value("--bench");
            if (v == nullptr) return false;
            opts.bench_path = v;
        } else if (arg == "--shards") {
            const char* v = value("--shards");
            if (v == nullptr) return false;
            opts.shards = std::atoi(v);
            if (opts.shards < 1 || opts.shards > 1024) {
                std::fprintf(stderr,
                             "csense_sweep_serve: bad --shards '%s' (need "
                             "an integer in [1, 1024])\n", v);
                return false;
            }
        } else if (arg == "--threads") {
            const char* v = value("--threads");
            if (v == nullptr) return false;
            opts.threads = std::atoi(v);
            if (opts.threads < 0) {
                std::fprintf(stderr,
                             "csense_sweep_serve: bad --threads '%s'\n", v);
                return false;
            }
        } else if (arg == "--help" || arg == "-h") {
            print_usage(stdout);
            std::exit(0);
        } else {
            std::fprintf(stderr, "csense_sweep_serve: unknown argument "
                                 "'%s'\n", argv[i]);
            print_usage(stderr);
            return false;
        }
    }
    if (opts.store_dir.empty() || opts.socket_path.empty()) {
        std::fprintf(stderr,
                     "csense_sweep_serve: --store and --socket are "
                     "required\n");
        print_usage(stderr);
        return false;
    }
    return true;
}

/// The job environment: the server's own environment minus every
/// CSENSE_* variable, plus exactly the query's env pairs. Jobs must be
/// keyed by the query, not by inherited knobs.
std::vector<std::string> job_environment(const serve::sweep_request& req) {
    std::vector<std::string> env;
    for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
        if (std::string_view(*e).rfind("CSENSE_", 0) == 0) continue;
        env.emplace_back(*e);
    }
    for (const auto& [name, value] : req.env) {
        env.push_back(name + "=" + value);
    }
    return env;
}

/// Runs one csense_bench child to completion under `env_strings`.
/// Returns the exit code, or -1 on fork/exec/abnormal-exit failure.
int run_bench_child(const std::string& bench,
                    const std::vector<std::string>& args,
                    const std::vector<std::string>& env_strings) {
    std::vector<std::string> argv_store;
    argv_store.reserve(args.size() + 1);
    argv_store.push_back(bench);
    for (const auto& a : args) argv_store.push_back(a);
    std::vector<char*> argv;
    for (auto& a : argv_store) argv.push_back(a.data());
    argv.push_back(nullptr);
    std::vector<char*> envp;
    std::vector<std::string> env_copy = env_strings;
    for (auto& e : env_copy) envp.push_back(e.data());
    envp.push_back(nullptr);

    const pid_t pid = fork();
    if (pid < 0) return -1;
    if (pid == 0) {
        // Job output would interleave with the server's protocol log.
        if (std::freopen("/dev/null", "w", stdout) == nullptr) _exit(127);
        execve(bench.c_str(), argv.data(), envp.data());
        _exit(127);
    }
    int wstatus = 0;
    if (waitpid(pid, &wstatus, 0) < 0) return -1;
    if (!WIFEXITED(wstatus)) return -1;
    return WEXITSTATUS(wstatus);
}

/// A bench exit is acceptable for a job when the run completed: 0 (all
/// gates passed) or 3 (completed with gate failures — still a
/// complete, deterministic record).
bool bench_completed(int code) { return code == 0 || code == 3; }

}  // namespace

int main(int argc, char** argv) {
    options opts;
    if (!parse_args(argc, argv, opts)) return 2;

    std::string bench = opts.bench_path;
    if (bench.empty()) {
        std::error_code ec;
        const auto self = std::filesystem::read_symlink("/proc/self/exe", ec);
        bench = ec ? "csense_bench"
                   : (self.parent_path() / "csense_bench").string();
    }

    serve::sweep_server::config config;
    config.store_root = opts.store_dir;
    config.scenario_known = [](const std::string& name) {
        for (const auto& s : bench::scenarios()) {
            if (s.name == name) return true;
        }
        return false;
    };
    config.runner = [&opts, bench](const serve::sweep_request& request,
                                   const std::string& key) {
        const std::vector<std::string> env = job_environment(request);
        std::vector<std::string> common = {
            "--filter", request.scenario,
            "--seed",   std::to_string(request.seed),
            "--no-timings"};
        if (opts.threads > 0) {
            common.push_back("--threads");
            common.push_back(std::to_string(opts.threads));
        }
        if (opts.shards <= 1) {
            std::vector<std::string> args = common;
            args.push_back("--checkpoint");
            args.push_back(opts.store_dir);
            return bench_completed(run_bench_child(bench, args, env));
        }
        // Sharded job: k shard children into per-job stores, merged
        // back into the main store, then one replay to produce the
        // scenario record from the merged replications.
        const std::filesystem::path job_dir =
            std::filesystem::path(opts.store_dir) / "jobs" /
            ("job-" + std::to_string(store::fnv1a64(key)));
        std::vector<std::filesystem::path> shard_dirs;
        for (int i = 0; i < opts.shards; ++i) {
            shard_dirs.push_back(job_dir / ("s" + std::to_string(i)));
        }
        for (int i = 0; i < opts.shards; ++i) {
            std::vector<std::string> args = common;
            args.push_back("--shard");
            args.push_back(std::to_string(i) + "/" +
                           std::to_string(opts.shards));
            args.push_back("--checkpoint");
            args.push_back(shard_dirs[static_cast<std::size_t>(i)].string());
            if (!bench_completed(run_bench_child(bench, args, env))) {
                return false;
            }
        }
        std::vector<std::string> entries;
        for (const auto& [name, value] : request.env) {
            entries.push_back(name + "=" + value);
        }
        const auto result = store::merge_shard_stores(
            shard_dirs, opts.store_dir,
            store::env_fingerprint_from_entries(std::move(entries)));
        for (const auto& issue : result.issues) {
            std::fprintf(stderr, "csense_sweep_serve: job merge [%s] %s: "
                                 "%s\n",
                         store::merge_issue_kind_name(issue.kind),
                         issue.key.c_str(), issue.detail.c_str());
        }
        if (!result.issues.empty()) return false;
        std::error_code ec;
        std::filesystem::remove_all(job_dir, ec);
        std::vector<std::string> args = common;
        args.push_back("--checkpoint");
        args.push_back(opts.store_dir);
        return bench_completed(run_bench_child(bench, args, env));
    };

    try {
        serve::sweep_server server(std::move(config));
        return serve::serve_unix_socket(server, opts.socket_path);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "csense_sweep_serve: %s\n", e.what());
        return 1;
    }
}
