// §3.2.5 Table 1: carrier-sense throughput as a percentage of optimal,
// fixed D_thresh = 55, alpha = 3, sigma = 8 dB, over
// Rmax x D in {20, 40, 120} x {20, 55, 120}.
//
// Paper values:            D=20   D=55   D=120
//   Rmax = 20               96%    88%    96%
//   Rmax = 40               96%    87%    96%
//   Rmax = 120              89%    83%    92%
#include <cstdio>

#include "bench/common.hpp"
#include "src/core/efficiency.hpp"
#include "src/report/table.hpp"

using namespace csense;

CSENSE_SCENARIO_EX(tab01_fixed_threshold,
                "Table 1: carrier-sense efficiency with the fixed factory "
                "threshold 55",
                   bench::runtime_tier::medium, "") {
    bench::print_header("Table 1 (S3.2.5) - CS efficiency, fixed threshold 55",
                        "alpha = 3, sigma = 8 dB; entries are "
                        "<C_cs>/<C_max>; paper values in parentheses");
    const auto engine = bench::make_engine(ctx, 8.0, /*high_accuracy=*/true);
    const double paper[3][3] = {{96, 88, 96}, {96, 87, 96}, {89, 83, 92}};
    const double rmax_values[3] = {20.0, 40.0, 120.0};
    const double d_values[3] = {20.0, 55.0, 120.0};

    report::text_table table({"Rmax \\ D", "20", "55", "120"});
    for (int i = 0; i < 3; ++i) {
        std::vector<std::string> row{report::fmt(rmax_values[i], 0)};
        for (int j = 0; j < 3; ++j) {
            const auto point = core::evaluate_policies(engine, rmax_values[i],
                                                       d_values[j], 55.0);
            row.push_back(report::fmt_percent(point.efficiency()) + " (" +
                          report::fmt(paper[i][j], 0) + "%)");
            ctx.metric("eff_rmax" + report::fmt(rmax_values[i], 0) + "_d" +
                           report::fmt(d_values[j], 0),
                       point.efficiency());
        }
        table.add_row(std::move(row));
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nPaper: 'Carrier sense performance is extremely good "
                "overall, drooping slightly in the transition region and at "
                "long range.'\n");
    return 0;
}
