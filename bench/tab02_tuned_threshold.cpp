// §3.2.5 Table 2: the same grid with thresholds optimized per scenario by
// the §3.3.3 criterion (the concurrency/multiplexing crossing).
//
// Paper: Rmax 20 -> Dthresh 40, Rmax 40 -> 55, Rmax 120 -> 60, and the
// efficiencies barely move: "carrier sense ... is quite robust to small
// variation in threshold (or environment)."
#include <cstdio>

#include "bench/common.hpp"
#include "src/core/efficiency.hpp"
#include "src/core/threshold.hpp"
#include "src/report/table.hpp"

using namespace csense;

CSENSE_SCENARIO_EX(tab02_tuned_threshold,
                "Table 2: carrier-sense efficiency with per-scenario tuned "
                "thresholds",
                   bench::runtime_tier::medium,
                   "per-row thresholds solved by the S3.3.3 crossing criterion "
                   "at high accuracy") {
    bench::print_header("Table 2 (S3.2.5) - CS efficiency, tuned thresholds",
                        "alpha = 3, sigma = 8 dB; per-row optimal threshold; "
                        "paper values in parentheses");
    const auto engine = bench::make_engine(ctx, 8.0, /*high_accuracy=*/true);
    const double paper[3][3] = {{93, 91, 99}, {96, 87, 96}, {89, 83, 92}};
    const double paper_thresh[3] = {40.0, 55.0, 60.0};
    const double rmax_values[3] = {20.0, 40.0, 120.0};
    const double d_values[3] = {20.0, 55.0, 120.0};

    report::text_table table(
        {"Rmax (Dthresh, paper)", "D=20", "D=55", "D=120"});
    for (int i = 0; i < 3; ++i) {
        const auto tuned = core::optimal_threshold(engine, rmax_values[i]);
        ctx.metric("tuned_thresh_rmax" + report::fmt(rmax_values[i], 0),
                   tuned.d_thresh);
        std::vector<std::string> row{
            report::fmt(rmax_values[i], 0) + " (" +
            report::fmt(tuned.d_thresh, 1) + ", " +
            report::fmt(paper_thresh[i], 0) + ")"};
        for (int j = 0; j < 3; ++j) {
            const auto point = core::evaluate_policies(
                engine, rmax_values[i], d_values[j], tuned.d_thresh);
            row.push_back(report::fmt_percent(point.efficiency()) + " (" +
                          report::fmt(paper[i][j], 0) + "%)");
            ctx.metric("eff_rmax" + report::fmt(rmax_values[i], 0) + "_d" +
                           report::fmt(d_values[j], 0),
                       point.efficiency());
        }
        table.add_row(std::move(row));
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nPaper: 'Very little change is observed' versus the fixed "
                "factory threshold of Table 1.\n");
    return 0;
}
