// §4.1 summary table (short range):
//   Optimal (max over strategies): 1753 pkt/s
//   Carrier Sense: 1703 pkt/s (97% opt)
//   Multiplexing:  1013 pkt/s (58% opt)
//   Concurrency:   1563 pkt/s (89% opt)
#include "bench/testbed_common.hpp"

using namespace csense;

CSENSE_SCENARIO_EX(tab03_short_summary,
                "Table 3: short-range ensemble averages per strategy",
                   bench::runtime_tier::slow,
                   "reuses the short-range ensemble cache; fast when warm") {
    bench::print_header("Table 3 (S4.1) - short range ensemble averages",
                        "average throughput over all runs; paper's absolute "
                        "pkt/s depend on their hardware, the ratios are the "
                        "reproduction target");
    const auto data = bench::dataset(ctx, /*short_range=*/true);
    bench::print_summary(data, "short range", 1753, 97, 58, 89);
    bench::record_summary(ctx, data);
    std::printf("\nPaper: 'Carrier sense approaches the optimal strategy "
                "quite closely, consistent with theoretical predictions for "
                "very good behavior in the short-range case.'\n");
    return 0;
}
