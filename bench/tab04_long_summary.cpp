// §4.2 summary table (long range):
//   Optimal (max over strategies): 1029 pkt/s
//   Carrier Sense: 923 pkt/s (90% opt)
//   Multiplexing:  753 pkt/s (73% opt)
//   Concurrency:   709 pkt/s (69% opt)
#include "bench/testbed_common.hpp"

using namespace csense;

CSENSE_SCENARIO_EX(tab04_long_summary,
                "Table 4: long-range ensemble averages per strategy",
                   bench::runtime_tier::slow,
                   "reuses the long-range ensemble cache; fast when warm") {
    bench::print_header("Table 4 (S4.2) - long range ensemble averages",
                        "average throughput over all runs; ratios are the "
                        "reproduction target");
    const auto data = bench::dataset(ctx, /*short_range=*/false);
    bench::print_summary(data, "long range", 1029, 90, 73, 69);
    bench::record_summary(ctx, data);
    std::printf("\nPaper: 'Although carrier sense in the long-range here is "
                "not quite as close to optimal as it was in the short-range "
                "..., it is still quite good overall and significantly "
                "better than either pure multiplexing or pure concurrency.'\n");
    return 0;
}
