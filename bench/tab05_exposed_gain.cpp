// §5's informal experiment on the short-range test set:
//  - bitrate adaptation over {6..24} "more than doubles average
//    throughput compared to the base rate";
//  - "perfectly exploiting the exposed terminals provides just shy of 10%
//    increased throughput";
//  - combining both "yields only about 3% more than bitrate adaptation
//    alone".
#include <cstdio>

#include "bench/testbed_common.hpp"
#include "src/testbed/exposed.hpp"

using namespace csense;

CSENSE_SCENARIO_EX(tab05_exposed_gain,
                "Table 5: exposed-terminal exploitation vs bitrate "
                "adaptation",
                   bench::runtime_tier::slow,
                   "runs the exposed-terminal testbed ensemble; cached like "
                   "the other testbed scenarios") {
    bench::print_header("Table 5 (S5) - exposed terminals vs bitrate adaptation",
                        "short-range ensemble; 'exposed exploitation' = best "
                        "of CS / pure concurrency per run");
    const auto bed = testbed::make_default_testbed();
    auto cfg = bench::bench_config(ctx, /*short_range=*/true);
    const auto result = testbed::run_exposed_gain_experiment(bed, cfg);

    std::printf("\n%-44s %10s\n", "strategy", "pkt/s");
    std::printf("%-44s %10.0f\n", "6 Mb/s base rate + carrier sense",
                result.base_cs);
    std::printf("%-44s %10.0f\n", "6 Mb/s + perfect exposed exploitation",
                result.base_exposed);
    std::printf("%-44s %10.0f\n", "bitrate adaptation + carrier sense",
                result.adapted_cs);
    std::printf("%-44s %10.0f\n", "adaptation + perfect exposed exploitation",
                result.adapted_exposed);

    std::printf("\n%-44s measured   paper\n", "gain");
    std::printf("%-44s %6.2fx    >2x\n", "bitrate adaptation over base rate",
                result.adaptation_gain());
    std::printf("%-44s %+6.1f%%   ~+10%%\n",
                "exposed exploitation at base rate",
                100.0 * (result.exposed_gain_base() - 1.0));
    std::printf("%-44s %+6.1f%%   ~+3%%\n",
                "exposed exploitation on top of adaptation",
                100.0 * (result.exposed_gain_adapted() - 1.0));
    std::printf("\nPaper: 'unless nodes are widely separated or SNRs are "
                "extremely low, adaptive bitrate is strictly more efficient' "
                "than exploiting exposed terminals.\n");
    ctx.metric("base_cs_pps", result.base_cs);
    ctx.metric("adapted_cs_pps", result.adapted_cs);
    ctx.metric("adaptation_gain", result.adaptation_gain());
    ctx.metric("exposed_gain_base", result.exposed_gain_base());
    ctx.metric("exposed_gain_adapted", result.exposed_gain_adapted());
    return 0;
}
