// Shared testbed-experiment driver for the §4 benches (Figures 10-13,
// Tables 3-4). The short- and long-range datasets are expensive, and
// several binaries view the same dataset; results are cached in a
// checksummed result store under ./csense_bench_cache/ (keyed by
// configuration) so e.g. fig10, fig11 and tab03 compute the ensemble
// once. A corrupt cache record is quarantined and recomputed, never
// trusted (src/store/result_store.hpp).
#pragma once

#include <cstdio>
#include <iomanip>
#include <sstream>
#include <string>

#include "bench/common.hpp"
#include "src/store/result_store.hpp"
#include "src/testbed/experiment.hpp"

namespace csense::bench {

inline testbed::experiment_config bench_config(const scenario_context& ctx,
                                               bool short_range) {
    auto cfg = short_range ? testbed::short_range_config()
                           : testbed::long_range_config();
    cfg.seed = ctx.seed;
    cfg.threads = ctx.threads;  // wall-clock only; results are invariant
    if (fast_mode()) {
        cfg.runs = 6;
        cfg.duration_s = 1.0;
    } else {
        cfg.runs = 40;
        cfg.duration_s = 15.0;  // the thesis' run length
    }
    return cfg;
}

inline std::string cache_key(const testbed::experiment_config& cfg) {
    std::ostringstream key;
    // v5: runs shard over the campaign layer with per-run split RNG
    // streams, which changes the sampled pair-of-pairs; the bump keeps
    // pre-campaign ensembles from being loaded. (threads is deliberately
    // NOT part of the key: results are thread-count invariant.)
    key << "v5_" << cfg.runs << "_" << cfg.duration_s << "_" << cfg.category_lo
        << "_" << cfg.category_hi << "_" << cfg.seed << "_"
        << cfg.rssi_strata_lo_db << "_" << cfg.rssi_strata_hi_db;
    return key.str();
}

/// Serialises an ensemble: one line with the category mean SNR, then one
/// line of 14 space-separated fields per run, at full round-trip
/// precision — a cached ensemble must reload to the exact doubles that
/// were computed, or reruns would not be byte-identical (the bench
/// determinism guarantee).
inline std::string encode_ensemble(const testbed::experiment_result& result) {
    std::ostringstream out;
    out << std::setprecision(17);
    out << result.category_snr_db << '\n';
    for (const auto& r : result.runs) {
        out << r.pair1.sender << ' ' << r.pair1.receiver << ' '
            << r.pair2.sender << ' ' << r.pair2.receiver << ' ' << r.mux_pps
            << ' ' << r.conc_pps << ' ' << r.cs_pps << ' ' << r.conc_pair1
            << ' ' << r.conc_pair2 << ' ' << r.cs_pair1 << ' ' << r.cs_pair2
            << ' ' << r.sender_rssi_db << ' ' << r.snr1_db << ' ' << r.snr2_db
            << '\n';
    }
    return out.str();
}

/// Inverse of encode_ensemble; false when the payload does not hold
/// exactly `expected_runs` well-formed rows (a stale or foreign record:
/// the caller recomputes).
inline bool decode_ensemble(const std::string& payload, int expected_runs,
                            testbed::experiment_result& result) {
    std::istringstream in(payload);
    if (!(in >> result.category_snr_db)) return false;
    testbed::run_result r;
    while (in >> r.pair1.sender >> r.pair1.receiver >> r.pair2.sender >>
           r.pair2.receiver >> r.mux_pps >> r.conc_pps >> r.cs_pps >>
           r.conc_pair1 >> r.conc_pair2 >> r.cs_pair1 >> r.cs_pair2 >>
           r.sender_rssi_db >> r.snr1_db >> r.snr2_db) {
        result.runs.push_back(r);
    }
    if (result.runs.size() != static_cast<std::size_t>(expected_runs)) {
        result = {};
        return false;
    }
    for (const auto& run : result.runs) {
        result.avg_mux += run.mux_pps;
        result.avg_conc += run.conc_pps;
        result.avg_cs += run.cs_pps;
        result.avg_optimal += run.optimal_pps();
    }
    const double n = static_cast<double>(result.runs.size());
    result.avg_mux /= n;
    result.avg_conc /= n;
    result.avg_cs /= n;
    result.avg_optimal /= n;
    return true;
}

/// Run (or load) the ensemble for one category. The cache lives in a
/// cwd-relative result store (./csense_bench_cache/): records carry a
/// content checksum, so truncated/bit-flipped/torn cache files are
/// quarantined and recomputed instead of poisoning the ensemble.
inline testbed::experiment_result dataset(const scenario_context& ctx,
                                          bool short_range) {
    const auto cfg = bench_config(ctx, short_range);
    const std::string key =
        (short_range ? std::string("short_") : std::string("long_")) +
        cache_key(cfg);

    testbed::experiment_result result;
    store::result_store cache("csense_bench_cache", "csense-testbed/1");
    if (const auto payload = cache.load(key)) {
        if (decode_ensemble(*payload, cfg.runs, result)) {
            std::printf("(loaded cached ensemble: %s)\n",
                        cache.path_for(key).c_str());
            return result;
        }
        result = {};
    }

    std::printf("(simulating %d runs x %.0f s x 20 measurements ...)\n",
                cfg.runs, cfg.duration_s);
    const auto bed = testbed::make_default_testbed();
    result = testbed::run_experiment(bed, cfg);
    cache.put(key, encode_ensemble(result));
    return result;
}

/// Record the ensemble averages as scenario metrics.
inline void record_summary(scenario_context& ctx,
                           const testbed::experiment_result& result) {
    ctx.metric("runs", static_cast<std::int64_t>(result.runs.size()));
    ctx.metric("avg_optimal_pps", result.avg_optimal);
    ctx.metric("avg_cs_pps", result.avg_cs);
    ctx.metric("avg_mux_pps", result.avg_mux);
    ctx.metric("avg_conc_pps", result.avg_conc);
    ctx.metric("cs_fraction", result.cs_fraction());
    ctx.metric("mux_fraction", result.mux_fraction());
    ctx.metric("conc_fraction", result.conc_fraction());
}

/// Print the §4 summary block (the Tables 3/4 format).
inline void print_summary(const testbed::experiment_result& result,
                          const char* label, double paper_opt,
                          double paper_cs, double paper_mux,
                          double paper_conc) {
    std::printf("\n%s ensemble (%zu runs, category mean SNR %.1f dB):\n",
                label, result.runs.size(), result.category_snr_db);
    std::printf("  %-28s measured        paper\n", "");
    std::printf("  Optimal (max over strategies) %6.0f pkt/s   %4.0f pkt/s\n",
                result.avg_optimal, paper_opt);
    std::printf("  Carrier Sense                 %6.0f (%3.0f%%)  (%2.0f%%)\n",
                result.avg_cs, 100.0 * result.cs_fraction(), paper_cs);
    std::printf("  Multiplexing                  %6.0f (%3.0f%%)  (%2.0f%%)\n",
                result.avg_mux, 100.0 * result.mux_fraction(), paper_mux);
    std::printf("  Concurrency                   %6.0f (%3.0f%%)  (%2.0f%%)\n",
                result.avg_conc, 100.0 * result.conc_fraction(), paper_conc);
}

}  // namespace csense::bench
