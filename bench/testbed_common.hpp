// Shared testbed-experiment driver for the §4 benches (Figures 10-13,
// Tables 3-4). The short- and long-range datasets are expensive, and
// several binaries view the same dataset; results are cached on disk
// (keyed by configuration) so e.g. fig10, fig11 and tab03 compute the
// ensemble once.
#pragma once

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>

#include "bench/common.hpp"
#include "src/testbed/experiment.hpp"

namespace csense::bench {

inline testbed::experiment_config bench_config(const scenario_context& ctx,
                                               bool short_range) {
    auto cfg = short_range ? testbed::short_range_config()
                           : testbed::long_range_config();
    cfg.seed = ctx.seed;
    cfg.threads = ctx.threads;  // wall-clock only; results are invariant
    if (fast_mode()) {
        cfg.runs = 6;
        cfg.duration_s = 1.0;
    } else {
        cfg.runs = 40;
        cfg.duration_s = 15.0;  // the thesis' run length
    }
    return cfg;
}

inline std::string cache_key(const testbed::experiment_config& cfg) {
    std::ostringstream key;
    // v5: runs shard over the campaign layer with per-run split RNG
    // streams, which changes the sampled pair-of-pairs; the bump keeps
    // pre-campaign ensembles from being loaded. (threads is deliberately
    // NOT part of the key: results are thread-count invariant.)
    key << "v5_" << cfg.runs << "_" << cfg.duration_s << "_" << cfg.category_lo
        << "_" << cfg.category_hi << "_" << cfg.seed << "_"
        << cfg.rssi_strata_lo_db << "_" << cfg.rssi_strata_hi_db;
    return key.str();
}

inline std::filesystem::path cache_path(const testbed::experiment_config& cfg,
                                        bool short_range) {
    return std::filesystem::path("csense_bench_cache") /
           ((short_range ? std::string("short_") : std::string("long_")) +
            cache_key(cfg) + ".tsv");
}

/// Run (or load) the ensemble for one category.
inline testbed::experiment_result dataset(const scenario_context& ctx,
                                          bool short_range) {
    const auto cfg = bench_config(ctx, short_range);
    const auto path = cache_path(cfg, short_range);

    testbed::experiment_result result;
    if (std::ifstream in{path}; in) {
        std::string line;
        std::getline(in, line);  // header
        while (std::getline(in, line)) {
            std::istringstream row(line);
            testbed::run_result r;
            row >> r.pair1.sender >> r.pair1.receiver >> r.pair2.sender >>
                r.pair2.receiver >> r.mux_pps >> r.conc_pps >> r.cs_pps >>
                r.conc_pair1 >> r.conc_pair2 >> r.cs_pair1 >> r.cs_pair2 >>
                r.sender_rssi_db >> r.snr1_db >> r.snr2_db;
            if (row) result.runs.push_back(r);
        }
        bool have_meta = false;
        if (std::ifstream meta{path.string() + ".meta"}; meta) {
            have_meta = static_cast<bool>(meta >> result.category_snr_db);
        }
        // Both the run table and the .meta sidecar must load; a cache
        // with a missing/corrupt sidecar is recomputed, not trusted.
        if (have_meta &&
            result.runs.size() == static_cast<std::size_t>(cfg.runs)) {
            for (const auto& r : result.runs) {
                result.avg_mux += r.mux_pps;
                result.avg_conc += r.conc_pps;
                result.avg_cs += r.cs_pps;
                result.avg_optimal += r.optimal_pps();
            }
            const double n = static_cast<double>(result.runs.size());
            result.avg_mux /= n;
            result.avg_conc /= n;
            result.avg_cs /= n;
            result.avg_optimal /= n;
            std::printf("(loaded cached ensemble: %s)\n", path.c_str());
            return result;
        }
        result = {};
    }

    std::printf("(simulating %d runs x %.0f s x 20 measurements ...)\n",
                cfg.runs, cfg.duration_s);
    const auto bed = testbed::make_default_testbed();
    result = testbed::run_experiment(bed, cfg);

    std::error_code ec;
    std::filesystem::create_directories(path.parent_path(), ec);
    if (std::ofstream out{path}; out) {
        // Full round-trip precision: a cached ensemble must reload to the
        // exact doubles that were computed, or reruns would not be
        // byte-identical (the bench determinism guarantee).
        out << std::setprecision(17);
        out << "s1 r1 s2 r2 mux conc cs c1 c2 cs1 cs2 rssi snr1 snr2\n";
        for (const auto& r : result.runs) {
            out << r.pair1.sender << ' ' << r.pair1.receiver << ' '
                << r.pair2.sender << ' ' << r.pair2.receiver << ' '
                << r.mux_pps << ' ' << r.conc_pps << ' ' << r.cs_pps << ' '
                << r.conc_pair1 << ' ' << r.conc_pair2 << ' ' << r.cs_pair1
                << ' ' << r.cs_pair2 << ' ' << r.sender_rssi_db << ' '
                << r.snr1_db << ' ' << r.snr2_db << '\n';
        }
        std::ofstream meta{path.string() + ".meta"};
        meta << std::setprecision(17) << result.category_snr_db << '\n';
    }
    return result;
}

/// Record the ensemble averages as scenario metrics.
inline void record_summary(scenario_context& ctx,
                           const testbed::experiment_result& result) {
    ctx.metric("runs", static_cast<std::int64_t>(result.runs.size()));
    ctx.metric("avg_optimal_pps", result.avg_optimal);
    ctx.metric("avg_cs_pps", result.avg_cs);
    ctx.metric("avg_mux_pps", result.avg_mux);
    ctx.metric("avg_conc_pps", result.avg_conc);
    ctx.metric("cs_fraction", result.cs_fraction());
    ctx.metric("mux_fraction", result.mux_fraction());
    ctx.metric("conc_fraction", result.conc_fraction());
}

/// Print the §4 summary block (the Tables 3/4 format).
inline void print_summary(const testbed::experiment_result& result,
                          const char* label, double paper_opt,
                          double paper_cs, double paper_mux,
                          double paper_conc) {
    std::printf("\n%s ensemble (%zu runs, category mean SNR %.1f dB):\n",
                label, result.runs.size(), result.category_snr_db);
    std::printf("  %-28s measured        paper\n", "");
    std::printf("  Optimal (max over strategies) %6.0f pkt/s   %4.0f pkt/s\n",
                result.avg_optimal, paper_opt);
    std::printf("  Carrier Sense                 %6.0f (%3.0f%%)  (%2.0f%%)\n",
                result.avg_cs, 100.0 * result.cs_fraction(), paper_cs);
    std::printf("  Multiplexing                  %6.0f (%3.0f%%)  (%2.0f%%)\n",
                result.avg_mux, 100.0 * result.mux_fraction(), paper_mux);
    std::printf("  Concurrency                   %6.0f (%3.0f%%)  (%2.0f%%)\n",
                result.avg_conc, 100.0 * result.conc_fraction(), paper_conc);
}

}  // namespace csense::bench
