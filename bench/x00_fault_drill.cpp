// x00_fault_drill: a tiny scenario whose only job is to exercise the
// runner's robustness machinery on demand (watchdog, degraded records,
// exit taxonomy, checkpoint skip/recompute). The robustness tests and
// the CI kill-and-resume smoke drive it via CSENSE_DRILL_MODE; the
// default mode is a fast no-op so the drill is harmless in full sweeps.
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>

#include "bench/common.hpp"
#include "bench/registry.hpp"
#include "src/core/parallel.hpp"

namespace {

using csense::bench::scenario_context;

long drill_ms() {
    const char* env = std::getenv("CSENSE_DRILL_MS");
    if (env == nullptr) return 10'000;
    const long ms = std::atol(env);
    return ms > 0 ? ms : 10'000;
}

}  // namespace

CSENSE_SCENARIO_EX(x00_fault_drill,
                   "Fault drill - exercises watchdog/degraded/checkpoint "
                   "machinery (mode via CSENSE_DRILL_MODE)",
                   csense::bench::runtime_tier::fast,
                   "CSENSE_DRILL_MODE=ok|sleep|throw|fail (default ok); "
                   "CSENSE_DRILL_MS=<n> sleep-mode duration (default "
                   "10000)") {
    const char* mode_env = std::getenv("CSENSE_DRILL_MODE");
    const std::string mode = mode_env != nullptr ? mode_env : "ok";
    csense::bench::print_header("x00_fault_drill",
                                ("Fault drill, mode: " + mode).c_str());

    if (mode == "throw") {
        throw std::runtime_error("drill: injected scenario exception");
    }
    if (mode == "fail") {
        ctx.metric("drill_mode", "fail");
        return 1;  // a completed run whose acceptance gate failed
    }
    if (mode == "sleep") {
        // Busy-wait in 5 ms slices with a cancellation check per slice,
        // so the watchdog can unwind the scenario promptly. The loop is
        // iteration-counted (no wall-clock read: the determinism linter
        // bans clock reads outside the driver) — slices may oversleep,
        // which only errs towards tripping the watchdog sooner.
        const long slices = drill_ms() / 5;
        for (long i = 0; i < slices; ++i) {
            csense::core::throw_if_cancelled();
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        ctx.metric("drill_slices", static_cast<std::int64_t>(slices));
        return 0;
    }
    ctx.metric("drill_mode", "ok");
    return 0;
}
