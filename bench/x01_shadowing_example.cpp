// §3.4's worked example: short-range network Rmax = 20, threshold
// D_thresh = 40 (near the sigma = 0 optimum), interferer apparently at
// D = 20. The sensing shadow is independent of the receiver's view, so
// carrier sense spuriously chooses concurrency ~20% of the time; ~20% of
// receivers sit close enough to be crushed; ~4% of configurations end up
// with very poor SNR.
#include <cstdio>

#include "bench/common.hpp"
#include "src/core/shadowing_analysis.hpp"

using namespace csense;

CSENSE_SCENARIO_EX(x01_shadowing_example,
                "S3.4 worked example: shadowing-induced carrier-sense "
                "mistakes",
                   bench::runtime_tier::fast, "") {
    bench::print_header("S3.4 worked example - shadowing-induced CS mistakes",
                        "Rmax = 20, D_thresh = 40, interferer apparent at "
                        "D = 20, sigma = 8 dB");
    core::model_params params;
    params.alpha = 3.0;
    params.sigma_db = 8.0;

    const auto outcome =
        core::severe_outcome_probability(params, 20.0, 40.0, 20.0);
    std::printf("%-52s measured  paper\n", "");
    std::printf("%-52s %6.1f%%   ~20%%\n",
                "P(spurious concurrency | interferer looks like D=20)",
                100.0 * outcome.p_spurious_concurrency);
    std::printf("%-52s %6.1f%%   ~20%%\n",
                "fraction of receivers closer to the interferer",
                100.0 * outcome.fraction_vulnerable);
    std::printf("%-52s %6.1f%%   ~4%%\n", "P(very poor SNR configuration)",
                100.0 * outcome.p_severe);
    ctx.metric("p_spurious_concurrency", outcome.p_spurious_concurrency);
    ctx.metric("fraction_vulnerable", outcome.fraction_vulnerable);
    ctx.metric("p_severe", outcome.p_severe);
    ctx.metric("snr_estimate_sigma_db", core::snr_estimate_sigma_db(params));

    std::printf("\nsupporting quantities:\n");
    std::printf("  sigma_SNRest = sigma*sqrt(3) = %.1f dB (paper: ~14 dB)\n",
                core::snr_estimate_sigma_db(params));
    std::printf("  14 dB as a distance factor at alpha = 3: %.2fx "
                "(paper: ~3x)\n",
                core::db_to_distance_factor(params, 14.0));
    std::printf("  mistake probabilities vs apparent distance "
                "(threshold 40):\n");
    std::printf("  %10s %22s %22s\n", "apparent D", "P(spurious conc)",
                "P(spurious mux)");
    for (double d : {10.0, 20.0, 30.0, 40.0, 55.0, 80.0, 120.0}) {
        std::printf("  %10.0f %21.1f%% %21.1f%%\n", d,
                    100.0 * core::spurious_concurrency_probability(params, d,
                                                                   40.0),
                    100.0 * core::spurious_multiplexing_probability(params, d,
                                                                    40.0));
    }
    std::printf("\n'...the effects of shadowing on carrier sense would cause "
                "very poor SNR in around 4%% of configurations but otherwise "
                "would behave reasonably most of the time.'\n");
    return 0;
}
