// Hidden-terminal demo on the packet simulator: builds the classic
// three-party scenario (sender, victim receiver, hidden interferer) and
// walks through the thesis' argument:
//   1. at a fixed high bitrate the victim starves - the textbook story;
//   2. bitrate adaptation recovers a useful share - "a less-than-ideal
//      bitrate is needed to succeed", not a failure;
//   3. the §5 heuristic (RTS/CTS only when loss is high despite high
//      RSSI) recovers most of the rest without taxing anyone else.
#include <cstdio>

#include "src/capacity/rate_table.hpp"
#include "src/mac/network.hpp"

using namespace csense;
using namespace csense::mac;
using csense::capacity::rate_by_mbps;

namespace {

struct scenario {
    network net;
    node_id sender, victim, interferer, other_rx;

    explicit scenario(const mac_config& sender_cfg, std::uint64_t seed)
        : net(radio_config{}, seed) {
        sender = net.add_node(sender_cfg);
        victim = net.add_node(mac_config{});
        interferer = net.add_node(mac_config{});
        other_rx = net.add_node(mac_config{});
        // Sender -> victim: strong link (40 dB SNR).
        net.set_link_gain_db(sender, victim, -70.0);
        // Interferer is hidden from the sender...
        net.set_link_gain_db(sender, interferer, -120.0);
        // ...but crushes the victim (35 dB SNR at the victim).
        net.set_link_gain_db(interferer, victim, -75.0);
        // The victim's CTS, however, is audible at the interferer.
        net.set_link_gain_db(victim, interferer, -75.0);
        net.set_link_gain_db(interferer, other_rx, -60.0);
    }

    void run(double data_mbps, double seconds) {
        net.node(sender).set_traffic(traffic_mode::unicast, victim,
                                     rate_by_mbps(data_mbps), 1400);
        // The interferer sends short frames (54 Mb/s): it is off the air
        // often enough to hear the victim's CTS. A saturated interferer
        // with long frames is deaf to CTS most of the time, and RTS/CTS
        // can barely help - an instructive corner case in itself.
        net.node(interferer)
            .set_traffic(traffic_mode::broadcast, broadcast_id,
                         rate_by_mbps(54.0), 1400);
        net.run(seconds * 1e6);
    }
};

}  // namespace

int main() {
    constexpr double seconds = 5.0;
    std::printf("hidden terminal scenario: sender -> victim at 40 dB SNR; "
                "interferer hidden from the sender hammers the victim.\n\n");
    std::printf("%-44s %10s %10s %8s\n", "configuration", "sent", "acked",
                "goodput");

    auto report = [&](const char* label, const scenario& s) {
        const auto& stats = s.net.node(s.sender).stats();
        std::printf("%-44s %10llu %10llu %7.0f/s\n", label,
                    static_cast<unsigned long long>(stats.data_sent),
                    static_cast<unsigned long long>(stats.data_acked),
                    stats.data_acked / seconds);
    };

    {
        scenario s(mac_config{}, 1);
        s.run(24.0, seconds);
        report("1. fixed 24 Mb/s, plain CSMA", s);
    }
    {
        scenario s(mac_config{}, 2);
        s.run(6.0, seconds);
        report("2. fixed 6 Mb/s (bitrate adaptation's pick)", s);
    }
    {
        mac_config cfg;
        cfg.use_rts_cts = true;
        scenario s(cfg, 3);
        s.run(24.0, seconds);
        report("3. 24 Mb/s + always-on RTS/CTS", s);
    }
    {
        mac_config cfg;
        cfg.adaptive_rts_cts = true;
        scenario s(cfg, 4);
        s.run(24.0, seconds);
        report("4. 24 Mb/s + S5 heuristic RTS/CTS", s);
        std::printf("   (heuristic active at end of run: %s; RTS sent: "
                    "%llu)\n",
                    s.net.node(s.sender).rts_active() ? "yes" : "no",
                    static_cast<unsigned long long>(
                        s.net.node(s.sender).stats().rts_sent));
    }

    {
        mac_config cfg;
        cfg.adaptive_rts_cts = true;
        scenario s(cfg, 5);
        s.run(6.0, seconds);
        report("5. adaptation's rate + heuristic RTS/CTS", s);
    }

    std::printf("\nreading: (1) is the textbook disaster; (2) shows "
                "adaptation alone turns it into a slower-but-working link; "
                "(3) recovers much more, at a constant RTS tax on every "
                "exchange; (4) pays that tax only after detecting high loss "
                "despite high RSSI - the thesis' proposed corner-case "
                "treatment. RTS/CTS protection is only as good as the "
                "interferer's ability to hear the CTS: against a saturated "
                "long-frame interferer the NAV rarely lands.\n");
    return 0;
}
