// Quickstart: evaluate how well carrier sense would serve a deployment.
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run:    ./build/examples/quickstart [alpha sigma_db rmax]
//
// Given a propagation environment (path-loss exponent, shadowing) and a
// network range, this example computes, for a sweep of interferer
// distances: the average throughput of multiplexing, concurrency, a
// genie-optimal MAC, and carrier sense with the recommended threshold -
// then reports the efficiency of carrier sense and the regime the
// network operates in.
#include <cstdio>
#include <cstdlib>

#include "src/core/efficiency.hpp"
#include "src/core/regimes.hpp"
#include "src/core/threshold.hpp"

using namespace csense::core;

int main(int argc, char** argv) {
    model_params params;
    params.alpha = (argc > 1) ? std::atof(argv[1]) : 3.0;
    params.sigma_db = (argc > 2) ? std::atof(argv[2]) : 8.0;
    const double rmax = (argc > 3) ? std::atof(argv[3]) : 40.0;
    params.validate();

    std::printf("environment: alpha = %.2f, shadowing sigma = %.1f dB, "
                "noise floor N = %.0f dB\n",
                params.alpha, params.sigma_db, params.noise_db);
    std::printf("network range Rmax = %.1f (edge SNR %.1f dB)\n\n", rmax,
                edge_snr_db(params, rmax));

    expectation_engine engine(params, {}, {100000, 1});

    // 1. Where should the carrier-sense threshold sit?
    const auto threshold = optimal_threshold(engine, rmax);
    const auto regime = classify_with_threshold(params, rmax, threshold);
    if (!threshold.found) {
        std::printf("concurrency always wins here (extreme long range / "
                    "CDMA regime): carrier sense only gets in the way.\n");
        return 0;
    }
    std::printf("optimal threshold distance: %.1f (sensed power %.1f dB)\n",
                threshold.d_thresh,
                threshold_power_db(threshold.d_thresh, params.alpha));
    std::printf("regime: %s (R_thresh / Rmax = %.2f)\n\n",
                std::string(regime_name(regime.regime)).c_str(),
                threshold.d_thresh / rmax);

    // 2. How much does carrier sense leave on the table?
    std::printf("%8s %10s %10s %10s %10s %8s\n", "D", "mux", "conc", "CS",
                "optimal", "CS eff");
    double worst = 1.0;
    for (double d = 0.4 * rmax; d <= 3.0 * rmax; d += 0.4 * rmax) {
        const auto point =
            evaluate_policies(engine, rmax, d, threshold.d_thresh);
        worst = std::min(worst, point.efficiency());
        std::printf("%8.1f %10.4f %10.4f %10.4f %10.4f %7.1f%%\n", d,
                    point.multiplexing, point.concurrent, point.carrier_sense,
                    point.optimal, 100.0 * point.efficiency());
    }
    std::printf("\nworst-case carrier-sense efficiency across the sweep: "
                "%.1f%%\n", 100.0 * worst);
    std::printf("(the thesis' headline: typically less than 15%% below "
                "optimal)\n");
    return 0;
}
