// Regime explorer: an interactive-style tour of the short-range /
// transition / long-range structure (§3.3.3-3.3.4). For each network
// size it prints the optimal threshold, the regime, the fairness
// indicator (fraction of receivers starved under concurrency at the
// threshold distance), and carrier-sense efficiency - the full story of
// why the "sweet spot" SNR band commodity radios target is kind to
// carrier sense.
#include <cstdio>
#include <cstdlib>

#include "src/core/efficiency.hpp"
#include "src/core/preference_map.hpp"
#include "src/core/regimes.hpp"
#include "src/core/threshold.hpp"

using namespace csense::core;

int main(int argc, char** argv) {
    model_params params;
    params.alpha = (argc > 1) ? std::atof(argv[1]) : 3.0;
    params.sigma_db = (argc > 2) ? std::atof(argv[2]) : 8.0;
    params.validate();
    expectation_engine engine(params, {}, {60000, 1});

    std::printf("alpha = %.2f, sigma = %.1f dB, N = %.0f dB\n\n", params.alpha,
                params.sigma_db, params.noise_db);
    std::printf("%8s %9s %10s %8s %13s %10s %9s\n", "Rmax", "edge SNR",
                "D_thresh", "ratio", "regime", "starved", "CS eff");

    for (double rmax = 8.0; rmax <= 140.0; rmax *= 1.45) {
        const auto threshold = optimal_threshold(engine, rmax);
        const auto regime = classify_with_threshold(params, rmax, threshold);
        if (!threshold.found) {
            std::printf("%8.1f %8.1f %10s %8s %13s\n", rmax,
                        edge_snr_db(params, rmax), "-", "-",
                        std::string(regime_name(regime.regime)).c_str());
            continue;
        }
        // Fairness: receivers starved under concurrency with the
        // interferer exactly at the threshold distance (sigma = 0 map).
        const auto map = build_preference_map(params, threshold.d_thresh,
                                              rmax, rmax, 61);
        const auto pref = summarize(map);
        // Average CS efficiency over a D sweep.
        double eff = 0.0;
        int count = 0;
        for (double d = 0.5 * rmax; d <= 2.5 * rmax; d += 0.5 * rmax) {
            eff += evaluate_policies(engine, rmax, d, threshold.d_thresh)
                       .efficiency();
            ++count;
        }
        std::printf("%8.1f %8.1f %10.1f %8.2f %13s %9.1f%% %8.1f%%\n", rmax,
                    edge_snr_db(params, rmax), threshold.d_thresh,
                    threshold.d_thresh / rmax,
                    std::string(regime_name(regime.regime)).c_str(),
                    100.0 * pref.fraction_starved, 100.0 * eff / count);
    }

    std::printf("\nreading the table:\n");
    std::printf(" - short range (ratio > 2): thresholds sit outside the "
                "network; no one is starved; CS is nearly optimal.\n");
    std::printf(" - long range (ratio < 1): interferers get inside the "
                "network before CS reacts; a small starved fraction appears "
                "- average stays good, fairness suffers (S3.3.3).\n");
    std::printf(" - the 12-27 dB edge-SNR band - where real hardware lives "
                "- straddles the middle: robust thresholds AND good "
                "efficiency (S3.3.4).\n");
    return 0;
}
