// Threshold planner: the §3.3.3 "factory default" procedure as a tool.
//
// Run: ./build/examples/threshold_planner [alpha sigma_db snr_hi snr_lo]
//
// Given the SNR operating envelope of a radio (e.g. 802.11g's ~26 dB at
// full rate down to ~3 dB at base rate), compute the optimal threshold at
// both ends, recommend the geometric-mean compromise, and show how much
// efficiency that compromise sacrifices across the envelope versus
// per-deployment tuning.
#include <cstdio>
#include <cstdlib>

#include "src/core/efficiency.hpp"
#include "src/core/regimes.hpp"
#include "src/core/threshold.hpp"

using namespace csense::core;

int main(int argc, char** argv) {
    model_params params;
    params.alpha = (argc > 1) ? std::atof(argv[1]) : 3.0;
    params.sigma_db = (argc > 2) ? std::atof(argv[2]) : 8.0;
    const double snr_hi = (argc > 3) ? std::atof(argv[3]) : 26.0;
    const double snr_lo = (argc > 4) ? std::atof(argv[4]) : 3.0;
    params.validate();

    const double rmax_short = rmax_for_edge_snr(params, snr_hi);
    const double rmax_long = rmax_for_edge_snr(params, snr_lo);
    std::printf("radio envelope: %.1f dB edge SNR (Rmax %.1f) down to "
                "%.1f dB (Rmax %.1f); alpha %.2f, sigma %.1f dB\n\n",
                snr_hi, rmax_short, snr_lo, rmax_long, params.alpha,
                params.sigma_db);

    expectation_engine engine(params, {}, {80000, 1});
    const auto t_short = optimal_threshold(engine, rmax_short);
    const auto t_long = optimal_threshold(engine, rmax_long);
    const double factory = compromise_threshold(engine, rmax_short, rmax_long);
    std::printf("optimal threshold at the short end: %.1f\n", t_short.d_thresh);
    std::printf("optimal threshold at the long end:  %.1f\n", t_long.d_thresh);
    std::printf("recommended factory threshold:      %.1f "
                "(sensed power %.1f dB over the noise floor)\n\n",
                factory,
                threshold_power_db(factory, params.alpha) - params.noise_db);

    std::printf("%10s %12s | %16s %16s %10s\n", "Rmax", "regime",
                "eff(factory)", "eff(tuned)", "cost");
    for (double rmax = rmax_short; rmax <= rmax_long * 1.001;
         rmax *= std::pow(rmax_long / rmax_short, 0.25)) {
        const auto tuned = optimal_threshold(engine, rmax);
        const auto regime = classify_with_threshold(params, rmax, tuned);
        // Average efficiency over a small interferer-distance sweep.
        double eff_factory = 0.0, eff_tuned = 0.0;
        int count = 0;
        for (double d = 0.5 * rmax; d <= 2.5 * rmax; d += 0.5 * rmax) {
            eff_factory +=
                evaluate_policies(engine, rmax, d, factory).efficiency();
            eff_tuned +=
                evaluate_policies(engine, rmax, d, tuned.d_thresh).efficiency();
            ++count;
        }
        eff_factory /= count;
        eff_tuned /= count;
        std::printf("%10.1f %12s | %15.1f%% %15.1f%% %9.2f%%\n", rmax,
                    std::string(regime_name(regime.regime)).c_str(),
                    100.0 * eff_factory, 100.0 * eff_tuned,
                    100.0 * (eff_tuned - eff_factory));
    }
    std::printf("\nThe 'cost' column is what per-deployment tuning would "
                "buy. The thesis' point: it is small everywhere - ship the "
                "factory threshold.\n");
    return 0;
}
