// WLAN site survey: generate a synthetic office deployment, survey its
// RSSI matrix like Figure 14, fit the propagation model, then use the
// *fitted* parameters to drive the analytic carrier-sense planner - the
// full measure -> model -> plan workflow a deployment tool would run.
#include <cstdio>
#include <cstdlib>

#include "src/core/regimes.hpp"
#include "src/core/threshold.hpp"
#include "src/testbed/experiment.hpp"
#include "src/testbed/rssi_survey.hpp"

using namespace csense;

int main(int argc, char** argv) {
    const int nodes = (argc > 1) ? std::atoi(argv[1]) : 50;
    const std::uint64_t seed = (argc > 2) ? std::strtoull(argv[2], nullptr, 10)
                                          : 11;

    std::printf("=== step 1: survey ===\n");
    const auto bed = testbed::make_default_testbed(nodes, seed);
    testbed::rssi_survey_config survey_cfg;
    const auto survey = run_rssi_survey(bed, survey_cfg);
    std::printf("surveyed %zu pairs over two floors; %d below the detection "
                "floor\n", survey.observations.size(), survey.censored_count);

    std::printf("\n=== step 2: fit the propagation model ===\n");
    std::printf("fitted: alpha = %.2f, sigma = %.1f dB (generated with "
                "%.2f / %.1f)\n", survey.fit.alpha, survey.fit.sigma_db,
                survey.true_alpha, survey.true_sigma_db);

    std::printf("\n=== step 3: plan carrier sense with the fitted model ===\n");
    core::model_params params;
    params.alpha = survey.fit.alpha;
    params.sigma_db = survey.fit.sigma_db;
    params.validate();
    core::expectation_engine engine(params, {}, {60000, 1});

    // Typical WLAN cell edges: 25 dB (dense APs) down to 10 dB (stretch).
    const double rmax_short = core::rmax_for_edge_snr(params, 25.0);
    const double rmax_long = core::rmax_for_edge_snr(params, 10.0);
    const double factory =
        core::compromise_threshold(engine, rmax_short, rmax_long);
    std::printf("deployment envelope: Rmax %.1f .. %.1f (normalized units)\n",
                rmax_short, rmax_long);
    std::printf("recommended CS threshold: sensed power %.1f dB above the "
                "noise floor\n",
                core::threshold_power_db(factory, params.alpha) -
                    params.noise_db);

    for (double rmax : {rmax_short, rmax_long}) {
        const auto regime = core::classify_network(engine, rmax);
        std::printf("  cell with edge SNR %.1f dB -> %s",
                    core::edge_snr_db(params, rmax),
                    std::string(core::regime_name(regime.regime)).c_str());
        if (regime.regime == core::network_regime::long_range) {
            std::printf("  (expect good averages but watch fairness near "
                        "interferers - S3.3.3)");
        }
        std::printf("\n");
    }
    std::printf("\nThe planner never needed the true channel - the fitted "
                "parameters carried the analysis, which is how the thesis "
                "connects its Figure 14 measurement to its model.\n");
    return 0;
}
