#include "src/capacity/error_models.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/propagation/units.hpp"

namespace csense::capacity {
namespace {

double q_function(double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

}  // namespace

awgn_per_model::awgn_per_model(double coding_gain_db)
    : coding_gain_db_(coding_gain_db) {}

double awgn_per_model::uncoded_ber(modulation mod, double snr_linear) {
    // Standard approximations for Gray-coded square constellations, with
    // snr_linear interpreted as per-symbol Es/N0 spread over the bits.
    switch (mod) {
        case modulation::bpsk:
            return q_function(std::sqrt(2.0 * snr_linear));
        case modulation::qpsk:
            return q_function(std::sqrt(snr_linear));
        case modulation::qam16:
            return 0.75 * q_function(std::sqrt(snr_linear / 5.0));
        case modulation::qam64:
            return (7.0 / 12.0) * q_function(std::sqrt(snr_linear / 21.0));
    }
    throw std::invalid_argument("uncoded_ber: unknown modulation");
}

double awgn_per_model::packet_error_rate(const phy_rate& rate, double sinr_db,
                                         int payload_bytes) const {
    if (payload_bytes <= 0) {
        throw std::invalid_argument("packet_error_rate: payload must be positive");
    }
    // Coding gain scaled by how much redundancy the code actually has:
    // rate-1/2 gets the full gain, rate-3/4 roughly half of it.
    const double redundancy = 2.0 * (1.0 - rate.code_rate);
    const double effective_snr = propagation::db_to_linear(
        sinr_db + coding_gain_db_ * redundancy);
    const double ber = uncoded_ber(rate.mod, effective_snr);
    const double bits = 8.0 * static_cast<double>(payload_bytes);
    // Independent-bit approximation, computed in log space for stability.
    const double log_success = bits * std::log1p(-std::min(ber, 1.0 - 1e-15));
    return 1.0 - std::exp(log_success);
}

logistic_per_model::logistic_per_model(double width_db, int reference_bytes)
    : width_db_(width_db), reference_bytes_(reference_bytes) {
    if (width_db <= 0.0 || reference_bytes <= 0) {
        throw std::invalid_argument("logistic_per_model: bad parameters");
    }
}

double logistic_per_model::packet_error_rate(const phy_rate& rate, double sinr_db,
                                             int payload_bytes) const {
    if (payload_bytes <= 0) {
        throw std::invalid_argument("packet_error_rate: payload must be positive");
    }
    // The rate's sensitivity is calibrated at ~10% PER for the reference
    // length; centre the logistic so PER(min_snr) = 0.1 there.
    const double offset = width_db_ * std::log(1.0 / 0.1 - 1.0);
    const double midpoint = rate.min_snr_db - offset;
    const double per_ref =
        1.0 / (1.0 + std::exp((sinr_db - midpoint) / width_db_));
    // Length scaling via the independent-bit rule.
    const double scale = static_cast<double>(payload_bytes) /
                         static_cast<double>(reference_bytes_);
    const double log_success_ref = std::log1p(-std::min(per_ref, 1.0 - 1e-15));
    return 1.0 - std::exp(scale * log_success_ref);
}

}  // namespace csense::capacity
