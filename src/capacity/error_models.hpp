// SINR -> packet-error-rate models for the packet-level simulator.
// Two interchangeable models:
//  - awgn_per_model: modulation-theoretic bit error rates (Q-function
//    forms per constellation) with a per-rate effective coding gain,
//    turned into PER through the independent-bit approximation;
//  - logistic_per_model: a phenomenological logistic in dB SNR centred
//    at each rate's sensitivity point, the shape packet simulators such
//    as ns-3's YANS model use.
// Both produce the step-like fixed-rate behaviour §3.3.2 contrasts with
// adaptive bitrate's smooth Shannon curve.
#pragma once

#include "src/capacity/rate_table.hpp"

namespace csense::capacity {

/// Interface: probability that a frame of `payload_bytes` at `rate` is
/// lost at the given SINR.
class error_model {
public:
    virtual ~error_model() = default;

    /// Packet error rate in [0, 1].
    virtual double packet_error_rate(const phy_rate& rate, double sinr_db,
                                     int payload_bytes) const = 0;

    /// Convenience: delivery rate = 1 - PER.
    double delivery_rate(const phy_rate& rate, double sinr_db,
                         int payload_bytes) const {
        return 1.0 - packet_error_rate(rate, sinr_db, payload_bytes);
    }
};

/// Q-function based AWGN model with per-rate coding gain.
class awgn_per_model final : public error_model {
public:
    /// `coding_gain_db` approximates the convolutional code's benefit; the
    /// default 5 dB matches rate-1/2 K=7 Viterbi decoding at ~1e-5 BER.
    explicit awgn_per_model(double coding_gain_db = 5.0);

    double packet_error_rate(const phy_rate& rate, double sinr_db,
                             int payload_bytes) const override;

    /// Raw (uncoded) bit error rate for a modulation at the given
    /// per-symbol SNR (linear).
    static double uncoded_ber(modulation mod, double snr_linear);

private:
    double coding_gain_db_;
};

/// Logistic PER curve: PER = 1 / (1 + exp((sinr - midpoint) / width)),
/// with midpoint at the rate's sensitivity and a reference frame length;
/// longer frames shift the curve right by the independent-bit rule.
class logistic_per_model final : public error_model {
public:
    /// `width_db` controls the sharpness of the waterfall region
    /// (typically ~0.5-1.5 dB for OFDM with coding).
    explicit logistic_per_model(double width_db = 1.0,
                                int reference_bytes = 1000);

    double packet_error_rate(const phy_rate& rate, double sinr_db,
                             int payload_bytes) const override;

private:
    double width_db_;
    int reference_bytes_;
};

}  // namespace csense::capacity
