#include "src/capacity/rate_adaptation.hpp"

#include <limits>
#include <stdexcept>

namespace csense::capacity {

arf::arf(const std::vector<phy_rate>& table, int up_after, int down_after)
    : table_(table), up_after_(up_after), down_after_(down_after) {
    if (table_.empty()) throw std::invalid_argument("arf: empty rate table");
    if (up_after < 1 || down_after < 1) {
        throw std::invalid_argument("arf: thresholds must be >= 1");
    }
}

const phy_rate& arf::next_rate() { return table_[index_]; }

void arf::report(const phy_rate&, bool delivered, double) {
    if (delivered) {
        failures_ = 0;
        if (++successes_ >= up_after_ && index_ + 1 < table_.size()) {
            ++index_;
            successes_ = 0;
        }
    } else {
        successes_ = 0;
        if (++failures_ >= down_after_ && index_ > 0) {
            --index_;
            failures_ = 0;
        }
    }
}

sample_rate::sample_rate(const std::vector<phy_rate>& table, int payload_bytes,
                         std::uint64_t seed, double ewma_weight,
                         double probe_fraction)
    : table_(table), states_(table.size()), payload_bytes_(payload_bytes),
      rng_(seed), ewma_weight_(ewma_weight), probe_fraction_(probe_fraction) {
    if (table_.empty()) throw std::invalid_argument("sample_rate: empty table");
    if (payload_bytes <= 0) throw std::invalid_argument("sample_rate: payload");
}

double sample_rate::expected_time_us(std::size_t index) const {
    const auto& state = states_.at(index);
    const double airtime = frame_airtime_us(table_[index], payload_bytes_);
    if (state.ewma_delivery < 0.0) return airtime;  // unprobed: optimistic
    if (state.ewma_delivery <= 1e-6) {
        return std::numeric_limits<double>::infinity();
    }
    return airtime / state.ewma_delivery;
}

std::size_t sample_rate::best_index() const {
    std::size_t best = 0;
    double best_time = expected_time_us(0);
    for (std::size_t i = 1; i < table_.size(); ++i) {
        const double t = expected_time_us(i);
        if (t < best_time) {
            best_time = t;
            best = i;
        }
    }
    return best;
}

const phy_rate& sample_rate::next_rate() {
    const std::size_t best = best_index();
    pending_index_ = best;
    if (rng_.uniform() < probe_fraction_ && table_.size() > 1) {
        // Probe a random other rate whose lossless air time could beat the
        // current best's expected time (SampleRate's pruning rule).
        const double current = expected_time_us(best);
        std::vector<std::size_t> candidates;
        for (std::size_t i = 0; i < table_.size(); ++i) {
            if (i == best) continue;
            if (frame_airtime_us(table_[i], payload_bytes_) < current) {
                candidates.push_back(i);
            }
        }
        if (!candidates.empty()) {
            pending_index_ =
                candidates[rng_.uniform_int(candidates.size())];
        }
    }
    return table_[pending_index_];
}

void sample_rate::report(const phy_rate& rate, bool delivered, double) {
    for (std::size_t i = 0; i < table_.size(); ++i) {
        if (table_[i].mbps != rate.mbps) continue;
        auto& state = states_[i];
        ++state.attempts;
        if (delivered) ++state.successes;
        const double outcome = delivered ? 1.0 : 0.0;
        if (state.ewma_delivery < 0.0) {
            state.ewma_delivery = outcome;
        } else {
            state.ewma_delivery = (1.0 - ewma_weight_) * state.ewma_delivery +
                                  ewma_weight_ * outcome;
        }
        return;
    }
    throw std::invalid_argument("sample_rate::report: rate not in table");
}

const phy_rate& best_fixed_rate_oracle(const std::vector<phy_rate>& table,
                                       const error_model& model, double sinr_db,
                                       int payload_bytes, int cw_min) {
    if (table.empty()) {
        throw std::invalid_argument("best_fixed_rate_oracle: empty table");
    }
    const phy_rate* best = &table.front();
    double best_goodput = -1.0;
    for (const auto& rate : table) {
        const double pps = saturated_broadcast_pps(rate, payload_bytes, cw_min);
        const double goodput =
            pps * model.delivery_rate(rate, sinr_db, payload_bytes);
        if (goodput > best_goodput) {
            best_goodput = goodput;
            best = &rate;
        }
    }
    return *best;
}

}  // namespace csense::capacity
