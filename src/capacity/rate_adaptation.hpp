// Bitrate adaptation algorithms. The thesis treats adaptation as the
// MAC's most important lever (§1) and assumes a "reasonable bitrate
// adaptation algorithm (such as [Bicket05])". We provide:
//  - fixed_rate: no adaptation (the baseline the thesis criticizes);
//  - best_fixed_rate_oracle: the thesis' own experimental method -
//    independently identify the best rate per run;
//  - arf: Auto Rate Fallback, the classic success/failure counter;
//  - sample_rate: Bicket's SampleRate, minimizing expected air time
//    per successful packet with periodic probing.
#pragma once

#include <cstddef>
#include <vector>

#include "src/capacity/error_models.hpp"
#include "src/capacity/rate_table.hpp"
#include "src/stats/rng.hpp"

namespace csense::capacity {

/// Interface for per-packet rate selection with delivery feedback.
class rate_adaptation {
public:
    virtual ~rate_adaptation() = default;

    /// Rate to use for the next transmission.
    virtual const phy_rate& next_rate() = 0;

    /// Report the outcome of the last transmission at `rate`.
    virtual void report(const phy_rate& rate, bool delivered,
                        double airtime_us) = 0;

    /// Name for reporting.
    virtual const char* name() const noexcept = 0;
};

/// Always the same rate.
class fixed_rate final : public rate_adaptation {
public:
    explicit fixed_rate(const phy_rate& rate) : rate_(&rate) {}

    const phy_rate& next_rate() override { return *rate_; }
    void report(const phy_rate&, bool, double) override {}
    const char* name() const noexcept override { return "fixed"; }

private:
    const phy_rate* rate_;
};

/// ARF: move up one rate after `up_after` consecutive successes, down one
/// after `down_after` consecutive failures.
class arf final : public rate_adaptation {
public:
    explicit arf(const std::vector<phy_rate>& table = ofdm_rates(),
                 int up_after = 10, int down_after = 2);

    const phy_rate& next_rate() override;
    void report(const phy_rate& rate, bool delivered, double airtime_us) override;
    const char* name() const noexcept override { return "arf"; }

    std::size_t current_index() const noexcept { return index_; }

private:
    std::vector<phy_rate> table_;
    std::size_t index_ = 0;
    int up_after_;
    int down_after_;
    int successes_ = 0;
    int failures_ = 0;
};

/// SampleRate [Bicket05]: track an EWMA of per-packet air time (counting
/// retries/losses as wasted time) per rate; send at the rate with the
/// lowest expected time per delivered packet; spend ~10% of packets
/// probing other plausible rates.
class sample_rate final : public rate_adaptation {
public:
    explicit sample_rate(const std::vector<phy_rate>& table, int payload_bytes,
                         std::uint64_t seed = 1, double ewma_weight = 0.25,
                         double probe_fraction = 0.1);

    const phy_rate& next_rate() override;
    void report(const phy_rate& rate, bool delivered, double airtime_us) override;
    const char* name() const noexcept override { return "samplerate"; }

    /// Expected air time per delivered packet for a rate index (us);
    /// infinite when the rate has seen only failures.
    double expected_time_us(std::size_t index) const;

private:
    struct rate_state {
        double ewma_delivery = -1.0;  ///< -1 until first report
        std::size_t attempts = 0;
        std::size_t successes = 0;
    };

    std::size_t best_index() const;

    std::vector<phy_rate> table_;
    std::vector<rate_state> states_;
    int payload_bytes_;
    stats::rng rng_;
    double ewma_weight_;
    double probe_fraction_;
    std::size_t pending_index_ = 0;
};

/// The thesis' §4 oracle: evaluate the long-run delivery rate of every
/// rate in `table` at a fixed SINR using `model`, and return the rate
/// maximizing delivered packets/second of a saturated broadcast sender.
const phy_rate& best_fixed_rate_oracle(const std::vector<phy_rate>& table,
                                       const error_model& model, double sinr_db,
                                       int payload_bytes, int cw_min = 15);

}  // namespace csense::capacity
