#include "src/capacity/rate_table.hpp"

#include <cmath>
#include <stdexcept>

namespace csense::capacity {

std::string_view modulation_name(modulation m) noexcept {
    switch (m) {
        case modulation::bpsk: return "BPSK";
        case modulation::qpsk: return "QPSK";
        case modulation::qam16: return "16-QAM";
        case modulation::qam64: return "64-QAM";
    }
    return "?";
}

const std::vector<phy_rate>& ofdm_rates() {
    // min_snr_db values follow typical 802.11a receiver sensitivity specs
    // (e.g. Atheros data sheets), expressed as SNR over a -95 dBm floor.
    static const std::vector<phy_rate> rates = {
        {6.0, modulation::bpsk, 1.0 / 2.0, 24, 5.0},
        {9.0, modulation::bpsk, 3.0 / 4.0, 36, 6.0},
        {12.0, modulation::qpsk, 1.0 / 2.0, 48, 8.0},
        {18.0, modulation::qpsk, 3.0 / 4.0, 72, 10.0},
        {24.0, modulation::qam16, 1.0 / 2.0, 96, 13.0},
        {36.0, modulation::qam16, 3.0 / 4.0, 144, 17.0},
        {48.0, modulation::qam64, 2.0 / 3.0, 192, 21.0},
        {54.0, modulation::qam64, 3.0 / 4.0, 216, 23.0},
    };
    return rates;
}

const std::vector<phy_rate>& thesis_sweep_rates() {
    static const std::vector<phy_rate> rates = {
        rate_by_mbps(6.0),  rate_by_mbps(9.0),  rate_by_mbps(12.0),
        rate_by_mbps(18.0), rate_by_mbps(24.0),
    };
    return rates;
}

const phy_rate& rate_by_mbps(double mbps) {
    for (const auto& rate : ofdm_rates()) {
        if (rate.mbps == mbps) return rate;
    }
    throw std::invalid_argument("rate_by_mbps: not an 802.11a rate");
}

const phy_rate& best_rate_for_snr(double snr_db,
                                  const std::vector<phy_rate>& table) {
    if (table.empty()) throw std::invalid_argument("best_rate_for_snr: empty table");
    const phy_rate* best = &table.front();
    for (const auto& rate : table) {
        if (rate.min_snr_db <= snr_db && rate.mbps > best->mbps) best = &rate;
    }
    return *best;
}

double frame_airtime_us(const phy_rate& rate, int payload_bytes) {
    if (payload_bytes <= 0) {
        throw std::invalid_argument("frame_airtime_us: payload must be positive");
    }
    const int bits = ofdm_timing::service_tail_bits + 8 * payload_bytes;
    const int symbols =
        (bits + rate.bits_per_symbol - 1) / rate.bits_per_symbol;
    return ofdm_timing::preamble_us + ofdm_timing::signal_us +
           ofdm_timing::symbol_us * symbols;
}

double saturated_broadcast_pps(const phy_rate& rate, int payload_bytes,
                               int cw_min) {
    const double mean_backoff_us =
        0.5 * static_cast<double>(cw_min) * ofdm_timing::slot_us;
    const double cycle_us = ofdm_timing::difs_us + mean_backoff_us +
                            frame_airtime_us(rate, payload_bytes);
    return 1e6 / cycle_us;
}

}  // namespace csense::capacity
