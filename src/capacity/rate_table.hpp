// 802.11a/g OFDM bitrates, their modulation parameters, receiver SNR
// requirements, and air-time arithmetic. The §4 experiments sweep the
// subset {6, 9, 12, 18, 24} Mb/s exactly as the thesis' driver did.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace csense::capacity {

/// Modulation used by an OFDM rate.
enum class modulation {
    bpsk,
    qpsk,
    qam16,
    qam64,
};

/// One PHY rate entry.
struct phy_rate {
    double mbps = 0.0;               ///< nominal data rate in Mb/s
    modulation mod = modulation::bpsk;
    double code_rate = 0.5;          ///< convolutional code rate
    int bits_per_symbol = 24;        ///< data bits per 4 us OFDM symbol
    double min_snr_db = 0.0;         ///< SNR at ~10% PER for 1000 B frames
};

/// Human-readable modulation name.
std::string_view modulation_name(modulation m) noexcept;

/// The eight 802.11a/g OFDM rates (6..54 Mb/s), ascending.
const std::vector<phy_rate>& ofdm_rates();

/// The subset the thesis' experiments could sweep: {6, 9, 12, 18, 24}.
const std::vector<phy_rate>& thesis_sweep_rates();

/// Look up a rate entry by its Mb/s value; throws if not a valid rate.
const phy_rate& rate_by_mbps(double mbps);

/// Highest rate whose min_snr_db is at or below the given SNR, or the
/// lowest rate if none qualifies (the radio always has a base rate).
const phy_rate& best_rate_for_snr(double snr_db,
                                  const std::vector<phy_rate>& table = ofdm_rates());

/// 802.11a timing constants (OFDM PHY, 20 MHz channel).
struct ofdm_timing {
    static constexpr double preamble_us = 16.0;  ///< PLCP preamble
    static constexpr double signal_us = 4.0;     ///< SIGNAL field (at base rate)
    static constexpr double symbol_us = 4.0;     ///< OFDM symbol duration
    static constexpr int service_tail_bits = 22; ///< SERVICE + tail bits
    static constexpr double slot_us = 9.0;
    static constexpr double sifs_us = 16.0;
    static constexpr double difs_us = sifs_us + 2.0 * slot_us;  // 34 us
};

/// Air time in microseconds of a frame with `payload_bytes` of MAC-level
/// payload (including MAC header/FCS) at the given rate, per 802.11a
/// framing: preamble + SIGNAL + ceil((service+8*bytes+tail) / bits-per-
/// symbol) symbols.
double frame_airtime_us(const phy_rate& rate, int payload_bytes);

/// Throughput in packets/second of a saturated broadcast sender at the
/// given rate: one frame per DIFS + expected backoff + airtime. `cw_min`
/// is the contention window the expected backoff is drawn from.
double saturated_broadcast_pps(const phy_rate& rate, int payload_bytes,
                               int cw_min = 15);

}  // namespace csense::capacity
