#include "src/capacity/shannon.hpp"

#include <cmath>
#include <stdexcept>

#include "src/propagation/units.hpp"

namespace csense::capacity {

double shannon_bits_per_hz(double snr_linear) {
    if (snr_linear < 0.0) {
        throw std::domain_error("shannon_bits_per_hz: negative SNR");
    }
    return std::log2(1.0 + snr_linear);
}

double shannon_bits_per_hz_db(double snr_db) {
    return shannon_bits_per_hz(propagation::db_to_linear(snr_db));
}

double snr_for_bits_per_hz(double bits_per_hz) {
    if (bits_per_hz < 0.0) {
        throw std::domain_error("snr_for_bits_per_hz: negative capacity");
    }
    return std::exp2(bits_per_hz) - 1.0;
}

double gapped_shannon_bits_per_hz(double snr_linear, double gap_db) {
    if (snr_linear < 0.0) {
        throw std::domain_error("gapped_shannon_bits_per_hz: negative SNR");
    }
    return std::log2(1.0 + snr_linear / propagation::db_to_linear(gap_db));
}

}  // namespace csense::capacity
