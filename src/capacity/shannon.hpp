// Shannon capacity as the model of adaptive-bitrate throughput (§2).
// The thesis uses C/B = log(1 + SNR) as "a rough proportional estimate"
// of what a bitrate-adapting radio achieves; we report capacities in
// bits/s/Hz (log base 2). Every ratio the model reports is independent of
// the log base.
#pragma once

namespace csense::capacity {

/// Spectral efficiency log2(1 + snr) in bits/s/Hz for a linear SNR >= 0.
double shannon_bits_per_hz(double snr_linear);

/// Spectral efficiency for an SNR given in dB.
double shannon_bits_per_hz_db(double snr_db);

/// Inverse: the linear SNR required for a target spectral efficiency.
double snr_for_bits_per_hz(double bits_per_hz);

/// A practical radio achieves a constant fraction of Shannon capacity
/// ("less by some constant fraction", §3.2.1). This helper applies a gap
/// expressed in dB to the SNR before evaluating capacity.
double gapped_shannon_bits_per_hz(double snr_linear, double gap_db);

}  // namespace csense::capacity
