#include "src/core/adaptive_threshold.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace csense::core {

void fixed_point_options::validate() const {
    if (!(gain > 0.0) || gain > 1.0) {
        throw std::invalid_argument("fixed_point_options: gain not in (0, 1]");
    }
    if (max_iterations < 1) {
        throw std::invalid_argument("fixed_point_options: max_iterations < 1");
    }
    if (!(log_tolerance > 0.0)) {
        throw std::invalid_argument("fixed_point_options: log_tolerance <= 0");
    }
    if (initial_d < 0.0) {
        throw std::invalid_argument("fixed_point_options: negative initial_d");
    }
}

fixed_point_result solve_threshold_fixed_point(
    const expectation_engine& engine, double rmax,
    const fixed_point_options& options) {
    options.validate();
    if (!(rmax > 0.0)) {
        throw std::domain_error("solve_threshold_fixed_point: rmax");
    }
    const double mux = engine.expected_multiplexing(rmax);

    // Extreme-long-range guard (footnote 11's CDMA-like regime): when
    // concurrency beats the fair TDMA share even with a collocated
    // interferer, the crossing does not exist and the iteration would
    // drive D to zero. Mirror optimal_threshold()'s detection.
    const double d_floor = 1e-3 * rmax;
    if (engine.expected_concurrent(rmax, d_floor) > mux) {
        fixed_point_result degenerate;
        degenerate.d_thresh = 0.0;
        degenerate.crossing_value = mux;
        degenerate.converged = false;
        return degenerate;
    }

    // Keep the iterate inside a sane bracket: below d_floor the guard
    // above already ruled the answer out, and far beyond Rmax the
    // concurrent capacity saturates so log steps stop carrying signal.
    const double d_ceiling = 1e3 * rmax;

    fixed_point_result result;
    double d = (options.initial_d > 0.0) ? options.initial_d : rmax;
    d = std::clamp(d, d_floor, d_ceiling);
    result.trajectory.push_back(d);
    for (int k = 0; k < options.max_iterations; ++k) {
        const double conc = engine.expected_concurrent(rmax, d);
        if (!(conc > 0.0)) {
            // A dead concurrent channel (possible only at pathological
            // parameters): step outward by the full damping instead of
            // taking log(inf).
            d = std::min(2.0 * d, d_ceiling);
            result.trajectory.push_back(d);
            ++result.iterations;
            continue;
        }
        const double step = options.gain * std::log(mux / conc);
        const double next = std::clamp(d * std::exp(step), d_floor, d_ceiling);
        ++result.iterations;
        result.trajectory.push_back(next);
        const bool done = std::abs(std::log(next / d)) < options.log_tolerance;
        d = next;
        if (done) {
            result.converged = true;
            break;
        }
    }
    result.d_thresh = d;
    result.crossing_value = mux;
    return result;
}

}  // namespace csense::core
