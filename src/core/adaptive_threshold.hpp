// Iterative fixed-point solution of the optimal carrier-sense threshold,
// after Kim & Kim ("An Iterative Algorithm for Optimal Carrier Sensing
// Threshold in Random CSMA/CA Networks"): instead of root-finding the
// crossing <C_conc>(Rmax, D) = <C_mux>(Rmax) directly (see
// src/core/threshold.hpp), iterate the damped log-domain update
//
//   log D_{k+1} = log D_k + gain * log( <C_mux>(Rmax) / <C_conc>(Rmax, D_k) )
//
// whose unique fixed point is the same crossing. <C_conc> is monotone
// increasing in D, so the update is a contraction around the crossing
// for gains in (0, 1]; the trajectory is exposed so the online policy in
// src/mac/adaptive_cs.hpp (which runs the same balance condition against
// *measured* capacities) can be compared against the model step by step.
//
// The solver evaluates everything through an expectation_engine, so the
// memoized <C_single>/<C_conc> integrals (src/core/expected.hpp) are
// shared with any other threshold machinery on the same engine: an
// iteration that revisits a (rmax, d) pair, or a later Brent solve over
// the same engine, pays for each integral once.
#pragma once

#include <vector>

#include "src/core/expected.hpp"

namespace csense::core {

/// Knobs of the damped fixed-point iteration.
struct fixed_point_options {
    /// Log-domain damping gain in (0, 1]. 1 is the undamped Kim & Kim
    /// update; smaller values trade iterations for robustness when
    /// <C_conc> is steep in log D.
    double gain = 0.6;

    /// Iteration cap before giving up.
    int max_iterations = 80;

    /// Convergence test: |log(D_{k+1}/D_k)| below this stops the loop.
    double log_tolerance = 1e-7;

    /// Starting point; 0 picks Rmax (a threshold at the network edge).
    double initial_d = 0.0;

    /// Throws std::invalid_argument on nonsensical options.
    void validate() const;
};

/// Outcome of one fixed-point solve.
struct fixed_point_result {
    /// The converged threshold distance (same units as Rmax).
    double d_thresh = 0.0;

    /// <C_mux>(Rmax) = <C_conc>(Rmax, d_thresh) at the fixed point.
    double crossing_value = 0.0;

    /// Iterations actually taken.
    int iterations = 0;

    /// False when the iteration hit max_iterations, or when the model is
    /// in the extreme-long-range regime (concurrency beats multiplexing
    /// even for collocated senders, so no finite crossing exists).
    bool converged = false;

    /// D_k per iteration, starting from the initial point. Lets callers
    /// plot or test the convergence path against the online controller.
    std::vector<double> trajectory;
};

/// Solve <C_conc>(Rmax, D) = <C_mux>(Rmax) by the damped fixed-point
/// iteration above. Matches optimal_threshold()'s Brent root for every
/// environment with a crossing; in the extreme-long-range regime it
/// returns d_thresh = 0 and converged = false (mirroring
/// threshold_result::found).
fixed_point_result solve_threshold_fixed_point(
    const expectation_engine& engine, double rmax,
    const fixed_point_options& options = {});

}  // namespace csense::core
