#include "src/core/efficiency.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace csense::core {

policy_point evaluate_policies(const expectation_engine& engine, double rmax,
                               double d, double d_thresh,
                               bool with_upper_bound) {
    policy_point point;
    point.rmax = rmax;
    point.d = d;
    point.multiplexing = engine.expected_multiplexing(rmax);
    point.concurrent = engine.expected_concurrent(rmax, d);
    const double p_defer = engine.defer_probability(d, d_thresh);
    point.carrier_sense =
        p_defer * point.multiplexing + (1.0 - p_defer) * point.concurrent;
    const estimate optimal = engine.expected_optimal(rmax, d);
    point.optimal = optimal.mean;
    point.optimal_stderr = optimal.stderr_mean;
    if (with_upper_bound) {
        point.upper_bound = engine.expected_upper_bound(rmax, d);
    }
    return point;
}

efficiency_table build_efficiency_table(const expectation_engine& engine,
                                        const std::vector<double>& rmax_values,
                                        const std::vector<double>& d_values,
                                        double fixed_d_thresh) {
    return build_efficiency_table(
        engine, rmax_values, d_values,
        std::vector<double>(rmax_values.size(), fixed_d_thresh));
}

efficiency_table build_efficiency_table(const expectation_engine& engine,
                                        const std::vector<double>& rmax_values,
                                        const std::vector<double>& d_values,
                                        const std::vector<double>& d_thresh) {
    if (d_thresh.size() != rmax_values.size()) {
        throw std::invalid_argument(
            "build_efficiency_table: one threshold per Rmax row required");
    }
    efficiency_table table;
    table.rmax_values = rmax_values;
    table.d_values = d_values;
    table.d_thresh = d_thresh;
    for (std::size_t i = 0; i < rmax_values.size(); ++i) {
        std::vector<policy_point> row;
        row.reserve(d_values.size());
        for (double d : d_values) {
            row.push_back(evaluate_policies(engine, rmax_values[i], d,
                                            d_thresh[i]));
        }
        table.rows.push_back(std::move(row));
    }
    return table;
}

inefficiency_decomposition decompose_inefficiency(
    const expectation_engine& engine, double rmax, double d_thresh,
    double d_lo, double d_hi, int grid_points) {
    if (!(d_lo > 0.0) || !(d_hi > d_lo) || grid_points < 4) {
        throw std::invalid_argument("decompose_inefficiency: bad grid");
    }
    inefficiency_decomposition result;
    const double mux = engine.expected_multiplexing(rmax);
    const double step = (d_hi - d_lo) / grid_points;
    for (int i = 0; i < grid_points; ++i) {
        const double d = d_lo + step * (i + 0.5);
        const double conc = engine.expected_concurrent(rmax, d);
        const double cs = (d < d_thresh) ? mux : conc;
        const double best_branch = std::max(mux, conc);
        const double optimal = engine.expected_optimal(rmax, d).mean;
        const double gap = std::max(optimal - cs, 0.0);
        // Avoidable part: loss recoverable just by moving the threshold
        // (CS below the better of its own two branches).
        const double avoidable = std::max(best_branch - cs, 0.0);
        if (d < d_thresh) {
            result.exposed_area += gap * step;
            result.avoidable_exposed += avoidable * step;
        } else {
            result.hidden_area += gap * step;
            result.avoidable_hidden += avoidable * step;
        }
    }
    return result;
}

}  // namespace csense::core
