// Carrier-sense efficiency (§3.2.5): CS throughput as a fraction of the
// optimal MAC's, across the (Rmax, D) grid the thesis tabulates, plus the
// Figure 6 decomposition of inefficiency into "hidden terminal" (right of
// the threshold) and "exposed terminal" (left of the threshold) gaps.
#pragma once

#include <vector>

#include "src/core/expected.hpp"

namespace csense::core {

/// All policy averages for one (Rmax, D) point.
struct policy_point {
    double rmax = 0.0;
    double d = 0.0;
    double multiplexing = 0.0;
    double concurrent = 0.0;
    double carrier_sense = 0.0;
    double optimal = 0.0;
    double optimal_stderr = 0.0;
    double upper_bound = 0.0;  ///< <C_UBmax>

    /// CS / optimal.
    double efficiency() const noexcept {
        return (optimal > 0.0) ? carrier_sense / optimal : 0.0;
    }
};

/// Evaluate every policy at one point for a given threshold distance.
policy_point evaluate_policies(const expectation_engine& engine, double rmax,
                               double d, double d_thresh,
                               bool with_upper_bound = false);

/// The §3.2.5 efficiency table: rows Rmax, columns D, entries CS/optimal.
struct efficiency_table {
    std::vector<double> rmax_values;
    std::vector<double> d_values;
    std::vector<double> d_thresh;            ///< per-row threshold used
    std::vector<std::vector<policy_point>> rows;
};

/// Build the table with one fixed threshold for all rows (Table 1) ...
efficiency_table build_efficiency_table(const expectation_engine& engine,
                                        const std::vector<double>& rmax_values,
                                        const std::vector<double>& d_values,
                                        double fixed_d_thresh);

/// ... or with a per-row threshold (Table 2's tuned thresholds).
efficiency_table build_efficiency_table(const expectation_engine& engine,
                                        const std::vector<double>& rmax_values,
                                        const std::vector<double>& d_values,
                                        const std::vector<double>& d_thresh);

/// Figure 6's shaded areas for a threshold at sigma = 0: integrate the
/// optimal-vs-CS gap over D on each side of the threshold. The "triangle"
/// of avoidable loss is the part of the gap below max(<C_mux>, <C_conc>).
struct inefficiency_decomposition {
    double exposed_area = 0.0;      ///< gap left of threshold (mux branch)
    double hidden_area = 0.0;       ///< gap right of threshold (conc branch)
    double avoidable_exposed = 0.0; ///< exposed triangle from bad threshold
    double avoidable_hidden = 0.0;  ///< hidden triangle from bad threshold
};

inefficiency_decomposition decompose_inefficiency(
    const expectation_engine& engine, double rmax, double d_thresh,
    double d_lo, double d_hi, int grid_points = 60);

}  // namespace csense::core
