#include "src/core/expected.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/core/geometry.hpp"
#include "src/core/policies.hpp"
#include "src/stats/distributions.hpp"
#include "src/stats/quadrature.hpp"
#include "src/stats/rng.hpp"

namespace csense::core {
namespace {

void require_positive(double value, const char* what) {
    if (!(value > 0.0)) throw std::domain_error(what);
}

}  // namespace

expectation_engine::expectation_engine(model_params params,
                                       quadrature_options quad, mc_options mc)
    : params_(params), quad_(quad), mc_(mc) {
    params_.validate();
    quad_.validate();
    if (mc_.samples < 16) {
        throw std::invalid_argument("mc_options: need at least 16 samples");
    }
}

double expectation_engine::expected_single(double rmax) const {
    require_positive(rmax, "expected_single: rmax");
    // C_single is independent of theta: reduce to a radial integral
    // (2 / Rmax^2) Int_0^Rmax E_L[C_single(r, L)] r dr.
    const auto& rule = stats::gauss_legendre(quad_.radial_nodes);
    const stats::lognormal_shadowing shadow(params_.sigma_db);
    double sum = 0.0;
    for (int i = 0; i < quad_.radial_nodes; ++i) {
        const double r = 0.5 * rmax * (rule.nodes[i] + 1.0);
        const double wr = 0.5 * rmax * rule.weights[i];
        double value;
        if (params_.deterministic()) {
            value = capacity_single(params_, r);
        } else {
            value = stats::normal_expectation(
                [&](double z) {
                    return capacity_single(params_, r,
                                           shadow.from_standard_normal(z));
                },
                quad_.shadow_nodes);
        }
        sum += wr * r * value;
    }
    return 2.0 * sum / (rmax * rmax);
}

double expectation_engine::expected_multiplexing(double rmax) const {
    return 0.5 * expected_single(rmax);
}

double expectation_engine::shadow_average_concurrent(double, double r,
                                                     double theta,
                                                     double d) const {
    if (params_.deterministic()) {
        return capacity_concurrent(params_, r, theta, d);
    }
    const stats::lognormal_shadowing shadow(params_.sigma_db);
    // E over the two independent shadowing axes (signal, interference).
    return stats::normal_expectation(
        [&](double zs) {
            const double ls = shadow.from_standard_normal(zs);
            return stats::normal_expectation(
                [&](double zi) {
                    const double li = shadow.from_standard_normal(zi);
                    return capacity_concurrent(params_, r, theta, d, ls, li);
                },
                quad_.shadow_nodes);
        },
        quad_.shadow_nodes);
}

double expectation_engine::expected_concurrent(double rmax, double d) const {
    require_positive(rmax, "expected_concurrent: rmax");
    if (d < 0.0) throw std::domain_error("expected_concurrent: d");
    return stats::disc_average(
        [&](double r, double theta) {
            return shadow_average_concurrent(rmax, r, theta, d);
        },
        rmax, quad_.radial_nodes, quad_.angular_nodes);
}

double expectation_engine::expected_upper_bound(double rmax, double d) const {
    require_positive(rmax, "expected_upper_bound: rmax");
    const stats::lognormal_shadowing shadow(params_.sigma_db);
    return stats::disc_average(
        [&](double r, double theta) {
            if (params_.deterministic()) {
                return capacity_upper_bound(params_, r, theta, d);
            }
            return stats::normal_expectation(
                [&](double zs) {
                    const double ls = shadow.from_standard_normal(zs);
                    return stats::normal_expectation(
                        [&](double zi) {
                            const double li = shadow.from_standard_normal(zi);
                            return capacity_upper_bound(params_, r, theta, d,
                                                        ls, li);
                        },
                        quad_.shadow_nodes);
                },
                quad_.shadow_nodes);
        },
        rmax, quad_.radial_nodes, quad_.angular_nodes);
}

double expectation_engine::defer_probability(double d, double d_thresh) const {
    require_positive(d, "defer_probability: d");
    if (d_thresh <= 0.0) return 0.0;  // zero threshold: never defer
    if (params_.deterministic()) {
        return (d < d_thresh) ? 1.0 : 0.0;
    }
    // Defer when D^-alpha * L'' > D_thresh^-alpha, i.e. when the sensing
    // shadow exceeds the dB margin between D and the threshold distance.
    const double margin_db = 10.0 * params_.alpha * std::log10(d / d_thresh);
    return 1.0 - stats::normal_cdf(margin_db / params_.sigma_db);
}

double expectation_engine::expected_carrier_sense(double rmax, double d,
                                                  double d_thresh) const {
    const double p_defer = defer_probability(d, d_thresh);
    const double mux = expected_multiplexing(rmax);
    if (p_defer >= 1.0) return mux;
    const double conc = expected_concurrent(rmax, d);
    return p_defer * mux + (1.0 - p_defer) * conc;
}

std::vector<double> expectation_engine::sample_deltas(double rmax, double d,
                                                      std::size_t count) const {
    require_positive(rmax, "sample_deltas: rmax");
    std::vector<double> deltas;
    deltas.reserve(count);
    const stats::lognormal_shadowing shadow(params_.sigma_db);
    stats::rng base(mc_.seed);
    // One derived stream per sample index: common random numbers across
    // calls with different (rmax, d) but the same seed.
    for (std::size_t i = 0; i < count; ++i) {
        stats::rng gen = base.split(static_cast<std::uint64_t>(i));
        const auto point = stats::sample_uniform_disc(gen, rmax);
        double ls = 1.0, li = 1.0;
        if (!params_.deterministic()) {
            ls = shadow.sample(gen);
            li = shadow.sample(gen);
        }
        const double conc =
            capacity_concurrent(params_, point.r, point.theta, d, ls, li);
        const double mux = capacity_multiplexing(params_, point.r, ls);
        deltas.push_back(conc - mux);
    }
    return deltas;
}

estimate rectified_pair_mean(std::vector<double> samples) {
    const std::size_t k = samples.size();
    if (k < 2) throw std::invalid_argument("rectified_pair_mean: need >= 2");
    std::sort(samples.begin(), samples.end());
    // Suffix sums: suffix[j] = sum of samples[j..k-1].
    std::vector<double> suffix(k + 1, 0.0);
    for (std::size_t j = k; j-- > 0;) {
        suffix[j] = suffix[j + 1] + samples[j];
    }
    // g[i] = (1/(k-1)) * sum_{j != i} max(samples[i] + samples[j], 0).
    // For sorted samples, the j with samples[j] >= -samples[i] form a
    // suffix, found by binary search.
    double total = 0.0;
    std::vector<double> g(k, 0.0);
    for (std::size_t i = 0; i < k; ++i) {
        const double x = samples[i];
        const auto first =
            std::lower_bound(samples.begin(), samples.end(), -x);
        const std::size_t j0 = static_cast<std::size_t>(first - samples.begin());
        const double cnt = static_cast<double>(k - j0);
        double sum = suffix[j0] + x * cnt;
        // The diagonal term j == i lies in the suffix exactly when x >= 0
        // (sorted order); exclude its contribution max(2x, 0) = 2x.
        if (x >= 0.0) sum -= 2.0 * x;
        g[i] = sum / static_cast<double>(k - 1);
        total += sum;
    }
    const double mean =
        total / (static_cast<double>(k) * static_cast<double>(k - 1));
    // Hajek projection: Var(U) ~ (4/k) Var(g_i) for a degree-2 U-statistic.
    double gm = 0.0;
    for (double v : g) gm += v;
    gm /= static_cast<double>(k);
    double var_g = 0.0;
    for (double v : g) var_g += (v - gm) * (v - gm);
    var_g /= static_cast<double>(k - 1);
    const double stderr_u = std::sqrt(4.0 * var_g / static_cast<double>(k));
    return {mean, stderr_u};
}

estimate expectation_engine::expected_optimal(double rmax, double d) const {
    const double mux = expected_multiplexing(rmax);
    auto deltas = sample_deltas(rmax, d, mc_.samples);
    const estimate rectified = rectified_pair_mean(std::move(deltas));
    // <C_max> = 1/2 E[max(Cc1+Cc2, Cm1+Cm2)]
    //         = <C_mux> + 1/2 E[(Delta1 + Delta2)^+].
    return {mux + 0.5 * rectified.mean, 0.5 * rectified.stderr_mean};
}

double expectation_engine::normalization() const {
    return expected_single(20.0);
}

double expectation_engine::expected_multiplexing_fixed_rate(
    double rmax, double rate_bits_per_hz) const {
    require_positive(rmax, "expected_multiplexing_fixed_rate: rmax");
    const stats::lognormal_shadowing shadow(params_.sigma_db);
    const auto& rule = stats::gauss_legendre(quad_.radial_nodes);
    double sum = 0.0;
    for (int i = 0; i < quad_.radial_nodes; ++i) {
        const double r = 0.5 * rmax * (rule.nodes[i] + 1.0);
        const double wr = 0.5 * rmax * rule.weights[i];
        auto value_at = [&](double ls) {
            return 0.5 * capacity_fixed_rate(snr_single(params_, r, ls),
                                             rate_bits_per_hz);
        };
        double value;
        if (params_.deterministic()) {
            value = value_at(1.0);
        } else {
            value = stats::normal_expectation(
                [&](double z) { return value_at(shadow.from_standard_normal(z)); },
                quad_.shadow_nodes);
        }
        sum += wr * r * value;
    }
    return 2.0 * sum / (rmax * rmax);
}

double expectation_engine::expected_concurrent_fixed_rate(
    double rmax, double d, double rate_bits_per_hz) const {
    require_positive(rmax, "expected_concurrent_fixed_rate: rmax");
    const stats::lognormal_shadowing shadow(params_.sigma_db);
    return stats::disc_average(
        [&](double r, double theta) {
            auto value_at = [&](double ls, double li) {
                return capacity_fixed_rate(
                    sinr_concurrent(params_, r, theta, d, ls, li),
                    rate_bits_per_hz);
            };
            if (params_.deterministic()) return value_at(1.0, 1.0);
            return stats::normal_expectation(
                [&](double zs) {
                    const double ls = shadow.from_standard_normal(zs);
                    return stats::normal_expectation(
                        [&](double zi) {
                            return value_at(ls, shadow.from_standard_normal(zi));
                        },
                        quad_.shadow_nodes);
                },
                quad_.shadow_nodes);
        },
        rmax, quad_.radial_nodes, quad_.angular_nodes);
}

}  // namespace csense::core
