#include "src/core/expected.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <numbers>
#include <stdexcept>
#include <utility>

#include "src/core/geometry.hpp"
#include "src/core/parallel.hpp"
#include "src/core/policies.hpp"
#include "src/stats/distributions.hpp"
#include "src/stats/quadrature.hpp"
#include "src/stats/rng.hpp"

namespace csense::core {
namespace {

void require_positive(double value, const char* what) {
    if (!(value > 0.0)) throw std::domain_error(what);
}

/// MC sample indices per scheduled chunk in sample_deltas. Fixed (never
/// derived from the thread count) so the delta vector is placed
/// identically for every worker count.
constexpr std::size_t kDeltaGrain = 2048;

/// E over one shadowing axis of kernel(ls), replicating
/// stats::normal_expectation's arithmetic exactly: sum of weight * value
/// in node order, then one division by sqrt(pi).
template <class Kernel>
double shadow_average_1(const std::vector<double>& factors,
                        const std::vector<double>& weights, Kernel&& kernel) {
    double sum = 0.0;
    for (std::size_t i = 0; i < factors.size(); ++i) {
        sum += weights[i] * kernel(factors[i]);
    }
    return sum / std::sqrt(std::numbers::pi);
}

/// E over the two independent shadowing axes (signal, interference) of
/// kernel(ls, li); bit-identical to the nested normal_expectation pair it
/// replaces.
template <class Kernel>
double shadow_average_2(const std::vector<double>& factors,
                        const std::vector<double>& weights, Kernel&& kernel) {
    double outer = 0.0;
    for (std::size_t s = 0; s < factors.size(); ++s) {
        const double ls = factors[s];
        double inner = 0.0;
        for (std::size_t i = 0; i < factors.size(); ++i) {
            inner += weights[i] * kernel(ls, factors[i]);
        }
        outer += weights[s] * (inner / std::sqrt(std::numbers::pi));
    }
    return outer / std::sqrt(std::numbers::pi);
}

}  // namespace

/// Per-engine cache of the deterministic integrals that threshold sweeps
/// re-request: <C_single>(rmax) and <C_conc>(rmax, d). Shared between
/// engine copies; keyed by the exact argument bits.
struct expectation_memo {
    std::mutex mutex;
    std::map<double, double> single_by_rmax;
    std::map<std::pair<double, double>, double> concurrent_by_rmax_d;
};

expectation_engine::expectation_engine(model_params params,
                                       quadrature_options quad, mc_options mc)
    : params_(params),
      quad_(quad),
      mc_(mc),
      memo_(std::make_shared<expectation_memo>()) {
    params_.validate();
    quad_.validate();
    if (mc_.samples < 16) {
        throw std::invalid_argument("mc_options: need at least 16 samples");
    }
    if (mc_.threads < 0) {
        throw std::invalid_argument("mc_options: negative thread count");
    }
    // Hoist the rule lookups out of every integral: the radial rule is
    // reference-stable in the global cache, and the shadowing axis is
    // flattened to (linear factor, weight) arrays up front.
    radial_rule_ = &stats::gauss_legendre(quad_.radial_nodes);
    if (!params_.deterministic()) {
        const auto& rule = stats::gauss_hermite(quad_.shadow_nodes);
        const stats::lognormal_shadowing shadow(params_.sigma_db);
        shadow_weights_ = rule.weights;
        shadow_factors_.resize(rule.nodes.size());
        for (std::size_t i = 0; i < rule.nodes.size(); ++i) {
            shadow_factors_[i] =
                shadow.from_standard_normal(std::numbers::sqrt2 * rule.nodes[i]);
        }
    }
}

/// (2 / rmax^2) Int_0^rmax value_at(r) r dr over the radial rule, with
/// one parallel task per radial node; partials combine in node order, so
/// the result matches the serial loop bit-for-bit at any thread count.
template <class RadialFn>
double expectation_engine::radial_reduce(double rmax,
                                         RadialFn&& value_at) const {
    const auto& rule = *radial_rule_;
    const double sum = parallel_reduce(
        mc_.threads, static_cast<std::size_t>(quad_.radial_nodes),
        [&](std::size_t i) {
            const double r = 0.5 * rmax * (rule.nodes[i] + 1.0);
            const double wr = 0.5 * rmax * rule.weights[i];
            return wr * r * value_at(r);
        });
    return 2.0 * sum / (rmax * rmax);
}

/// Disc average of point(r, theta) (Gauss-Legendre radially, periodic
/// rectangle rule in angle), parallelized over radial rows. Each row's
/// angular ring accumulates serially in index order and rows combine in
/// radial order: bit-identical to stats::disc_average for every thread
/// count.
template <class PointFn>
double expectation_engine::disc_reduce(double rmax, PointFn&& point) const {
    const auto& rule = *radial_rule_;
    const int ntheta = quad_.angular_nodes;
    const double dtheta = 2.0 * std::numbers::pi / ntheta;
    const double sum = parallel_reduce(
        mc_.threads, static_cast<std::size_t>(quad_.radial_nodes),
        [&](std::size_t i) {
            const double r = 0.5 * rmax * (rule.nodes[i] + 1.0);
            const double wr = 0.5 * rmax * rule.weights[i];
            double ring = 0.0;
            for (int j = 0; j < ntheta; ++j) {
                const double theta = dtheta * (j + 0.5);
                ring += point(r, theta);
            }
            return wr * r * ring * dtheta;
        });
    const double area = std::numbers::pi * rmax * rmax;
    return sum / area;
}

double expectation_engine::expected_single(double rmax) const {
    require_positive(rmax, "expected_single: rmax");
    {
        std::scoped_lock lock(memo_->mutex);
        const auto it = memo_->single_by_rmax.find(rmax);
        if (it != memo_->single_by_rmax.end()) return it->second;
    }
    // C_single is independent of theta: reduce to a radial integral
    // (2 / Rmax^2) Int_0^Rmax E_L[C_single(r, L)] r dr.
    const double value = radial_reduce(rmax, [&](double r) {
        if (params_.deterministic()) {
            return capacity_single(params_, r);
        }
        return shadow_average_1(
            shadow_factors_, shadow_weights_,
            [&](double ls) { return capacity_single(params_, r, ls); });
    });
    std::scoped_lock lock(memo_->mutex);
    memo_->single_by_rmax.emplace(rmax, value);
    return value;
}

double expectation_engine::expected_multiplexing(double rmax) const {
    return 0.5 * expected_single(rmax);
}

double expectation_engine::expected_concurrent(double rmax, double d) const {
    require_positive(rmax, "expected_concurrent: rmax");
    if (d < 0.0) throw std::domain_error("expected_concurrent: d");
    const std::pair<double, double> key{rmax, d};
    {
        std::scoped_lock lock(memo_->mutex);
        const auto it = memo_->concurrent_by_rmax_d.find(key);
        if (it != memo_->concurrent_by_rmax_d.end()) return it->second;
    }
    const double value = disc_reduce(rmax, [&](double r, double theta) {
        if (params_.deterministic()) {
            return capacity_concurrent(params_, r, theta, d);
        }
        return shadow_average_2(shadow_factors_, shadow_weights_,
                                [&](double ls, double li) {
                                    return capacity_concurrent(params_, r,
                                                               theta, d, ls,
                                                               li);
                                });
    });
    std::scoped_lock lock(memo_->mutex);
    memo_->concurrent_by_rmax_d.emplace(key, value);
    return value;
}

double expectation_engine::expected_upper_bound(double rmax, double d) const {
    require_positive(rmax, "expected_upper_bound: rmax");
    return disc_reduce(rmax, [&](double r, double theta) {
        if (params_.deterministic()) {
            return capacity_upper_bound(params_, r, theta, d);
        }
        return shadow_average_2(shadow_factors_, shadow_weights_,
                                [&](double ls, double li) {
                                    return capacity_upper_bound(params_, r,
                                                                theta, d, ls,
                                                                li);
                                });
    });
}

double expectation_engine::defer_probability(double d, double d_thresh) const {
    require_positive(d, "defer_probability: d");
    if (d_thresh <= 0.0) return 0.0;  // zero threshold: never defer
    if (params_.deterministic()) {
        return (d < d_thresh) ? 1.0 : 0.0;
    }
    // Defer when D^-alpha * L'' > D_thresh^-alpha, i.e. when the sensing
    // shadow exceeds the dB margin between D and the threshold distance.
    const double margin_db = 10.0 * params_.alpha * std::log10(d / d_thresh);
    return 1.0 - stats::normal_cdf(margin_db / params_.sigma_db);
}

double expectation_engine::expected_carrier_sense(double rmax, double d,
                                                  double d_thresh) const {
    const double p_defer = defer_probability(d, d_thresh);
    const double mux = expected_multiplexing(rmax);
    if (p_defer >= 1.0) return mux;
    const double conc = expected_concurrent(rmax, d);
    return p_defer * mux + (1.0 - p_defer) * conc;
}

std::vector<double> expectation_engine::sample_deltas(double rmax, double d,
                                                      std::size_t count) const {
    require_positive(rmax, "sample_deltas: rmax");
    std::vector<double> deltas(count);
    const stats::lognormal_shadowing shadow(params_.sigma_db);
    const stats::rng base(mc_.seed);
    const bool deterministic = params_.deterministic();
    // One derived stream per sample index: common random numbers across
    // calls with different (rmax, d) but the same seed, and a delta
    // vector independent of how samples land on workers.
    parallel_for(mc_.threads, count, kDeltaGrain,
                 [&](std::size_t begin, std::size_t end) {
                     for (std::size_t i = begin; i < end; ++i) {
                         stats::rng gen =
                             base.split(static_cast<std::uint64_t>(i));
                         const auto point =
                             stats::sample_uniform_disc(gen, rmax);
                         double ls = 1.0, li = 1.0;
                         if (!deterministic) {
                             ls = shadow.sample(gen);
                             li = shadow.sample(gen);
                         }
                         const double conc = capacity_concurrent(
                             params_, point.r, point.theta, d, ls, li);
                         const double mux =
                             capacity_multiplexing(params_, point.r, ls);
                         deltas[i] = conc - mux;
                     }
                 });
    return deltas;
}

estimate rectified_pair_mean(std::vector<double> samples) {
    const std::size_t k = samples.size();
    if (k < 2) throw std::invalid_argument("rectified_pair_mean: need >= 2");
    std::sort(samples.begin(), samples.end());
    // Suffix sums: suffix[j] = sum of samples[j..k-1].
    std::vector<double> suffix(k + 1, 0.0);
    for (std::size_t j = k; j-- > 0;) {
        suffix[j] = suffix[j + 1] + samples[j];
    }
    // g[i] = (1/(k-1)) * sum_{j != i} max(samples[i] + samples[j], 0).
    // For sorted samples, the j with samples[j] >= -samples[i] form a
    // suffix, found by binary search.
    double total = 0.0;
    std::vector<double> g(k, 0.0);
    for (std::size_t i = 0; i < k; ++i) {
        const double x = samples[i];
        const auto first =
            std::lower_bound(samples.begin(), samples.end(), -x);
        const std::size_t j0 = static_cast<std::size_t>(first - samples.begin());
        const double cnt = static_cast<double>(k - j0);
        double sum = suffix[j0] + x * cnt;
        // The diagonal term j == i lies in the suffix exactly when x >= 0
        // (sorted order); exclude its contribution max(2x, 0) = 2x.
        if (x >= 0.0) sum -= 2.0 * x;
        g[i] = sum / static_cast<double>(k - 1);
        total += sum;
    }
    const double mean =
        total / (static_cast<double>(k) * static_cast<double>(k - 1));
    // Hajek projection: Var(U) ~ (4/k) Var(g_i) for a degree-2 U-statistic.
    double gm = 0.0;
    for (double v : g) gm += v;
    gm /= static_cast<double>(k);
    double var_g = 0.0;
    for (double v : g) var_g += (v - gm) * (v - gm);
    var_g /= static_cast<double>(k - 1);
    const double stderr_u = std::sqrt(4.0 * var_g / static_cast<double>(k));
    return {mean, stderr_u};
}

estimate expectation_engine::expected_optimal(double rmax, double d) const {
    const double mux = expected_multiplexing(rmax);
    auto deltas = sample_deltas(rmax, d, mc_.samples);
    const estimate rectified = rectified_pair_mean(std::move(deltas));
    // <C_max> = 1/2 E[max(Cc1+Cc2, Cm1+Cm2)]
    //         = <C_mux> + 1/2 E[(Delta1 + Delta2)^+].
    return {mux + 0.5 * rectified.mean, 0.5 * rectified.stderr_mean};
}

double expectation_engine::normalization() const {
    return expected_single(20.0);
}

double expectation_engine::expected_multiplexing_fixed_rate(
    double rmax, double rate_bits_per_hz) const {
    require_positive(rmax, "expected_multiplexing_fixed_rate: rmax");
    return radial_reduce(rmax, [&](double r) {
        auto value_at = [&](double ls) {
            return 0.5 * capacity_fixed_rate(snr_single(params_, r, ls),
                                             rate_bits_per_hz);
        };
        if (params_.deterministic()) return value_at(1.0);
        return shadow_average_1(shadow_factors_, shadow_weights_, value_at);
    });
}

double expectation_engine::expected_concurrent_fixed_rate(
    double rmax, double d, double rate_bits_per_hz) const {
    require_positive(rmax, "expected_concurrent_fixed_rate: rmax");
    return disc_reduce(rmax, [&](double r, double theta) {
        auto value_at = [&](double ls, double li) {
            return capacity_fixed_rate(
                sinr_concurrent(params_, r, theta, d, ls, li),
                rate_bits_per_hz);
        };
        if (params_.deterministic()) return value_at(1.0, 1.0);
        return shadow_average_2(shadow_factors_, shadow_weights_, value_at);
    });
}

}  // namespace csense::core
