// Expected (configuration-averaged) throughput under each MAC policy
// (§3.2.2): <C_i>(Rmax, D) = (1/pi Rmax^2) Int Int C_i(r, theta) r dtheta dr,
// additionally averaged over the lognormal shadowing draws when sigma > 0.
//
// Numerical strategy:
//  - single-pair policies (<C_single>, <C_mux>, <C_conc>, <C_UBmax>) use
//    deterministic tensor quadrature: Gauss-Legendre radially, the
//    periodic rectangle rule in angle, Gauss-Hermite per shadowing axis;
//  - carrier sense uses the closed-form defer probability
//    P(defer) = Phi(10 alpha log10(D_thresh / D) / sigma), since the
//    sensing shadow L'' is independent of everything at the receivers:
//    <C_cs> = P(defer) <C_mux> + (1 - P(defer)) <C_conc>;
//  - the joint optimal MAC <C_max> = <C_mux> + 1/2 E[(Delta_1 + Delta_2)^+]
//    with Delta = C_conc - C_mux per pair. The rectified cross term is
//    estimated by a U-statistic over K i.i.d. per-pair samples, evaluated
//    in O(K log K) by sorting + prefix sums, with a Hajek-projection
//    standard error. Only the (small) rectified term carries Monte Carlo
//    noise; the bulk of <C_max> is deterministic.
//
// Execution model (see src/core/parallel.hpp): every disc quadrature and
// the MC delta sampling run on precomputed flat (r, theta) x (z_s, z_i)
// grids with templated kernels, parallelized over radial rows / sample
// chunks whose boundaries never depend on the worker count. Results are
// therefore bit-identical for every `mc_options::threads` value,
// including the serial left-fold order of the original implementation.
#pragma once

#include <memory>
#include <vector>

#include "src/core/model.hpp"
#include "src/stats/quadrature.hpp"

namespace csense::core {

struct expectation_memo;

/// An estimate with Monte Carlo uncertainty (stderr = 0 for fully
/// deterministic quantities).
struct estimate {
    double mean = 0.0;
    double stderr_mean = 0.0;
};

/// Expected-throughput engine for a fixed propagation environment.
/// Methods are const; the pure-`rmax` integral <C_single> and the
/// (rmax, d)-keyed <C_conc> are memoized per engine (threshold sweeps
/// hold them fixed while varying d_thresh), so repeated calls with the
/// same arguments are O(map lookup). Copies share the memo; all cached
/// values are deterministic, so sharing is observationally pure.
class expectation_engine {
public:
    explicit expectation_engine(model_params params,
                                quadrature_options quad = {},
                                mc_options mc = {});

    const model_params& params() const noexcept { return params_; }
    const quadrature_options& quadrature() const noexcept { return quad_; }
    const mc_options& mc() const noexcept { return mc_; }

    /// <C_single>(Rmax): no competition.
    double expected_single(double rmax) const;

    /// <C_mux>(Rmax) = <C_single>/2: ideal TDMA.
    double expected_multiplexing(double rmax) const;

    /// <C_conc>(Rmax, D): both senders always transmit.
    double expected_concurrent(double rmax, double d) const;

    /// <C_UBmax>(Rmax, D) = E[max(C_conc, C_mux)]: per-receiver upper
    /// bound on the optimal MAC (§3.2.2).
    double expected_upper_bound(double rmax, double d) const;

    /// P(senders defer) for true separation D and threshold distance
    /// D_thresh (P_thresh = D_thresh^-alpha). Exactly 0/1 when sigma = 0.
    double defer_probability(double d, double d_thresh) const;

    /// <C_cs>(Rmax, D) for a given threshold distance.
    double expected_carrier_sense(double rmax, double d, double d_thresh) const;

    /// <C_max>(Rmax, D): the optimal MAC over both pairs jointly, with
    /// the equal-resources fairness constraint. Monte Carlo (see header
    /// comment); uncertainty reported in the estimate.
    estimate expected_optimal(double rmax, double d) const;

    /// Draw K i.i.d. per-pair values of Delta = C_conc - C_mux (the
    /// concurrency preference margin). Exposed for diagnostics and tests.
    std::vector<double> sample_deltas(double rmax, double d,
                                      std::size_t count) const;

    /// The thesis' normalization constant: <C_single> at Rmax = 20
    /// (Figure 4's vertical unit, "fraction of Rmax = 20, D = inf
    /// throughput" - a lone sender's average capacity).
    double normalization() const;

    /// Fixed-bitrate ("cookie cutter") variants for the §3.3.2 ablation:
    /// the radio always sends at `rate_bits_per_hz` and delivers nothing
    /// below the Shannon SNR requirement for that rate.
    double expected_multiplexing_fixed_rate(double rmax,
                                            double rate_bits_per_hz) const;
    double expected_concurrent_fixed_rate(double rmax, double d,
                                          double rate_bits_per_hz) const;

private:
    template <class PointFn>
    double disc_reduce(double rmax, PointFn&& point) const;
    template <class RadialFn>
    double radial_reduce(double rmax, RadialFn&& value_at) const;

    model_params params_;
    quadrature_options quad_;
    mc_options mc_;

    /// Hoisted quadrature lookups: the Gauss-Legendre radial rule
    /// (global cache, reference-stable) and the flattened shadowing axis
    /// (linear factor + Gauss-Hermite weight per node), precomputed once
    /// so the innermost loops touch plain arrays.
    const stats::quadrature_rule* radial_rule_ = nullptr;
    std::vector<double> shadow_factors_;
    std::vector<double> shadow_weights_;

    std::shared_ptr<expectation_memo> memo_;
};

/// E[(x + y)^+] over all ordered pairs (i != j) of the given samples,
/// computed in O(K log K), plus the Hajek-projection standard error of
/// that U-statistic. Exposed for unit testing.
estimate rectified_pair_mean(std::vector<double> samples);

}  // namespace csense::core
