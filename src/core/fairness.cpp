#include "src/core/fairness.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "src/core/policies.hpp"
#include "src/sim/campaign.hpp"
#include "src/stats/distributions.hpp"
#include "src/stats/rng.hpp"
#include "src/stats/summary.hpp"

namespace csense::core {

fairness_report analyze_fairness(const expectation_engine& engine, double rmax,
                                 double d, double d_thresh,
                                 std::size_t samples,
                                 double starvation_fraction) {
    if (!(rmax > 0.0) || !(d > 0.0) || samples < 100) {
        throw std::invalid_argument("analyze_fairness: bad arguments");
    }
    const auto& params = engine.params();
    const double p_defer = engine.defer_probability(d, d_thresh);
    const stats::lognormal_shadowing shadow(params.sigma_db);

    // Per-receiver throughputs land by sample index via the campaign
    // layer: the reduction below runs in the historical serial order, so
    // the report is bit-identical for every worker count (and to the
    // pre-campaign serial implementation).
    struct receiver_sample {
        double cs = 0.0;
        bool starved = false;
    };
    sim::campaign_options campaign;
    campaign.replications = samples;
    campaign.shard_size = 512;
    campaign.threads = engine.mc().threads;
    campaign.seed = engine.mc().seed ^ 0xfa17ULL;
    const auto sampled = sim::run_replications<receiver_sample>(
        campaign, [&](std::size_t, stats::rng& gen) {
            const auto point = stats::sample_uniform_disc(gen, rmax);
            double ls = 1.0, li = 1.0;
            if (!params.deterministic()) {
                ls = shadow.sample(gen);
                li = shadow.sample(gen);
            }
            const double mux = capacity_multiplexing(params, point.r, ls);
            const double conc =
                capacity_concurrent(params, point.r, point.theta, d, ls, li);
            receiver_sample sample;
            sample.cs = p_defer * mux + (1.0 - p_defer) * conc;
            sample.starved =
                sample.cs < starvation_fraction * std::max(mux, conc);
            return sample;
        });

    std::vector<double> throughput;
    throughput.reserve(samples);
    double sum = 0.0;
    std::size_t starved = 0;
    for (const auto& sample : sampled) {
        if (sample.starved) ++starved;
        throughput.push_back(sample.cs);
        sum += sample.cs;
    }

    fairness_report report;
    report.rmax = rmax;
    report.d = d;
    report.d_thresh = d_thresh;
    report.samples = samples;
    const double n = static_cast<double>(samples);
    report.mean = sum / n;
    report.jain_index = stats::jain_index(throughput);
    report.starved_fraction = static_cast<double>(starved) / n;
    std::nth_element(throughput.begin(),
                     throughput.begin() + static_cast<std::ptrdiff_t>(n / 10),
                     throughput.end());
    report.p10 = throughput[static_cast<std::size_t>(n / 10)];
    return report;
}

}  // namespace csense::core
