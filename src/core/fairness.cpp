#include "src/core/fairness.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "src/core/policies.hpp"
#include "src/stats/distributions.hpp"
#include "src/stats/rng.hpp"

namespace csense::core {

fairness_report analyze_fairness(const expectation_engine& engine, double rmax,
                                 double d, double d_thresh,
                                 std::size_t samples,
                                 double starvation_fraction) {
    if (!(rmax > 0.0) || !(d > 0.0) || samples < 100) {
        throw std::invalid_argument("analyze_fairness: bad arguments");
    }
    const auto& params = engine.params();
    const double p_defer = engine.defer_probability(d, d_thresh);
    const stats::lognormal_shadowing shadow(params.sigma_db);
    stats::rng base(engine.mc().seed ^ 0xfa17ULL);

    std::vector<double> throughput;
    throughput.reserve(samples);
    double sum = 0.0, sum_sq = 0.0;
    std::size_t starved = 0;
    for (std::size_t i = 0; i < samples; ++i) {
        stats::rng gen = base.split(static_cast<std::uint64_t>(i));
        const auto point = stats::sample_uniform_disc(gen, rmax);
        double ls = 1.0, li = 1.0;
        if (!params.deterministic()) {
            ls = shadow.sample(gen);
            li = shadow.sample(gen);
        }
        const double mux = capacity_multiplexing(params, point.r, ls);
        const double conc =
            capacity_concurrent(params, point.r, point.theta, d, ls, li);
        const double cs = p_defer * mux + (1.0 - p_defer) * conc;
        const double ub = std::max(mux, conc);
        if (cs < starvation_fraction * ub) ++starved;
        throughput.push_back(cs);
        sum += cs;
        sum_sq += cs * cs;
    }

    fairness_report report;
    report.rmax = rmax;
    report.d = d;
    report.d_thresh = d_thresh;
    report.samples = samples;
    const double n = static_cast<double>(samples);
    report.mean = sum / n;
    report.jain_index = (sum_sq > 0.0) ? (sum * sum) / (n * sum_sq) : 1.0;
    report.starved_fraction = static_cast<double>(starved) / n;
    std::nth_element(throughput.begin(),
                     throughput.begin() + static_cast<std::ptrdiff_t>(n / 10),
                     throughput.end());
    report.p10 = throughput[static_cast<std::size_t>(n / 10)];
    return report;
}

}  // namespace csense::core
