// Per-receiver fairness under carrier sense (§3.3.3's second-order
// claim): in *short range* networks "not only is average throughput
// good, but every receiver has a reasonable share"; in *long range*
// networks "a small, nearby fraction of receivers gets smothered in
// interference" whenever concurrency runs with an interferer inside the
// network. This module quantifies both: the starvation probability and
// Jain's fairness index over the receiver ensemble.
#pragma once

#include "src/core/expected.hpp"

namespace csense::core {

/// Distributional fairness metrics for one (Rmax, D, threshold) point.
struct fairness_report {
    double rmax = 0.0;
    double d = 0.0;
    double d_thresh = 0.0;
    double mean = 0.0;            ///< mean per-receiver CS throughput
    double p10 = 0.0;             ///< 10th percentile receiver throughput
    double jain_index = 0.0;      ///< (sum x)^2 / (n * sum x^2), 1 = fair
    double starved_fraction = 0.0;///< receivers below
                                  ///< starvation_fraction * C_UBmax
    std::size_t samples = 0;
};

/// Sample the per-receiver carrier-sense throughput distribution.
///
/// Each sample draws a receiver configuration (position + shadowing) and
/// an independent sensing shadow; the receiver's long-run throughput is
/// the defer-probability mixture of its multiplexing and concurrency
/// capacities. Starvation follows the thesis' Figure 3 criterion:
/// less than `starvation_fraction` of the receiver's own C_UBmax.
fairness_report analyze_fairness(const expectation_engine& engine, double rmax,
                                 double d, double d_thresh,
                                 std::size_t samples = 40000,
                                 double starvation_fraction = 0.1);

}  // namespace csense::core
