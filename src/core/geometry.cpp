#include "src/core/geometry.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace csense::core {

double interferer_distance(double r, double theta, double d) noexcept {
    const double dx = r * std::cos(theta) + d;
    const double dy = r * std::sin(theta);
    return std::sqrt(dx * dx + dy * dy);
}

double disc_fraction_closer_to_interferer(double d, double rmax) {
    if (!(d >= 0.0) || !(rmax > 0.0)) {
        throw std::invalid_argument("disc_fraction_closer_to_interferer");
    }
    // Points closer to the interferer lie beyond the perpendicular
    // bisector, a chord at distance d/2 from the disc centre.
    const double half = 0.5 * d;
    if (half >= rmax) return 0.0;
    // Circular segment beyond a chord at distance h from the centre:
    // area = R^2 * (phi - sin(phi)) / 2 with phi = 2*acos(h / R).
    const double phi = 2.0 * std::acos(half / rmax);
    const double segment = 0.5 * rmax * rmax * (phi - std::sin(phi));
    return segment / (std::numbers::pi * rmax * rmax);
}

}  // namespace csense::core
