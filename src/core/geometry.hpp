// Geometry of the model scenario (Figure 1): sender S1 at the origin, its
// receiver at polar (r, theta) within network range Rmax, and the
// interfering sender S2 on the negative x-axis at distance D.
#pragma once

namespace csense::core {

/// Distance from the interferer (at (-D, 0)) to a receiver at polar
/// coordinates (r, theta) around the origin:
/// sqrt((r cos(theta) + D)^2 + (r sin(theta))^2).
double interferer_distance(double r, double theta, double d) noexcept;

/// Fraction of the Rmax-disc (centred on the sender) lying closer to the
/// interferer at distance D than to the sender - the circular-segment
/// area beyond the perpendicular bisector. Used in the §3.4 worked
/// example ("approximately the fraction of the Rmax disc's area closer to
/// D = 20 than to the sender" ~ 20%).
double disc_fraction_closer_to_interferer(double d, double rmax);

}  // namespace csense::core
