// Parameters of the thesis' two-pair carrier-sense model (§3.2).
//
// Normalized units: transmit power P0 is folded into the noise term, so
// signal power at distance r is r^-alpha * L_sigma and the noise floor is
// N = N0 / P0 (default -65 dB, thesis fn. 5: with 802.11-like 15 dBm
// transmitters and a -95 dBm floor, r = 1 is roughly a human-scale
// distance from the antenna). Capacities are Shannon spectral
// efficiencies, log2(1 + SINR); every quantity the model reports is a
// ratio or normalized value, so the log base is immaterial.
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace csense::core {

/// Propagation-environment and power parameters of the analytic model.
struct model_params {
    double alpha = 3.0;      ///< path-loss exponent (2-4 typical)
    double sigma_db = 8.0;   ///< lognormal shadowing std dev; 0 disables
    double noise_db = -65.0; ///< N = N0/P0 in dB (negative)

    /// Throws std::invalid_argument if parameters are non-physical.
    void validate() const {
        if (!(alpha > 0.0)) throw std::invalid_argument("model_params: alpha");
        if (sigma_db < 0.0) throw std::invalid_argument("model_params: sigma");
        if (noise_db >= 0.0) throw std::invalid_argument("model_params: noise");
    }

    /// Linear noise floor N.
    double noise_linear() const noexcept {
        return std::pow(10.0, noise_db / 10.0);
    }

    /// True when shadowing is disabled (the §3.3 simplified model).
    bool deterministic() const noexcept { return sigma_db == 0.0; }
};

/// Numerical-accuracy knobs for the expectation engine.
struct quadrature_options {
    int radial_nodes = 48;    ///< Gauss-Legendre nodes in r
    int angular_nodes = 64;   ///< periodic-rule nodes in theta
    int shadow_nodes = 16;    ///< Gauss-Hermite nodes per shadowing axis

    void validate() const {
        if (radial_nodes < 2 || angular_nodes < 2 || shadow_nodes < 1) {
            throw std::invalid_argument("quadrature_options: too few nodes");
        }
    }
};

/// Monte Carlo and execution knobs for the expectation engine.
struct mc_options {
    std::size_t samples = 100'000;  ///< per-pair samples for the U-statistic
    std::uint64_t seed = 42;        ///< base seed (common random numbers)

    /// Worker threads for quadrature and delta sampling. 0 = auto
    /// (CSENSE_THREADS env, else hardware concurrency). Results are
    /// bit-identical for every value (see src/core/parallel.hpp).
    int threads = 0;
};

}  // namespace csense::core
