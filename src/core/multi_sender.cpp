#include "src/core/multi_sender.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "src/capacity/shannon.hpp"
#include "src/sim/campaign.hpp"
#include "src/stats/distributions.hpp"
#include "src/stats/rng.hpp"

namespace csense::core {
namespace {

/// Everything one sampled configuration contributes. The carrier-sense
/// decision is threshold-independent up to a comparison of `max_sensed`
/// against the threshold power, so one pass serves every candidate.
struct sample_stat {
    double multiplexing = 0.0;
    double concurrent = 0.0;
    double max_sensed = 0.0;
};

struct vec2 {
    double x, y;
};

/// Per-shard scratch: one allocation per shard instead of per sample.
struct sample_scratch {
    std::vector<vec2> sender_pos;
    std::vector<vec2> receiver_pos;
    // Per-(receiver, sender) shadows, row-major; [i * n + j] is the path
    // from sender j to receiver i. Sensing shadows are per sender pair.
    std::vector<double> path_shadow;

    explicit sample_scratch(int n)
        : sender_pos(n), receiver_pos(n), path_shadow(n * n) {}
};

sample_stat evaluate_sample(const model_params& params, int n, double rmax,
                            double d, double noise,
                            const stats::lognormal_shadowing& shadow,
                            sample_scratch& scratch, stats::rng& gen) {
    auto& sender_pos = scratch.sender_pos;
    auto& receiver_pos = scratch.receiver_pos;
    auto& path_shadow = scratch.path_shadow;

    // alpha = 3 is the thesis' default and the hot path: an O(n^2) grid
    // of libm pow calls per sample collapses to multiplications.
    const bool cubic = params.alpha == 3.0;
    const auto path_gain = [&](double dist) {
        return cubic ? 1.0 / (dist * dist * dist)
                     : std::pow(dist, -params.alpha);
    };

    // Geometry: sender 0 at the origin, the rest on a circle of
    // radius D at independent uniform angles.
    sender_pos[0] = {0.0, 0.0};
    for (int j = 1; j < n; ++j) {
        const double angle = gen.uniform(0.0, 2.0 * std::numbers::pi);
        sender_pos[j] = {d * std::cos(angle), d * std::sin(angle)};
    }
    for (int i = 0; i < n; ++i) {
        const auto p = stats::sample_uniform_disc(gen, rmax);
        receiver_pos[i] = {sender_pos[i].x + p.r * std::cos(p.theta),
                           sender_pos[i].y + p.r * std::sin(p.theta)};
        for (int j = 0; j < n; ++j) {
            path_shadow[i * n + j] =
                params.deterministic() ? 1.0 : shadow.sample(gen);
        }
    }

    sample_stat stat;
    // Carrier sense: any mutually-sensed pair above threshold puts the
    // whole cluster into TDMA; record the maximum sensed power so every
    // candidate threshold can make its decision later.
    for (int a = 0; a < n; ++a) {
        for (int b = a + 1; b < n; ++b) {
            const double dx = sender_pos[a].x - sender_pos[b].x;
            const double dy = sender_pos[a].y - sender_pos[b].y;
            const double dist =
                std::max(std::sqrt(dx * dx + dy * dy), 1e-9);
            const double sense_shadow =
                params.deterministic() ? 1.0 : shadow.sample(gen);
            stat.max_sensed =
                std::max(stat.max_sensed, path_gain(dist) * sense_shadow);
        }
    }

    // Capacities.
    double conc_total = 0.0, mux_total = 0.0;
    for (int i = 0; i < n; ++i) {
        const double dx = receiver_pos[i].x - sender_pos[i].x;
        const double dy = receiver_pos[i].y - sender_pos[i].y;
        const double r = std::max(std::sqrt(dx * dx + dy * dy), 1e-6);
        const double signal = path_gain(r) * path_shadow[i * n + i];
        double interference = 0.0;
        for (int j = 0; j < n; ++j) {
            if (j == i) continue;
            const double ix = receiver_pos[i].x - sender_pos[j].x;
            const double iy = receiver_pos[i].y - sender_pos[j].y;
            const double dist =
                std::max(std::sqrt(ix * ix + iy * iy), 1e-6);
            interference += path_gain(dist) * path_shadow[i * n + j];
        }
        conc_total +=
            capacity::shannon_bits_per_hz(signal / (noise + interference));
        mux_total += capacity::shannon_bits_per_hz(signal / noise) /
                     static_cast<double>(n);
    }
    stat.concurrent = conc_total / n;  // per-pair averages
    stat.multiplexing = mux_total / n;
    return stat;
}

}  // namespace

std::vector<multi_sender_point> evaluate_multi_sender_thresholds(
    const model_params& params, int senders, double rmax, double d,
    const std::vector<double>& d_thresholds, std::size_t samples,
    std::uint64_t seed, int threads) {
    params.validate();
    if (senders < 2 || !(rmax > 0.0) || !(d > 0.0) || samples < 100 ||
        d_thresholds.empty()) {
        throw std::invalid_argument("evaluate_multi_sender: bad arguments");
    }
    const int n = senders;
    const double noise = params.noise_linear();
    const stats::lognormal_shadowing shadow(params.sigma_db);

    // Shard the expensive sampling over the campaign layer. Per-sample
    // stats land by index and the fold below runs in sample order, so
    // results are bit-identical for every thread count. Scratch buffers
    // are hoisted to shard scope (one allocation per 512 samples, not
    // per sample).
    sim::campaign_options campaign;
    campaign.replications = samples;
    campaign.shard_size = 512;  // cheap analytic samples: coarse shards
    campaign.threads = threads;
    campaign.seed = seed;
    std::vector<sample_stat> stats_by_sample(samples);
    const stats::rng base(campaign.seed);
    sim::for_each_shard(campaign, [&](std::size_t begin, std::size_t end) {
        sample_scratch scratch(n);
        for (std::size_t i = begin; i < end; ++i) {
            stats::rng gen = base.split(static_cast<std::uint64_t>(i));
            stats_by_sample[i] = evaluate_sample(params, n, rmax, d, noise,
                                                 shadow, scratch, gen);
        }
    });

    // Hoisted out of the per-sample loop: the threshold powers depend
    // only on the candidate list (was recomputed samples x thresholds
    // times).
    std::vector<double> p_thresholds(d_thresholds.size());
    for (std::size_t t = 0; t < d_thresholds.size(); ++t) {
        p_thresholds[t] = std::pow(d_thresholds[t], -params.alpha);
    }

    double sum_mux = 0.0, sum_conc = 0.0, sum_opt = 0.0;
    std::vector<double> sum_cs(d_thresholds.size(), 0.0);
    for (const auto& stat : stats_by_sample) {
        sum_conc += stat.concurrent;
        sum_mux += stat.multiplexing;
        sum_opt += std::max(stat.concurrent, stat.multiplexing);
        for (std::size_t t = 0; t < p_thresholds.size(); ++t) {
            sum_cs[t] += (stat.max_sensed > p_thresholds[t])
                             ? stat.multiplexing
                             : stat.concurrent;
        }
    }

    std::vector<multi_sender_point> points;
    const double count = static_cast<double>(samples);
    for (std::size_t t = 0; t < d_thresholds.size(); ++t) {
        multi_sender_point point;
        point.senders = n;
        point.rmax = rmax;
        point.d = d;
        point.d_thresh = d_thresholds[t];
        point.multiplexing = sum_mux / count;
        point.concurrent = sum_conc / count;
        point.carrier_sense = sum_cs[t] / count;
        point.optimal = sum_opt / count;
        points.push_back(point);
    }
    return points;
}

multi_sender_point evaluate_multi_sender(const model_params& params,
                                         int senders, double rmax, double d,
                                         double d_thresh, std::size_t samples,
                                         std::uint64_t seed, int threads) {
    return evaluate_multi_sender_thresholds(params, senders, rmax, d,
                                            {d_thresh}, samples, seed,
                                            threads)
        .front();
}

}  // namespace csense::core
