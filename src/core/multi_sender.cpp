#include "src/core/multi_sender.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "src/capacity/shannon.hpp"
#include "src/stats/distributions.hpp"
#include "src/stats/rng.hpp"

namespace csense::core {

std::vector<multi_sender_point> evaluate_multi_sender_thresholds(
    const model_params& params, int senders, double rmax, double d,
    const std::vector<double>& d_thresholds, std::size_t samples,
    std::uint64_t seed) {
    params.validate();
    if (senders < 2 || !(rmax > 0.0) || !(d > 0.0) || samples < 100 ||
        d_thresholds.empty()) {
        throw std::invalid_argument("evaluate_multi_sender: bad arguments");
    }
    const int n = senders;
    const double noise = params.noise_linear();
    const stats::lognormal_shadowing shadow(params.sigma_db);
    stats::rng base(seed);

    struct vec2 {
        double x, y;
    };
    std::vector<vec2> sender_pos(n);
    std::vector<vec2> receiver_pos(n);
    // Per-(receiver, sender) shadows; [i][j] is the path from sender j to
    // receiver i. Sensing shadows are per sender pair.
    std::vector<std::vector<double>> path_shadow(n, std::vector<double>(n));

    double sum_mux = 0.0, sum_conc = 0.0, sum_opt = 0.0;
    std::vector<double> sum_cs(d_thresholds.size(), 0.0);
    for (std::size_t s = 0; s < samples; ++s) {
        stats::rng gen = base.split(static_cast<std::uint64_t>(s));
        // Geometry: sender 0 at the origin, the rest on a circle of
        // radius D at independent uniform angles.
        sender_pos[0] = {0.0, 0.0};
        for (int j = 1; j < n; ++j) {
            const double angle = gen.uniform(0.0, 2.0 * std::numbers::pi);
            sender_pos[j] = {d * std::cos(angle), d * std::sin(angle)};
        }
        for (int i = 0; i < n; ++i) {
            const auto p = stats::sample_uniform_disc(gen, rmax);
            receiver_pos[i] = {sender_pos[i].x + p.r * std::cos(p.theta),
                               sender_pos[i].y + p.r * std::sin(p.theta)};
            for (int j = 0; j < n; ++j) {
                path_shadow[i][j] = params.deterministic()
                                        ? 1.0
                                        : shadow.sample(gen);
            }
        }

        // Carrier sense: any mutually-sensed pair above threshold puts
        // the whole cluster into TDMA. The decision is a comparison of
        // the *maximum* sensed power against the threshold, so one pass
        // serves every candidate threshold.
        double max_sensed = 0.0;
        for (int a = 0; a < n; ++a) {
            for (int b = a + 1; b < n; ++b) {
                const double dx = sender_pos[a].x - sender_pos[b].x;
                const double dy = sender_pos[a].y - sender_pos[b].y;
                const double dist = std::max(std::hypot(dx, dy), 1e-9);
                const double sense_shadow =
                    params.deterministic() ? 1.0 : shadow.sample(gen);
                max_sensed = std::max(
                    max_sensed, std::pow(dist, -params.alpha) * sense_shadow);
            }
        }

        // Capacities.
        double conc_total = 0.0, mux_total = 0.0;
        for (int i = 0; i < n; ++i) {
            const double dx = receiver_pos[i].x - sender_pos[i].x;
            const double dy = receiver_pos[i].y - sender_pos[i].y;
            const double r = std::max(std::hypot(dx, dy), 1e-6);
            const double signal =
                std::pow(r, -params.alpha) * path_shadow[i][i];
            double interference = 0.0;
            for (int j = 0; j < n; ++j) {
                if (j == i) continue;
                const double ix = receiver_pos[i].x - sender_pos[j].x;
                const double iy = receiver_pos[i].y - sender_pos[j].y;
                const double dist = std::max(std::hypot(ix, iy), 1e-6);
                interference +=
                    std::pow(dist, -params.alpha) * path_shadow[i][j];
            }
            conc_total += capacity::shannon_bits_per_hz(
                signal / (noise + interference));
            mux_total += capacity::shannon_bits_per_hz(signal / noise) /
                         static_cast<double>(n);
        }
        const double conc = conc_total / n;  // per-pair averages
        const double mux = mux_total / n;
        sum_conc += conc;
        sum_mux += mux;
        sum_opt += std::max(conc, mux);
        for (std::size_t t = 0; t < d_thresholds.size(); ++t) {
            const double p_thresh =
                std::pow(d_thresholds[t], -params.alpha);
            sum_cs[t] += (max_sensed > p_thresh) ? mux : conc;
        }
    }

    std::vector<multi_sender_point> points;
    const double count = static_cast<double>(samples);
    for (std::size_t t = 0; t < d_thresholds.size(); ++t) {
        multi_sender_point point;
        point.senders = n;
        point.rmax = rmax;
        point.d = d;
        point.multiplexing = sum_mux / count;
        point.concurrent = sum_conc / count;
        point.carrier_sense = sum_cs[t] / count;
        point.optimal = sum_opt / count;
        points.push_back(point);
    }
    return points;
}

multi_sender_point evaluate_multi_sender(const model_params& params,
                                         int senders, double rmax, double d,
                                         double d_thresh, std::size_t samples,
                                         std::uint64_t seed) {
    return evaluate_multi_sender_thresholds(params, senders, rmax, d,
                                            {d_thresh}, samples, seed)
        .front();
}

}  // namespace csense::core
