// The n > 2 senders extension. The thesis restricts its model to two
// competing pairs and asserts: "Small n > 2 does not appear to
// fundamentally alter the results" (§3.2.1), pointing at measurement
// studies ([Cheng06]) showing high concurrency is rare anyway. This
// module checks that claim within the same modeling vocabulary:
//
//  - n senders: one at the origin, the others at distance D from it at
//    independent uniform angles; each sender's receiver is uniform in
//    its own Rmax-disc; all links carry independent lognormal shadows;
//  - full concurrency: every receiver's SINR sums the n-1 interferers;
//  - TDMA: each pair gets a 1/n share of its clean capacity;
//  - carrier sense: the DCF cluster behaviour is approximated by a
//    binary configuration-level decision - if any two senders mutually
//    sense above the threshold, the contention graph is treated as one
//    deferral cluster and the whole group multiplexes; otherwise all
//    transmit concurrently. (With two senders this reduces exactly to
//    the thesis' model.)
//  - optimal: the genie picks the better of the same two group-wide
//    options per configuration (the n-pair analogue of C_max).
//
// All quantities are per-pair averages, Monte Carlo estimated. The
// sampling is sharded over the deterministic campaign layer
// (src/sim/campaign.hpp): results are bit-identical for every thread
// count (the usual caveat applies: a different binary or kernel change
// still moves values in the last ULP).
#pragma once

#include <vector>

#include "src/core/model.hpp"

namespace csense::core {

/// Per-pair average throughput under each policy for n competing pairs.
struct multi_sender_point {
    int senders = 0;
    double rmax = 0.0;
    double d = 0.0;
    double d_thresh = 0.0;  ///< the threshold this point was evaluated at
    double multiplexing = 0.0;
    double concurrent = 0.0;
    double carrier_sense = 0.0;
    double optimal = 0.0;

    double efficiency() const noexcept {
        return (optimal > 0.0) ? carrier_sense / optimal : 0.0;
    }
};

/// Monte Carlo evaluation of the n-sender model at one (Rmax, D) point.
/// `d_thresh` is the usual threshold distance; `samples` configurations
/// are drawn with common random numbers from `seed`. `threads` follows
/// the parallel runtime convention (0 = auto; output never depends on it).
multi_sender_point evaluate_multi_sender(const model_params& params,
                                         int senders, double rmax, double d,
                                         double d_thresh,
                                         std::size_t samples = 40000,
                                         std::uint64_t seed = 42,
                                         int threads = 0);

/// Evaluate many thresholds over one common set of sampled
/// configurations (the per-sample CS decision is a comparison of the
/// maximum sensed power against the threshold, so all thresholds share
/// the expensive part). Useful for per-n threshold tuning: with more
/// senders the aggregate interference grows and the two-sender factory
/// threshold under-defers. Each returned point carries its own
/// `d_thresh`, in the order of `d_thresholds`.
std::vector<multi_sender_point> evaluate_multi_sender_thresholds(
    const model_params& params, int senders, double rmax, double d,
    const std::vector<double>& d_thresholds, std::size_t samples = 40000,
    std::uint64_t seed = 42, int threads = 0);

}  // namespace csense::core
