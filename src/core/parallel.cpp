#include "src/core/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace csense::core {
namespace {

thread_local bool tls_on_worker = false;

// True while this thread is the caller of an in-flight thread_pool::run:
// a nested run from one of the caller's own chunks must degrade to
// serial exactly like one from a pool worker (the pool hosts a single
// job, and the caller already holds the job slot).
thread_local bool tls_in_run = false;

int hardware_threads() {
    const unsigned n = std::thread::hardware_concurrency();
    return n > 0 ? static_cast<int>(n) : 1;
}

// The installed cooperative cancellation token. Process-wide mutable
// state is acceptable here (this file hosts the registered thread-pool
// singleton): one scenario runs at a time, and the pointer itself is
// atomic so a watchdog thread may fire the token while workers poll it.
std::atomic<const std::atomic<bool>*> g_cancel_token{nullptr};

}  // namespace

void set_cancellation_token(const std::atomic<bool>* token) noexcept {
    g_cancel_token.store(token, std::memory_order_release);
}

bool cancellation_requested() noexcept {
    const std::atomic<bool>* token =
        g_cancel_token.load(std::memory_order_acquire);
    return token != nullptr && token->load(std::memory_order_acquire);
}

void throw_if_cancelled() {
    if (cancellation_requested()) throw cancelled_error();
}

int resolve_threads(int requested) {
    if (requested < 0) {
        throw std::invalid_argument("resolve_threads: negative thread count");
    }
    if (requested > 0) return requested;
    if (const char* env = std::getenv("CSENSE_THREADS")) {
        const int n = std::atoi(env);
        if (n > 0) return n;
    }
    return hardware_threads();
}

struct thread_pool::impl {
    struct job {
        const std::function<void(std::size_t)>* task = nullptr;
        std::size_t count = 0;
        int max_participants = 0;
        std::atomic<std::size_t> cursor{0};
        std::atomic<int> participants{0};
        std::atomic<bool> failed{false};
        std::exception_ptr error;
        std::mutex error_mutex;
        // Workers (not the caller) still inside execute(); the caller
        // waits for this to reach zero before the job leaves scope.
        int active_workers = 0;
    };

    // Serializes whole run() calls from distinct caller threads: the
    // pool hosts one job at a time.
    std::mutex caller_mutex;
    /// Hard cap on pool threads; requests beyond it still complete, just
    /// with at most this many workers plus the caller.
    static constexpr int kMaxWorkers = 64;

    std::mutex mutex;
    std::condition_variable work_cv;
    std::condition_variable done_cv;
    std::vector<std::thread> workers;
    job* current = nullptr;
    std::uint64_t generation = 0;
    bool stopping = false;

    /// Grow the pool to at least `wanted` workers (called with
    /// caller_mutex held; worker threads are never removed). Lazy growth
    /// means a machine only pays for the parallelism actually requested,
    /// and explicit --threads N requests are honoured even when N
    /// exceeds the hardware concurrency (useful for determinism tests on
    /// small CI runners).
    void ensure_workers(int wanted) {
        wanted = wanted < kMaxWorkers ? wanted : kMaxWorkers;
        std::scoped_lock lock(mutex);
        while (static_cast<int>(workers.size()) < wanted) {
            workers.emplace_back([this] { worker_loop(); });
        }
    }

    static void execute(job& j) {
        while (true) {
            const std::size_t i =
                j.cursor.fetch_add(1, std::memory_order_relaxed);
            if (i >= j.count) break;
            if (j.failed.load(std::memory_order_relaxed)) continue;
            try {
                throw_if_cancelled();
                (*j.task)(i);
            } catch (...) {
                std::scoped_lock lock(j.error_mutex);
                if (!j.error) j.error = std::current_exception();
                j.failed.store(true, std::memory_order_relaxed);
            }
        }
    }

    void worker_loop() {
        tls_on_worker = true;
        std::unique_lock lock(mutex);
        std::uint64_t seen = 0;
        while (true) {
            work_cv.wait(lock, [&] {
                return stopping || (current != nullptr && generation != seen);
            });
            if (stopping) return;
            seen = generation;
            job& j = *current;
            if (j.participants.fetch_add(1) + 1 > j.max_participants) {
                // Enough hands on this job already (the caller is one).
                j.participants.fetch_sub(1);
                continue;
            }
            ++j.active_workers;
            lock.unlock();
            execute(j);
            lock.lock();
            if (--j.active_workers == 0) done_cv.notify_all();
        }
    }
};

thread_pool::thread_pool() : impl_(new impl) {
    // Workers are spawned lazily by run(); constructing the pool is free.
}

thread_pool::~thread_pool() {
    {
        std::scoped_lock lock(impl_->mutex);
        impl_->stopping = true;
    }
    impl_->work_cv.notify_all();
    for (auto& w : impl_->workers) w.join();
    delete impl_;
}

thread_pool& thread_pool::instance() {
    // Leaked on purpose: scenario code may still be running tasks during
    // static destruction, and the OS reclaims the threads anyway.
    static thread_pool* pool = new thread_pool;
    return *pool;
}

bool thread_pool::on_worker_thread() noexcept { return tls_on_worker; }

void thread_pool::run(int threads, std::size_t count,
                      const std::function<void(std::size_t)>& task) {
    if (count == 0) return;
    if (threads < 1) {
        throw std::invalid_argument("thread_pool::run: threads must be >= 1");
    }
    if (threads == 1 || count == 1 || tls_on_worker || tls_in_run) {
        // Serial path: nested calls and single-threaded requests.
        // Exceptions propagate directly.
        for (std::size_t i = 0; i < count; ++i) {
            throw_if_cancelled();
            task(i);
        }
        return;
    }

    std::scoped_lock serialize(impl_->caller_mutex);
    tls_in_run = true;
    struct reset_in_run {
        ~reset_in_run() { tls_in_run = false; }
    } reset;
    impl_->ensure_workers(threads - 1);
    impl::job j;
    j.task = &task;
    j.count = count;
    j.max_participants = threads;
    j.participants.store(1);  // the caller participates too
    {
        std::scoped_lock lock(impl_->mutex);
        impl_->current = &j;
        ++impl_->generation;
    }
    impl_->work_cv.notify_all();
    impl::execute(j);
    {
        std::unique_lock lock(impl_->mutex);
        impl_->done_cv.wait(lock, [&] { return j.active_workers == 0; });
        impl_->current = nullptr;
    }
    if (j.error) std::rethrow_exception(j.error);
}

void parallel_for(int threads, std::size_t count, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body) {
    if (count == 0) return;
    if (grain == 0) throw std::invalid_argument("parallel_for: grain == 0");
    const std::size_t chunks = (count + grain - 1) / grain;
    thread_pool::instance().run(
        resolve_threads(threads), chunks, [&](std::size_t c) {
            const std::size_t begin = c * grain;
            const std::size_t end =
                begin + grain < count ? begin + grain : count;
            body(begin, end);
        });
}

double parallel_reduce(int threads, std::size_t count,
                       const std::function<double(std::size_t)>& term) {
    if (count == 0) return 0.0;
    std::vector<double> partials(count, 0.0);
    thread_pool::instance().run(resolve_threads(threads), count,
                                [&](std::size_t i) { partials[i] = term(i); });
    double sum = 0.0;
    for (double p : partials) sum += p;
    return sum;
}

}  // namespace csense::core
