// Deterministic parallel runtime for the expectation engine.
//
// The design constraint is bit-identical results for ANY worker count:
// work is split into chunks whose boundaries depend only on the problem
// size (never on the thread count), each chunk's partial result is stored
// by chunk index, and partials are combined in index order on the calling
// thread. Chunks are *claimed* dynamically (an atomic cursor), so load
// balancing is free, but the combination order is fixed. With one term
// per partial, `parallel_reduce` reproduces the serial left-fold
// `((t0 + t1) + t2) + ...` exactly, so a parallel engine run is
// bit-identical to the pre-parallel serial code.
//
// Workers live in a lazily-created process-wide pool (hardware
// concurrency sized); `threads` caps how many participate in one call.
// Nested calls from inside a worker degrade to serial execution on the
// calling thread, so the engine may parallelize freely at any level
// without deadlock.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <stdexcept>

namespace csense::core {

/// Thrown at a cooperative cancellation point once the installed
/// cancellation token fires (see set_cancellation_token). Scenario
/// drivers catch it to mark the unit "degraded" and move on.
class cancelled_error : public std::runtime_error {
public:
    cancelled_error()
        : std::runtime_error("cooperative cancellation requested") {}
};

/// Installs a process-wide cooperative cancellation token (nullptr
/// uninstalls). The token is observed at chunk boundaries inside
/// thread_pool::run / parallel_for / parallel_reduce — the chokepoint
/// every expectation-engine and campaign loop already runs through —
/// and by any long serial loop that calls throw_if_cancelled()
/// explicitly. Install/uninstall from the thread that owns the run;
/// the watchdog (or any other thread) may set the token's flag at any
/// time. Cancellation is cooperative: in-flight chunks run to
/// completion, then cancelled_error propagates to the caller.
void set_cancellation_token(const std::atomic<bool>* token) noexcept;

/// True when a token is installed and has fired.
bool cancellation_requested() noexcept;

/// Throws cancelled_error when cancellation_requested().
void throw_if_cancelled();

/// Resolve a requested worker count: `requested > 0` is used as-is;
/// `requested == 0` means the CSENSE_THREADS environment variable when
/// set to a positive integer, otherwise std::thread::hardware_concurrency
/// (at least 1).
int resolve_threads(int requested);

/// Process-wide worker pool. `run` executes task(0..count-1), blocking
/// until every index has finished; at most `threads` threads participate
/// (the calling thread counts as one). The first exception thrown by any
/// task is rethrown on the calling thread after remaining tasks are
/// drained (tasks not yet started are skipped once a failure is seen).
/// Tasks must write to index-distinct locations; the pool imposes no
/// ordering between them.
class thread_pool {
public:
    static thread_pool& instance();

    void run(int threads, std::size_t count,
             const std::function<void(std::size_t)>& task);

    /// True when the calling thread is a pool worker (nested `run` calls
    /// then execute serially).
    static bool on_worker_thread() noexcept;

private:
    thread_pool();
    ~thread_pool();
    thread_pool(const thread_pool&) = delete;
    thread_pool& operator=(const thread_pool&) = delete;

    struct impl;
    impl* impl_;
};

/// Invoke body(begin, end) over a partition of [0, count) into chunks of
/// `grain` indices (the last chunk may be short). Chunk boundaries depend
/// only on (count, grain), never on `threads`, so any side effects keyed
/// by index are placed identically for every worker count.
void parallel_for(int threads, std::size_t count, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body);

/// Deterministic sum reduction: returns term(0) + term(1) + ... +
/// term(count - 1), accumulated in index order with one partial per
/// index. Bit-identical to the serial left fold for every thread count.
/// Terms should be coarse (an engine radial row, not a single kernel
/// evaluation) since each is one scheduled task.
double parallel_reduce(int threads, std::size_t count,
                       const std::function<double(std::size_t)>& term);

}  // namespace csense::core
