#include "src/core/policies.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/capacity/shannon.hpp"
#include "src/core/geometry.hpp"

namespace csense::core {

double snr_single(const model_params& params, double r, double shadow) {
    if (!(r > 0.0)) throw std::domain_error("snr_single: r must be positive");
    return std::pow(r, -params.alpha) * shadow / params.noise_linear();
}

double capacity_single(const model_params& params, double r, double shadow) {
    return capacity::shannon_bits_per_hz(snr_single(params, r, shadow));
}

double capacity_multiplexing(const model_params& params, double r,
                             double shadow) {
    return 0.5 * capacity_single(params, r, shadow);
}

double sinr_concurrent(const model_params& params, double r, double theta,
                       double d, double shadow_signal,
                       double shadow_interference) {
    if (!(r > 0.0)) throw std::domain_error("sinr_concurrent: r must be positive");
    const double dr = interferer_distance(r, theta, d);
    const double interference =
        (dr > 0.0) ? shadow_interference * std::pow(dr, -params.alpha)
                   : 1e30;  // receiver collocated with the interferer
    const double signal = std::pow(r, -params.alpha) * shadow_signal;
    return signal / (params.noise_linear() + interference);
}

double capacity_concurrent(const model_params& params, double r, double theta,
                           double d, double shadow_signal,
                           double shadow_interference) {
    return capacity::shannon_bits_per_hz(sinr_concurrent(
        params, r, theta, d, shadow_signal, shadow_interference));
}

double capacity_upper_bound(const model_params& params, double r, double theta,
                            double d, double shadow_signal,
                            double shadow_interference) {
    return std::max(capacity_concurrent(params, r, theta, d, shadow_signal,
                                        shadow_interference),
                    capacity_multiplexing(params, r, shadow_signal));
}

double capacity_fixed_rate(double sinr_linear, double rate_bits_per_hz) {
    if (rate_bits_per_hz < 0.0) {
        throw std::domain_error("capacity_fixed_rate: negative rate");
    }
    const double required = capacity::snr_for_bits_per_hz(rate_bits_per_hz);
    return (sinr_linear >= required) ? rate_bits_per_hz : 0.0;
}

}  // namespace csense::core
