// Point capacities of the four MAC policies (§3.2.2) for one receiver
// configuration: no competition, time-division multiplexing, concurrent
// transmission, and the pointwise upper bound on the optimal MAC.
// Shadowing factors are passed explicitly (linear power factors, 1 when
// disabled) so the same code serves the deterministic model, quadrature
// over shadowing axes, and Monte Carlo sampling.
#pragma once

#include "src/core/model.hpp"

namespace csense::core {

/// C_single(r): log2(1 + r^-alpha * L / N). `shadow` is the linear
/// shadowing factor L_sigma on the sender->receiver link.
double capacity_single(const model_params& params, double r,
                       double shadow = 1.0);

/// C_multiplexing(r) = C_single(r) / 2: an ideal TDMA MAC splits time
/// equally between the two senders.
double capacity_multiplexing(const model_params& params, double r,
                             double shadow = 1.0);

/// C_concurrent(r, theta): log2(1 + r^-alpha L / (N + L' * dr^-alpha))
/// where dr is the interferer-receiver distance for an interferer at
/// distance `d` on the negative x-axis. `shadow_signal` is L on the
/// signal path; `shadow_interference` is L' on the interference path.
double capacity_concurrent(const model_params& params, double r, double theta,
                           double d, double shadow_signal = 1.0,
                           double shadow_interference = 1.0);

/// C_UBmax pointwise: max(C_concurrent, C_multiplexing) for one receiver.
double capacity_upper_bound(const model_params& params, double r, double theta,
                            double d, double shadow_signal = 1.0,
                            double shadow_interference = 1.0);

/// SINR (linear) under concurrency for one receiver configuration.
double sinr_concurrent(const model_params& params, double r, double theta,
                       double d, double shadow_signal = 1.0,
                       double shadow_interference = 1.0);

/// SNR (linear) without competition.
double snr_single(const model_params& params, double r, double shadow = 1.0);

/// Fixed-bitrate "cookie cutter" capacity for the §3.3.2 ablation: the
/// radio delivers exactly `rate_bits_per_hz` when the SINR meets the
/// Shannon requirement for that rate, and nothing otherwise. This turns
/// the smooth capacity gradient into the step that makes carrier sense
/// look bad.
double capacity_fixed_rate(double sinr_linear, double rate_bits_per_hz);

}  // namespace csense::core
