#include "src/core/preference_map.hpp"

#include <cmath>
#include <stdexcept>

#include "src/core/policies.hpp"

namespace csense::core {

const preference_cell& preference_map::at(int ix, int iy) const {
    if (ix < 0 || ix >= resolution || iy < 0 || iy >= resolution) {
        throw std::out_of_range("preference_map::at");
    }
    return cells[static_cast<std::size_t>(iy) * resolution + ix];
}

preference_map build_preference_map(const model_params& params, double d,
                                    double rmax, double extent, int resolution,
                                    double starvation_fraction) {
    if (resolution < 2 || !(extent > 0.0) || !(rmax > 0.0)) {
        throw std::invalid_argument("build_preference_map: bad geometry");
    }
    model_params deterministic = params;
    deterministic.sigma_db = 0.0;  // the figure's sigma = 0 convention
    preference_map map;
    map.extent = extent;
    map.resolution = resolution;
    map.d = d;
    map.rmax = rmax;
    map.cells.resize(static_cast<std::size_t>(resolution) * resolution);
    const double step = 2.0 * extent / (resolution - 1);
    for (int iy = 0; iy < resolution; ++iy) {
        for (int ix = 0; ix < resolution; ++ix) {
            auto& cell =
                map.cells[static_cast<std::size_t>(iy) * resolution + ix];
            cell.x = -extent + step * ix;
            cell.y = -extent + step * iy;
            const double r = std::hypot(cell.x, cell.y);
            cell.inside = (r <= rmax) && (r > 0.0);
            if (r <= 0.0) continue;
            const double theta = std::atan2(cell.y, cell.x);
            cell.capacity_concurrent =
                capacity_concurrent(deterministic, r, theta, d);
            cell.capacity_multiplexing =
                capacity_multiplexing(deterministic, r);
            const double ub =
                std::max(cell.capacity_concurrent, cell.capacity_multiplexing);
            if (cell.capacity_concurrent >= cell.capacity_multiplexing) {
                cell.preference = receiver_preference::concurrency;
            } else if (cell.capacity_concurrent < starvation_fraction * ub) {
                cell.preference = receiver_preference::starved_multiplexing;
            } else {
                cell.preference = receiver_preference::multiplexing;
            }
        }
    }
    return map;
}

preference_summary summarize(const preference_map& map) {
    preference_summary summary;
    for (const auto& cell : map.cells) {
        if (!cell.inside) continue;
        ++summary.cells_inside;
        switch (cell.preference) {
            case receiver_preference::concurrency:
                summary.fraction_concurrency += 1.0;
                break;
            case receiver_preference::multiplexing:
                summary.fraction_multiplexing += 1.0;
                break;
            case receiver_preference::starved_multiplexing:
                summary.fraction_multiplexing += 1.0;
                summary.fraction_starved += 1.0;
                break;
        }
    }
    if (summary.cells_inside > 0) {
        const double n = summary.cells_inside;
        summary.fraction_concurrency /= n;
        summary.fraction_multiplexing /= n;
        summary.fraction_starved /= n;
    }
    return summary;
}

}  // namespace csense::core
