// Receiver preference regions (Figure 3): for each candidate receiver
// position, does it prefer concurrency or multiplexing, and if it needs
// multiplexing, would concurrency starve it (< 10% of C_UBmax)?
// Computed on the sigma = 0 model, like the figure.
#pragma once

#include <vector>

#include "src/core/model.hpp"

namespace csense::core {

/// Classification of one receiver position.
enum class receiver_preference {
    concurrency,            ///< C_conc >= C_mux (dark region)
    multiplexing,           ///< C_mux > C_conc (light region)
    starved_multiplexing,   ///< prefers mux and C_conc < 10% C_UBmax (white)
};

/// One cell of the preference map.
struct preference_cell {
    double x = 0.0;
    double y = 0.0;
    bool inside = false;  ///< within Rmax of the sender
    receiver_preference preference = receiver_preference::concurrency;
    double capacity_concurrent = 0.0;
    double capacity_multiplexing = 0.0;
};

/// Grid map over [-extent, extent]^2 with `resolution` cells per side.
struct preference_map {
    double extent = 0.0;
    int resolution = 0;
    double d = 0.0;
    double rmax = 0.0;
    std::vector<preference_cell> cells;  ///< row-major, y outer

    const preference_cell& at(int ix, int iy) const;
};

/// Build the Figure 3 map for interferer distance `d` and network range
/// `rmax`. `starvation_fraction` is the 10% C_UBmax cutoff.
preference_map build_preference_map(const model_params& params, double d,
                                    double rmax, double extent, int resolution,
                                    double starvation_fraction = 0.1);

/// Aggregate statistics over the in-range cells of a map.
struct preference_summary {
    double fraction_concurrency = 0.0;
    double fraction_multiplexing = 0.0;  ///< includes starved
    double fraction_starved = 0.0;
    int cells_inside = 0;
};

preference_summary summarize(const preference_map& map);

}  // namespace csense::core
