#include "src/core/regimes.hpp"

#include <cmath>
#include <stdexcept>

namespace csense::core {

std::string_view regime_name(network_regime regime) noexcept {
    switch (regime) {
        case network_regime::short_range: return "short range";
        case network_regime::transition: return "transition";
        case network_regime::long_range: return "long range";
        case network_regime::extreme_long_range: return "extreme long range";
    }
    return "?";
}

double edge_snr_db(const model_params& params, double r) {
    if (!(r > 0.0)) throw std::domain_error("edge_snr_db: r must be positive");
    return -10.0 * params.alpha * std::log10(r) - params.noise_db;
}

double rmax_for_edge_snr(const model_params& params, double snr_db) {
    return std::pow(10.0, (-params.noise_db - snr_db) / (10.0 * params.alpha));
}

regime_report classify_with_threshold(const model_params& params, double rmax,
                                      const threshold_result& threshold) {
    regime_report report;
    report.rmax = rmax;
    report.edge_snr_db = edge_snr_db(params, rmax);
    if (!threshold.found) {
        report.regime = network_regime::extreme_long_range;
        report.optimal_threshold = 0.0;
        return report;
    }
    report.optimal_threshold = threshold.d_thresh;
    if (threshold.d_thresh > 2.0 * rmax) {
        report.regime = network_regime::short_range;
    } else if (threshold.d_thresh < rmax) {
        report.regime = network_regime::long_range;
    } else {
        report.regime = network_regime::transition;
    }
    return report;
}

regime_report classify_network(const expectation_engine& engine, double rmax) {
    return classify_with_threshold(engine.params(), rmax,
                                   optimal_threshold(engine, rmax));
}

}  // namespace csense::core
