// Behavioral regimes (§3.3.3): a network is "short range" when its
// optimal threshold lies well outside the network (R_thresh > 2 Rmax) -
// interference smothers everything before any differential impact - and
// "long range" when the optimal threshold lies inside the network
// (R_thresh < Rmax), so interference is local and some receivers can be
// starved. The crossover band corresponds to the 10-25 dB edge-SNR
// "sweet spot" that commodity hardware targets.
#pragma once

#include <string_view>

#include "src/core/expected.hpp"
#include "src/core/threshold.hpp"

namespace csense::core {

enum class network_regime {
    short_range,       ///< R_thresh > 2 Rmax: CS nearly optimal, fair
    transition,        ///< Rmax < R_thresh < 2 Rmax
    long_range,        ///< R_thresh < Rmax: good average, fairness risk
    extreme_long_range,///< concurrency unconditionally optimal (fn. 11)
};

std::string_view regime_name(network_regime regime) noexcept;

/// Full classification result.
struct regime_report {
    network_regime regime = network_regime::transition;
    double rmax = 0.0;
    double optimal_threshold = 0.0;  ///< 0 in extreme long range
    double edge_snr_db = 0.0;        ///< SNR at the network edge
};

/// SNR in dB at distance r from a sender (no shadowing): the edge SNR
/// that §3.3.4 maps regimes onto (12-27 dB spans the transition at
/// alpha = 3, N = -65 dB).
double edge_snr_db(const model_params& params, double r);

/// Network range whose edge SNR equals `snr_db`.
double rmax_for_edge_snr(const model_params& params, double snr_db);

/// Classify a network of range rmax by computing its optimal threshold.
regime_report classify_network(const expectation_engine& engine, double rmax);

/// Classification given a precomputed threshold (avoids recomputation).
regime_report classify_with_threshold(const model_params& params, double rmax,
                                      const threshold_result& threshold);

}  // namespace csense::core
