#include "src/core/shadowing_analysis.hpp"

#include <cmath>
#include <stdexcept>

#include "src/core/geometry.hpp"
#include "src/stats/distributions.hpp"

namespace csense::core {

double snr_estimate_sigma_db(const model_params& params) {
    return params.sigma_db * std::sqrt(3.0);
}

double spurious_concurrency_probability(const model_params& params,
                                        double apparent_d, double d_thresh,
                                        double relative_sigma_factor) {
    if (!(apparent_d > 0.0) || !(d_thresh > 0.0)) {
        throw std::domain_error("spurious_concurrency_probability: distances");
    }
    if (params.deterministic()) {
        return (apparent_d < d_thresh) ? 0.0 : 1.0;
    }
    // Sensed power appears below threshold when the sensing-path shadow
    // (relative to the receiver's view) loses more than the dB margin
    // between the apparent distance and the threshold distance.
    const double margin_db =
        10.0 * params.alpha * std::log10(d_thresh / apparent_d);
    const double sigma = params.sigma_db * relative_sigma_factor;
    return stats::normal_cdf(-margin_db / sigma);
}

double spurious_multiplexing_probability(const model_params& params,
                                         double apparent_d, double d_thresh,
                                         double relative_sigma_factor) {
    if (!(apparent_d > 0.0) || !(d_thresh > 0.0)) {
        throw std::domain_error("spurious_multiplexing_probability: distances");
    }
    if (params.deterministic()) {
        return (apparent_d >= d_thresh) ? 0.0 : 1.0;
    }
    const double margin_db =
        10.0 * params.alpha * std::log10(apparent_d / d_thresh);
    const double sigma = params.sigma_db * relative_sigma_factor;
    return stats::normal_cdf(-margin_db / sigma);
}

severe_outcome severe_outcome_probability(const model_params& params,
                                          double apparent_d, double d_thresh,
                                          double rmax) {
    severe_outcome outcome;
    outcome.p_spurious_concurrency =
        spurious_concurrency_probability(params, apparent_d, d_thresh);
    outcome.fraction_vulnerable =
        disc_fraction_closer_to_interferer(apparent_d, rmax);
    outcome.p_severe =
        outcome.p_spurious_concurrency * outcome.fraction_vulnerable;
    return outcome;
}

double db_to_distance_factor(const model_params& params, double db) {
    return std::pow(10.0, db / (10.0 * params.alpha));
}

}  // namespace csense::core
