// §3.4's quantitative shadowing arguments:
//  - the sender's SNR-estimate uncertainty grows as sigma * sqrt(3)
//    (signal, interference, and sensing shadows are all independent);
//  - carrier sense mistakes: the probability that an interferer whose
//    interference corresponds to apparent distance D_app is nevertheless
//    sensed beyond the threshold (spurious concurrency), with the
//    sensing path shadowed independently of the receiver's view
//    (relative uncertainty sigma * sqrt(2));
//  - the worked example: Rmax = 20, D_thresh = 40, interferer apparent at
//    D = 20 -> ~20% spurious concurrency, ~20% of receivers critically
//    close, ~4% of configurations with very poor SNR.
#pragma once

#include "src/core/model.hpp"

namespace csense::core {

/// Pessimistic dB uncertainty of a sender's estimate of its receiver's
/// SINR: the three shadowing effects summed, sigma * sqrt(3).
double snr_estimate_sigma_db(const model_params& params);

/// Probability that carrier sense chooses concurrency although the
/// interferer *appears* (to the receiver) to be at distance `apparent_d`
/// inside the threshold. The sensed power carries a shadow independent
/// of the receiver's, so the relative dB uncertainty between the two
/// views is sigma * sqrt(2) by default; passing
/// relative_sigma_factor = 1 instead treats the apparent distance as the
/// true geometric distance.
double spurious_concurrency_probability(const model_params& params,
                                        double apparent_d, double d_thresh,
                                        double relative_sigma_factor = 1.4142135623730951);

/// Probability that carrier sense defers although the interferer appears
/// beyond the threshold (spurious multiplexing) - the mirror image.
double spurious_multiplexing_probability(const model_params& params,
                                         double apparent_d, double d_thresh,
                                         double relative_sigma_factor = 1.4142135623730951);

/// The §3.4 worked example, combining the sensing mistake with the
/// fraction of receivers close enough to be badly hurt.
struct severe_outcome {
    double p_spurious_concurrency = 0.0; ///< ~0.20 in the example
    double fraction_vulnerable = 0.0;    ///< ~0.20 in the example
    double p_severe = 0.0;               ///< product, ~0.04
};

severe_outcome severe_outcome_probability(const model_params& params,
                                          double apparent_d, double d_thresh,
                                          double rmax);

/// Equivalent distance factor of a dB variation under path loss alpha:
/// 10^(db / (10 alpha)). §3.4 quotes 14 dB ~ 3x at alpha = 3.
double db_to_distance_factor(const model_params& params, double db);

}  // namespace csense::core
