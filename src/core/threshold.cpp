#include "src/core/threshold.hpp"

#include <cmath>
#include <stdexcept>

#include "src/stats/solve.hpp"

namespace csense::core {

threshold_result optimal_threshold(const expectation_engine& engine,
                                   double rmax, double d_hint_hi) {
    if (!(rmax > 0.0)) throw std::domain_error("optimal_threshold: rmax");
    const double mux = engine.expected_multiplexing(rmax);
    auto gap = [&](double d) {
        return engine.expected_concurrent(rmax, d) - mux;
    };
    // <C_conc> increases monotonically with D: bracket the crossing.
    double lo = 1e-3 * rmax;
    if (gap(lo) > 0.0) {
        // Concurrency wins even with a collocated interferer: the
        // "extreme long range" regime; no finite threshold is optimal.
        return {0.0, mux, false};
    }
    double hi = (d_hint_hi > lo) ? d_hint_hi : 4.0 * rmax;
    int expansions = 0;
    while (gap(hi) < 0.0) {
        hi *= 2.0;
        if (++expansions > 40) {
            throw std::runtime_error(
                "optimal_threshold: concurrency never catches multiplexing");
        }
    }
    const auto root = stats::find_root(gap, lo, hi, 1e-9 * hi);
    return {root.x, mux, true};
}

double equivalent_distance_alpha3(double d_thresh, double alpha) {
    if (!(d_thresh > 0.0) || !(alpha > 0.0)) {
        throw std::domain_error("equivalent_distance_alpha3");
    }
    // Same sensed power: D_eq^-3 = D^-alpha  =>  D_eq = D^(alpha/3).
    return std::pow(d_thresh, alpha / 3.0);
}

double threshold_power_db(double d_thresh, double alpha) {
    if (!(d_thresh > 0.0)) throw std::domain_error("threshold_power_db");
    return -10.0 * alpha * std::log10(d_thresh);
}

double threshold_distance_from_power_db(double p_thresh_db, double alpha) {
    if (!(alpha > 0.0)) throw std::domain_error("threshold_distance_from_power_db");
    return std::pow(10.0, -p_thresh_db / (10.0 * alpha));
}

double short_range_threshold_asymptote(const model_params& params, double rmax) {
    if (!(rmax > 0.0)) throw std::domain_error("short_range_threshold_asymptote");
    return std::exp(-0.25) * std::sqrt(rmax) *
           std::pow(params.noise_linear(), -0.5 / params.alpha);
}

double compromise_threshold(const expectation_engine& engine, double rmax_short,
                            double rmax_long) {
    const auto lo = optimal_threshold(engine, rmax_short);
    const auto hi = optimal_threshold(engine, rmax_long);
    if (!lo.found || !hi.found) {
        throw std::runtime_error("compromise_threshold: no optimum at an endpoint");
    }
    return std::sqrt(lo.d_thresh * hi.d_thresh);
}

}  // namespace csense::core
