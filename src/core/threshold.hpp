// Carrier-sense threshold selection (§3.3.3): the average-throughput-
// optimal threshold distance is the D at which the concurrency and
// multiplexing curves cross; below it multiplexing wins on average, above
// it concurrency does. Includes the alpha = 3 equivalent-distance
// convention of Figure 7 and the short-range asymptote of footnote 13.
#pragma once

#include <optional>

#include "src/core/expected.hpp"

namespace csense::core {

/// Result of a threshold search.
struct threshold_result {
    double d_thresh = 0.0;      ///< threshold distance (actual units)
    double crossing_value = 0.0;///< <C_mux> = <C_conc> at the crossing
    bool found = true;          ///< false in the "extreme long range"
                                ///< regime where concurrency always wins
};

/// Optimal threshold distance for a network of range Rmax: solves
/// <C_conc>(Rmax, D) = <C_mux>(Rmax) for D by Brent's method. When
/// concurrency beats multiplexing even at D -> 0 (the CDMA-like regime of
/// footnote 11), `found` is false and d_thresh is 0.
threshold_result optimal_threshold(const expectation_engine& engine,
                                   double rmax, double d_hint_hi = 0.0);

/// Convert a threshold distance under exponent `alpha` to the
/// equivalent distance at alpha = 3 (Figure 7's vertical axis):
/// both describe the same sensed power P = D^-alpha.
double equivalent_distance_alpha3(double d_thresh, double alpha);

/// Sensed-power threshold (dB, normalized units) for a threshold
/// distance: P_thresh_db = -10 * alpha * log10(D_thresh).
double threshold_power_db(double d_thresh, double alpha);

/// Inverse of threshold_power_db.
double threshold_distance_from_power_db(double p_thresh_db, double alpha);

/// Footnote 13's closed-form short-range limit (actual distance units):
/// D_thresh ~ e^{-1/4} * Rmax^{1/2} * N^{-1/(2 alpha)}.
double short_range_threshold_asymptote(const model_params& params, double rmax);

/// The thesis' factory-default recommendation (§3.3.3): the midpoint (in
/// log-distance) between the optimal thresholds at the hardware's
/// shortest and longest useful network ranges.
double compromise_threshold(const expectation_engine& engine, double rmax_short,
                            double rmax_long);

}  // namespace csense::core
