#include "src/mac/adaptive_cs.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/capacity/shannon.hpp"
#include "src/propagation/units.hpp"
#include "src/stats/kahan.hpp"

namespace csense::mac {

namespace {

/// Throws on nonsense; returns the config so it can gate the member
/// initializer list (the std::clamp there needs min <= max proven
/// first - inverted bounds are undefined behaviour for std::clamp).
const cs_adaptation_config& validated(const cs_adaptation_config& config) {
    if (!(config.epoch_us > 0.0)) {
        throw std::invalid_argument("cs_adaptation_config: epoch_us <= 0");
    }
    if (config.min_threshold_dbm > config.max_threshold_dbm) {
        throw std::invalid_argument("cs_adaptation_config: min > max");
    }
    if (!(config.ewma_weight > 0.0) || config.ewma_weight > 1.0) {
        throw std::invalid_argument(
            "cs_adaptation_config: ewma_weight not in (0, 1]");
    }
    if (config.jitter_db < 0.0) {
        throw std::invalid_argument("cs_adaptation_config: negative jitter");
    }
    return config;
}

}  // namespace

adaptive_cs_controller::adaptive_cs_controller(
    const cs_adaptation_config& config, double initial_threshold_dbm,
    double signal_dbm, double noise_dbm, int contenders, stats::rng stream)
    : config_(validated(config)),
      threshold_dbm_(std::clamp(initial_threshold_dbm,
                                config.min_threshold_dbm,
                                config.max_threshold_dbm)),
      signal_dbm_(signal_dbm),
      noise_dbm_(noise_dbm),
      contenders_(std::max(contenders, 1)),
      rng_(stream),
      interference_ewma_mw_(propagation::dbm_to_mw(noise_dbm)) {}

double adaptive_cs_controller::on_epoch(const adaptive_cs_sample& sample) {
    const double w = config_.ewma_weight;
    busy_ewma_ = (1.0 - w) * busy_ewma_ +
                 w * std::clamp(sample.busy_fraction, 0.0, 1.0);
    if (sample.attempts > 0.0) {
        const double loss = std::clamp(
            1.0 - sample.delivered / sample.attempts, 0.0, 1.0);
        loss_ewma_ = (1.0 - w) * loss_ewma_ + w * loss;
    }
    goodput_ewma_ = (1.0 - w) * goodput_ewma_ + w * sample.delivered;
    if (sample.mean_external_power_mw > 0.0) {
        interference_ewma_mw_ = (1.0 - w) * interference_ewma_mw_ +
                                w * sample.mean_external_power_mw;
    }

    double threshold = threshold_dbm_;
    switch (config_.policy) {
        case cs_adapt_policy::fixed:
            break;
        case cs_adapt_policy::aimd:
            if (loss_ewma_ > config_.loss_target) {
                threshold -= config_.md_backoff_db;
            } else {
                threshold += config_.ai_step_db;
            }
            break;
        case cs_adapt_policy::target_busy: {
            // With n saturated senders the idle fraction at a well-tuned
            // threshold shrinks like 1/n, so the auto set point scales
            // the target with the contender count.
            const double target =
                config_.busy_target > 0.0
                    ? config_.busy_target
                    : std::clamp(1.0 - config_.busy_idle_scale /
                                           static_cast<double>(contenders_),
                                 0.10, 0.95);
            threshold += config_.busy_gain_db * (busy_ewma_ - target);
            break;
        }
        case cs_adapt_policy::iterative_fixed_point: {
            // Online Kim & Kim iteration: the marginal contender this
            // threshold admits is sensed at exactly the threshold power,
            // and (in the pairwise D >> r approximation) interferes at
            // the receiver with that same power. Step the threshold by
            // the log ratio of the link's concurrent Shannon capacity
            // under that marginal interferer to the fair half share -
            // the same damped log-domain update the offline solver
            // (src/core/adaptive_threshold.hpp) iterates, driven by the
            // fed-back receiver RSSI instead of the disc model.
            const double s_mw = propagation::dbm_to_mw(signal_dbm_);
            const double n_mw = propagation::dbm_to_mw(noise_dbm_);
            const double marginal_mw =
                n_mw + propagation::dbm_to_mw(threshold);
            const double c_conc =
                capacity::shannon_bits_per_hz(s_mw / marginal_mw);
            const double c_mux =
                0.5 * capacity::shannon_bits_per_hz(s_mw / n_mw);
            if (c_conc > 0.0 && c_mux > 0.0) {
                const double balance = std::log2(c_conc / c_mux);
                threshold +=
                    config_.fp_gain_db * std::clamp(balance, -1.0, 1.0);
            }
            break;
        }
    }
    if (config_.jitter_db > 0.0) {
        threshold += config_.jitter_db * (rng_.uniform() - 0.5);
    }
    threshold_dbm_ = std::clamp(threshold, config_.min_threshold_dbm,
                                config_.max_threshold_dbm);
    return threshold_dbm_;
}

adaptive_cs_manager::adaptive_cs_manager(network& net,
                                         std::vector<adaptive_cs_link> links,
                                         std::uint64_t seed)
    : net_(net), epoch_us_(0.0) {
    if (links.empty()) {
        throw std::invalid_argument("adaptive_cs_manager: no links");
    }
    epoch_us_ = validated(net.node(links.front().sender).config().adapt)
                    .epoch_us;
    const stats::rng base(seed);
    const double noise_dbm = net.air().radio().noise_floor_dbm;
    links_.reserve(links.size());
    for (const auto& link : links) {
        // Each controller runs its own sender's mac_config::adapt - the
        // per-node hook - so heterogeneous policies coexist; only the
        // epoch cadence is shared network-wide.
        const auto& node = net.node(link.sender);
        const double signal_dbm =
            net.air().rx_power_dbm(link.sender, link.receiver);
        links_.push_back(link_state{
            link,
            adaptive_cs_controller(
                node.config().adapt, node.cs_threshold_dbm(), signal_dbm,
                noise_dbm, static_cast<int>(links.size()),
                base.split(static_cast<std::uint64_t>(link.sender))),
            0.0, 0.0, 0, 0});
    }
}

std::uint64_t adaptive_cs_manager::delivered_from(const dcf_node& receiver,
                                                  node_id sender) {
    const auto& by_src = receiver.stats().rx_decoded_by_src;
    const auto it = by_src.find(sender);
    return it != by_src.end() ? it->second : 0;
}

void adaptive_cs_manager::start() {
    if (started_) {
        throw std::logic_error("adaptive_cs_manager: started twice");
    }
    started_ = true;
    for (auto& state : links_) {
        const auto& sender = net_.node(state.link.sender);
        state.busy_us = sender.energy_busy_time_us();
        state.power_integral_mw_us = sender.external_power_integral_mw_us();
        state.sent = sender.stats().data_sent;
        state.delivered =
            delivered_from(net_.node(state.link.receiver), state.link.sender);
        // Install the initial (clamped) threshold so every policy starts
        // from the same override path it will adapt through.
        net_.node(state.link.sender)
            .set_cs_threshold_dbm(state.controller.threshold_dbm());
    }
    net_.sim().schedule_in(epoch_us_, [this] { on_epoch(); });
}

void adaptive_cs_manager::on_epoch() {
    stats::kahan_sum threshold_sum;
    for (auto& state : links_) {
        auto& sender = net_.node(state.link.sender);
        const double busy_us = sender.energy_busy_time_us();
        const double power_integral = sender.external_power_integral_mw_us();
        const std::uint64_t sent = sender.stats().data_sent;
        const std::uint64_t delivered =
            delivered_from(net_.node(state.link.receiver), state.link.sender);

        adaptive_cs_sample sample;
        sample.busy_fraction = (busy_us - state.busy_us) / epoch_us_;
        sample.attempts = static_cast<double>(sent - state.sent);
        sample.delivered = static_cast<double>(delivered - state.delivered);
        sample.mean_external_power_mw =
            (power_integral - state.power_integral_mw_us) / epoch_us_;

        state.busy_us = busy_us;
        state.power_integral_mw_us = power_integral;
        state.sent = sent;
        state.delivered = delivered;

        sender.set_cs_threshold_dbm(state.controller.on_epoch(sample));
        threshold_sum.add(state.controller.threshold_dbm());
    }
    mean_trajectory_dbm_.push_back(threshold_sum.value() /
                                   static_cast<double>(links_.size()));
    net_.sim().schedule_in(epoch_us_, [this] { on_epoch(); });
}

std::vector<double> adaptive_cs_manager::thresholds_dbm() const {
    std::vector<double> thresholds;
    thresholds.reserve(links_.size());
    for (const auto& state : links_) {
        thresholds.push_back(state.controller.threshold_dbm());
    }
    return thresholds;
}

}  // namespace csense::mac
