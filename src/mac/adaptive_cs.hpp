// Closed-loop, per-node carrier-sense threshold control inside the
// packet-level DCF simulator.
//
// The paper's central claim is that a *well-tuned* energy-detection
// threshold closes most of the gap to optimal scheduling; tab02/abl05
// compute those tuned thresholds offline. This module feeds the tuning
// back into the running MAC: each sender keeps EWMA estimates of its
// sensed busy-time fraction, delivery loss rate, goodput, and mean
// interference power, and a pluggable policy (cs_adapt_policy in
// src/mac/wireless_config.hpp) moves the node's effective
// cs_threshold_dbm once per adaptation epoch through the
// dcf_node::set_cs_threshold_dbm hook:
//
//  - `aimd`            raises the threshold additively while the loss
//                      EWMA stays under loss_target and backs it off by
//                      md_backoff_db when congestion shows (Chau et
//                      al.'s adaptive-CS flavour);
//  - `target_busy`     integral-controls the busy-time fraction to a set
//                      point, which places the threshold at the matching
//                      quantile of the sensed-power distribution;
//  - `iterative_fixed_point`
//                      the online analogue of Kim & Kim's iteration
//                      (src/core/adaptive_threshold.hpp): step the
//                      threshold until the link's Shannon capacity
//                      under the marginal admitted contender - sensed
//                      at exactly the current threshold power, the
//                      pairwise D >> r approximation - equals the fair
//                      half share, i.e. the same concurrency-vs-
//                      multiplexing crossing the offline model solves,
//                      driven by the fed-back receiver RSSI.
//
// Determinism: controllers are driven by a single per-network epoch
// event that visits senders in node-index order, and each controller's
// dither stream is stats::rng(seed).split(sender id) - a function of
// (seed, node index) only. Campaign replications that shard adaptive
// runs across threads therefore stay bit-identical for every worker
// count.
#pragma once

#include <cstdint>
#include <vector>

#include "src/mac/network.hpp"
#include "src/stats/rng.hpp"

namespace csense::mac {

/// One adapted sender and the receiver whose deliveries ground its loss
/// and goodput signals (in the simulator the designated receiver's
/// decode counts stand in for the receiver feedback a real adaptive MAC
/// would piggyback on ACKs).
struct adaptive_cs_link {
    node_id sender = 0;
    node_id receiver = 0;
};

/// One epoch's measurements for a single sender.
struct adaptive_cs_sample {
    double busy_fraction = 0.0;  ///< share of the epoch the CCA was busy
    double attempts = 0.0;       ///< data frames put on the air
    double delivered = 0.0;      ///< frames decoded at the paired receiver
    double mean_external_power_mw = 0.0;  ///< sensed power incl. noise floor
};

/// The per-node control law. Pure state machine: feed it one sample per
/// epoch, read back the clamped threshold. Usable standalone in tests;
/// adaptive_cs_manager wires it to a live network.
class adaptive_cs_controller {
public:
    /// `signal_dbm` is the sender->receiver received power, `noise_dbm`
    /// the radio noise floor, and `contenders` the number of competing
    /// senders - the quantities the fixed-point balance needs. `stream`
    /// must be a split stream keyed by the node index so runs are
    /// reproducible regardless of scheduling. Throws
    /// std::invalid_argument on nonsensical configuration.
    adaptive_cs_controller(const cs_adaptation_config& config,
                           double initial_threshold_dbm, double signal_dbm,
                           double noise_dbm, int contenders,
                           stats::rng stream);

    /// Consume one epoch of measurements; returns the new threshold,
    /// already clamped to [min_threshold_dbm, max_threshold_dbm].
    double on_epoch(const adaptive_cs_sample& sample);

    double threshold_dbm() const noexcept { return threshold_dbm_; }
    double busy_ewma() const noexcept { return busy_ewma_; }
    double loss_ewma() const noexcept { return loss_ewma_; }
    double goodput_ewma() const noexcept { return goodput_ewma_; }

    /// EWMA of the mean sensed power (mW, noise floor included) - a
    /// diagnostic estimate of the interference the current threshold
    /// admits; no built-in policy consumes it.
    double interference_ewma_mw() const noexcept {
        return interference_ewma_mw_;
    }

private:
    cs_adaptation_config config_;
    double threshold_dbm_;
    double signal_dbm_;
    double noise_dbm_;
    int contenders_;
    stats::rng rng_;

    double busy_ewma_ = 0.0;
    double loss_ewma_ = 0.0;
    double goodput_ewma_ = 0.0;
    double interference_ewma_mw_ = 0.0;
};

/// Drives one controller per sender inside a running network: a single
/// recurring simulator event samples every sender's counters (in
/// node-index order), updates its controller, and installs the new
/// threshold via dcf_node::set_cs_threshold_dbm. Each controller is
/// configured from its own sender's mac_config::adapt (the per-node
/// hook), so policies may differ per node; the epoch cadence is taken
/// from the first link's config. Must outlive the network's run.
class adaptive_cs_manager {
public:
    /// `seed` must derive only from the replication's seed; controller
    /// dither streams are split(sender id) from it. Throws
    /// std::invalid_argument when `links` is empty or any sender's
    /// adaptation config is nonsensical.
    adaptive_cs_manager(network& net, std::vector<adaptive_cs_link> links,
                        std::uint64_t seed);

    /// Captures counter baselines and schedules the first epoch. Call
    /// after traffic is configured, before (or at) simulation start.
    void start();

    /// Adaptation epochs completed so far.
    std::size_t epochs() const noexcept {
        return mean_trajectory_dbm_.size();
    }

    /// Mean threshold across senders after each completed epoch.
    const std::vector<double>& mean_threshold_trajectory_dbm() const noexcept {
        return mean_trajectory_dbm_;
    }

    /// Current per-sender thresholds, in link order.
    std::vector<double> thresholds_dbm() const;

    const adaptive_cs_controller& controller(std::size_t link_index) const {
        return links_.at(link_index).controller;
    }

private:
    struct link_state {
        adaptive_cs_link link;
        adaptive_cs_controller controller;
        // Cumulative counters as of the previous epoch boundary.
        double busy_us = 0.0;
        double power_integral_mw_us = 0.0;
        std::uint64_t sent = 0;
        std::uint64_t delivered = 0;
    };

    void on_epoch();
    static std::uint64_t delivered_from(const dcf_node& receiver,
                                        node_id sender);

    network& net_;
    double epoch_us_;  ///< shared cadence: the first link's epoch_us
    std::vector<link_state> links_;
    std::vector<double> mean_trajectory_dbm_;
    bool started_ = false;
};

}  // namespace csense::mac
