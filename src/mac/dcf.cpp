#include "src/mac/dcf.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/propagation/units.hpp"

namespace csense::mac {

using capacity::ofdm_timing;

namespace {
/// Scheduling slack added to response timeouts.
constexpr sim::time_us timeout_margin_us = 10.0;
}  // namespace

dcf_node::dcf_node(sim::simulator& sim, medium& med, mac_config config,
                   std::uint64_t seed, dcf_hot_state* hot)
    : sim_(sim), medium_(med), config_(config), id_(med.add_node(*this)),
      rng_(seed), control_rate_(&capacity::rate_by_mbps(6.0)),
      hot_(hot != nullptr ? hot : &own_hot_) {
    if (config_.cw_min < 1 || config_.cw_max < config_.cw_min) {
        throw std::invalid_argument("dcf_node: bad contention window");
    }
    hot_->cw = config_.cw_min;
    hot_->last_external_power_dbm = med.radio().noise_floor_dbm;
}

dcf_node::~dcf_node() {
    if (arrival_event_.has_value()) sim_.cancel(*arrival_event_);
}

void dcf_node::set_traffic(traffic_mode mode, node_id destination,
                           const capacity::phy_rate& rate, int payload_bytes) {
    if (payload_bytes <= 0) throw std::invalid_argument("dcf_node: payload");
    traffic_ = mode;
    destination_ = destination;
    data_rate_ = &rate;
    payload_bytes_ = payload_bytes;
}

void dcf_node::set_traffic_model(const traffic_config& config) {
    if (config.queue_capacity < 0) {
        throw std::invalid_argument("dcf_node: queue_capacity");
    }
    traffic_model_ = config;
    source_ = make_traffic_source(config);  // validates the rate knobs
}

void dcf_node::set_rate_adaptation(capacity::rate_adaptation* adapter) {
    adaptation_ = adapter;
}

void dcf_node::start() {
    if (traffic_ == traffic_mode::none) return;
    if (source_ == nullptr || source_->saturated()) {
        // The historical always-backlogged path: refill inline, no
        // arrival events — byte-identical to the pre-queue MAC.
        hot_->state = state::contending;
        new_packet();
        head_enqueued_us_ = sim_.now();
        reevaluate();
        return;
    }
    // The arrival stream is a split child of the node RNG: deriving it
    // consumes no draws, so installing an unsaturated source on one node
    // cannot perturb any other node's backoff sequence.
    arrival_rng_ = rng_.split("traffic");
    schedule_next_arrival();
}

void dcf_node::schedule_next_arrival() {
    const sim::time_us gap = source_->next_interarrival_us(arrival_rng_);
    arrival_event_ = sim_.schedule_in(gap, [this] { on_arrival(); });
}

void dcf_node::on_arrival() {
    ++stats_.offered_packets;
    if (!hot_->have_packet) {
        head_enqueued_us_ = sim_.now();
        hot_->state = state::contending;
        new_packet();
        reevaluate();
    } else if (queue_.size() <
               static_cast<std::size_t>(traffic_model_.queue_capacity)) {
        queue_.push_back(sim_.now());
    } else {
        ++stats_.queue_drops;
    }
    schedule_next_arrival();
}

bool dcf_node::sense_enabled() const noexcept {
    return config_.sense != cs_mode::disabled;
}

bool dcf_node::rts_active() const {
    return config_.use_rts_cts ||
           (config_.adaptive_rts_cts && heuristic_rts_on_);
}

bool dcf_node::channel_busy() const {
    if (!sense_enabled()) return false;
    const sim::time_us now = sim_.now();
    if (now < hot_->nav_until) return true;
    const bool energy_mode = config_.sense == cs_mode::energy ||
                             config_.sense == cs_mode::energy_and_preamble;
    if (energy_mode && hot_->energy_busy) return true;
    const bool preamble_mode = config_.sense == cs_mode::preamble ||
                               config_.sense == cs_mode::energy_and_preamble;
    if (preamble_mode && now < hot_->preamble_busy_until) return true;
    return false;
}

void dcf_node::cancel_timer() {
    ++hot_->timer_generation;
    hot_->difs_done = false;
}

void dcf_node::schedule_timer(sim::time_us delay,
                              void (dcf_node::*handler)()) {
    const std::uint64_t generation = ++hot_->timer_generation;
    sim_.schedule_in(delay, [this, generation, handler] {
        if (generation == hot_->timer_generation) (this->*handler)();
    });
}

void dcf_node::reevaluate() {
    if (hot_->state != state::contending || !hot_->have_packet) return;
    if (channel_busy()) {
        cancel_timer();
        return;
    }
    if (medium_.transmitting(id_)) return;  // a response frame is on the air
    if (!hot_->difs_done) {
        schedule_timer(ofdm_timing::difs_us, &dcf_node::on_difs_end);
    }
}

void dcf_node::on_difs_end() {
    if (hot_->state != state::contending || channel_busy()) return;
    if (medium_.transmitting(id_)) return;  // response frame on the air
    hot_->difs_done = true;
    if (hot_->slots_left == 0) {
        begin_transmission();
        return;
    }
    schedule_timer(ofdm_timing::slot_us, &dcf_node::on_slot);
}

void dcf_node::on_slot() {
    if (hot_->state != state::contending || channel_busy()) return;
    if (medium_.transmitting(id_)) return;  // response frame on the air
    if (--hot_->slots_left <= 0) {
        begin_transmission();
        return;
    }
    schedule_timer(ofdm_timing::slot_us, &dcf_node::on_slot);
}

frame dcf_node::make_data_frame() {
    frame f;
    f.kind = frame_kind::data;
    f.src = id_;
    f.dst = (traffic_ == traffic_mode::broadcast) ? broadcast_id
                                                  : destination_;
    f.bytes = payload_bytes_;
    f.rate = packet_rate_;
    f.sequence = frame_sequence_;
    return f;
}

frame dcf_node::make_control_frame(frame_kind kind, node_id dst,
                                   double nav_duration_us) {
    frame f;
    f.kind = kind;
    f.src = id_;
    f.dst = dst;
    f.rate = control_rate_;
    switch (kind) {
        case frame_kind::rts: f.bytes = control_frames::rts_bytes; break;
        case frame_kind::cts: f.bytes = control_frames::cts_bytes; break;
        case frame_kind::ack: f.bytes = control_frames::ack_bytes; break;
        case frame_kind::data:
            throw std::logic_error("make_control_frame: data");
    }
    f.sequence = frame_sequence_;
    f.nav_duration_us = nav_duration_us;
    return f;
}

double dcf_node::exchange_nav_us(const capacity::phy_rate& data_rate) const {
    // From the end of an RTS: CTS + data + ACK with three SIFS gaps.
    return 3.0 * ofdm_timing::sifs_us +
           capacity::frame_airtime_us(*control_rate_,
                                      control_frames::cts_bytes) +
           capacity::frame_airtime_us(data_rate, payload_bytes_) +
           capacity::frame_airtime_us(*control_rate_,
                                      control_frames::ack_bytes);
}

const capacity::phy_rate& dcf_node::current_data_rate() {
    if (adaptation_ != nullptr && traffic_ == traffic_mode::unicast) {
        return adaptation_->next_rate();
    }
    return *data_rate_;
}

void dcf_node::new_packet() {
    hot_->have_packet = true;
    hot_->retries = 0;
    hot_->cw = config_.cw_min;
    ++frame_sequence_;
    packet_rate_ = &current_data_rate();
    hot_->slots_left = static_cast<int>(rng_.uniform_int(
        static_cast<std::uint64_t>(hot_->cw) + 1));
    hot_->difs_done = false;
}

void dcf_node::retry_packet() {
    ++hot_->retries;
    if (hot_->retries > config_.retry_limit) {
        ++stats_.data_dropped;
        packet_done(false);
        return;
    }
    hot_->cw = std::min(2 * (hot_->cw + 1) - 1, config_.cw_max);
    hot_->slots_left = static_cast<int>(rng_.uniform_int(
        static_cast<std::uint64_t>(hot_->cw) + 1));
    hot_->difs_done = false;
    packet_rate_ = &current_data_rate();  // adaptation may back off the rate
    hot_->state = state::contending;
    reevaluate();
}

void dcf_node::packet_done(bool delivered) {
    if (delivered && hot_->have_packet) {
        sojourn_.add(sim_.now() - head_enqueued_us_);
    }
    hot_->have_packet = false;
    hot_->state = state::contending;
    if (traffic_ == traffic_mode::none) return;
    if (source_ == nullptr || source_->saturated()) {
        new_packet();  // saturated sources always have a next packet
        head_enqueued_us_ = sim_.now();
        reevaluate();
        return;
    }
    if (queue_.empty()) {
        hot_->state = state::idle;  // drained; the next arrival restarts us
        return;
    }
    head_enqueued_us_ = queue_.front();
    queue_.pop_front();
    new_packet();
    reevaluate();
}

void dcf_node::begin_transmission() {
    cancel_timer();
    if (rts_active() && traffic_ == traffic_mode::unicast) {
        // NAV runs from the end of the RTS: CTS + DATA + ACK + 3 SIFS.
        frame rts = make_control_frame(frame_kind::rts, destination_,
                                       exchange_nav_us(*packet_rate_));
        ++stats_.rts_sent;
        transmit_frame(rts);
        return;
    }
    transmit_frame(make_data_frame());
}

void dcf_node::transmit_frame(const frame& f) {
    hot_->state = state::transmitting;
    medium_.start_transmission(id_, f, sense_enabled());
}

void dcf_node::start_response_timeout(state waiting_state,
                                      sim::time_us timeout) {
    hot_->state = waiting_state;
    const std::uint64_t generation = ++hot_->timer_generation;
    sim_.schedule_in(timeout, [this, generation] {
        if (generation != hot_->timer_generation) return;
        if (hot_->state == state::awaiting_cts || hot_->state == state::awaiting_ack) {
            note_unicast_outcome(false);
            retry_packet();
        }
    });
}

void dcf_node::queue_response(const frame& response,
                              std::uint64_t node_stats::*counter) {
    // Respond after SIFS, bypassing carrier sense (802.11 gives CTS/ACK
    // the SIFS priority window); the re-check lets a response queued
    // while we started transmitting be dropped silently.
    pending_response_ = response;
    response_queued_ = true;
    sim_.schedule_in(ofdm_timing::sifs_us, [this, counter] {
        if (response_queued_ && !medium_.transmitting(id_)) {
            response_queued_ = false;
            ++(stats_.*counter);
            medium_.start_transmission(id_, pending_response_, false);
        }
    });
}

void dcf_node::note_unicast_outcome(bool delivered) {
    if (traffic_ != traffic_mode::unicast) return;
    if (adaptation_ != nullptr && packet_rate_ != nullptr) {
        adaptation_->report(*packet_rate_, delivered,
                            capacity::frame_airtime_us(*packet_rate_,
                                                       payload_bytes_));
    }
    if (config_.adaptive_rts_cts) {
        constexpr double weight = 0.1;
        loss_ewma_ = (1.0 - weight) * loss_ewma_ + weight * (delivered ? 0.0 : 1.0);
        const double snr_db = medium_.rx_power_dbm(destination_, id_) -
                              medium_.radio().noise_floor_dbm;
        heuristic_rts_on_ = loss_ewma_ > config_.rts_loss_threshold &&
                            snr_db >= config_.rts_snr_threshold_db;
    }
}

double dcf_node::cs_threshold_dbm() const {
    return cs_threshold_override_dbm_.has_value()
               ? *cs_threshold_override_dbm_
               : medium_.radio().cs_threshold_dbm +
                     config_.cs_threshold_offset_db;
}

void dcf_node::set_cs_threshold_dbm(double threshold_dbm) {
    cs_threshold_override_dbm_ = threshold_dbm;
    apply_energy_busy(hot_->last_external_power_dbm >= threshold_dbm);
}

sim::time_us dcf_node::energy_busy_time_us() const {
    return hot_->busy_accum_us + (hot_->energy_busy ? sim_.now() - hot_->busy_since : 0.0);
}

double dcf_node::external_power_integral_mw_us() const {
    if (!config_.adapt.enabled()) return power_integral_mw_us_;  // stays 0
    return power_integral_mw_us_ +
           propagation::dbm_to_mw(hot_->last_external_power_dbm) *
               (sim_.now() - power_integral_mark_us_);
}

void dcf_node::account_external_power(double external_power_dbm) {
    const sim::time_us now = sim_.now();
    power_integral_mw_us_ +=
        propagation::dbm_to_mw(hot_->last_external_power_dbm) *
        (now - power_integral_mark_us_);
    power_integral_mark_us_ = now;
    hot_->last_external_power_dbm = external_power_dbm;
}

void dcf_node::apply_energy_busy(bool busy) {
    if (busy == hot_->energy_busy) return;
    const sim::time_us now = sim_.now();
    if (busy) {
        hot_->busy_since = now;
    } else {
        hot_->busy_accum_us += now - hot_->busy_since;
    }
    hot_->energy_busy = busy;
    if (busy && hot_->state == state::contending && hot_->difs_done) {
        ++stats_.defer_events;
    }
    reevaluate();
}

void dcf_node::on_channel_update(double external_power_dbm) {
    // The sensed-power integral feeds only the adaptive-CS controllers;
    // skip its per-update dBm->mW conversion when this node does not
    // adapt, so non-adaptive runs pay nothing in this hot callback.
    if (config_.adapt.enabled()) {
        account_external_power(external_power_dbm);
    } else {
        hot_->last_external_power_dbm = external_power_dbm;
    }
    apply_energy_busy(external_power_dbm >= cs_threshold_dbm());
}

void dcf_node::on_preamble(const frame&, double, sim::time_us until) {
    const bool preamble_mode = config_.sense == cs_mode::preamble ||
                               config_.sense == cs_mode::energy_and_preamble;
    if (!preamble_mode) return;  // this radio's CCA ignores preambles
    if (until > hot_->preamble_busy_until) {
        hot_->preamble_busy_until = until;
        if (hot_->state == state::contending && hot_->difs_done) ++stats_.defer_events;
        reevaluate();
        // Wake up when the frame ends to resume contention; reevaluate is
        // idempotent, so an unconditional wake-up is safe.
        sim_.schedule_at(until, [this] { reevaluate(); });
    }
}

void dcf_node::on_frame_received(const frame& f, double, double,
                                 bool decoded) {
    if (f.kind == frame_kind::data) {
        if (decoded) {
            ++stats_.rx_data_decoded;
            ++stats_.rx_decoded_by_src[f.src];
        } else {
            ++stats_.rx_data_lost;
        }
    }
    if (!decoded) return;

    const bool for_me = (f.dst == id_);
    switch (f.kind) {
        case frame_kind::data:
            if (for_me) {
                queue_response(make_control_frame(frame_kind::ack, f.src, 0.0),
                               &node_stats::acks_sent);
            }
            break;
        case frame_kind::rts:
            if (for_me && !medium_.transmitting(id_)) {
                queue_response(
                    make_control_frame(
                        frame_kind::cts, f.src,
                        f.nav_duration_us -
                            capacity::frame_airtime_us(
                                *control_rate_, control_frames::cts_bytes) -
                            ofdm_timing::sifs_us),
                    &node_stats::cts_sent);
            } else if (!for_me && sense_enabled()) {
                hot_->nav_until = std::max(hot_->nav_until, sim_.now() + f.nav_duration_us);
                reevaluate();
                sim_.schedule_at(hot_->nav_until, [this] { reevaluate(); });
            }
            break;
        case frame_kind::cts:
            if (for_me && hot_->state == state::awaiting_cts) {
                // Protected: send the data frame after SIFS.
                ++hot_->timer_generation;  // cancel the CTS timeout
                hot_->state = state::responding;
                sim_.schedule_in(ofdm_timing::sifs_us, [this] {
                    if (hot_->state == state::responding &&
                        !medium_.transmitting(id_)) {
                        transmit_frame(make_data_frame());
                    }
                });
            } else if (!for_me && sense_enabled()) {
                hot_->nav_until = std::max(hot_->nav_until, sim_.now() + f.nav_duration_us);
                reevaluate();
                sim_.schedule_at(hot_->nav_until, [this] { reevaluate(); });
            }
            break;
        case frame_kind::ack:
            if (for_me && hot_->state == state::awaiting_ack) {
                ++hot_->timer_generation;  // cancel the ACK timeout
                ++stats_.data_acked;
                note_unicast_outcome(true);
                packet_done(true);
            }
            break;
    }
}

void dcf_node::on_tx_complete(const frame& f) {
    switch (f.kind) {
        case frame_kind::data:
            ++stats_.data_sent;
            if (traffic_ == traffic_mode::broadcast) {
                packet_done(true);
            } else {
                const sim::time_us timeout =
                    ofdm_timing::sifs_us +
                    capacity::frame_airtime_us(*control_rate_,
                                               control_frames::ack_bytes) +
                    timeout_margin_us;
                start_response_timeout(state::awaiting_ack, timeout);
            }
            break;
        case frame_kind::rts: {
            const sim::time_us timeout =
                ofdm_timing::sifs_us +
                capacity::frame_airtime_us(*control_rate_,
                                           control_frames::cts_bytes) +
                timeout_margin_us;
            start_response_timeout(state::awaiting_cts, timeout);
            break;
        }
        case frame_kind::cts:
        case frame_kind::ack:
            // Response sent; resume our own contention if any.
            if (hot_->state == state::contending && hot_->have_packet) {
                hot_->difs_done = false;
                reevaluate();
            }
            break;
    }
}

}  // namespace csense::mac
