// An 802.11-style DCF node: slotted CSMA/CA with DIFS + binary-exponential
// backoff, broadcast (no-ACK) and unicast (ACK, retry) traffic, optional
// RTS/CTS with NAV, and the §5 heuristic that turns RTS/CTS on only when
// a link shows high loss despite high RSSI. Carrier sense is pluggable
// per node (disabled / energy / preamble / both), matching the thesis'
// experimental modes and its implementation-pathology discussion.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>

#include "src/capacity/rate_adaptation.hpp"
#include "src/mac/medium.hpp"
#include "src/mac/node_state.hpp"
#include "src/mac/traffic.hpp"
#include "src/mac/wireless_config.hpp"
#include "src/stats/quantile.hpp"

namespace csense::mac {

/// How the node addresses its data frames. *What* arrives — saturated
/// backlog or a stochastic offered load — is the traffic_config's
/// business (set_traffic_model); the default is saturated.
enum class traffic_mode {
    none,       ///< pure receiver
    broadcast,  ///< unacknowledged broadcast (the thesis' §4 traffic)
    unicast,    ///< ACKed data to a fixed destination
};

/// Per-node MAC statistics.
struct node_stats {
    std::uint64_t data_sent = 0;       ///< data frames put on the air
    std::uint64_t data_acked = 0;      ///< unicast frames acknowledged
    std::uint64_t data_dropped = 0;    ///< unicast frames over retry limit
    std::uint64_t offered_packets = 0; ///< arrivals presented by an
                                       ///< unsaturated traffic source
    std::uint64_t queue_drops = 0;     ///< arrivals lost to a full FIFO
    std::uint64_t rts_sent = 0;
    std::uint64_t cts_sent = 0;
    std::uint64_t acks_sent = 0;
    std::uint64_t defer_events = 0;    ///< contention frozen by a busy channel
    std::uint64_t rx_data_decoded = 0; ///< data frames decoded here
    std::uint64_t rx_data_lost = 0;    ///< locked receptions that failed
    std::unordered_map<node_id, std::uint64_t> rx_decoded_by_src;
};

/// One DCF station.
class dcf_node final : public medium_listener {
public:
    /// Creates the node and registers it with the medium. `hot` points
    /// this node's per-event state at a pool-owned cache-line block
    /// (see node_state_pool); when null the node carries its own block,
    /// so standalone construction keeps working.
    dcf_node(sim::simulator& sim, medium& med, mac_config config,
             std::uint64_t seed, dcf_hot_state* hot = nullptr);

    /// Cancels any pending arrival event (the owning network's simulator
    /// outlives its nodes, so teardown mid-run is safe).
    ~dcf_node() override;

    node_id id() const noexcept { return id_; }
    const node_stats& stats() const noexcept { return stats_; }
    const mac_config& config() const noexcept { return config_; }

    /// Configure traffic addressing. `rate` is the data rate (control
    /// frames go at 6 Mb/s). Must be called before the simulation
    /// starts. The arrival process defaults to saturated; see
    /// set_traffic_model.
    void set_traffic(traffic_mode mode, node_id destination,
                     const capacity::phy_rate& rate, int payload_bytes);

    /// Configure the arrival process and queue capacity. Must be called
    /// before the simulation starts; unsaturated arrivals draw from the
    /// node's split "traffic" RNG stream, so the arrival sequence
    /// depends only on the node seed and this config.
    void set_traffic_model(const traffic_config& config);

    /// Enqueue->delivery sojourn times (us) of every delivered packet:
    /// queueing wait + contention + retries until the frame left the air
    /// (broadcast) or was acknowledged (unicast). Saturated sources
    /// record pure service times (they never wait in a queue).
    const stats::streaming_quantiles& sojourn_times() const noexcept {
        return sojourn_;
    }

    /// Packets currently waiting behind the one in service.
    std::size_t queue_depth() const noexcept { return queue_.size(); }

    /// Optional rate adaptation (unicast only; overrides the fixed rate).
    /// The adapter must outlive the node.
    void set_rate_adaptation(capacity::rate_adaptation* adapter);

    /// Begin contending (call once, at simulation start).
    void start();

    /// True if this node currently considers RTS/CTS active for its
    /// destination (static config or triggered heuristic).
    bool rts_active() const;

    /// Effective energy-detection threshold in dBm: the adaptive
    /// override when one is installed, else the radio default plus this
    /// node's calibration offset.
    double cs_threshold_dbm() const;

    /// Install a per-node threshold override (the adaptive-carrier-sense
    /// hook; see src/mac/adaptive_cs.hpp). The energy-busy state is
    /// recomputed against the last observed external power immediately,
    /// so a threshold step mid-backoff behaves exactly like a channel
    /// power change.
    void set_cs_threshold_dbm(double threshold_dbm);

    /// Cumulative time this node's CCA has reported energy-busy, up to
    /// the current simulation instant. Epoch deltas of this are the
    /// busy-time-fraction input of the adaptive controllers.
    sim::time_us energy_busy_time_us() const;

    /// Time integral of the observed external power (mW x us) up to the
    /// current instant. An epoch delta divided by the epoch length is
    /// the mean sensed interference power (noise floor included). Only
    /// accumulated while this node's adaptation is enabled
    /// (mac_config::adapt) - non-adaptive nodes skip the bookkeeping.
    double external_power_integral_mw_us() const;

    // medium_listener interface.
    void on_channel_update(double external_power_dbm) override;
    void on_preamble(const frame& f, double rx_power_dbm,
                     sim::time_us until) override;
    void on_frame_received(const frame& f, double rx_power_dbm,
                           double min_sinr_db, bool decoded) override;
    void on_tx_complete(const frame& f) override;

private:
    /// FSM states live in node_state.hpp (the hot block stores one);
    /// the alias keeps every `state::...` reference below unchanged.
    using state = dcf_state;

    bool sense_enabled() const noexcept;
    bool channel_busy() const;
    void account_external_power(double external_power_dbm);
    void apply_energy_busy(bool busy);
    void reevaluate();
    void cancel_timer();
    void schedule_timer(sim::time_us delay, void (dcf_node::*handler)());
    void on_difs_end();
    void on_slot();
    void begin_transmission();
    void transmit_frame(const frame& f);
    void new_packet();
    void packet_done(bool delivered);
    void retry_packet();
    void schedule_next_arrival();
    void on_arrival();
    void start_response_timeout(state waiting_state, sim::time_us timeout);
    void queue_response(const frame& response,
                        std::uint64_t node_stats::*counter);
    frame make_data_frame();
    frame make_control_frame(frame_kind kind, node_id dst,
                             double nav_duration_us);
    double exchange_nav_us(const capacity::phy_rate& data_rate) const;
    const capacity::phy_rate& current_data_rate();
    void note_unicast_outcome(bool delivered);

    sim::simulator& sim_;
    medium& medium_;
    mac_config config_;
    node_id id_;
    stats::rng rng_;
    node_stats stats_;

    // Traffic.
    traffic_mode traffic_ = traffic_mode::none;
    node_id destination_ = broadcast_id;
    const capacity::phy_rate* data_rate_ = nullptr;
    const capacity::phy_rate* control_rate_ = nullptr;
    int payload_bytes_ = 1400;
    capacity::rate_adaptation* adaptation_ = nullptr;

    // Arrival process + FIFO queue. A null source behaves as saturated
    // (nodes driven without start() keep the historical refill path).
    traffic_config traffic_model_;
    std::unique_ptr<traffic_source> source_;
    stats::rng arrival_rng_;  ///< re-derived at start() via split("traffic")
    std::deque<sim::time_us> queue_;  ///< enqueue timestamps, FIFO order
    sim::time_us head_enqueued_us_ = 0.0;  ///< of the packet in service
    std::optional<sim::event_id> arrival_event_;
    stats::streaming_quantiles sojourn_;

    // Per-event hot state (channel sense + contention + timer
    // generation) lives in one cache-line block, pool-backed when the
    // network provides one; everything below hot_ is cold (touched per
    // packet or per epoch, not per event).
    dcf_hot_state* hot_;
    dcf_hot_state own_hot_;  ///< fallback storage for pool-less nodes

    // Adaptive carrier sense: per-node threshold override plus the
    // sensed-power accounting the controllers consume (epoch-rate).
    std::optional<double> cs_threshold_override_dbm_;
    double power_integral_mw_us_ = 0.0;
    sim::time_us power_integral_mark_us_ = 0.0;

    // Per-packet cold state.
    std::uint64_t frame_sequence_ = 0;
    const capacity::phy_rate* packet_rate_ = nullptr;

    // RTS/CTS heuristic state.
    double loss_ewma_ = 0.0;
    bool heuristic_rts_on_ = false;

    // Pending response bookkeeping.
    frame pending_response_;
    bool response_queued_ = false;
};

}  // namespace csense::mac
