// Frames exchanged on the simulated medium.
#pragma once

#include <cstdint>
#include <limits>

#include "src/capacity/rate_table.hpp"

namespace csense::mac {

using node_id = std::uint32_t;

/// Broadcast destination address.
inline constexpr node_id broadcast_id = std::numeric_limits<node_id>::max();

enum class frame_kind : std::uint8_t { data, rts, cts, ack };

/// A frame in flight. `rate` points into the static rate tables.
struct frame {
    frame_kind kind = frame_kind::data;
    node_id src = 0;
    node_id dst = broadcast_id;
    int bytes = 0;
    const capacity::phy_rate* rate = nullptr;
    std::uint64_t sequence = 0;     ///< per-sender sequence number
    double nav_duration_us = 0.0;   ///< NAV others should honour (RTS/CTS)

    /// Air time of this frame in microseconds.
    double airtime_us() const {
        return capacity::frame_airtime_us(*rate, bytes);
    }
};

}  // namespace csense::mac
