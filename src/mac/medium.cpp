#include "src/mac/medium.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>

#include "src/propagation/units.hpp"

namespace csense::mac {

namespace {
constexpr double very_weak_gain_db = -500.0;
/// Positive floor for interference computed by subtraction in the
/// culled path, so mw_to_dbm never sees a non-positive argument even if
/// compensated rounding dips below zero.
constexpr double min_positive_mw = 1e-300;
}  // namespace

medium::medium(sim::simulator& sim, radio_config radio,
               const capacity::error_model& errors, std::uint64_t seed)
    : sim_(sim), radio_(radio), errors_(errors), rng_(seed),
      culled_(radio.audibility_enabled()) {
    if (culled_ &&
        (radio_.audibility_floor_dbm >= radio_.preamble_threshold_dbm ||
         radio_.audibility_floor_dbm >= radio_.cs_threshold_dbm)) {
        throw std::invalid_argument(
            "medium: audibility_floor_dbm must sit below both "
            "preamble_threshold_dbm and cs_threshold_dbm - culling may only "
            "drop power that is negligible for every CCA and preamble "
            "decision (per-node overrides, e.g. "
            "cs_adaptation_config::min_threshold_dbm, must be kept above "
            "the floor by the caller)");
    }
    noise_mw_ = propagation::dbm_to_mw(radio_.noise_floor_dbm);
    preamble_threshold_mw_ =
        propagation::dbm_to_mw(radio_.preamble_threshold_dbm);
    cs_threshold_mw_ = propagation::dbm_to_mw(radio_.cs_threshold_dbm);
}

void medium::check_node(node_id n, const char* what) const {
    if (n >= listeners_.size()) {
        throw std::invalid_argument(std::string(what) + ": bad node");
    }
}

void medium::reserve_nodes(std::size_t nodes) {
    listeners_.reserve(nodes);
    lock_by_node_.reserve(nodes);
    last_tx_start_.reserve(nodes);
    tx_flag_by_node_.reserve(nodes);
    active_tx_by_node_.reserve(nodes);
    if (culled_) {
        sparse_gains_.reserve(nodes * 8);
    } else if (nodes > gain_stride_) {
        // Pre-size the dense matrix stride so add_node never re-lays it out.
        std::vector<double> grown(nodes * nodes, very_weak_gain_db);
        const std::size_t n = listeners_.size();
        for (std::size_t a = 0; a < n; ++a) {
            for (std::size_t b = 0; b < n; ++b) {
                grown[a * nodes + b] = gains_db_[a * gain_stride_ + b];
            }
        }
        gains_db_ = std::move(grown);
        gain_stride_ = nodes;
    }
}

void medium::grow_dense_gains() {
    const std::size_t n = listeners_.size();
    if (n <= gain_stride_) return;
    const std::size_t stride = std::max<std::size_t>({2 * gain_stride_, n, 8});
    std::vector<double> grown(stride * stride, very_weak_gain_db);
    for (std::size_t a = 0; a + 1 < n; ++a) {
        for (std::size_t b = 0; b + 1 < n; ++b) {
            grown[a * stride + b] = gains_db_[a * gain_stride_ + b];
        }
    }
    gains_db_ = std::move(grown);
    gain_stride_ = stride;
}

node_id medium::add_node(medium_listener& listener) {
    if (frozen_ || !transmissions_.empty()) {
        throw std::logic_error("medium::add_node: topology is frozen once "
                               "transmissions begin");
    }
    const auto id = static_cast<node_id>(listeners_.size());
    listeners_.push_back(&listener);
    lock_by_node_.emplace_back();
    last_tx_start_.push_back(-1e18);
    tx_flag_by_node_.push_back(0);
    active_tx_by_node_.push_back(-1);
    if (!culled_) grow_dense_gains();
    return id;
}

std::uint64_t medium::link_key(node_id a, node_id b) noexcept {
    const node_id lo = a < b ? a : b;
    const node_id hi = a < b ? b : a;
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

void medium::set_link_gain_db(node_id a, node_id b, double gain_db) {
    const std::size_t n = listeners_.size();
    if (a >= n || b >= n || a == b) {
        throw std::invalid_argument("medium::set_link_gain_db: bad link");
    }
    if (culled_) {
        if (frozen_) {
            throw std::logic_error(
                "medium::set_link_gain_db: neighbor lists are frozen once "
                "transmissions begin");
        }
        sparse_gains_[link_key(a, b)] = gain_db;
        return;
    }
    gains_db_[a * gain_stride_ + b] = gain_db;
    gains_db_[b * gain_stride_ + a] = gain_db;
}

double medium::link_gain_db(node_id a, node_id b) const {
    const std::size_t n = listeners_.size();
    if (a >= n || b >= n || a == b) {
        throw std::invalid_argument("medium::link_gain_db: bad link");
    }
    if (culled_) {
        const auto it = sparse_gains_.find(link_key(a, b));
        return it != sparse_gains_.end() ? it->second : very_weak_gain_db;
    }
    return gains_db_[a * gain_stride_ + b];
}

double medium::rx_power_dbm(node_id tx, node_id rx) const {
    return radio_.tx_power_dbm + link_gain_db(tx, rx);
}

bool medium::transmitting(node_id n) const {
    check_node(n, "medium::transmitting");
    return tx_flag_by_node_[n] != 0;
}

std::size_t medium::neighbor_count(node_id n) const {
    check_node(n, "medium::neighbor_count");
    if (!culled_) return listeners_.size() - 1;
    if (!frozen_) {
        throw std::logic_error(
            "medium::neighbor_count: neighbor lists are built when the "
            "topology freezes (at the first transmission)");
    }
    return nbr_offset_[n + 1] - nbr_offset_[n];
}

void medium::freeze_topology() {
    frozen_ = true;
    if (!culled_) return;
    const std::size_t n = listeners_.size();
    nbr_offset_.assign(n + 1, 0);
    // Fading can lift a link above its mean: keep every link whose
    // *mean* rx power reaches the floor after a 3-sigma fade allowance
    // (the dropped tail is < 0.15% of frames), so the culled set still
    // only loses power that is negligible for CCA when fading is on.
    const double effective_floor_dbm =
        radio_.audibility_floor_dbm - 3.0 * radio_.fading_sigma_db;
    const auto audible = [&](double gain_db) {
        return radio_.tx_power_dbm + gain_db >= effective_floor_dbm;
    };
    // csense-lint: allow(unordered-iteration) -- pure degree counting:
    // each link bumps two integer counters, so the fold is order-free.
    for (const auto& [key, gain] : sparse_gains_) {
        if (!audible(gain)) continue;
        const auto a = static_cast<std::size_t>(key >> 32);
        const auto b = static_cast<std::size_t>(key & 0xffffffffULL);
        ++nbr_offset_[a + 1];
        ++nbr_offset_[b + 1];
    }
    std::partial_sum(nbr_offset_.begin(), nbr_offset_.end(),
                     nbr_offset_.begin());
    nbr_id_.resize(nbr_offset_[n]);
    nbr_rx_mw_.resize(nbr_offset_[n]);
    std::vector<std::uint32_t> cursor(nbr_offset_.begin(),
                                      nbr_offset_.end() - 1);
    // csense-lint: allow(unordered-iteration) -- CSR fill in hash order
    // is safe because every row is re-sorted by neighbor id below, so
    // the frozen lists are a function of the topology alone.
    for (const auto& [key, gain] : sparse_gains_) {
        if (!audible(gain)) continue;
        const auto a = static_cast<node_id>(key >> 32);
        const auto b = static_cast<node_id>(key & 0xffffffffULL);
        // rx power is symmetric: common tx power plus the symmetric gain.
        const double mw = propagation::dbm_to_mw(radio_.tx_power_dbm + gain);
        nbr_id_[cursor[a]] = b;
        nbr_rx_mw_[cursor[a]++] = mw;
        nbr_id_[cursor[b]] = a;
        nbr_rx_mw_[cursor[b]++] = mw;
    }
    // Sort each row by neighbor id (the map iterates in hash order) so
    // fan-out order - and with it fading draws and delivery callbacks -
    // is a function of the topology alone.
    std::vector<std::pair<node_id, double>> row;
    for (std::size_t v = 0; v < n; ++v) {
        const std::size_t begin = nbr_offset_[v];
        const std::size_t end = nbr_offset_[v + 1];
        row.clear();
        for (std::size_t s = begin; s < end; ++s) {
            row.emplace_back(nbr_id_[s], nbr_rx_mw_[s]);
        }
        std::sort(row.begin(), row.end());
        for (std::size_t s = begin; s < end; ++s) {
            nbr_id_[s] = row[s - begin].first;
            nbr_rx_mw_[s] = row[s - begin].second;
        }
    }
    ext_mw_.assign(n, stats::kahan_sum{});
    audible_count_.assign(n, 0);
}

const double* medium::row_rx_mw(const transmission& t) const {
    return t.rx_mw.empty() ? nbr_rx_mw_.data() + nbr_offset_[t.src]
                           : t.rx_mw.data();
}

double medium::faded_rx_power_dbm(const transmission& t, node_id rx) const {
    double power = rx_power_dbm(t.src, rx);
    if (!t.fade_db.empty()) power += t.fade_db[rx];
    return power;
}

double medium::culled_external_mw(node_id n) const {
    return noise_mw_ + std::max(ext_mw_[n].value(), 0.0);
}

double medium::external_power_mw(node_id n) const {
    if (culled_) {
        if (ext_mw_.empty()) return noise_mw_;  // before the freeze: silence
        return culled_external_mw(n);
    }
    double mw = propagation::dbm_to_mw(radio_.noise_floor_dbm);
    for (std::size_t i : active_tx_) {
        const auto& t = transmissions_[i];
        if (t.src == n) continue;
        // csense-lint: allow(loop-float-accumulation) -- the dense
        // reference path must stay byte-identical to the pre-culling
        // implementation (the culled path's equivalence tests and the
        // default-config compatibility guarantee both pin it).
        mw += propagation::dbm_to_mw(faded_rx_power_dbm(t, n));
    }
    return mw;
}

double medium::external_power_dbm(node_id n) const {
    check_node(n, "medium::external_power_dbm");
    return propagation::mw_to_dbm(external_power_mw(n));
}

double medium::interference_mw(node_id rx, std::size_t locked_tx) const {
    // Dense path only; the culled path derives interference from the
    // incremental sum minus the locked signal at its call sites.
    double mw = propagation::dbm_to_mw(radio_.noise_floor_dbm);
    for (std::size_t i : active_tx_) {
        const auto& t = transmissions_[i];
        if (i == locked_tx || t.src == rx) continue;
        // csense-lint: allow(loop-float-accumulation) -- dense reference
        // path, kept bit-identical to the pre-culling implementation;
        // active_tx_ iterates in deterministic insertion order.
        mw += propagation::dbm_to_mw(faded_rx_power_dbm(t, rx));
    }
    return mw;
}

void medium::update_reception_sinrs() {
    for (auto& lock : lock_by_node_) {
        if (!lock || !lock->active) continue;
        const double interference = interference_mw(lock->rx, lock->tx_index);
        const double sinr_db =
            propagation::mw_to_dbm(lock->signal_mw) -
            propagation::mw_to_dbm(interference);
        lock->min_sinr_db = std::min(lock->min_sinr_db, sinr_db);
    }
}

void medium::update_all_channel_states() {
    // Clear-channel assessment takes time: nodes learn about a power
    // change cca_delay_us after it happens, and see the power as it is
    // *then*. The stale window is what permits slot collisions.
    sim_.schedule_in(radio_.cca_delay_us, [this] {
        for (node_id n = 0; n < listeners_.size(); ++n) {
            listeners_[n]->on_channel_update(
                propagation::mw_to_dbm(external_power_mw(n)));
        }
    });
}

void medium::notify_neighbors_after_cca(node_id src) {
    // Culled counterpart of update_all_channel_states: only the audible
    // neighbors of the changed transmitter saw any power move, so only
    // they are notified. Same CCA staleness: the power is read when the
    // callback fires, not when the change happened.
    sim_.schedule_in(radio_.cca_delay_us, [this, src] {
        const std::size_t begin = nbr_offset_[src];
        const std::size_t end = nbr_offset_[src + 1];
        for (std::size_t s = begin; s < end; ++s) {
            const node_id n = nbr_id_[s];
            listeners_[n]->on_channel_update(
                propagation::mw_to_dbm(culled_external_mw(n)));
        }
    });
}

void medium::try_lock_receivers(std::size_t tx_index) {
    const auto& t = transmissions_[tx_index];
    for (node_id n = 0; n < listeners_.size(); ++n) {
        if (n == t.src) continue;
        if (tx_flag_by_node_[n] != 0) continue;  // deaf while transmitting
        const double power_dbm = faded_rx_power_dbm(t, n);
        if (power_dbm < radio_.preamble_threshold_dbm) continue;
        const double interference = interference_mw(n, tx_index);
        const double sinr_db =
            power_dbm - propagation::mw_to_dbm(interference);
        if (sinr_db < radio_.preamble_capture_snr_db) continue;
        // The preamble is decodable at this node: announce it (carrier
        // sense hook) after the CCA lag, and lock if the receiver is free.
        medium_listener* listener = listeners_[n];
        const frame announced = t.f;
        const sim::time_us until = t.end;
        sim_.schedule_in(radio_.cca_delay_us,
                         [listener, announced, power_dbm, until] {
                             listener->on_preamble(announced, power_dbm, until);
                         });
        if (!lock_by_node_[n]) {
            lock_by_node_[n] = reception{tx_index, n,
                                         propagation::dbm_to_mw(power_dbm),
                                         sinr_db, true};
        }
    }
}

void medium::refresh_power_sums() {
    // Exact rebuild of every incremental sum from the active set, so the
    // compensated accounting can never drift over long runs. Keyed to
    // event counts by the caller - deterministic, never wall clock.
    for (std::size_t n = 0; n < ext_mw_.size(); ++n) {
        ext_mw_[n].reset();
        audible_count_[n] = 0;
    }
    for (const std::size_t i : active_tx_) {
        const auto& t = transmissions_[i];
        const double* row = row_rx_mw(t);
        const std::size_t begin = nbr_offset_[t.src];
        const std::size_t end = nbr_offset_[t.src + 1];
        for (std::size_t s = begin; s < end; ++s) {
            ext_mw_[nbr_id_[s]].add(row[s - begin]);
            ++audible_count_[nbr_id_[s]];
        }
    }
}

void medium::start_transmission(node_id src, const frame& f,
                                bool cs_said_idle) {
    check_node(src, "medium::start_transmission");
    if (tx_flag_by_node_[src] != 0) {
        throw std::logic_error("medium::start_transmission: already on air");
    }
    if (!frozen_) freeze_topology();
    ++counters_.transmissions;
    const sim::time_us now = sim_.now();
    // Pathology accounting: did this start overlap an audible frame?
    bool audible = false;
    bool mutual_recent_start = false;
    if (culled_) {
        const std::size_t begin = nbr_offset_[src];
        const std::size_t end = nbr_offset_[src + 1];
        for (std::size_t s = begin; s < end; ++s) {
            const std::int64_t ti = active_tx_by_node_[nbr_id_[s]];
            if (ti < 0) continue;
            // Unfaded sensed power, symmetric in (src, neighbor): one
            // precomputed row value answers both directions of the
            // legacy mutual-audibility check.
            if (nbr_rx_mw_[s] >= cs_threshold_mw_) {
                audible = true;
                if (now - transmissions_[static_cast<std::size_t>(ti)].start <=
                    capacity::ofdm_timing::slot_us) {
                    mutual_recent_start = true;
                }
            }
        }
    } else {
        for (std::size_t i : active_tx_) {
            const auto& t = transmissions_[i];
            if (rx_power_dbm(t.src, src) >= radio_.cs_threshold_dbm) {
                audible = true;
                if (now - t.start <= capacity::ofdm_timing::slot_us &&
                    rx_power_dbm(src, t.src) >= radio_.cs_threshold_dbm) {
                    mutual_recent_start = true;
                }
            }
        }
    }
    if (audible) {
        ++counters_.busy_starts;
        if (mutual_recent_start) {
            ++counters_.slot_collisions;
        } else if (cs_said_idle) {
            ++counters_.chain_collisions;
        }
    }
    last_tx_start_[src] = now;

    // A transmitter abandons any reception in progress.
    if (lock_by_node_[src] && lock_by_node_[src]->active) {
        lock_by_node_[src]->active = false;
        lock_by_node_[src].reset();
    }

    transmission t;
    t.f = f;
    t.src = src;
    t.start = now;
    t.end = now + f.airtime_us();
    t.active = true;
    if (radio_.fading_sigma_db > 0.0) {
        if (culled_) {
            // Fade draws only for the audible neighbors, in row (node-id)
            // order, folded straight into the precomputed rx power.
            const std::size_t begin = nbr_offset_[src];
            const std::size_t end = nbr_offset_[src + 1];
            t.rx_mw.resize(end - begin);
            for (std::size_t s = begin; s < end; ++s) {
                const double fade_db = radio_.fading_sigma_db * rng_.normal();
                t.rx_mw[s - begin] =
                    nbr_rx_mw_[s] * propagation::db_to_linear(fade_db);
            }
        } else {
            t.fade_db.resize(listeners_.size(), 0.0);
            for (node_id n = 0; n < listeners_.size(); ++n) {
                if (n == src) continue;
                t.fade_db[n] = radio_.fading_sigma_db * rng_.normal();
            }
        }
    }
    transmissions_.push_back(std::move(t));
    const std::size_t index = transmissions_.size() - 1;
    active_tx_.push_back(index);
    tx_flag_by_node_[src] = 1;
    active_tx_by_node_[src] = static_cast<std::int64_t>(index);
    ++active_count_;

    if (culled_) {
        const transmission& added = transmissions_[index];
        const double* row = row_rx_mw(added);
        const std::size_t begin = nbr_offset_[src];
        const std::size_t end = nbr_offset_[src + 1];
        // Incremental power accounting: this frame's rx power joins each
        // neighbor's running external sum.
        for (std::size_t s = begin; s < end; ++s) {
            const node_id n = nbr_id_[s];
            ext_mw_[n].add(row[s - begin]);
            ++audible_count_[n];
        }
        // New interference hits ongoing receptions at the neighbors.
        for (std::size_t s = begin; s < end; ++s) {
            auto& lock = lock_by_node_[nbr_id_[s]];
            if (!lock || !lock->active) continue;
            const double interference = std::max(
                culled_external_mw(lock->rx) - lock->signal_mw,
                min_positive_mw);
            const double sinr_db = propagation::mw_to_dbm(lock->signal_mw) -
                                   propagation::mw_to_dbm(interference);
            lock->min_sinr_db = std::min(lock->min_sinr_db, sinr_db);
        }
        // Then candidate neighbors may lock onto this frame.
        for (std::size_t s = begin; s < end; ++s) {
            const node_id n = nbr_id_[s];
            if (tx_flag_by_node_[n] != 0) continue;  // deaf while transmitting
            const double power_mw = row[s - begin];
            if (power_mw < preamble_threshold_mw_) continue;
            const double interference = std::max(
                culled_external_mw(n) - power_mw, min_positive_mw);
            const double power_dbm = propagation::mw_to_dbm(power_mw);
            const double sinr_db =
                power_dbm - propagation::mw_to_dbm(interference);
            if (sinr_db < radio_.preamble_capture_snr_db) continue;
            medium_listener* listener = listeners_[n];
            const frame announced = added.f;
            const sim::time_us until = added.end;
            sim_.schedule_in(radio_.cca_delay_us,
                             [listener, announced, power_dbm, until] {
                                 listener->on_preamble(announced, power_dbm,
                                                       until);
                             });
            if (!lock_by_node_[n]) {
                lock_by_node_[n] = reception{index, n, power_mw, sinr_db, true};
            }
        }
        notify_neighbors_after_cca(src);
    } else {
        update_reception_sinrs();   // new interference hits ongoing receptions
        try_lock_receivers(index);  // then candidates may lock onto this frame
        update_all_channel_states();
    }

    sim_.schedule_at(transmissions_[index].end,
                     [this, index] { end_transmission(index); });
}

void medium::maybe_compact_log() {
    // Compact the log occasionally so long runs stay O(active).
    if (transmissions_.size() > 4096 && active_count_ == 0) {
        bool any_locked = false;
        for (const auto& lock : lock_by_node_) {
            if (lock) any_locked = true;
        }
        if (!any_locked) {
            transmissions_.clear();
            active_tx_.clear();
        }
    }
}

void medium::end_transmission(std::size_t tx_index) {
    // Copy what callbacks need: listeners may re-enter start_transmission,
    // which can reallocate transmissions_.
    const frame ended = transmissions_[tx_index].f;
    const node_id src = transmissions_[tx_index].src;
    transmissions_[tx_index].active = false;
    tx_flag_by_node_[src] = 0;
    active_tx_by_node_[src] = -1;
    --active_count_;

    // end_transmission only runs from a scheduled event, never nested,
    // so the member scratch is free here.
    std::vector<delivery>& deliveries = delivery_scratch_;
    deliveries.clear();

    if (culled_) {
        // Swap-erase: active order only feeds the exact refresh, whose
        // association is deterministic either way.
        const auto it =
            std::find(active_tx_.begin(), active_tx_.end(), tx_index);
        *it = active_tx_.back();
        active_tx_.pop_back();
        const transmission& t = transmissions_[tx_index];
        const double* row = row_rx_mw(t);
        const std::size_t begin = nbr_offset_[src];
        const std::size_t end = nbr_offset_[src + 1];
        for (std::size_t s = begin; s < end; ++s) {
            const node_id n = nbr_id_[s];
            ext_mw_[n].sub(row[s - begin]);
            if (--audible_count_[n] == 0) {
                // The audible set emptied: the true sum is exactly zero,
                // so drop any accumulated rounding with it.
                ext_mw_[n].reset();
            }
        }
        // Settle receptions locked to this frame: only audible neighbors
        // can hold one (locking requires power above the preamble
        // sensitivity, which sits above the audibility floor).
        for (std::size_t s = begin; s < end; ++s) {
            auto& lock = lock_by_node_[nbr_id_[s]];
            if (!lock || !lock->active || lock->tx_index != tx_index) continue;
            lock->active = false;
            const double per = errors_.packet_error_rate(
                *ended.rate, lock->min_sinr_db, ended.bytes);
            const bool decoded = rng_.uniform() >= per;
            deliveries.push_back({lock->rx,
                                  propagation::mw_to_dbm(lock->signal_mw),
                                  lock->min_sinr_db, decoded});
            lock.reset();
        }
        // Interference relief never lowers a min-SINR, so the legacy
        // post-removal SINR sweep is a no-op here and is skipped.
        if (radio_.power_refresh_interval > 0 &&
            ++ends_since_refresh_ >= radio_.power_refresh_interval) {
            refresh_power_sums();
            ends_since_refresh_ = 0;
        }
        for (const auto& d : deliveries) {
            listeners_[d.rx]->on_frame_received(ended, d.power_dbm, d.sinr,
                                                d.decoded);
        }
        notify_neighbors_after_cca(src);
        listeners_[src]->on_tx_complete(ended);
        maybe_compact_log();
        return;
    }

    std::erase(active_tx_, tx_index);
    // Settle receptions locked to this frame.
    for (auto& lock : lock_by_node_) {
        if (!lock || !lock->active || lock->tx_index != tx_index) continue;
        lock->active = false;
        const double per = errors_.packet_error_rate(
            *ended.rate, lock->min_sinr_db, ended.bytes);
        const bool decoded = rng_.uniform() >= per;
        deliveries.push_back({lock->rx, propagation::mw_to_dbm(lock->signal_mw),
                              lock->min_sinr_db, decoded});
        lock.reset();
    }
    // Interference relief for everyone else, then deliver.
    update_reception_sinrs();
    for (const auto& d : deliveries) {
        listeners_[d.rx]->on_frame_received(ended, d.power_dbm, d.sinr,
                                            d.decoded);
    }
    update_all_channel_states();
    listeners_[src]->on_tx_complete(ended);
    maybe_compact_log();
}

}  // namespace csense::mac
