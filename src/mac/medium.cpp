#include "src/mac/medium.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/propagation/units.hpp"

namespace csense::mac {

namespace {
constexpr double very_weak_gain_db = -500.0;
}

medium::medium(sim::simulator& sim, radio_config radio,
               const capacity::error_model& errors, std::uint64_t seed)
    : sim_(sim), radio_(radio), errors_(errors), rng_(seed) {}

node_id medium::add_node(medium_listener& listener) {
    if (!transmissions_.empty()) {
        throw std::logic_error("medium::add_node: topology is frozen once "
                               "transmissions begin");
    }
    const auto id = static_cast<node_id>(listeners_.size());
    listeners_.push_back(&listener);
    lock_by_node_.emplace_back();
    last_tx_start_.push_back(-1e18);
    tx_flag_by_node_.push_back(0);
    // Grow the gain matrix, defaulting new links to "unhearable".
    const std::size_t n = listeners_.size();
    std::vector<double> grown(n * n, very_weak_gain_db);
    for (std::size_t a = 0; a + 1 < n; ++a) {
        for (std::size_t b = 0; b + 1 < n; ++b) {
            grown[a * n + b] = gains_db_[a * (n - 1) + b];
        }
    }
    gains_db_ = std::move(grown);
    return id;
}

void medium::set_link_gain_db(node_id a, node_id b, double gain_db) {
    const std::size_t n = listeners_.size();
    if (a >= n || b >= n || a == b) {
        throw std::invalid_argument("medium::set_link_gain_db: bad link");
    }
    gains_db_[a * n + b] = gain_db;
    gains_db_[b * n + a] = gain_db;
}

double medium::link_gain_db(node_id a, node_id b) const {
    const std::size_t n = listeners_.size();
    if (a >= n || b >= n || a == b) {
        throw std::invalid_argument("medium::link_gain_db: bad link");
    }
    return gains_db_[a * n + b];
}

double medium::rx_power_dbm(node_id tx, node_id rx) const {
    return radio_.tx_power_dbm + link_gain_db(tx, rx);
}

bool medium::transmitting(node_id n) const {
    return n < tx_flag_by_node_.size() && tx_flag_by_node_[n] != 0;
}

double medium::faded_rx_power_dbm(const transmission& t, node_id rx) const {
    double power = rx_power_dbm(t.src, rx);
    if (!t.fade_db.empty()) power += t.fade_db[rx];
    return power;
}

double medium::external_power_mw(node_id n) const {
    double mw = propagation::dbm_to_mw(radio_.noise_floor_dbm);
    for (std::size_t i : active_tx_) {
        const auto& t = transmissions_[i];
        if (t.src == n) continue;
        mw += propagation::dbm_to_mw(faded_rx_power_dbm(t, n));
    }
    return mw;
}

double medium::external_power_dbm(node_id n) const {
    if (n >= listeners_.size()) {
        throw std::invalid_argument("medium::external_power_dbm: bad node");
    }
    return propagation::mw_to_dbm(external_power_mw(n));
}

double medium::interference_mw(node_id rx, std::size_t locked_tx) const {
    double mw = propagation::dbm_to_mw(radio_.noise_floor_dbm);
    for (std::size_t i : active_tx_) {
        const auto& t = transmissions_[i];
        if (i == locked_tx || t.src == rx) continue;
        mw += propagation::dbm_to_mw(faded_rx_power_dbm(t, rx));
    }
    return mw;
}

void medium::update_reception_sinrs() {
    for (auto& lock : lock_by_node_) {
        if (!lock || !lock->active) continue;
        const double interference = interference_mw(lock->rx, lock->tx_index);
        const double sinr_db =
            propagation::mw_to_dbm(lock->signal_mw) -
            propagation::mw_to_dbm(interference);
        lock->min_sinr_db = std::min(lock->min_sinr_db, sinr_db);
    }
}

void medium::update_all_channel_states() {
    // Clear-channel assessment takes time: nodes learn about a power
    // change cca_delay_us after it happens, and see the power as it is
    // *then*. The stale window is what permits slot collisions.
    sim_.schedule_in(radio_.cca_delay_us, [this] {
        for (node_id n = 0; n < listeners_.size(); ++n) {
            listeners_[n]->on_channel_update(
                propagation::mw_to_dbm(external_power_mw(n)));
        }
    });
}

void medium::try_lock_receivers(std::size_t tx_index) {
    const auto& t = transmissions_[tx_index];
    for (node_id n = 0; n < listeners_.size(); ++n) {
        if (n == t.src) continue;
        if (transmitting(n)) continue;  // deaf while transmitting
        const double power_dbm = faded_rx_power_dbm(t, n);
        if (power_dbm < radio_.preamble_threshold_dbm) continue;
        const double interference = interference_mw(n, tx_index);
        const double sinr_db =
            power_dbm - propagation::mw_to_dbm(interference);
        if (sinr_db < radio_.preamble_capture_snr_db) continue;
        // The preamble is decodable at this node: announce it (carrier
        // sense hook) after the CCA lag, and lock if the receiver is free.
        medium_listener* listener = listeners_[n];
        const frame announced = t.f;
        const sim::time_us until = t.end;
        sim_.schedule_in(radio_.cca_delay_us,
                         [listener, announced, power_dbm, until] {
                             listener->on_preamble(announced, power_dbm, until);
                         });
        if (!lock_by_node_[n]) {
            lock_by_node_[n] = reception{tx_index, n,
                                         propagation::dbm_to_mw(power_dbm),
                                         sinr_db, true};
        }
    }
}

void medium::start_transmission(node_id src, const frame& f,
                                bool cs_said_idle) {
    if (src >= listeners_.size()) {
        throw std::invalid_argument("medium::start_transmission: bad node");
    }
    if (transmitting(src)) {
        throw std::logic_error("medium::start_transmission: already on air");
    }
    ++counters_.transmissions;
    const sim::time_us now = sim_.now();
    // Pathology accounting: did this start overlap an audible frame?
    bool audible = false;
    bool mutual_recent_start = false;
    for (std::size_t i : active_tx_) {
        const auto& t = transmissions_[i];
        if (rx_power_dbm(t.src, src) >= radio_.cs_threshold_dbm) {
            audible = true;
            if (now - t.start <= capacity::ofdm_timing::slot_us &&
                rx_power_dbm(src, t.src) >= radio_.cs_threshold_dbm) {
                mutual_recent_start = true;
            }
        }
    }
    if (audible) {
        ++counters_.busy_starts;
        if (mutual_recent_start) {
            ++counters_.slot_collisions;
        } else if (cs_said_idle) {
            ++counters_.chain_collisions;
        }
    }
    last_tx_start_[src] = now;

    // A transmitter abandons any reception in progress.
    if (lock_by_node_[src] && lock_by_node_[src]->active) {
        lock_by_node_[src]->active = false;
        lock_by_node_[src].reset();
    }

    transmission t;
    t.f = f;
    t.src = src;
    t.start = now;
    t.end = now + f.airtime_us();
    t.active = true;
    if (radio_.fading_sigma_db > 0.0) {
        t.fade_db.resize(listeners_.size(), 0.0);
        for (node_id n = 0; n < listeners_.size(); ++n) {
            if (n == src) continue;
            t.fade_db[n] = radio_.fading_sigma_db * rng_.normal();
        }
    }
    transmissions_.push_back(std::move(t));
    const std::size_t index = transmissions_.size() - 1;
    active_tx_.push_back(index);
    tx_flag_by_node_[src] = 1;
    ++active_count_;

    update_reception_sinrs();   // new interference hits ongoing receptions
    try_lock_receivers(index);  // then candidates may lock onto this frame
    update_all_channel_states();

    sim_.schedule_at(t.end, [this, index] { end_transmission(index); });
}

void medium::end_transmission(std::size_t tx_index) {
    // Copy what callbacks need: listeners may re-enter start_transmission,
    // which can reallocate transmissions_.
    const frame ended = transmissions_[tx_index].f;
    const node_id src = transmissions_[tx_index].src;
    transmissions_[tx_index].active = false;
    std::erase(active_tx_, tx_index);
    tx_flag_by_node_[src] = 0;
    --active_count_;

    // Settle receptions locked to this frame.
    struct delivery {
        node_id rx;
        double power_dbm;
        double sinr;
        bool decoded;
    };
    std::vector<delivery> deliveries;
    for (auto& lock : lock_by_node_) {
        if (!lock || !lock->active || lock->tx_index != tx_index) continue;
        lock->active = false;
        const double per = errors_.packet_error_rate(
            *ended.rate, lock->min_sinr_db, ended.bytes);
        const bool decoded = rng_.uniform() >= per;
        deliveries.push_back({lock->rx, propagation::mw_to_dbm(lock->signal_mw),
                              lock->min_sinr_db, decoded});
        lock.reset();
    }
    // Interference relief for everyone else, then deliver.
    update_reception_sinrs();
    for (const auto& d : deliveries) {
        listeners_[d.rx]->on_frame_received(ended, d.power_dbm, d.sinr,
                                            d.decoded);
    }
    update_all_channel_states();
    listeners_[src]->on_tx_complete(ended);

    // Compact the log occasionally so long runs stay O(active).
    if (transmissions_.size() > 4096 && active_count_ == 0) {
        bool any_locked = false;
        for (const auto& lock : lock_by_node_) {
            if (lock) any_locked = true;
        }
        if (!any_locked) {
            transmissions_.clear();
            active_tx_.clear();
        }
    }
}

}  // namespace csense::mac
