// The shared wireless medium: link gains, active transmissions,
// SINR-tracked receptions, and carrier-sense power notifications.
//
// Reception model (matching the thesis' §4 hardware notes):
//  - a receiver locks onto a frame at preamble time if it is not
//    transmitting, not already locked, the received power exceeds the
//    preamble sensitivity, and the instantaneous SINR exceeds the
//    capture threshold (radio_config::preamble_capture_snr_db);
//  - there is no receive abort: once locked, a stronger later frame is
//    just interference (the thesis notes its testbed ran this way);
//  - the frame decodes with probability 1 - PER evaluated at the worst
//    SINR observed during the reception;
//  - nodes that are transmitting hear nothing - the root of the
//    "chain collision" pathology for preamble-based carrier sense.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/capacity/error_models.hpp"
#include "src/mac/frame.hpp"
#include "src/mac/wireless_config.hpp"
#include "src/sim/simulator.hpp"
#include "src/stats/rng.hpp"

namespace csense::mac {

/// Callbacks a node registers with the medium.
class medium_listener {
public:
    virtual ~medium_listener() = default;

    /// Total external (not self-generated) power at this node changed.
    virtual void on_channel_update(double external_power_dbm) = 0;

    /// A decodable preamble passed by (node idle or locked, power above
    /// sensitivity). `until` is the frame's scheduled end time.
    virtual void on_preamble(const frame& f, double rx_power_dbm,
                             sim::time_us until) = 0;

    /// A locked reception finished. `decoded` reflects the PER draw at
    /// the worst SINR seen during the frame.
    virtual void on_frame_received(const frame& f, double rx_power_dbm,
                                   double min_sinr_db, bool decoded) = 0;

    /// This node's own transmission left the air.
    virtual void on_tx_complete(const frame& f) = 0;
};

/// Network-wide pathology counters (§5's implementation corner cases).
struct medium_counters {
    std::uint64_t transmissions = 0;
    std::uint64_t slot_collisions = 0;  ///< mutual-sensers starting within
                                        ///< one slot of each other
    std::uint64_t chain_collisions = 0; ///< tx started over an audible
                                        ///< frame whose preamble was missed
    std::uint64_t busy_starts = 0;      ///< tx started over any audible frame
};

/// The medium itself.
class medium {
public:
    medium(sim::simulator& sim, radio_config radio,
           const capacity::error_model& errors, std::uint64_t seed);

    /// Register a node; ids must be assigned densely from 0.
    node_id add_node(medium_listener& listener);

    std::size_t node_count() const noexcept { return listeners_.size(); }

    /// Symmetric link gain in dB (negative; rx = tx_power + gain).
    void set_link_gain_db(node_id a, node_id b, double gain_db);
    double link_gain_db(node_id a, node_id b) const;

    /// Received power at `rx` of a transmission from `tx`, in dBm.
    double rx_power_dbm(node_id tx, node_id rx) const;

    /// Begin transmitting; the frame occupies the air for its airtime and
    /// the medium schedules all consequences. A node must not already be
    /// transmitting. `cs_said_idle` lets the medium classify pathological
    /// starts (it does not change behaviour).
    void start_transmission(node_id src, const frame& f, bool cs_said_idle);

    /// True if the node is currently transmitting.
    bool transmitting(node_id n) const;

    /// Total external power at a node right now, in dBm (noise floor when
    /// the air is silent).
    double external_power_dbm(node_id n) const;

    const medium_counters& counters() const noexcept { return counters_; }
    const radio_config& radio() const noexcept { return radio_; }

    /// Transmission-log entries currently held. Compaction clears the
    /// log at quiet moments so long runs stay O(active); exposed for the
    /// bounded-memory regression tests.
    std::size_t transmission_log_size() const noexcept {
        return transmissions_.size();
    }

private:
    struct transmission {
        frame f;
        node_id src;
        sim::time_us start;
        sim::time_us end;
        bool active = true;
        /// Per-receiver fading (dB) frozen for this frame; empty when
        /// fading is disabled.
        std::vector<double> fade_db;
    };

    struct reception {
        std::size_t tx_index;   ///< into transmissions_
        node_id rx;
        double signal_mw;
        double min_sinr_db;
        bool active = true;
    };

    void end_transmission(std::size_t tx_index);
    void update_all_channel_states();
    void update_reception_sinrs();
    double external_power_mw(node_id n) const;
    double interference_mw(node_id rx, std::size_t locked_tx) const;
    void try_lock_receivers(std::size_t tx_index);
    /// Received power of one active transmission at `rx`, including the
    /// frame's frozen fading draw.
    double faded_rx_power_dbm(const transmission& t, node_id rx) const;

    sim::simulator& sim_;
    radio_config radio_;
    const capacity::error_model& errors_;
    stats::rng rng_;
    std::vector<medium_listener*> listeners_;
    std::vector<double> gains_db_;  ///< dense node_count^2 matrix
    std::vector<transmission> transmissions_;
    std::vector<std::size_t> active_tx_;        ///< indices of active entries
    std::vector<std::uint8_t> tx_flag_by_node_; ///< 1 while a node is on air
    std::vector<std::optional<reception>> lock_by_node_;
    std::vector<sim::time_us> last_tx_start_;
    std::size_t active_count_ = 0;
    medium_counters counters_;
};

}  // namespace csense::mac
