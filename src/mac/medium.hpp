// The shared wireless medium: link gains, active transmissions,
// SINR-tracked receptions, and carrier-sense power notifications.
//
// Reception model (matching the thesis' §4 hardware notes):
//  - a receiver locks onto a frame at preamble time if it is not
//    transmitting, not already locked, the received power exceeds the
//    preamble sensitivity, and the instantaneous SINR exceeds the
//    capture threshold (radio_config::preamble_capture_snr_db);
//  - there is no receive abort: once locked, a stronger later frame is
//    just interference (the thesis notes its testbed ran this way);
//  - the frame decodes with probability 1 - PER evaluated at the worst
//    SINR observed during the reception;
//  - nodes that are transmitting hear nothing - the root of the
//    "chain collision" pathology for preamble-based carrier sense.
//
// Scaling model (PR 5): the medium runs in one of two modes, selected
// by radio_config::audibility_floor_dbm.
//  - Dense (floor disabled, the default): every power change re-sums
//    all active transmitters for every listener - O(N) listeners x O(A)
//    transmitters per event. Byte-identical to the pre-culling
//    implementation; all historical scenarios run here.
//  - Neighbor-culled (floor set): links whose received power falls
//    below the floor are treated as exactly zero. The topology freezes
//    into per-node audibility neighbor lists (CSR) at the first
//    transmission, per-transmission neighbor rx powers are precomputed
//    in mW, and each node carries an incremental Kahan-compensated
//    running external-power sum updated on tx start/end - so channel
//    updates, preamble fan-out, and SINR tracking touch only audible
//    neighbors: O(k) per event, independent of N. An exact reset
//    whenever a node's audible set empties plus a periodic exact
//    refresh (radio_config::power_refresh_interval) keep the
//    incremental sums drift-free and deterministic.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/capacity/error_models.hpp"
#include "src/mac/frame.hpp"
#include "src/mac/wireless_config.hpp"
#include "src/sim/simulator.hpp"
#include "src/stats/kahan.hpp"
#include "src/stats/rng.hpp"

namespace csense::mac {

/// Callbacks a node registers with the medium.
class medium_listener {
public:
    virtual ~medium_listener() = default;

    /// Total external (not self-generated) power at this node changed.
    virtual void on_channel_update(double external_power_dbm) = 0;

    /// A decodable preamble passed by (node idle or locked, power above
    /// sensitivity). `until` is the frame's scheduled end time.
    virtual void on_preamble(const frame& f, double rx_power_dbm,
                             sim::time_us until) = 0;

    /// A locked reception finished. `decoded` reflects the PER draw at
    /// the worst SINR seen during the frame.
    virtual void on_frame_received(const frame& f, double rx_power_dbm,
                                   double min_sinr_db, bool decoded) = 0;

    /// This node's own transmission left the air.
    virtual void on_tx_complete(const frame& f) = 0;
};

/// Network-wide pathology counters (§5's implementation corner cases).
struct medium_counters {
    std::uint64_t transmissions = 0;
    std::uint64_t slot_collisions = 0;  ///< mutual-sensers starting within
                                        ///< one slot of each other
    std::uint64_t chain_collisions = 0; ///< tx started over an audible
                                        ///< frame whose preamble was missed
    std::uint64_t busy_starts = 0;      ///< tx started over any audible frame
};

/// The medium itself.
class medium {
public:
    /// Throws std::invalid_argument when the audibility floor is enabled
    /// but not below the preamble sensitivity (culling must only drop
    /// power that is negligible for every CCA decision).
    medium(sim::simulator& sim, radio_config radio,
           const capacity::error_model& errors, std::uint64_t seed);

    /// Register a node; ids must be assigned densely from 0.
    node_id add_node(medium_listener& listener);

    /// Pre-size internal per-node storage for `nodes` registrations.
    /// Purely an allocation hint - results never depend on it.
    void reserve_nodes(std::size_t nodes);

    std::size_t node_count() const noexcept { return listeners_.size(); }

    /// Symmetric link gain in dB (negative; rx = tx_power + gain).
    /// Throws std::invalid_argument on an unknown node id or a == b, and
    /// std::logic_error when setting a gain after the topology froze in
    /// neighbor-culled mode.
    void set_link_gain_db(node_id a, node_id b, double gain_db);
    double link_gain_db(node_id a, node_id b) const;

    /// Received power at `rx` of a transmission from `tx`, in dBm.
    double rx_power_dbm(node_id tx, node_id rx) const;

    /// Begin transmitting; the frame occupies the air for its airtime and
    /// the medium schedules all consequences. A node must not already be
    /// transmitting. `cs_said_idle` lets the medium classify pathological
    /// starts (it does not change behaviour).
    void start_transmission(node_id src, const frame& f, bool cs_said_idle);

    /// True if the node is currently transmitting. Throws
    /// std::invalid_argument on an unknown node id.
    bool transmitting(node_id n) const;

    /// Total external power at a node right now, in dBm (noise floor when
    /// the air is silent).
    double external_power_dbm(node_id n) const;

    const medium_counters& counters() const noexcept { return counters_; }
    const radio_config& radio() const noexcept { return radio_; }

    /// True when the audibility floor is enabled (neighbor-culled mode).
    bool neighbor_culling() const noexcept { return culled_; }

    /// Audible neighbors of `n`: row size of the CSR neighbor list in
    /// culled mode, node_count() - 1 in dense mode. In culled mode the
    /// topology must be frozen first (any transmission freezes it).
    std::size_t neighbor_count(node_id n) const;

    /// Transmission-log entries currently held. Compaction clears the
    /// log at quiet moments so long runs stay O(active); exposed for the
    /// bounded-memory regression tests.
    std::size_t transmission_log_size() const noexcept {
        return transmissions_.size();
    }

private:
    struct transmission {
        frame f;
        node_id src;
        sim::time_us start;
        sim::time_us end;
        bool active = true;
        /// Dense mode: per-receiver fading (dB) frozen for this frame;
        /// empty when fading is disabled.
        std::vector<double> fade_db;
        /// Culled mode with fading: faded rx power in mW per CSR
        /// neighbor slot of src. Empty without fading (the frame then
        /// reads the precomputed unfaded row directly).
        std::vector<double> rx_mw;
    };

    struct reception {
        std::size_t tx_index;   ///< into transmissions_
        node_id rx;
        double signal_mw;
        double min_sinr_db;
        bool active = true;
    };

    void check_node(node_id n, const char* what) const;
    /// Culled mode: noise floor plus the clamped incremental sum - the
    /// one definition of external power behind every culled read
    /// (public accessor, CCA notifications, interference subtraction).
    double culled_external_mw(node_id n) const;
    void end_transmission(std::size_t tx_index);
    void update_all_channel_states();
    void update_reception_sinrs();
    double external_power_mw(node_id n) const;
    double interference_mw(node_id rx, std::size_t locked_tx) const;
    void try_lock_receivers(std::size_t tx_index);
    /// Received power of one active transmission at `rx`, including the
    /// frame's frozen fading draw (dense mode).
    double faded_rx_power_dbm(const transmission& t, node_id rx) const;
    void maybe_compact_log();

    // Dense-matrix storage helpers (dense mode).
    void grow_dense_gains();
    // Neighbor-culled machinery.
    static std::uint64_t link_key(node_id a, node_id b) noexcept;
    void freeze_topology();
    /// Per-slot rx power (mW) of a transmission over its CSR row.
    const double* row_rx_mw(const transmission& t) const;
    void refresh_power_sums();
    void notify_neighbors_after_cca(node_id src);

    sim::simulator& sim_;
    radio_config radio_;
    const capacity::error_model& errors_;
    stats::rng rng_;
    std::vector<medium_listener*> listeners_;

    // Dense mode: node_count^2 gain matrix over a power-of-two-ish
    // stride so add_node growth is amortized O(N^2) total, not O(N^3).
    std::vector<double> gains_db_;
    std::size_t gain_stride_ = 0;

    // Culled mode: sparse symmetric gains keyed by (min, max) node id;
    // stays authoritative for link_gain_db after the freeze.
    std::unordered_map<std::uint64_t, double> sparse_gains_;
    bool culled_ = false;
    bool frozen_ = false;
    // CSR audibility neighbor lists, built at freeze time: row n holds
    // the ids that can hear n (and that n can hear - gains are
    // symmetric), sorted ascending, with the unfaded rx power in mW.
    std::vector<std::uint32_t> nbr_offset_;
    std::vector<node_id> nbr_id_;
    std::vector<double> nbr_rx_mw_;
    // Incremental per-node external power (mW, excluding the noise
    // floor) and the number of active audible transmissions behind it.
    std::vector<stats::kahan_sum> ext_mw_;
    std::vector<std::uint32_t> audible_count_;
    int ends_since_refresh_ = 0;
    /// One settled reception, staged so delivery callbacks run after
    /// all lock bookkeeping (they may re-enter start_transmission).
    struct delivery {
        node_id rx;
        double power_dbm;
        double sinr;
        bool decoded;
    };
    /// Reused by end_transmission: capacity reaches its high-water mark
    /// once, then the per-event hot path allocates nothing.
    std::vector<delivery> delivery_scratch_;
    // Thresholds precomputed in mW so hot loops compare linearly.
    double noise_mw_ = 0.0;
    double preamble_threshold_mw_ = 0.0;
    double cs_threshold_mw_ = 0.0;

    std::vector<transmission> transmissions_;
    std::vector<std::size_t> active_tx_;        ///< indices of active entries
    std::vector<std::uint8_t> tx_flag_by_node_; ///< 1 while a node is on air
    std::vector<std::int64_t> active_tx_by_node_;  ///< transmissions_ index,
                                                   ///< -1 when off air
    std::vector<std::optional<reception>> lock_by_node_;
    std::vector<sim::time_us> last_tx_start_;
    std::size_t active_count_ = 0;
    medium_counters counters_;
};

}  // namespace csense::mac
