#include "src/mac/multi_pair.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "src/capacity/shannon.hpp"
#include "src/propagation/units.hpp"
#include "src/stats/distributions.hpp"
#include "src/stats/summary.hpp"

namespace csense::mac {

multi_pair_topology sample_multi_pair_topology(int pairs, double arena_m,
                                               double rmax_m,
                                               stats::rng& gen) {
    if (pairs < 1 || !(arena_m > 0.0) || !(rmax_m > 0.0)) {
        throw std::invalid_argument(
            "sample_multi_pair_topology: bad arguments");
    }
    multi_pair_topology topology;
    topology.senders.resize(pairs);
    topology.receivers.resize(pairs);
    for (int i = 0; i < pairs; ++i) {
        topology.senders[i] = {gen.uniform(0.0, arena_m),
                               gen.uniform(0.0, arena_m)};
        const auto p = stats::sample_uniform_disc(gen, rmax_m);
        topology.receivers[i] = {
            topology.senders[i].x + p.r * std::cos(p.theta),
            topology.senders[i].y + p.r * std::sin(p.theta)};
    }
    return topology;
}

double multi_pair_config::gain_db(double dist_m) const {
    // Log-distance path loss anchored at 1 m; clamping below 1 m keeps
    // pathological overlaps from producing gain > -reference_loss.
    const double d = std::max(dist_m, 1.0);
    return -(reference_loss_db + 10.0 * alpha * std::log10(d));
}

double multi_pair_config::threshold_dbm_for_distance(double dist_m) const {
    if (!(dist_m > 0.0)) {
        throw std::invalid_argument("threshold_dbm_for_distance: dist_m");
    }
    return radio.tx_power_dbm + gain_db(dist_m);
}

double multi_pair_config::distance_for_threshold_dbm(
    double threshold_dbm) const {
    const double exponent =
        (radio.tx_power_dbm - reference_loss_db - threshold_dbm) /
        (10.0 * alpha);
    return std::max(std::pow(10.0, exponent), 1.0);
}

namespace {

double distance(const multi_pair_topology::position& a,
                const multi_pair_topology::position& b) noexcept {
    return std::hypot(a.x - b.x, a.y - b.y);
}

/// Flatten topology node positions in network id order: sender i is node
/// 2i, receiver i is node 2i + 1.
std::vector<multi_pair_topology::position> node_positions(
    const multi_pair_topology& topology) {
    std::vector<multi_pair_topology::position> nodes;
    nodes.reserve(2 * topology.pairs());
    for (std::size_t i = 0; i < topology.pairs(); ++i) {
        nodes.push_back(topology.senders[i]);
        nodes.push_back(topology.receivers[i]);
    }
    return nodes;
}

}  // namespace

double multi_pair_result::jain_index() const noexcept {
    return stats::jain_index(per_pair_pps);
}

multi_pair_result run_multi_pair(const multi_pair_topology& topology,
                                 const multi_pair_config& config) {
    const std::size_t n = topology.pairs();
    if (n < 1) {
        throw std::invalid_argument("run_multi_pair: empty topology");
    }
    if (config.rate == nullptr) {
        throw std::invalid_argument("run_multi_pair: no data rate");
    }
    network net(config.radio, config.seed);
    mac_config sender_cfg;
    sender_cfg.sense = config.sense;
    sender_cfg.adapt = config.adapt;  // the per-node adaptation hook
    mac_config receiver_cfg;  // receivers never transmit
    std::vector<node_id> senders(n), receivers(n);
    for (std::size_t i = 0; i < n; ++i) {
        senders[i] = net.add_node(sender_cfg);
        receivers[i] = net.add_node(receiver_cfg);
    }

    const auto nodes = node_positions(topology);
    for (std::size_t a = 0; a < nodes.size(); ++a) {
        for (std::size_t b = a + 1; b < nodes.size(); ++b) {
            net.set_link_gain_db(static_cast<node_id>(a),
                                 static_cast<node_id>(b),
                                 config.gain_db(distance(nodes[a], nodes[b])));
        }
    }
    for (std::size_t i = 0; i < n; ++i) {
        net.node(senders[i])
            .set_traffic(traffic_mode::saturated_broadcast, broadcast_id,
                         *config.rate, config.payload_bytes);
    }

    // When adaptation is off, no manager exists and no epoch events are
    // scheduled: the event stream - and therefore the run - is identical
    // to one without any adaptation support.
    std::unique_ptr<adaptive_cs_manager> adaptation;
    if (config.adapt.enabled()) {
        std::vector<adaptive_cs_link> links;
        links.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            links.push_back({senders[i], receivers[i]});
        }
        adaptation = std::make_unique<adaptive_cs_manager>(
            net, std::move(links),
            stats::rng(config.seed).split("adaptive_cs").next());
        adaptation->start();
    }
    net.run(config.duration_us);

    multi_pair_result result;
    result.per_pair_pps.resize(n, 0.0);
    const double seconds = config.duration_us / 1e6;
    for (std::size_t i = 0; i < n; ++i) {
        const auto& by_src = net.node(receivers[i]).stats().rx_decoded_by_src;
        const auto it = by_src.find(senders[i]);
        result.per_pair_pps[i] =
            (it != by_src.end()) ? it->second / seconds : 0.0;
        result.total_pps += result.per_pair_pps[i];
    }
    result.counters = net.air().counters();
    if (adaptation) {
        result.final_cs_threshold_dbm = adaptation->thresholds_dbm();
        result.mean_threshold_trajectory_dbm =
            adaptation->mean_threshold_trajectory_dbm();
    }
    return result;
}

multi_pair_prediction predict_multi_pair(const multi_pair_topology& topology,
                                         const multi_pair_config& config) {
    const std::size_t n = topology.pairs();
    if (n < 1) {
        throw std::invalid_argument("predict_multi_pair: empty topology");
    }
    const double noise_mw =
        propagation::dbm_to_mw(config.radio.noise_floor_dbm);

    multi_pair_prediction prediction;
    for (std::size_t i = 0; i < n; ++i) {
        const double signal_mw = propagation::dbm_to_mw(
            config.radio.tx_power_dbm +
            config.gain_db(distance(topology.senders[i],
                                    topology.receivers[i])));
        double interference_mw = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            if (j == i) continue;
            interference_mw += propagation::dbm_to_mw(
                config.radio.tx_power_dbm +
                config.gain_db(distance(topology.senders[j],
                                        topology.receivers[i])));
        }
        prediction.concurrent += capacity::shannon_bits_per_hz(
            signal_mw / (noise_mw + interference_mw));
        prediction.multiplexing +=
            capacity::shannon_bits_per_hz(signal_mw / noise_mw) /
            static_cast<double>(n);
    }
    prediction.concurrent /= static_cast<double>(n);
    prediction.multiplexing /= static_cast<double>(n);

    for (std::size_t a = 0; a < n && !prediction.cs_defers; ++a) {
        for (std::size_t b = a + 1; b < n; ++b) {
            const double sensed_dbm =
                config.radio.tx_power_dbm +
                config.gain_db(distance(topology.senders[a],
                                        topology.senders[b]));
            if (sensed_dbm >= config.radio.cs_threshold_dbm) {
                prediction.cs_defers = true;
                break;
            }
        }
    }
    return prediction;
}

}  // namespace csense::mac
