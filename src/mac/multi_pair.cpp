#include "src/mac/multi_pair.hpp"

#include <cmath>
#include <cstdint>
#include <numbers>
#include <stdexcept>
#include <unordered_map>

#include "src/capacity/shannon.hpp"
#include "src/propagation/units.hpp"
#include "src/stats/distributions.hpp"
#include "src/stats/kahan.hpp"
#include "src/stats/summary.hpp"

namespace csense::mac {

multi_pair_topology sample_multi_pair_topology(int pairs, double arena_m,
                                               double rmax_m,
                                               stats::rng& gen) {
    if (pairs < 1 || !(arena_m > 0.0) || !(rmax_m > 0.0)) {
        throw std::invalid_argument(
            "sample_multi_pair_topology: bad arguments");
    }
    multi_pair_topology topology;
    topology.senders.resize(pairs);
    topology.receivers.resize(pairs);
    for (int i = 0; i < pairs; ++i) {
        topology.senders[i] = {gen.uniform(0.0, arena_m),
                               gen.uniform(0.0, arena_m)};
        const auto p = stats::sample_uniform_disc(gen, rmax_m);
        topology.receivers[i] = {
            topology.senders[i].x + p.r * std::cos(p.theta),
            topology.senders[i].y + p.r * std::sin(p.theta)};
    }
    return topology;
}

double multi_pair_config::gain_db(double dist_m) const {
    // Log-distance path loss anchored at 1 m; clamping below 1 m keeps
    // pathological overlaps from producing gain > -reference_loss.
    const double d = std::max(dist_m, 1.0);
    return -(reference_loss_db + 10.0 * alpha * std::log10(d));
}

double multi_pair_config::threshold_dbm_for_distance(double dist_m) const {
    if (!(dist_m > 0.0)) {
        throw std::invalid_argument("threshold_dbm_for_distance: dist_m");
    }
    return radio.tx_power_dbm + gain_db(dist_m);
}

double multi_pair_config::distance_for_threshold_dbm(
    double threshold_dbm) const {
    const double exponent =
        (radio.tx_power_dbm - reference_loss_db - threshold_dbm) /
        (10.0 * alpha);
    return std::max(std::pow(10.0, exponent), 1.0);
}

namespace {

double distance(const multi_pair_topology::position& a,
                const multi_pair_topology::position& b) noexcept {
    return std::hypot(a.x - b.x, a.y - b.y);
}

/// Flatten topology node positions in network id order: sender i is node
/// 2i, receiver i is node 2i + 1.
std::vector<multi_pair_topology::position> node_positions(
    const multi_pair_topology& topology) {
    std::vector<multi_pair_topology::position> nodes;
    nodes.reserve(2 * topology.pairs());
    for (std::size_t i = 0; i < topology.pairs(); ++i) {
        nodes.push_back(topology.senders[i]);
        nodes.push_back(topology.receivers[i]);
    }
    return nodes;
}

}  // namespace

std::vector<std::pair<node_id, node_id>> audible_link_pairs(
    const multi_pair_topology& topology, const multi_pair_config& config) {
    const auto nodes = node_positions(topology);
    const auto count = static_cast<node_id>(nodes.size());
    std::vector<std::pair<node_id, node_id>> pairs;
    if (!config.radio.audibility_enabled()) {
        pairs.reserve(static_cast<std::size_t>(count) * (count - 1) / 2);
        for (node_id a = 0; a < count; ++a) {
            for (node_id b = a + 1; b < count; ++b) {
                pairs.emplace_back(a, b);
            }
        }
        return pairs;
    }
    // Audible range: the distance at which the mean received power
    // equals the floor minus the medium's 3-sigma fade allowance (links
    // whose faded tail can still matter must reach the CSR). The tiny
    // relative margin guards the boundary against the log/pow round
    // trip - over-inclusion is harmless (the medium re-checks the floor
    // at freeze time), under-inclusion would drop a real neighbor.
    const double range_m =
        config.distance_for_threshold_dbm(
            config.radio.audibility_floor_dbm -
            3.0 * config.radio.fading_sigma_db) *
        (1.0 + 1e-9);
    // Spatial grid with cell size = range: all audible partners of a
    // node live in its 3x3 cell neighborhood.
    const auto cell_of = [&](double v) {
        return static_cast<std::int64_t>(std::floor(v / range_m));
    };
    const auto cell_key = [](std::int64_t ix, std::int64_t iy) {
        return (static_cast<std::uint64_t>(ix) << 32) ^
               static_cast<std::uint32_t>(iy);
    };
    std::unordered_map<std::uint64_t, std::vector<node_id>> grid;
    grid.reserve(nodes.size());
    for (node_id i = 0; i < count; ++i) {
        grid[cell_key(cell_of(nodes[i].x), cell_of(nodes[i].y))].push_back(i);
    }
    for (node_id a = 0; a < count; ++a) {
        const std::int64_t ix = cell_of(nodes[a].x);
        const std::int64_t iy = cell_of(nodes[a].y);
        for (std::int64_t dx = -1; dx <= 1; ++dx) {
            for (std::int64_t dy = -1; dy <= 1; ++dy) {
                const auto bucket = grid.find(cell_key(ix + dx, iy + dy));
                if (bucket == grid.end()) continue;
                for (const node_id b : bucket->second) {
                    if (b <= a) continue;
                    if (distance(nodes[a], nodes[b]) <= range_m) {
                        pairs.emplace_back(a, b);
                    }
                }
            }
        }
    }
    return pairs;
}

double multi_pair_result::jain_index() const noexcept {
    return stats::jain_index(per_pair_pps);
}

multi_pair_result run_multi_pair(const multi_pair_topology& topology,
                                 const multi_pair_config& config) {
    const std::size_t n = topology.pairs();
    if (n < 1) {
        throw std::invalid_argument("run_multi_pair: empty topology");
    }
    if (config.rate == nullptr) {
        throw std::invalid_argument("run_multi_pair: no data rate");
    }
    if (config.radio.audibility_enabled() && config.adapt.enabled() &&
        config.adapt.min_threshold_dbm <= config.radio.audibility_floor_dbm) {
        // The medium validates the global thresholds itself but cannot
        // see per-node override ranges; an adaptive clamp below the
        // floor would let controllers deafen nodes to carriers the
        // culled medium models as exact silence.
        throw std::invalid_argument(
            "run_multi_pair: adapt.min_threshold_dbm must stay above "
            "radio.audibility_floor_dbm");
    }
    if (config.rate_adapt != rate_adapt_mode::off && !config.unicast) {
        throw std::invalid_argument(
            "run_multi_pair: rate adaptation needs unicast ACK feedback");
    }
    // Declared before the network so the raw adapter pointers the nodes
    // hold stay valid for the nodes' whole lifetime.
    std::vector<std::unique_ptr<capacity::rate_adaptation>> adapters;
    network net(config.radio, config.seed);
    net.reserve_nodes(2 * n);
    mac_config sender_cfg;
    sender_cfg.sense = config.sense;
    sender_cfg.adapt = config.adapt;  // the per-node adaptation hook
    mac_config receiver_cfg;  // receivers never transmit
    std::vector<node_id> senders(n), receivers(n);
    for (std::size_t i = 0; i < n; ++i) {
        senders[i] = net.add_node(sender_cfg);
        receivers[i] = net.add_node(receiver_cfg);
    }

    const auto nodes = node_positions(topology);
    if (config.radio.audibility_enabled()) {
        // Neighbor-culled medium: only set the gains the floor keeps -
        // the spatial grid finds them in O(N * k) instead of O(N^2).
        for (const auto& [a, b] : audible_link_pairs(topology, config)) {
            net.set_link_gain_db(a, b,
                                 config.gain_db(distance(nodes[a], nodes[b])));
        }
    } else {
        for (std::size_t a = 0; a < nodes.size(); ++a) {
            for (std::size_t b = a + 1; b < nodes.size(); ++b) {
                net.set_link_gain_db(
                    static_cast<node_id>(a), static_cast<node_id>(b),
                    config.gain_db(distance(nodes[a], nodes[b])));
            }
        }
    }
    for (std::size_t i = 0; i < n; ++i) {
        dcf_node& sender = net.node(senders[i]);
        if (config.unicast) {
            sender.set_traffic(traffic_mode::unicast, receivers[i],
                               *config.rate, config.payload_bytes);
        } else {
            sender.set_traffic(traffic_mode::broadcast, broadcast_id,
                               *config.rate, config.payload_bytes);
        }
        if (!config.traffic.saturated()) {
            sender.set_traffic_model(config.traffic);
        }
        switch (config.rate_adapt) {
            case rate_adapt_mode::off:
                break;
            case rate_adapt_mode::arf:
                adapters.push_back(std::make_unique<capacity::arf>());
                sender.set_rate_adaptation(adapters.back().get());
                break;
            case rate_adapt_mode::sample_rate:
                // Per-sender probe stream keyed to the run seed and the
                // pair index only, so shards and thread counts agree.
                adapters.push_back(std::make_unique<capacity::sample_rate>(
                    capacity::ofdm_rates(), config.payload_bytes,
                    stats::rng(config.seed)
                        .split("rate_adapt")
                        .split(static_cast<std::uint64_t>(i))
                        .next()));
                sender.set_rate_adaptation(adapters.back().get());
                break;
        }
    }

    // When adaptation is off, no manager exists and no epoch events are
    // scheduled: the event stream - and therefore the run - is identical
    // to one without any adaptation support.
    std::unique_ptr<adaptive_cs_manager> adaptation;
    if (config.adapt.enabled()) {
        std::vector<adaptive_cs_link> links;
        links.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            links.push_back({senders[i], receivers[i]});
        }
        adaptation = std::make_unique<adaptive_cs_manager>(
            net, std::move(links),
            stats::rng(config.seed).split("adaptive_cs").next());
        adaptation->start();
    }
    net.run(config.duration_us);

    multi_pair_result result;
    result.per_pair_pps.resize(n, 0.0);
    const double seconds = config.duration_us / 1e6;
    stats::kahan_sum total_pps;
    for (std::size_t i = 0; i < n; ++i) {
        const auto& by_src = net.node(receivers[i]).stats().rx_decoded_by_src;
        const auto it = by_src.find(senders[i]);
        result.per_pair_pps[i] =
            (it != by_src.end()) ? it->second / seconds : 0.0;
        total_pps.add(result.per_pair_pps[i]);
    }
    result.total_pps = total_pps.value();
    result.counters = net.air().counters();
    for (std::size_t i = 0; i < n; ++i) {  // pair-index order: deterministic
        const dcf_node& sender = net.node(senders[i]);
        result.sojourn_us.merge(sender.sojourn_times());
        result.offered_packets += sender.stats().offered_packets;
        result.queue_drops += sender.stats().queue_drops;
        result.retry_drops += sender.stats().data_dropped;
    }
    if (result.offered_packets > 0) {
        result.drop_rate =
            static_cast<double>(result.queue_drops + result.retry_drops) /
            static_cast<double>(result.offered_packets);
    }
    if (adaptation) {
        result.final_cs_threshold_dbm = adaptation->thresholds_dbm();
        result.mean_threshold_trajectory_dbm =
            adaptation->mean_threshold_trajectory_dbm();
    }
    return result;
}

multi_pair_prediction predict_multi_pair(const multi_pair_topology& topology,
                                         const multi_pair_config& config) {
    const std::size_t n = topology.pairs();
    if (n < 1) {
        throw std::invalid_argument("predict_multi_pair: empty topology");
    }
    const double noise_mw =
        propagation::dbm_to_mw(config.radio.noise_floor_dbm);

    multi_pair_prediction prediction;
    // The cumulative-interference sum mixes a few strong terms with many
    // weak ones — exactly the regime where plain += drifts (and what
    // lint rule R4 exists to catch), so all three folds are compensated.
    stats::kahan_sum concurrent_sum;
    stats::kahan_sum multiplexing_sum;
    for (std::size_t i = 0; i < n; ++i) {
        const double signal_mw = propagation::dbm_to_mw(
            config.radio.tx_power_dbm +
            config.gain_db(distance(topology.senders[i],
                                    topology.receivers[i])));
        stats::kahan_sum interference_mw;
        for (std::size_t j = 0; j < n; ++j) {
            if (j == i) continue;
            interference_mw.add(propagation::dbm_to_mw(
                config.radio.tx_power_dbm +
                config.gain_db(distance(topology.senders[j],
                                        topology.receivers[i]))));
        }
        concurrent_sum.add(capacity::shannon_bits_per_hz(
            signal_mw / (noise_mw + interference_mw.value())));
        multiplexing_sum.add(
            capacity::shannon_bits_per_hz(signal_mw / noise_mw) /
            static_cast<double>(n));
    }
    prediction.concurrent = concurrent_sum.value() / static_cast<double>(n);
    prediction.multiplexing =
        multiplexing_sum.value() / static_cast<double>(n);

    for (std::size_t a = 0; a < n && !prediction.cs_defers; ++a) {
        for (std::size_t b = a + 1; b < n; ++b) {
            const double sensed_dbm =
                config.radio.tx_power_dbm +
                config.gain_db(distance(topology.senders[a],
                                        topology.senders[b]));
            if (sensed_dbm >= config.radio.cs_threshold_dbm) {
                prediction.cs_defers = true;
                break;
            }
        }
    }
    return prediction;
}

}  // namespace csense::mac
