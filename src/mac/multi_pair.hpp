// Many-pair packet-level scenarios: N sender->receiver pairs on a random
// planar topology, every receiver exposed to the *cumulative*
// interference of all other senders. This is the scenario family where
// pairwise-sensing models are known to be optimistic (Fu, Liew & Huang's
// cumulative-interference analysis; Kai & Liew's critique of pairwise
// carrier-sensing models): with many senders, aggregate interference can
// break a receiver even though every individual interferer is weak.
//
// A topology is plain data (positions), so one draw can be replayed
// under several carrier-sense modes, rates, or radios - the seed x
// topology x config axes the campaign layer shards over. A matching
// analytic §3-style prediction (Shannon capacities plus the
// binary-cluster carrier-sense decision) supports model-vs-sim
// agreement checks at campaign scale.
#pragma once

#include <utility>
#include <vector>

#include "src/mac/adaptive_cs.hpp"
#include "src/mac/network.hpp"
#include "src/stats/quantile.hpp"
#include "src/stats/rng.hpp"

namespace csense::mac {

/// N sender->receiver pairs; positions in meters.
struct multi_pair_topology {
    struct position {
        double x = 0.0;
        double y = 0.0;
    };
    std::vector<position> senders;
    std::vector<position> receivers;

    std::size_t pairs() const noexcept { return senders.size(); }
};

/// Draw a random topology: senders uniform in an `arena_m`-sided square,
/// each receiver uniform in a disc of radius `rmax_m` around its sender.
multi_pair_topology sample_multi_pair_topology(int pairs, double arena_m,
                                               double rmax_m,
                                               stats::rng& gen);

/// Which per-sender bitrate-adaptation algorithm a multi-pair run
/// installs (unicast only: adaptation needs ACK feedback).
enum class rate_adapt_mode {
    off,          ///< the fixed config.rate for every pair
    arf,          ///< Auto Rate Fallback success/failure counters
    sample_rate,  ///< Bicket's SampleRate (per-sender split-RNG probing)
};

/// One simulated run's configuration.
struct multi_pair_config {
    radio_config radio;
    cs_mode sense = cs_mode::energy_and_preamble;
    const capacity::phy_rate* rate = nullptr;  ///< fixed data rate, all pairs
    double duration_us = 2e6;
    int payload_bytes = 1400;
    double alpha = 3.0;               ///< path-loss exponent for link gains
    double reference_loss_db = 47.0;  ///< loss at 1 m (5 GHz-ish)
    std::uint64_t seed = 1;

    /// Per-sender closed-loop threshold adaptation; defaults to `fixed`
    /// (off), in which case a run is byte-identical to one without any
    /// adaptation support compiled in.
    cs_adaptation_config adapt;

    /// Arrival process + queue capacity of every sender. The default
    /// (saturated) keeps the run byte-identical to the pre-queue MAC.
    traffic_config traffic;

    /// ACKed unicast to each pair's receiver instead of the historical
    /// unacknowledged broadcast. Required for rate adaptation and for
    /// retry/ACK semantics in the latency metrics.
    bool unicast = false;

    /// Bitrate adaptation per sender (requires unicast).
    rate_adapt_mode rate_adapt = rate_adapt_mode::off;

    /// Symmetric link gain for a node pair at distance `dist_m`.
    double gain_db(double dist_m) const;

    /// The energy-detection threshold (dBm) at which a sender at
    /// distance `dist_m` is exactly on the sensing edge: sensed power of
    /// a transmitter that far away. Maps the analytic model's threshold
    /// *distances* into the simulator's dBm units.
    double threshold_dbm_for_distance(double dist_m) const;

    /// Inverse of threshold_dbm_for_distance (clamped at 1 m, matching
    /// gain_db's near-field clamp).
    double distance_for_threshold_dbm(double threshold_dbm) const;
};

/// Delivered throughput of one simulated run.
struct multi_pair_result {
    std::vector<double> per_pair_pps;  ///< delivered pkt/s at receiver i
    double total_pps = 0.0;
    medium_counters counters;

    /// Adaptive carrier sense only (empty when config.adapt is `fixed`):
    /// each sender's threshold at the end of the run, and the
    /// across-sender mean threshold after every adaptation epoch.
    std::vector<double> final_cs_threshold_dbm;
    std::vector<double> mean_threshold_trajectory_dbm;

    /// Enqueue->delivery sojourn times of every delivered packet, merged
    /// across senders in pair-index order (deterministic). For
    /// unsaturated runs these are true queueing delays; saturated runs
    /// record pure service times.
    stats::streaming_quantiles sojourn_us;

    /// Offered-load accounting summed over senders (unsaturated sources
    /// only; saturated senders present no discrete arrivals).
    std::uint64_t offered_packets = 0;
    std::uint64_t queue_drops = 0;    ///< arrivals lost to full FIFOs
    std::uint64_t retry_drops = 0;    ///< unicast frames over the retry limit

    /// (queue_drops + retry_drops) / offered_packets; 0 when nothing was
    /// offered (saturated runs).
    double drop_rate = 0.0;

    /// Jain's fairness index over the per-pair throughputs.
    double jain_index() const noexcept;
};

/// Run all pairs saturated-broadcast for `duration_us` under the given
/// carrier-sense mode and measure delivery at each designated receiver.
multi_pair_result run_multi_pair(const multi_pair_topology& topology,
                                 const multi_pair_config& config);

/// Node-id pairs (a < b, in the flattened node order: sender i is node
/// 2i, receiver i is node 2i + 1) whose link is audible under the
/// config's radio audibility floor. Found through a spatial grid with
/// cell size equal to the audible range, so N-node gain setup is
/// O(N * k) instead of O(N^2); with the floor disabled every pair is
/// returned. Slight over-inclusion at the range boundary is possible
/// (and harmless - the medium re-checks the floor when it freezes the
/// neighbor lists); under-inclusion is not.
std::vector<std::pair<node_id, node_id>> audible_link_pairs(
    const multi_pair_topology& topology, const multi_pair_config& config);

/// Analytic §3-style prediction for an explicit topology, in the
/// simulator's dBm units: per-pair mean Shannon capacity under full
/// concurrency (cumulative interference) and under TDMA, plus the
/// binary-cluster carrier-sense decision (any sender pair sensed above
/// the energy-detect threshold puts the whole group into TDMA).
struct multi_pair_prediction {
    double concurrent = 0.0;    ///< per-pair mean bits/s/Hz, all senders on
    double multiplexing = 0.0;  ///< per-pair mean bits/s/Hz, 1/n share
    bool cs_defers = false;     ///< the cluster decision at cs_threshold_dbm

    double predicted_best() const noexcept {
        return concurrent > multiplexing ? concurrent : multiplexing;
    }
};

multi_pair_prediction predict_multi_pair(const multi_pair_topology& topology,
                                         const multi_pair_config& config);

}  // namespace csense::mac
