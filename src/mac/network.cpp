#include "src/mac/network.hpp"

#include <stdexcept>

namespace csense::mac {

network::network(radio_config radio, std::uint64_t seed,
                 std::unique_ptr<capacity::error_model> errors)
    : errors_(errors ? std::move(errors)
                     : std::make_unique<capacity::logistic_per_model>()),
      seed_(seed) {
    medium_ = std::make_unique<medium>(sim_, radio, *errors_, seed ^ 0xabcdef);
}

node_id network::add_node(const mac_config& config) {
    if (started_) throw std::logic_error("network::add_node: already running");
    auto node = std::make_unique<dcf_node>(
        sim_, *medium_, config,
        seed_ + 0x9e3779b9u * (nodes_.size() + 1), hot_states_.allocate());
    nodes_.push_back(std::move(node));
    return nodes_.back()->id();
}

void network::reserve_nodes(std::size_t nodes) {
    nodes_.reserve(nodes);
    medium_->reserve_nodes(nodes);
}

void network::set_link_gain_db(node_id a, node_id b, double gain_db) {
    medium_->set_link_gain_db(a, b, gain_db);
}

void network::run(sim::time_us duration_us) {
    if (!started_) {
        // Pick the queue backend for the network's scale before the
        // first event exists (reconfigure refuses once events are in
        // flight, e.g. when a test pre-schedules by hand - the default
        // then stands). Both backends pop in identical order, so this
        // is a pure wall-clock choice: a binary heap is near-optimal
        // for the handful of pending events a one- or two-pair run
        // keeps, while the calendar wheel's O(1) arm/cancel wins once
        // hundreds of nodes hold standing timers. The CSENSE_QUEUE_BACKEND
        // override pins every queue in the process for A/B timing.
        sim::event_queue_config queue_config = sim::default_queue_config();
        if (!sim::forced_queue_backend()) {
            constexpr std::size_t kDenseNodeThreshold = 256;
            queue_config.backend = nodes_.size() >= kDenseNodeThreshold
                                       ? sim::queue_backend::calendar
                                       : sim::queue_backend::heap;
        }
        sim_.reconfigure_queue(queue_config);
        for (auto& node : nodes_) node->start();
        started_ = true;
    }
    sim_.run_until(sim_.now() + duration_us);
}

pair_run_result run_two_pair_competition(
    const radio_config& radio, const two_pair_gains& gains,
    const capacity::phy_rate& rate1, const capacity::phy_rate& rate2,
    cs_mode sense, sim::time_us duration_us, int payload_bytes,
    std::uint64_t seed) {
    network net(radio, seed);
    mac_config sender_cfg;
    sender_cfg.sense = sense;
    mac_config receiver_cfg;  // receivers never transmit; config irrelevant
    const node_id s1 = net.add_node(sender_cfg);
    const node_id r1 = net.add_node(receiver_cfg);
    const node_id s2 = net.add_node(sender_cfg);
    const node_id r2 = net.add_node(receiver_cfg);

    net.set_link_gain_db(s1, r1, gains.s1_r1);
    net.set_link_gain_db(s2, r2, gains.s2_r2);
    net.set_link_gain_db(s1, s2, gains.s1_s2);
    net.set_link_gain_db(s1, r2, gains.s1_r2);
    net.set_link_gain_db(s2, r1, gains.s2_r1);
    net.set_link_gain_db(r1, r2, gains.r1_r2);

    net.node(s1).set_traffic(traffic_mode::broadcast, broadcast_id,
                             rate1, payload_bytes);
    net.node(s2).set_traffic(traffic_mode::broadcast, broadcast_id,
                             rate2, payload_bytes);
    net.run(duration_us);

    pair_run_result result;
    const double seconds = duration_us / 1e6;
    const auto& stats1 = net.node(r1).stats().rx_decoded_by_src;
    const auto& stats2 = net.node(r2).stats().rx_decoded_by_src;
    const auto it1 = stats1.find(s1);
    const auto it2 = stats2.find(s2);
    result.pps_pair1 = (it1 != stats1.end()) ? it1->second / seconds : 0.0;
    result.pps_pair2 = (it2 != stats2.end()) ? it2->second / seconds : 0.0;
    result.counters = net.air().counters();
    return result;
}

double run_single_pair(const radio_config& radio, double sender_gain_db,
                       const capacity::phy_rate& rate,
                       sim::time_us duration_us, int payload_bytes,
                       std::uint64_t seed) {
    network net(radio, seed);
    mac_config cfg;  // defaults: CS on, though it is moot alone
    const node_id s = net.add_node(cfg);
    const node_id r = net.add_node(cfg);
    net.set_link_gain_db(s, r, sender_gain_db);
    net.node(s).set_traffic(traffic_mode::broadcast, broadcast_id,
                            rate, payload_bytes);
    net.run(duration_us);
    const auto& by_src = net.node(r).stats().rx_decoded_by_src;
    const auto it = by_src.find(s);
    const double seconds = duration_us / 1e6;
    return (it != by_src.end()) ? it->second / seconds : 0.0;
}

}  // namespace csense::mac
