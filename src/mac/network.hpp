// Convenience assembly of a complete simulated WLAN: simulator + medium +
// nodes, built from a link-gain matrix, with helpers for the two-pair
// competition runs the thesis measures (§4 methodology).
#pragma once

#include <memory>
#include <vector>

#include "src/capacity/error_models.hpp"
#include "src/mac/dcf.hpp"
#include "src/mac/medium.hpp"

namespace csense::mac {

/// Owns every object a scenario needs, in construction order.
class network {
public:
    network(radio_config radio, std::uint64_t seed,
            std::unique_ptr<capacity::error_model> errors = nullptr);

    /// Add a node with the given MAC configuration; returns its id.
    node_id add_node(const mac_config& config);

    /// Pre-size per-node storage (nodes + medium) for `nodes`
    /// registrations. Purely an allocation hint; results never depend
    /// on it.
    void reserve_nodes(std::size_t nodes);

    /// Symmetric link gain in dB between two existing nodes.
    void set_link_gain_db(node_id a, node_id b, double gain_db);

    sim::simulator& sim() noexcept { return sim_; }
    medium& air() noexcept { return *medium_; }
    dcf_node& node(node_id id) { return *nodes_.at(id); }
    const dcf_node& node(node_id id) const { return *nodes_.at(id); }
    std::size_t node_count() const noexcept { return nodes_.size(); }

    /// Start all traffic sources and run for `duration_us`.
    void run(sim::time_us duration_us);

private:
    sim::simulator sim_;
    std::unique_ptr<capacity::error_model> errors_;
    std::unique_ptr<medium> medium_;
    /// Hot per-node MAC state, one cache line per node, contiguous
    /// chunks: the event handlers' working set at N=2000. Declared
    /// before nodes_ so the blocks outlive the nodes pointing at them.
    node_state_pool hot_states_;
    std::vector<std::unique_ptr<dcf_node>> nodes_;
    std::uint64_t seed_;
    bool started_ = false;
};

/// Result of one two-pair competition run.
struct pair_run_result {
    double pps_pair1 = 0.0;  ///< delivered packets/second, pair 1
    double pps_pair2 = 0.0;
    double total_pps() const noexcept { return pps_pair1 + pps_pair2; }
    medium_counters counters;
};

/// Configuration of one sender-receiver pair for a competition run.
struct pair_spec {
    double sender_gain_db = 0.0;       ///< sender -> receiver link gain
    const capacity::phy_rate* rate = nullptr;
};

/// Gains between the four nodes of a two-pair scenario; indices:
/// 0 = S1, 1 = R1, 2 = S2, 3 = R2.
struct two_pair_gains {
    double s1_r1 = 0.0;
    double s2_r2 = 0.0;
    double s1_s2 = 0.0;
    double s1_r2 = 0.0;
    double s2_r1 = 0.0;
    double r1_r2 = 0.0;
};

/// Run both senders simultaneously (broadcast, saturated) for
/// `duration_us` under the given carrier-sense mode and measure delivered
/// throughput at each designated receiver.
pair_run_result run_two_pair_competition(
    const radio_config& radio, const two_pair_gains& gains,
    const capacity::phy_rate& rate1, const capacity::phy_rate& rate2,
    cs_mode sense, sim::time_us duration_us, int payload_bytes,
    std::uint64_t seed);

/// Run one pair alone (the thesis' multiplexing measurement); returns
/// delivered packets/second.
double run_single_pair(const radio_config& radio, double sender_gain_db,
                       const capacity::phy_rate& rate,
                       sim::time_us duration_us, int payload_bytes,
                       std::uint64_t seed);

}  // namespace csense::mac
