// Hot per-node MAC state, packed one cache line per node.
//
// The DCF event handlers (channel updates, backoff timers, preamble
// wakes) touch a small, fixed set of fields on every event; leaving
// them scattered inside dcf_node means a dense-network event walks a
// ~500-byte object (stats map, traffic deque, quantile bins) to flip a
// bool. dcf_hot_state gathers exactly the per-event fields, and
// node_state_pool packs all nodes' hot state into contiguous chunks so
// the working set at N=2000 is ~125 KB of adjacent lines instead of
// 2000 scattered heap objects.
//
// Pointers into the pool are stable: chunks are fixed arrays that are
// never reallocated, only appended.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/sim/event_queue.hpp"

namespace csense::mac {

/// DCF station FSM state (hoisted from dcf_node so the hot block can
/// name it; dcf_node aliases it back as `state`).
enum class dcf_state : std::uint8_t {
    idle,          ///< no packet (traffic_mode::none or drained queue)
    contending,    ///< waiting for DIFS + backoff
    transmitting,  ///< own frame on the air
    awaiting_cts,
    awaiting_ack,
    responding,    ///< SIFS gap before CTS/ACK/data-after-CTS
};

/// The per-event working set of one DCF node: channel-sense state,
/// contention counters, and the timer generation. Exactly 64 bytes.
struct dcf_hot_state {
    // Channel state.
    sim::time_us preamble_busy_until = 0.0;
    sim::time_us nav_until = 0.0;
    double last_external_power_dbm = -200.0;  ///< noise floor at ctor
    sim::time_us busy_since = 0.0;
    sim::time_us busy_accum_us = 0.0;
    // Contention / timer state.
    std::uint64_t timer_generation = 0;
    std::int32_t slots_left = 0;
    std::int32_t cw = 15;
    std::int32_t retries = 0;
    dcf_state state = dcf_state::idle;
    bool energy_busy = false;
    bool have_packet = false;
    bool difs_done = false;
};

static_assert(sizeof(dcf_hot_state) == 64,
              "dcf_hot_state must stay one cache line; rebalance the "
              "field layout if you add state");

/// Chunked arena of hot-state blocks with stable addresses and
/// near-contiguous layout. Owned by the network; one allocate() per
/// node, released all at once with the pool.
class node_state_pool {
public:
    dcf_hot_state* allocate() {
        if (used_ == chunks_.size() * chunk_size) {
            chunks_.push_back(std::make_unique<chunk>());
        }
        dcf_hot_state* block =
            &(*chunks_[used_ / chunk_size])[used_ % chunk_size];
        ++used_;
        *block = dcf_hot_state{};
        return block;
    }

    std::size_t size() const noexcept { return used_; }

private:
    static constexpr std::size_t chunk_size = 512;
    using chunk = std::array<dcf_hot_state, chunk_size>;
    std::vector<std::unique_ptr<chunk>> chunks_;
    std::size_t used_ = 0;
};

}  // namespace csense::mac
