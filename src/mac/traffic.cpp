#include "src/mac/traffic.hpp"

#include <stdexcept>

namespace csense::mac {

namespace {

class saturated_traffic final : public traffic_source {
public:
    bool saturated() const noexcept override { return true; }
    sim::time_us next_interarrival_us(stats::rng&) override {
        throw std::logic_error(
            "saturated_traffic: no arrival process to sample");
    }
    const char* name() const noexcept override { return "saturated"; }
};

class poisson_traffic final : public traffic_source {
public:
    explicit poisson_traffic(double rate_per_us) : rate_per_us_(rate_per_us) {}

    sim::time_us next_interarrival_us(stats::rng& gen) override {
        return gen.exponential(rate_per_us_);
    }
    const char* name() const noexcept override { return "poisson"; }

private:
    double rate_per_us_;
};

class cbr_traffic final : public traffic_source {
public:
    explicit cbr_traffic(double period_us) : period_us_(period_us) {}

    sim::time_us next_interarrival_us(stats::rng&) override {
        return period_us_;  // deterministic spacing, no RNG consumed
    }
    const char* name() const noexcept override { return "cbr"; }

private:
    double period_us_;
};

/// Interrupted Poisson process: exponential on/off envelope, Poisson
/// arrivals at the peak rate while on. The peak rate is scaled by the
/// duty cycle so the long-run mean equals offered_load_pps, making the
/// load knob comparable across models.
class on_off_traffic final : public traffic_source {
public:
    on_off_traffic(double peak_rate_per_us, double on_mean_us,
                   double off_mean_us)
        : peak_rate_per_us_(peak_rate_per_us),
          on_mean_us_(on_mean_us),
          off_mean_us_(off_mean_us) {}

    sim::time_us next_interarrival_us(stats::rng& gen) override {
        sim::time_us gap = 0.0;
        for (;;) {
            if (on_left_us_ <= 0.0) {
                gap += gen.exponential(1.0 / off_mean_us_);
                on_left_us_ = gen.exponential(1.0 / on_mean_us_);
            }
            const double step = gen.exponential(peak_rate_per_us_);
            if (step <= on_left_us_) {
                on_left_us_ -= step;
                return gap + step;
            }
            gap += on_left_us_;  // burst ended before the next arrival
            on_left_us_ = 0.0;
        }
    }
    const char* name() const noexcept override { return "on_off"; }

private:
    double peak_rate_per_us_;
    double on_mean_us_;
    double off_mean_us_;
    double on_left_us_ = 0.0;  ///< remaining burst budget; starts off
};

double checked_rate_per_us(const traffic_config& config) {
    if (!(config.offered_load_pps > 0.0)) {
        throw std::invalid_argument(
            "make_traffic_source: offered_load_pps must be > 0");
    }
    return config.offered_load_pps / 1e6;
}

}  // namespace

std::unique_ptr<traffic_source> make_traffic_source(
    const traffic_config& config) {
    switch (config.model) {
        case traffic_model::saturated:
            return std::make_unique<saturated_traffic>();
        case traffic_model::poisson:
            return std::make_unique<poisson_traffic>(
                checked_rate_per_us(config));
        case traffic_model::cbr:
            return std::make_unique<cbr_traffic>(1.0 /
                                                 checked_rate_per_us(config));
        case traffic_model::on_off: {
            const double mean_rate = checked_rate_per_us(config);
            if (!(config.on_mean_us > 0.0) || !(config.off_mean_us > 0.0)) {
                throw std::invalid_argument(
                    "make_traffic_source: on/off means must be > 0");
            }
            const double duty =
                config.on_mean_us / (config.on_mean_us + config.off_mean_us);
            return std::make_unique<on_off_traffic>(
                mean_rate / duty, config.on_mean_us, config.off_mean_us);
        }
    }
    throw std::invalid_argument("make_traffic_source: unknown model");
}

}  // namespace csense::mac
