// Per-node traffic sources: the arrival process that feeds a dcf_node's
// FIFO queue. The saturated source reproduces the historical
// always-backlogged behaviour exactly (no arrival events are scheduled,
// the node refills inline on packet completion), so every pre-existing
// scenario stays byte-identical; the unsaturated sources (Poisson,
// constant-bit-rate, interrupted-Poisson on/off) schedule arrivals as
// ordinary simulator events drawn from a per-node split RNG stream, which
// is what makes offered load deterministic at any thread count.
#pragma once

#include <memory>

#include "src/mac/wireless_config.hpp"
#include "src/sim/event_queue.hpp"
#include "src/stats/rng.hpp"

namespace csense::mac {

/// Arrival process of one node's offered traffic.
class traffic_source {
public:
    virtual ~traffic_source() = default;

    /// True for the always-backlogged source: the node bypasses the
    /// arrival/queue machinery entirely and refills inline, preserving
    /// the historical event sequence bit-for-bit.
    virtual bool saturated() const noexcept { return false; }

    /// Gap to the next packet arrival, microseconds (> 0). Draws only
    /// from `gen`, the node's dedicated arrival stream; never called on
    /// a saturated source.
    virtual sim::time_us next_interarrival_us(stats::rng& gen) = 0;

    /// Name for reporting.
    virtual const char* name() const noexcept = 0;
};

/// Build the source described by `config`. Throws std::invalid_argument
/// on non-positive rates/durations for the models that need them.
std::unique_ptr<traffic_source> make_traffic_source(
    const traffic_config& config);

}  // namespace csense::mac
