// Radio and MAC configuration shared by the packet-level simulator.
// Defaults follow the thesis' hardware (§3.2.2 fn. 5, §4): 15 dBm
// transmitters, a -95 dBm noise floor, energy-detection carrier sense
// near -82 dBm, 802.11a OFDM timing, and 1400-byte broadcast frames.
#pragma once

#include "src/capacity/rate_table.hpp"

namespace csense::mac {

/// How a node's clear-channel assessment decides "busy".
enum class cs_mode {
    disabled,             ///< never defer (the thesis' CS-off mode)
    energy,               ///< total received power above threshold
    preamble,             ///< busy only while a decoded preamble's frame is
                          ///< in the air (vulnerable to chain collisions)
    energy_and_preamble,  ///< either signal marks the channel busy
};

/// Per-deployment radio constants.
struct radio_config {
    double tx_power_dbm = 15.0;
    double noise_floor_dbm = -95.0;
    double cs_threshold_dbm = -82.0;       ///< energy-detection threshold
    double preamble_threshold_dbm = -92.0; ///< preamble decode sensitivity
    double preamble_capture_snr_db = 4.0;  ///< SINR needed to lock onto a frame
    double cca_delay_us = 4.0;             ///< clear-channel-assessment lag;
                                           ///< the vulnerability window behind
                                           ///< slot collisions (must be < slot)
    double fading_sigma_db = 0.0;          ///< per-packet, per-link wideband
                                           ///< fading residue (lognormal dB)
};

/// Per-node MAC behaviour.
struct mac_config {
    cs_mode sense = cs_mode::energy_and_preamble;
    double cs_threshold_offset_db = 0.0;  ///< per-node calibration error
                                          ///< (threshold asymmetry pathology)
    int cw_min = 15;
    int cw_max = 1023;
    int retry_limit = 7;       ///< unicast retries (broadcast never retries)
    bool use_rts_cts = false;  ///< static RTS/CTS for unicast data
    bool adaptive_rts_cts = false;  ///< §5 heuristic: enable RTS/CTS only
                                    ///< when loss is high despite high RSSI
    double rts_loss_threshold = 0.4;   ///< loss EWMA that triggers RTS/CTS
    double rts_snr_threshold_db = 15.0;///< only if SNR is at least this
};

/// Control-frame sizes in bytes (802.11 MAC).
struct control_frames {
    static constexpr int rts_bytes = 20;
    static constexpr int cts_bytes = 14;
    static constexpr int ack_bytes = 14;
};

}  // namespace csense::mac
