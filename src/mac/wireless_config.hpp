// Radio and MAC configuration shared by the packet-level simulator.
// Defaults follow the thesis' hardware (§3.2.2 fn. 5, §4): 15 dBm
// transmitters, a -95 dBm noise floor, energy-detection carrier sense
// near -82 dBm, 802.11a OFDM timing, and 1400-byte broadcast frames.
#pragma once

#include "src/capacity/rate_table.hpp"

namespace csense::mac {

/// How a node's clear-channel assessment decides "busy".
enum class cs_mode {
    disabled,             ///< never defer (the thesis' CS-off mode)
    energy,               ///< total received power above threshold
    preamble,             ///< busy only while a decoded preamble's frame is
                          ///< in the air (vulnerable to chain collisions)
    energy_and_preamble,  ///< either signal marks the channel busy
};

/// Sentinel for radio_config::audibility_floor_dbm: no culling, the
/// medium runs its dense O(N^2) path (bit-identical to builds without
/// the neighbor-culled medium).
inline constexpr double audibility_floor_disabled_dbm = -1.0e300;

/// Per-deployment radio constants.
struct radio_config {
    double tx_power_dbm = 15.0;
    double noise_floor_dbm = -95.0;
    double cs_threshold_dbm = -82.0;       ///< energy-detection threshold
    double preamble_threshold_dbm = -92.0; ///< preamble decode sensitivity
    double preamble_capture_snr_db = 4.0;  ///< SINR needed to lock onto a frame
    double cca_delay_us = 4.0;             ///< clear-channel-assessment lag;
                                           ///< the vulnerability window behind
                                           ///< slot collisions (must be < slot)
    double fading_sigma_db = 0.0;          ///< per-packet, per-link wideband
                                           ///< fading residue (lognormal dB)

    /// Medium-scaling knob: received powers below this floor are treated
    /// as exactly zero, and the medium culls such links into per-node
    /// audibility neighbor lists (CSR), making every transmission event
    /// O(neighbors) instead of O(nodes). When fading_sigma_db > 0 the
    /// cull criterion is the link's *mean* rx power against the floor
    /// minus a 3-sigma fade allowance, so links whose faded tail can
    /// still cross a CCA threshold stay in the neighbor lists (the
    /// dropped tail is < 0.15% of frames). Recommended value for dense
    /// campaigns: noise_floor_dbm - 20 (a -115 dBm signal moves a -95 dBm
    /// noise floor by < 0.02 dB). Caveat: the floor is per-link, but
    /// culled links are dropped individually while their *aggregate*
    /// adds up - with thousands of simultaneous far transmitters the
    /// summed sub-floor power can approach the noise floor, so at
    /// extreme densities pick the floor with the aggregate in mind
    /// (camp05 quantifies this per density as its
    /// `culled_residual_*_dbm` metrics). Must sit below preamble_threshold_dbm
    /// and below every carrier-sense threshold the run can reach, or
    /// culling would change CCA/preamble semantics rather than just
    /// dropping negligible power; the medium constructor enforces this
    /// against preamble_threshold_dbm and cs_threshold_dbm, and callers
    /// installing per-node overrides (cs_adaptation_config::
    /// min_threshold_dbm, mac_config::cs_threshold_offset_db) must keep
    /// them above the floor too. Default: disabled (dense medium,
    /// byte-identical to the pre-culling implementation).
    double audibility_floor_dbm = audibility_floor_disabled_dbm;

    /// Medium-scaling knob (culled mode only): every this-many
    /// transmission *ends* the medium rebuilds each node's running
    /// external-power sum exactly from the active transmissions, so the
    /// compensated incremental accounting can never drift over long
    /// runs. Keyed to event counts, never wall clock, so runs stay
    /// deterministic. <= 0 disables the periodic refresh (the
    /// Kahan-compensated sums and the exact reset whenever a node's
    /// audible set empties still bound the error).
    int power_refresh_interval = 4096;

    /// True when audibility_floor_dbm is set (neighbor-culled medium).
    bool audibility_enabled() const noexcept {
        return audibility_floor_dbm > audibility_floor_disabled_dbm;
    }
};

/// How a node's closed-loop carrier-sense threshold controller moves
/// `cs_threshold_dbm` between adaptation epochs (src/mac/adaptive_cs.hpp).
enum class cs_adapt_policy {
    fixed,                 ///< static threshold: adaptation machinery off
    aimd,                  ///< additive raise while clean, multiplicative
                           ///< (in dB) back-off on a loss signal
    target_busy,           ///< integral control of the sensed busy-time
                           ///< fraction to a set point
    iterative_fixed_point, ///< online Kim & Kim balance: step the threshold
                           ///< until the measured concurrent capacity
                           ///< equals the fair TDMA share
};

/// Per-node knobs of the closed-loop threshold controller. All dB/dBm
/// fields act on the node's *effective* energy-detection threshold (the
/// dcf_node override that replaces radio_config::cs_threshold_dbm +
/// mac_config::cs_threshold_offset_db once adaptation is enabled).
struct cs_adaptation_config {
    /// Which control law runs; `fixed` disables adaptation entirely (no
    /// epoch events are scheduled, so a run is byte-identical to one
    /// without any adaptation support).
    cs_adapt_policy policy = cs_adapt_policy::fixed;

    /// Adaptation epoch in microseconds: the controller samples its
    /// EWMAs and moves the threshold once per epoch.
    double epoch_us = 50'000.0;

    /// Hard clamp for the adapted threshold, dBm. Every policy's output
    /// is clamped to [min_threshold_dbm, max_threshold_dbm].
    double min_threshold_dbm = -95.0;
    double max_threshold_dbm = -60.0;  ///< see min_threshold_dbm

    /// Weight of the newest epoch in the busy/loss/goodput/interference
    /// EWMAs, in (0, 1]; 1 trusts each epoch alone.
    double ewma_weight = 0.25;

    /// target_busy: busy-time-fraction set point. The threshold moves by
    /// busy_gain_db * (busy EWMA - busy_target) per epoch, so a channel
    /// sensed busier than the target raises (deafens) the threshold.
    /// <= 0 (the default) selects the density-aware auto rule
    /// 1 - busy_idle_scale / contenders: with n saturated senders the
    /// idle fraction at a well-tuned threshold shrinks like 1/n.
    double busy_target = 0.0;

    /// target_busy: idle-fraction scale of the auto set point (see
    /// busy_target). Calibrated so the equilibrium threshold tracks the
    /// offline-tuned optimum across densities.
    double busy_idle_scale = 3.8;

    /// target_busy: proportional gain, dB of threshold per unit of
    /// busy-fraction error. Calibrated against camp03: larger gains
    /// track faster but oscillate around the set point at high density.
    double busy_gain_db = 6.0;

    /// aimd: additive threshold increase per clean epoch, dB.
    double ai_step_db = 0.5;

    /// aimd: threshold decrease on a congested epoch, dB (multiplicative
    /// in linear power).
    double md_backoff_db = 3.0;

    /// aimd: loss-rate EWMA above which an epoch counts as congested.
    double loss_target = 0.15;

    /// iterative_fixed_point: gain on the capacity-balance step, dB of
    /// threshold per doubling of the concurrent/fair-share capacity
    /// ratio. The balance compares the link's Shannon capacity against
    /// the marginal admitted contender (sensed exactly at the current
    /// threshold; the pairwise D >> r approximation) with the fair
    /// half share, so the fixed point is the node-local analogue of the
    /// offline concurrency/multiplexing crossing.
    double fp_gain_db = 8.0;

    /// Optional exploration dither, dB, drawn uniformly in
    /// [-jitter_db/2, +jitter_db/2] from the node's split RNG stream
    /// each epoch. 0 keeps every policy fully deterministic.
    double jitter_db = 0.0;

    /// True when the policy actually adapts (anything but `fixed`).
    bool enabled() const noexcept { return policy != cs_adapt_policy::fixed; }
};

/// Arrival process of a node's offered traffic (src/mac/traffic.hpp
/// turns this into a traffic_source).
enum class traffic_model {
    saturated,  ///< always backlogged: a new frame the instant one
                ///< finishes (the historical behaviour, and the default)
    poisson,    ///< memoryless arrivals at offered_load_pps
    cbr,        ///< constant bit rate: fixed 1e6/offered_load_pps spacing
    on_off,     ///< interrupted Poisson: exponential on/off envelope with
                ///< Poisson arrivals while on, duty-cycle-scaled so the
                ///< long-run mean is still offered_load_pps
};

/// Traffic + queue knobs of one node. The default (saturated, and any
/// queue capacity) reproduces the pre-queue event sequence exactly: no
/// arrival events are scheduled and the node refills inline.
struct traffic_config {
    traffic_model model = traffic_model::saturated;

    /// Long-run mean offered load, packets/second. Ignored by the
    /// saturated model; must be > 0 for every other model.
    double offered_load_pps = 100.0;

    /// on_off only: mean burst / silence durations of the exponential
    /// envelope, microseconds.
    double on_mean_us = 10'000.0;
    double off_mean_us = 10'000.0;  ///< see on_mean_us

    /// Finite FIFO capacity: packets that may wait behind the one in
    /// service. Arrivals beyond this are dropped and counted
    /// (node_stats::queue_drops).
    int queue_capacity = 64;

    /// True for the always-backlogged model (no arrival machinery).
    bool saturated() const noexcept {
        return model == traffic_model::saturated;
    }
};

/// Per-node MAC behaviour.
struct mac_config {
    cs_mode sense = cs_mode::energy_and_preamble;
    double cs_threshold_offset_db = 0.0;  ///< per-node calibration error
                                          ///< (threshold asymmetry pathology)
    int cw_min = 15;
    int cw_max = 1023;
    int retry_limit = 7;       ///< unicast retries (broadcast never retries)
    bool use_rts_cts = false;  ///< static RTS/CTS for unicast data
    bool adaptive_rts_cts = false;  ///< §5 heuristic: enable RTS/CTS only
                                    ///< when loss is high despite high RSSI
    double rts_loss_threshold = 0.4;   ///< loss EWMA that triggers RTS/CTS
    double rts_snr_threshold_db = 15.0;///< only if SNR is at least this

    /// Closed-loop carrier-sense threshold adaptation (defaults to
    /// `fixed`, i.e. off). adaptive_cs_manager reads this per-node
    /// config to build the node's controller and drives the
    /// dcf_node::set_cs_threshold_dbm override every epoch (multi-pair
    /// runs copy multi_pair_config::adapt here and install the manager
    /// automatically when the policy is enabled).
    cs_adaptation_config adapt;
};

/// Control-frame sizes in bytes (802.11 MAC).
struct control_frames {
    static constexpr int rts_bytes = 20;
    static constexpr int cts_bytes = 14;
    static constexpr int ack_bytes = 14;
};

}  // namespace csense::mac
