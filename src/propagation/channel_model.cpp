#include "src/propagation/channel_model.hpp"

#include <stdexcept>

#include "src/propagation/units.hpp"

namespace csense::propagation {

channel_model::channel_model(std::shared_ptr<const path_loss_model> path_loss,
                             std::shared_ptr<const shadowing_field> shadowing,
                             radio_parameters radio)
    : path_loss_(std::move(path_loss)), shadowing_(std::move(shadowing)),
      radio_(radio) {
    if (!path_loss_ || !shadowing_) {
        throw std::invalid_argument("channel_model: null component");
    }
}

double channel_model::median_rx_power_dbm(double distance_m) const {
    return radio_.tx_power_dbm - path_loss_->loss_db(distance_m);
}

double channel_model::rx_power_dbm(std::uint32_t node_a, std::uint32_t node_b,
                                   double distance_m) const {
    return median_rx_power_dbm(distance_m) +
           shadowing_->shadow_db(node_a, node_b);
}

double channel_model::link_gain_db(std::uint32_t node_a, std::uint32_t node_b,
                                   double distance_m) const {
    return rx_power_dbm(node_a, node_b, distance_m) - radio_.tx_power_dbm;
}

double channel_model::snr_db(std::uint32_t node_a, std::uint32_t node_b,
                             double distance_m) const {
    return rx_power_dbm(node_a, node_b, distance_m) - radio_.noise_floor_dbm;
}

double channel_model::sample_fading_db(stats::rng& gen) const {
    if (!fading_) return 0.0;
    return linear_to_db(fading_->sample_power(gen));
}

void channel_model::enable_fading(int subcarriers, double k_factor) {
    fading_ = std::make_unique<wideband_fading>(subcarriers, k_factor);
}

}  // namespace csense::propagation
