// Composite link-budget model: deterministic path loss + per-link
// lognormal shadowing + optional per-packet wideband fading residue.
// This is the channel the packet-level simulator and the synthetic
// testbed run on; its statistical form is exactly the model the thesis
// fits to its own testbed (Figure 14: alpha = 3.6, sigma = 10.4 dB).
#pragma once

#include <cstdint>
#include <memory>

#include "src/propagation/fading.hpp"
#include "src/propagation/path_loss.hpp"
#include "src/propagation/shadowing.hpp"
#include "src/stats/rng.hpp"

namespace csense::propagation {

/// Radio-wide constants for a deployment.
struct radio_parameters {
    double tx_power_dbm = 15.0;     ///< transmit power (thesis fn. 5)
    double noise_floor_dbm = -95.0; ///< thermal noise floor (thesis fn. 5)
};

/// Composite channel: median path loss, frozen per-link shadow, and an
/// optional per-packet fading residue.
class channel_model {
public:
    channel_model(std::shared_ptr<const path_loss_model> path_loss,
                  std::shared_ptr<const shadowing_field> shadowing,
                  radio_parameters radio);

    /// Median received power (no shadowing) at a distance, in dBm.
    double median_rx_power_dbm(double distance_m) const;

    /// Received power for a specific link: median power plus the link's
    /// frozen shadowing draw, in dBm.
    double rx_power_dbm(std::uint32_t node_a, std::uint32_t node_b,
                        double distance_m) const;

    /// Link gain (rx power minus tx power) in dB for a specific link.
    double link_gain_db(std::uint32_t node_a, std::uint32_t node_b,
                        double distance_m) const;

    /// Signal-to-noise ratio in dB for a specific link (no interference).
    double snr_db(std::uint32_t node_a, std::uint32_t node_b,
                  double distance_m) const;

    /// Per-packet fading residue in dB drawn from the wideband model, or
    /// exactly 0 if fading is disabled.
    double sample_fading_db(stats::rng& gen) const;

    /// Enable per-packet wideband fading with the given subcarrier count.
    void enable_fading(int subcarriers, double k_factor = 0.0);

    const radio_parameters& radio() const noexcept { return radio_; }

private:
    std::shared_ptr<const path_loss_model> path_loss_;
    std::shared_ptr<const shadowing_field> shadowing_;
    radio_parameters radio_;
    std::unique_ptr<wideband_fading> fading_;
};

}  // namespace csense::propagation
