#include "src/propagation/diffraction.hpp"

#include <cmath>
#include <stdexcept>

#include "src/propagation/units.hpp"

namespace csense::propagation {

double fresnel_v(double clearance_m, double d1_m, double d2_m, double lambda_m) {
    if (!(d1_m > 0.0) || !(d2_m > 0.0) || !(lambda_m > 0.0)) {
        throw std::domain_error("fresnel_v: distances and wavelength must be > 0");
    }
    return clearance_m * std::sqrt(2.0 * (d1_m + d2_m) / (lambda_m * d1_m * d2_m));
}

double knife_edge_loss_db(double v) {
    if (v <= -0.78) return 0.0;
    const double t = v - 0.1;
    return 6.9 + 20.0 * std::log10(std::sqrt(t * t + 1.0) + t);
}

double knife_edge_loss_db(double clearance_m, double d1_m, double d2_m,
                          double frequency_hz) {
    const double lambda = wavelength_m(frequency_hz);
    return knife_edge_loss_db(fresnel_v(clearance_m, d1_m, d2_m, lambda));
}

double wall_attenuation_db(wall_material material) {
    switch (material) {
        case wall_material::drywall: return 3.0;
        case wall_material::interior_wall: return 7.0;
        case wall_material::brick: return 8.0;
        case wall_material::concrete: return 13.0;
        case wall_material::reinforced_slab: return 20.0;
        case wall_material::metal: return 40.0;
    }
    throw std::invalid_argument("wall_attenuation_db: unknown material");
}

double typical_reflection_loss_db() { return 7.0; }

double combine_paths_db(const double* losses_db, int count) {
    if (count <= 0 || losses_db == nullptr) {
        throw std::invalid_argument("combine_paths_db: need at least one path");
    }
    double power = 0.0;
    for (int i = 0; i < count; ++i) {
        power += db_to_linear(-losses_db[i]);
    }
    return -linear_to_db(power);
}

}  // namespace csense::propagation
