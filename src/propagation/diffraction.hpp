// Obstacle physics for §3.4's barrier argument (Figure 8): even an opaque
// barrier leaks carrier-sense signal around its edge (knife-edge
// diffraction), through interior walls (~<10 dB), and via reflections off
// far walls (~<10 dB). These calculators quantify each path.
#pragma once

namespace csense::propagation {

/// Fresnel-Kirchhoff diffraction parameter v for a knife edge of height h
/// above the line of sight, with distances d1, d2 (meters) from the edge
/// to each endpoint, at wavelength lambda (meters).
double fresnel_v(double clearance_m, double d1_m, double d2_m, double lambda_m);

/// Knife-edge diffraction loss J(v) in dB, using the ITU-R P.526
/// approximation, valid for v > -0.78 (0 dB below that).
double knife_edge_loss_db(double v);

/// Convenience: diffraction loss around a barrier whose edge sits
/// `clearance_m` above (positive = obstructing) the direct path, with the
/// barrier `d1_m` from the sender and `d2_m` from the receiver, at
/// `frequency_hz`.
double knife_edge_loss_db(double clearance_m, double d1_m, double d2_m,
                          double frequency_hz);

/// Typical attenuation (dB) of common interior construction at ~2.4 GHz.
/// Values follow COST 231 §4.6-4.7 as quoted by the thesis (interior wall
/// < 10 dB, etc.).
enum class wall_material {
    drywall,
    interior_wall,   // generic office interior wall
    brick,
    concrete,
    reinforced_slab, // heavy floor construction; motivates the floor term
    metal,
};

/// Attenuation for a single wall of the given material, in dB.
double wall_attenuation_db(wall_material material);

/// Loss of a single specular reflection off a typical interior surface,
/// in dB (thesis: "typical reflection losses are less than 10 dB").
double typical_reflection_loss_db();

/// Power-combine several path losses given in dB: total received power is
/// the (incoherent) sum over paths, so the effective loss is
/// -10*log10(sum_i 10^(-L_i/10)).
double combine_paths_db(const double* losses_db, int count);

}  // namespace csense::propagation
