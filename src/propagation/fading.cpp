#include "src/propagation/fading.hpp"

#include <cmath>
#include <stdexcept>

#include "src/propagation/units.hpp"
#include "src/stats/distributions.hpp"
#include "src/stats/summary.hpp"

namespace csense::propagation {

narrowband_fading::narrowband_fading(double k_factor) : k_factor_(k_factor) {
    if (k_factor < 0.0) {
        throw std::invalid_argument("narrowband_fading: K must be >= 0");
    }
}

double narrowband_fading::sample_power(stats::rng& gen) const {
    if (k_factor_ == 0.0) return stats::rayleigh_fading::sample_power(gen);
    return stats::rician_fading{k_factor_}.sample_power(gen);
}

wideband_fading::wideband_fading(int subcarriers, double k_factor)
    : per_subcarrier_(k_factor), subcarriers_(subcarriers) {
    if (subcarriers < 1) {
        throw std::invalid_argument("wideband_fading: subcarriers must be >= 1");
    }
}

double wideband_fading::sample_power(stats::rng& gen) const {
    double sum = 0.0;
    for (int i = 0; i < subcarriers_; ++i) {
        sum += per_subcarrier_.sample_power(gen);
    }
    return sum / static_cast<double>(subcarriers_);
}

double wideband_fading::effective_sigma_db(stats::rng& gen, int samples) const {
    stats::running_summary db;
    for (int i = 0; i < samples; ++i) {
        db.add(linear_to_db(sample_power(gen)));
    }
    return db.stddev();
}

}  // namespace csense::propagation
