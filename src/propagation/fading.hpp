// Multipath (fast) fading. Narrowband channels see Rayleigh or Rician
// amplitude statistics; wideband OFDM channels average fading across
// subcarriers, which collapses the variation to "the equivalent of a few
// dB" (thesis appendix). The wideband model here demonstrates exactly that
// collapse and is what lets the analytical model drop the fading term.
#pragma once

#include <cstdint>

#include "src/stats/rng.hpp"

namespace csense::propagation {

/// Narrowband fading factor for one packet: a single Rayleigh or Rician
/// power draw applied to the whole transmission.
class narrowband_fading {
public:
    /// k_factor = 0 gives Rayleigh; larger K approaches no fading.
    explicit narrowband_fading(double k_factor = 0.0);

    /// Linear power fade factor (mean 1) for one packet.
    double sample_power(stats::rng& gen) const;

    double k_factor() const noexcept { return k_factor_; }

private:
    double k_factor_;
};

/// Wideband fading: the effective post-equalization power is modeled as
/// the average of `subcarriers` independent narrowband fades - the
/// frequency-diversity effect of OFDM coding across subcarriers
/// (802.11a/g has 48 data subcarriers).
class wideband_fading {
public:
    explicit wideband_fading(int subcarriers = 48, double k_factor = 0.0);

    /// Linear effective power fade factor (mean 1) for one packet.
    double sample_power(stats::rng& gen) const;

    /// Standard deviation of the effective fade in dB, estimated by
    /// simulation with `samples` draws; the appendix's "few dB" claim.
    double effective_sigma_db(stats::rng& gen, int samples = 20000) const;

    int subcarriers() const noexcept { return subcarriers_; }

private:
    narrowband_fading per_subcarrier_;
    int subcarriers_;
};

}  // namespace csense::propagation
