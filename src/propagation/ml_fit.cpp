#include "src/propagation/ml_fit.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "src/stats/distributions.hpp"
#include "src/stats/solve.hpp"

namespace csense::propagation {
namespace {

double log_normal_pdf(double x, double mean, double sigma) {
    const double z = (x - mean) / sigma;
    return -0.5 * z * z - std::log(sigma) -
           0.5 * std::log(2.0 * std::numbers::pi);
}

/// log Phi(z), stable in the deep lower tail via the asymptotic expansion.
double log_normal_cdf(double z) {
    if (z > -8.0) return std::log(stats::normal_cdf(z));
    // Phi(z) ~ phi(z)/|z| * (1 - 1/z^2) for z << 0.
    return -0.5 * z * z - std::log(-z) - 0.5 * std::log(2.0 * std::numbers::pi) +
           std::log1p(-1.0 / (z * z));
}

}  // namespace

path_loss_fit fit_path_loss(const std::vector<rssi_observation>& data,
                            double reference_distance, double threshold_db,
                            censoring_mode mode) {
    if (data.empty()) throw std::invalid_argument("fit_path_loss: no data");
    if (!(reference_distance > 0.0)) {
        throw std::invalid_argument("fit_path_loss: reference distance");
    }

    auto negative_log_likelihood = [&](const std::vector<double>& p) {
        const double alpha = p[0];
        const double sigma = p[1];
        const double rssi0 = p[2];
        if (sigma <= 0.05 || alpha <= 0.0 || alpha > 10.0) return 1e12;
        double nll = 0.0;
        for (const auto& obs : data) {
            if (!(obs.distance > 0.0)) return 1e12;
            const double mean =
                rssi0 - 10.0 * alpha * std::log10(obs.distance / reference_distance);
            if (obs.censored) {
                if (mode != censoring_mode::censored) continue;
                // P(SNR < threshold): the link was invisible.
                nll -= log_normal_cdf((threshold_db - mean) / sigma);
            } else {
                nll -= log_normal_pdf(obs.snr_db, mean, sigma);
                if (mode == censoring_mode::truncated) {
                    // Condition on visibility: divide by P(SNR >= threshold).
                    nll += log_normal_cdf(-(threshold_db - mean) / sigma);
                }
            }
        }
        return nll;
    };

    const auto result = stats::nelder_mead(negative_log_likelihood,
                                           {3.0, 8.0, 30.0}, {0.5, 2.0, 5.0},
                                           1e-10, 20000);
    path_loss_fit fit;
    fit.alpha = result.x[0];
    fit.sigma_db = result.x[1];
    fit.rssi0_db = result.x[2];
    fit.log_likelihood = -result.fx;
    fit.converged = result.converged;
    return fit;
}

double fit_mean_snr_db(const path_loss_fit& fit, double reference_distance,
                       double distance) {
    if (!(distance > 0.0) || !(reference_distance > 0.0)) {
        throw std::domain_error("fit_mean_snr_db: distances must be positive");
    }
    return fit.rssi0_db -
           10.0 * fit.alpha * std::log10(distance / reference_distance);
}

}  // namespace csense::propagation
