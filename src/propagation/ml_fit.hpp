// Maximum-likelihood fit of the path-loss/shadowing model to measured
// RSSI-vs-distance data, reproducing the estimator behind Figure 14
// (alpha = 3.6, sigma = 10.4 dB on the thesis' testbed). The fit must
// account for links too weak to decode: the thesis notes it corrects for
// "the invisibility of sub-threshold links". We support both treatments:
//  - censored: sub-threshold pairs are present in the data as
//    "no packets received" observations (we know the pair exists);
//  - truncated: sub-threshold pairs are silently absent from the data.
#pragma once

#include <vector>

namespace csense::propagation {

/// One RSSI observation: distance and measured mean SNR (dB), or a
/// censored marker when no packets were received.
struct rssi_observation {
    double distance = 0.0;  ///< arbitrary consistent distance units
    double snr_db = 0.0;    ///< meaningful only when !censored
    bool censored = false;  ///< true = below detection threshold
};

/// How sub-threshold links are reflected in the data set.
enum class censoring_mode {
    censored,   ///< below-threshold pairs appear as censored records
    truncated,  ///< below-threshold pairs are absent from the data
    ignore,     ///< drop censored records and apply no correction - the
                ///< naive estimator; biased low in alpha (kept as a
                ///< baseline to demonstrate why the thesis corrects for
                ///< "the invisibility of sub-threshold links")
};

/// Fitted model: SNR_dB(d) ~ Normal(rssi0 - 10*alpha*log10(d / d_ref),
/// sigma^2), observations below `threshold_db` unseen.
struct path_loss_fit {
    double alpha = 0.0;       ///< path loss exponent
    double sigma_db = 0.0;    ///< shadowing standard deviation
    double rssi0_db = 0.0;    ///< mean SNR at the reference distance
    double log_likelihood = 0.0;
    bool converged = false;
};

/// Fit (alpha, sigma, rssi0) by maximum likelihood via Nelder-Mead.
/// `reference_distance` anchors rssi0 (the thesis quotes RSSI0 at R=20).
/// `threshold_db` is the detection floor below which links are invisible.
path_loss_fit fit_path_loss(const std::vector<rssi_observation>& data,
                            double reference_distance, double threshold_db,
                            censoring_mode mode = censoring_mode::censored);

/// Model mean at a distance, for plotting fit curves.
double fit_mean_snr_db(const path_loss_fit& fit, double reference_distance,
                       double distance);

}  // namespace csense::propagation
