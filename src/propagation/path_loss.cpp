#include "src/propagation/path_loss.hpp"

#include <cmath>
#include <complex>
#include <numbers>
#include <stdexcept>

#include "src/propagation/units.hpp"

namespace csense::propagation {
namespace {

void require_positive_distance(double distance_m) {
    if (!(distance_m > 0.0)) {
        throw std::domain_error("path loss: distance must be positive");
    }
}

}  // namespace

power_law_path_loss::power_law_path_loss(double exponent, double reference_loss_db,
                                         double reference_distance_m)
    : exponent_(exponent), reference_loss_db_(reference_loss_db),
      reference_distance_m_(reference_distance_m) {
    if (!(reference_distance_m > 0.0)) {
        throw std::invalid_argument("power_law_path_loss: reference distance");
    }
}

double power_law_path_loss::loss_db(double distance_m) const {
    require_positive_distance(distance_m);
    return reference_loss_db_ +
           10.0 * exponent_ * std::log10(distance_m / reference_distance_m_);
}

free_space_path_loss::free_space_path_loss(double frequency_hz)
    : frequency_hz_(frequency_hz) {
    if (!(frequency_hz > 0.0)) {
        throw std::invalid_argument("free_space_path_loss: frequency");
    }
}

double free_space_path_loss::loss_db(double distance_m) const {
    require_positive_distance(distance_m);
    const double lambda = wavelength_m(frequency_hz_);
    return 20.0 * std::log10(4.0 * std::numbers::pi * distance_m / lambda);
}

two_ray_path_loss::two_ray_path_loss(double frequency_hz, double tx_height_m,
                                     double rx_height_m)
    : frequency_hz_(frequency_hz), ht_(tx_height_m), hr_(rx_height_m) {
    if (!(frequency_hz > 0.0) || !(tx_height_m > 0.0) || !(rx_height_m > 0.0)) {
        throw std::invalid_argument("two_ray_path_loss: parameters must be > 0");
    }
}

double two_ray_path_loss::crossover_distance_m() const {
    return 4.0 * std::numbers::pi * ht_ * hr_ / wavelength_m(frequency_hz_);
}

double two_ray_path_loss::loss_db(double distance_m) const {
    require_positive_distance(distance_m);
    const double lambda = wavelength_m(frequency_hz_);
    const double k = 2.0 * std::numbers::pi / lambda;
    // Exact two-path sum with a ground reflection coefficient of -1
    // (grazing incidence), as in the appendix's description.
    const double d_los =
        std::sqrt(distance_m * distance_m + (ht_ - hr_) * (ht_ - hr_));
    const double d_ref =
        std::sqrt(distance_m * distance_m + (ht_ + hr_) * (ht_ + hr_));
    const std::complex<double> los =
        std::polar(lambda / (4.0 * std::numbers::pi * d_los), -k * d_los);
    const std::complex<double> ref =
        std::polar(lambda / (4.0 * std::numbers::pi * d_ref), -k * d_ref);
    const double gain = std::norm(los - ref);
    if (gain <= 0.0) return 400.0;  // deep null: clamp to a very large loss
    return -linear_to_db(gain);
}

indoor_floor_path_loss::indoor_floor_path_loss(double exponent,
                                               double reference_loss_db,
                                               double floor_attenuation_db,
                                               int floors_crossed)
    : base_(exponent, reference_loss_db),
      floor_attenuation_db_(floor_attenuation_db),
      floors_crossed_(floors_crossed) {
    if (floors_crossed < 0) {
        throw std::invalid_argument("indoor_floor_path_loss: floors_crossed < 0");
    }
}

double indoor_floor_path_loss::loss_db(double distance_m) const {
    return loss_db(distance_m, floors_crossed_);
}

double indoor_floor_path_loss::loss_db(double distance_m, int floors_crossed) const {
    return base_.loss_db(distance_m) +
           floor_attenuation_db_ * static_cast<double>(floors_crossed);
}

}  // namespace csense::propagation
