// Deterministic path-loss models (the paper's appendix, §2 and §9):
//  - power-law (log-distance) decay, the model the thesis analyzes;
//  - free-space loss as the alpha = 2 special case with physical scaling;
//  - the two-ray ground-reflection model, whose far-field slope
//    approaches alpha = 4;
//  - an ITU-R P.1238-style indoor model with per-floor attenuation.
// All models return *loss* in dB (positive numbers attenuate).
#pragma once

#include <memory>

namespace csense::propagation {

/// Interface for deterministic distance-dependent path loss.
class path_loss_model {
public:
    virtual ~path_loss_model() = default;

    /// Median path loss in dB at the given distance in meters (> 0).
    virtual double loss_db(double distance_m) const = 0;
};

/// Power-law decay: loss(d) = loss(d0) + 10 * alpha * log10(d / d0).
/// This is the "path loss" term of the thesis' propagation model.
class power_law_path_loss final : public path_loss_model {
public:
    /// `exponent` is alpha (typically 2-4 indoors); `reference_loss_db` is
    /// the loss at `reference_distance_m`.
    power_law_path_loss(double exponent, double reference_loss_db,
                        double reference_distance_m = 1.0);

    double loss_db(double distance_m) const override;

    double exponent() const noexcept { return exponent_; }
    double reference_loss_db() const noexcept { return reference_loss_db_; }
    double reference_distance_m() const noexcept { return reference_distance_m_; }

private:
    double exponent_;
    double reference_loss_db_;
    double reference_distance_m_;
};

/// Free-space (Friis) loss at a carrier frequency.
class free_space_path_loss final : public path_loss_model {
public:
    explicit free_space_path_loss(double frequency_hz);

    double loss_db(double distance_m) const override;

private:
    double frequency_hz_;
};

/// Two-ray ground-reflection model: exact two-path interference sum at
/// short range, 4th-power decay beyond the crossover distance
/// d_c = 4 * pi * ht * hr / lambda. Appendix §9 invokes this model to
/// motivate alpha approaching 4 outdoors.
class two_ray_path_loss final : public path_loss_model {
public:
    two_ray_path_loss(double frequency_hz, double tx_height_m, double rx_height_m);

    double loss_db(double distance_m) const override;

    /// Crossover distance beyond which the d^4 approximation applies.
    double crossover_distance_m() const;

private:
    double frequency_hz_;
    double ht_;
    double hr_;
};

/// Indoor model in the style of ITU-R P.1238: power-law decay plus a fixed
/// attenuation per floor crossed (the thesis' footnote 1 notes heavy floors
/// warrant a separate term).
class indoor_floor_path_loss final : public path_loss_model {
public:
    indoor_floor_path_loss(double exponent, double reference_loss_db,
                           double floor_attenuation_db, int floors_crossed);

    double loss_db(double distance_m) const override;

    /// Same model evaluated with an explicit floor count.
    double loss_db(double distance_m, int floors_crossed) const;

private:
    power_law_path_loss base_;
    double floor_attenuation_db_;
    int floors_crossed_;
};

}  // namespace csense::propagation
