#include "src/propagation/shadowing.hpp"

#include <algorithm>
#include <cmath>

namespace csense::propagation {
namespace {

std::uint64_t link_key(std::uint32_t a, std::uint32_t b) noexcept {
    const std::uint32_t lo = std::min(a, b);
    const std::uint32_t hi = std::max(a, b);
    return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

}  // namespace

iid_shadowing::iid_shadowing(double sigma_db, std::uint64_t seed)
    : sigma_db_(sigma_db), base_(seed) {}

double iid_shadowing::shadow_db(std::uint32_t node_a, std::uint32_t node_b) const {
    stats::rng stream = base_.split(link_key(node_a, node_b));
    return sigma_db_ * stream.normal();
}

correlated_shadowing::correlated_shadowing(double sigma_db,
                                           double decorrelation_distance_m,
                                           std::uint64_t seed)
    : sigma_db_(sigma_db), decorrelation_m_(decorrelation_distance_m),
      base_(seed) {}

double correlated_shadowing::lattice_normal(std::int64_t i, std::int64_t j) const {
    const auto key = static_cast<std::uint64_t>(i * 0x9E3779B97F4A7C15LL +
                                                j * 0xC2B2AE3D27D4EB4FLL);
    stats::rng stream = base_.split(key);
    return stream.normal();
}

double correlated_shadowing::field_at(const position& p) const {
    // Bilinear interpolation of lattice normals with cell size equal to the
    // decorrelation distance. Interpolation slightly reduces variance away
    // from lattice points; renormalize by the interpolation weights' L2 norm
    // so the field keeps unit variance everywhere.
    const double gx = p.x / decorrelation_m_;
    const double gy = p.y / decorrelation_m_;
    const auto i0 = static_cast<std::int64_t>(std::floor(gx));
    const auto j0 = static_cast<std::int64_t>(std::floor(gy));
    const double fx = gx - static_cast<double>(i0);
    const double fy = gy - static_cast<double>(j0);
    const double w00 = (1.0 - fx) * (1.0 - fy);
    const double w10 = fx * (1.0 - fy);
    const double w01 = (1.0 - fx) * fy;
    const double w11 = fx * fy;
    const double value = w00 * lattice_normal(i0, j0) +
                         w10 * lattice_normal(i0 + 1, j0) +
                         w01 * lattice_normal(i0, j0 + 1) +
                         w11 * lattice_normal(i0 + 1, j0 + 1);
    const double norm =
        std::sqrt(w00 * w00 + w10 * w10 + w01 * w01 + w11 * w11);
    return value / norm;
}

double correlated_shadowing::shadow_db(const position& a, const position& b) const {
    // Each endpoint contributes an independent half of the link variance.
    const double scale = sigma_db_ / std::sqrt(2.0);
    return scale * (field_at(a) + field_at(b));
}

double correlated_shadowing::shadow_db(std::uint32_t node_a,
                                       std::uint32_t node_b) const {
    // Hash node ids onto pseudo-positions one decorrelation cell apart.
    const position pa{static_cast<double>(node_a) * decorrelation_m_, 0.0};
    const position pb{static_cast<double>(node_b) * decorrelation_m_,
                      decorrelation_m_};
    return shadow_db(pa, pb);
}

}  // namespace csense::propagation
