// Lognormal shadowing fields. The thesis treats shadowing as an i.i.d.
// lognormal factor per link; real deployments show spatial correlation,
// which we also provide (Gudmundson's exponential-correlation model) as an
// extension for the testbed substrate. Fields are deterministic functions
// of (seed, link), so the same link always sees the same shadow - the
// static-channel assumption the paper's 15-second runs rely on.
#pragma once

#include <cstdint>

#include "src/propagation/units.hpp"
#include "src/stats/rng.hpp"

namespace csense::propagation {

/// Interface: per-link shadowing loss in dB (negative = gain).
class shadowing_field {
public:
    virtual ~shadowing_field() = default;

    /// Shadowing in dB for the (a, b) link, symmetric in its arguments.
    virtual double shadow_db(std::uint32_t node_a, std::uint32_t node_b) const = 0;
};

/// Zero shadowing (the sigma = 0 simplified model of §3.3).
class no_shadowing final : public shadowing_field {
public:
    double shadow_db(std::uint32_t, std::uint32_t) const override { return 0.0; }
};

/// Independent lognormal shadowing per link: N(0, sigma^2) dB, symmetric,
/// reproducible from the seed.
class iid_shadowing final : public shadowing_field {
public:
    iid_shadowing(double sigma_db, std::uint64_t seed);

    double shadow_db(std::uint32_t node_a, std::uint32_t node_b) const override;

    double sigma_db() const noexcept { return sigma_db_; }

private:
    double sigma_db_;
    stats::rng base_;
};

/// Spatially correlated shadowing built from per-node Gaussian fields on a
/// lattice with exponential (Gudmundson) correlation: each endpoint
/// contributes half the variance, and nearby endpoints see similar values
/// with correlation exp(-distance / decorrelation_distance).
class correlated_shadowing final : public shadowing_field {
public:
    /// Positions are supplied per lookup; the field is a deterministic
    /// function of position, realized by lattice interpolation.
    correlated_shadowing(double sigma_db, double decorrelation_distance_m,
                         std::uint64_t seed);

    /// Link shadowing given endpoint positions; still symmetric.
    double shadow_db(const position& a, const position& b) const;

    /// Node-id overload required by the interface: treats ids as lattice
    /// coordinates hashed to positions. Prefer the position overload.
    double shadow_db(std::uint32_t node_a, std::uint32_t node_b) const override;

    double sigma_db() const noexcept { return sigma_db_; }

private:
    /// Value of the underlying unit-variance Gaussian field at a position.
    double field_at(const position& p) const;

    /// Deterministic unit normal attached to integer lattice point (i, j).
    double lattice_normal(std::int64_t i, std::int64_t j) const;

    double sigma_db_;
    double decorrelation_m_;
    stats::rng base_;
};

}  // namespace csense::propagation
