#include "src/propagation/units.hpp"

#include <stdexcept>

namespace csense::propagation {

double linear_to_db(double ratio) {
    if (!(ratio > 0.0)) {
        throw std::domain_error("linear_to_db: ratio must be positive");
    }
    return 10.0 * std::log10(ratio);
}

double db_to_linear(double db) noexcept { return std::pow(10.0, db / 10.0); }

double mw_to_dbm(double mw) { return linear_to_db(mw); }

double dbm_to_mw(double dbm) noexcept { return db_to_linear(dbm); }

double wavelength_m(double frequency_hz) {
    if (!(frequency_hz > 0.0)) {
        throw std::domain_error("wavelength_m: frequency must be positive");
    }
    return speed_of_light / frequency_hz;
}

double distance(const position& a, const position& b) noexcept {
    const double dx = a.x - b.x;
    const double dy = a.y - b.y;
    return std::sqrt(dx * dx + dy * dy);
}

double distance(const position3& a, const position3& b) noexcept {
    const double dx = a.x - b.x;
    const double dy = a.y - b.y;
    const double dz = a.z - b.z;
    return std::sqrt(dx * dx + dy * dy + dz * dz);
}

}  // namespace csense::propagation
