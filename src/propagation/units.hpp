// Unit conversions and small geometric types shared by the propagation,
// MAC, and testbed layers. Powers move between linear (milliwatt) and
// logarithmic (dB / dBm) domains constantly in link-budget code; keeping
// the conversions in one place avoids the classic factor-of-10 bugs.
#pragma once

#include <cmath>

namespace csense::propagation {

/// Speed of light in m/s.
inline constexpr double speed_of_light = 299'792'458.0;

/// Convert a linear power ratio to decibels.
double linear_to_db(double ratio);

/// Convert decibels to a linear power ratio.
double db_to_linear(double db) noexcept;

/// Convert milliwatts to dBm.
double mw_to_dbm(double mw);

/// Convert dBm to milliwatts.
double dbm_to_mw(double dbm) noexcept;

/// Wavelength in meters for a carrier frequency in Hz.
double wavelength_m(double frequency_hz);

/// 2-D position in meters (the testbed adds a floor index separately).
struct position {
    double x = 0.0;
    double y = 0.0;
};

/// Euclidean distance between two positions.
double distance(const position& a, const position& b) noexcept;

/// 3-D position used by the two-floor testbed layout.
struct position3 {
    double x = 0.0;
    double y = 0.0;
    double z = 0.0;
};

double distance(const position3& a, const position3& b) noexcept;

}  // namespace csense::propagation
