#include "src/report/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace csense::report {
namespace {

struct bounds {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();

    void include(double v) {
        if (std::isnan(v)) return;
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }

    bool valid() const { return lo <= hi; }
};

std::string format_tick(double v) {
    char buffer[32];
    if (std::abs(v) >= 1000.0 || (std::abs(v) < 0.01 && v != 0.0)) {
        std::snprintf(buffer, sizeof(buffer), "%.2e", v);
    } else {
        std::snprintf(buffer, sizeof(buffer), "%.3g", v);
    }
    return buffer;
}

}  // namespace

std::string render_chart(const std::vector<series>& data,
                         const plot_options& options) {
    if (data.empty()) throw std::invalid_argument("render_chart: no series");
    bounds bx, by;
    for (const auto& s : data) {
        if (s.x.size() != s.y.size()) {
            throw std::invalid_argument("render_chart: x/y size mismatch");
        }
        for (double v : s.x) bx.include(v);
        for (double v : s.y) by.include(v);
    }
    if (!bx.valid() || !by.valid()) {
        throw std::invalid_argument("render_chart: no finite data");
    }
    if (options.y_from_zero) by.include(0.0);
    if (bx.hi == bx.lo) bx.hi = bx.lo + 1.0;
    if (by.hi == by.lo) by.hi = by.lo + 1.0;

    const int w = options.width;
    const int h = options.height;
    std::vector<std::string> grid(h, std::string(w, ' '));
    for (const auto& s : data) {
        for (std::size_t i = 0; i < s.x.size(); ++i) {
            if (std::isnan(s.x[i]) || std::isnan(s.y[i])) continue;
            const int col = static_cast<int>(
                std::lround((s.x[i] - bx.lo) / (bx.hi - bx.lo) * (w - 1)));
            const int row = static_cast<int>(
                std::lround((s.y[i] - by.lo) / (by.hi - by.lo) * (h - 1)));
            if (col < 0 || col >= w || row < 0 || row >= h) continue;
            grid[h - 1 - row][col] = s.marker;
        }
    }

    std::string out;
    if (!options.y_label.empty()) out += options.y_label + "\n";
    const std::string top_tick = format_tick(by.hi);
    const std::string bottom_tick = format_tick(by.lo);
    const std::size_t margin = std::max(top_tick.size(), bottom_tick.size()) + 1;
    for (int r = 0; r < h; ++r) {
        std::string prefix;
        if (r == 0) prefix = top_tick;
        if (r == h - 1) prefix = bottom_tick;
        prefix.append(margin - prefix.size(), ' ');
        out += prefix + "|" + grid[r] + "\n";
    }
    out.append(margin, ' ');
    out += "+";
    out.append(w, '-');
    out += "\n";
    out.append(margin + 1, ' ');
    std::string axis = format_tick(bx.lo);
    const std::string hi_tick = format_tick(bx.hi);
    if (axis.size() + hi_tick.size() + 1 < static_cast<std::size_t>(w)) {
        axis.append(w - axis.size() - hi_tick.size(), ' ');
        axis += hi_tick;
    }
    out += axis + "\n";
    if (!options.x_label.empty()) {
        out.append(margin + 1, ' ');
        out += options.x_label + "\n";
    }
    out += "legend:";
    for (const auto& s : data) {
        out += " [";
        out += s.marker;
        out += "] " + s.name + " ";
    }
    out += "\n";
    return out;
}

std::string render_heatmap(const std::vector<double>& values, int rows,
                           int cols, const std::string& legend) {
    if (rows <= 0 || cols <= 0 ||
        values.size() != static_cast<std::size_t>(rows) * cols) {
        throw std::invalid_argument("render_heatmap: dimensions");
    }
    static const std::string ramp = " .:-=+*#%@";
    bounds b;
    for (double v : values) b.include(v);
    std::string out;
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            const double v = values[static_cast<std::size_t>(r) * cols + c];
            if (std::isnan(v) || !b.valid() || b.hi == b.lo) {
                out += ' ';
                continue;
            }
            const double t = (v - b.lo) / (b.hi - b.lo);
            const auto idx = static_cast<std::size_t>(
                std::min(t, 1.0) * (ramp.size() - 1));
            out += ramp[idx];
        }
        out += '\n';
    }
    if (!legend.empty()) {
        out += "scale: '" + ramp + "' low -> high; " + legend + "\n";
    }
    return out;
}

std::string render_category_map(const std::vector<int>& cells, int rows,
                                int cols, const std::string& palette) {
    if (rows <= 0 || cols <= 0 ||
        cells.size() != static_cast<std::size_t>(rows) * cols) {
        throw std::invalid_argument("render_category_map: dimensions");
    }
    std::string out;
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            const int v = cells[static_cast<std::size_t>(r) * cols + c];
            out += (v >= 0 && v < static_cast<int>(palette.size())) ? palette[v]
                                                                    : ' ';
        }
        out += '\n';
    }
    return out;
}

}  // namespace csense::report
