// Terminal renderings of the paper's figures: line charts (Figures 4-7,
// 9), scatter plots (Figures 10-14), and shaded heatmaps (Figures 2-3).
// Bench binaries print both the raw series (CSV-like rows) and these
// pictures, so the reproduced figure is inspectable without any plotting
// toolchain.
#pragma once

#include <string>
#include <vector>

namespace csense::report {

/// One named series of (x, y) points.
struct series {
    std::string name;
    std::vector<double> x;
    std::vector<double> y;
    char marker = '*';
};

/// Options for chart rendering.
struct plot_options {
    int width = 72;    ///< plot area columns
    int height = 20;   ///< plot area rows
    std::string x_label;
    std::string y_label;
    bool y_from_zero = true;
};

/// Render line/scatter series on shared axes. Series are overdrawn in
/// order; each uses its own marker, listed in the legend.
std::string render_chart(const std::vector<series>& data,
                         const plot_options& options);

/// Render a heatmap of `values` (row-major, rows x cols) using a
/// luminance ramp; NaN cells render as spaces. `legend` annotates the
/// ramp.
std::string render_heatmap(const std::vector<double>& values, int rows,
                           int cols, const std::string& legend);

/// Render a categorical map (e.g. Figure 3's preference regions): each
/// cell is an index into `palette`; out-of-range renders as space.
std::string render_category_map(const std::vector<int>& cells, int rows,
                                int cols, const std::string& palette);

}  // namespace csense::report
