#include "src/report/csv.hpp"

namespace csense::report {

std::string csv_escape(const std::string& field) {
    const bool needs_quotes =
        field.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes) return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"') out += '"';
        out += c;
    }
    out += '"';
    return out;
}

std::string csv_line(const std::vector<std::string>& fields) {
    std::string out;
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i > 0) out += ',';
        out += csv_escape(fields[i]);
    }
    return out;
}

std::string csv_document(const std::vector<std::vector<std::string>>& rows) {
    std::string out;
    for (const auto& row : rows) {
        out += csv_line(row);
        out += '\n';
    }
    return out;
}

}  // namespace csense::report
