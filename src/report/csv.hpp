// Minimal CSV emission so bench output can be piped into external
// plotting tools; fields containing separators/quotes are quoted per
// RFC 4180.
#pragma once

#include <string>
#include <vector>

namespace csense::report {

/// Escape one CSV field.
std::string csv_escape(const std::string& field);

/// Join fields into one CSV line (no trailing newline).
std::string csv_line(const std::vector<std::string>& fields);

/// Render rows (first row = header) into CSV text.
std::string csv_document(const std::vector<std::vector<std::string>>& rows);

}  // namespace csense::report
