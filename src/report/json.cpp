#include "src/report/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace csense::report {
namespace {

void append_number(std::string& out, double v) {
    if (!std::isfinite(v)) {
        // JSON has no Inf/NaN; emit null like most emitters do.
        out += "null";
        return;
    }
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    out.append(buf, res.ptr);
}

void append_integer(std::string& out, std::int64_t v) {
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    out.append(buf, res.ptr);
}

void append_uinteger(std::string& out, std::uint64_t v) {
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    out.append(buf, res.ptr);
}

void append_indent(std::string& out, int indent, int depth) {
    if (indent > 0) {
        out += '\n';
        out.append(static_cast<std::size_t>(indent) * depth, ' ');
    }
}

}  // namespace

namespace {

/// Recursive-descent parser over the subset json_value::dump emits.
/// Number-kind selection mirrors the emitter so parse-then-dump is
/// byte-stable: see json_value::parse's contract.
class parser {
public:
    explicit parser(std::string_view text) : text_(text) {}

    bool parse_document(json_value* out, std::string* error) {
        skip_ws();
        if (!parse_value(out, error)) return false;
        skip_ws();
        if (pos_ != text_.size()) {
            return fail(error, "trailing characters after document");
        }
        return true;
    }

private:
    bool fail(std::string* error, std::string_view what) {
        if (error != nullptr && error->empty()) {
            *error = "json parse error at byte " + std::to_string(pos_) +
                     ": " + std::string(what);
        }
        return false;
    }

    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool consume(char c) {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool literal(std::string_view word) {
        if (text_.substr(pos_, word.size()) == word) {
            pos_ += word.size();
            return true;
        }
        return false;
    }

    static void append_utf8(std::string* out, unsigned code_point) {
        if (code_point < 0x80) {
            out->push_back(static_cast<char>(code_point));
        } else if (code_point < 0x800) {
            out->push_back(static_cast<char>(0xc0 | (code_point >> 6)));
            out->push_back(static_cast<char>(0x80 | (code_point & 0x3f)));
        } else {
            out->push_back(static_cast<char>(0xe0 | (code_point >> 12)));
            out->push_back(
                static_cast<char>(0x80 | ((code_point >> 6) & 0x3f)));
            out->push_back(static_cast<char>(0x80 | (code_point & 0x3f)));
        }
    }

    bool parse_string(std::string* out, std::string* error) {
        if (!consume('"')) return fail(error, "expected '\"'");
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c != '\\') {
                out->push_back(c);
                ++pos_;
                continue;
            }
            if (++pos_ >= text_.size()) break;
            const char esc = text_[pos_++];
            switch (esc) {
                case '"': out->push_back('"'); break;
                case '\\': out->push_back('\\'); break;
                case '/': out->push_back('/'); break;
                case 'b': out->push_back('\b'); break;
                case 'f': out->push_back('\f'); break;
                case 'n': out->push_back('\n'); break;
                case 'r': out->push_back('\r'); break;
                case 't': out->push_back('\t'); break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) {
                        return fail(error, "truncated \\u escape");
                    }
                    unsigned code_point = 0;
                    const auto res =
                        std::from_chars(text_.data() + pos_,
                                        text_.data() + pos_ + 4,
                                        code_point, 16);
                    if (res.ec != std::errc() ||
                        res.ptr != text_.data() + pos_ + 4) {
                        return fail(error, "bad \\u escape");
                    }
                    pos_ += 4;
                    append_utf8(out, code_point);
                    break;
                }
                default: return fail(error, "unknown escape");
            }
        }
        return fail(error, "unterminated string");
    }

    bool parse_number(json_value* out, std::string* error) {
        const std::size_t begin = pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            const bool numeric = (c >= '0' && c <= '9') || c == '-' ||
                                 c == '+' || c == '.' || c == 'e' || c == 'E';
            if (!numeric) break;
            ++pos_;
        }
        const std::string_view token = text_.substr(begin, pos_ - begin);
        if (token.empty()) return fail(error, "expected a value");
        // Kind selection must invert append_number/append_integer/
        // append_uinteger byte-for-byte: anything with a fraction or
        // exponent is a double; "-0" is the one integer-looking token
        // only a double produces; the rest round-trip through (u)int64.
        const bool has_double_syntax =
            token.find_first_of(".eE") != std::string_view::npos ||
            token == "-0";
        if (has_double_syntax) {
            double v = 0.0;
            const auto res =
                std::from_chars(token.data(), token.data() + token.size(), v);
            if (res.ec != std::errc() || res.ptr != token.data() + token.size()) {
                return fail(error, "bad number");
            }
            *out = json_value(v);
            return true;
        }
        if (!token.empty() && token.front() == '-') {
            std::int64_t v = 0;
            const auto res =
                std::from_chars(token.data(), token.data() + token.size(), v);
            if (res.ec != std::errc() || res.ptr != token.data() + token.size()) {
                return fail(error, "bad integer");
            }
            *out = json_value(v);
            return true;
        }
        std::uint64_t u = 0;
        const auto res =
            std::from_chars(token.data(), token.data() + token.size(), u);
        if (res.ec != std::errc() || res.ptr != token.data() + token.size()) {
            return fail(error, "bad integer");
        }
        // Small magnitudes serialise identically from either kind; keep
        // int64 (the emitter's common case) and reserve uint64 for the
        // high range (e.g. 64-bit seeds).
        if (u <= static_cast<std::uint64_t>(
                     std::numeric_limits<std::int64_t>::max())) {
            *out = json_value(static_cast<std::int64_t>(u));
        } else {
            *out = json_value(u);
        }
        return true;
    }

    bool parse_value(json_value* out, std::string* error) {
        skip_ws();
        if (pos_ >= text_.size()) return fail(error, "unexpected end");
        const char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            *out = json_value::object();
            skip_ws();
            if (consume('}')) return true;
            while (true) {
                skip_ws();
                std::string key;
                if (!parse_string(&key, error)) return false;
                skip_ws();
                if (!consume(':')) return fail(error, "expected ':'");
                json_value child;
                if (!parse_value(&child, error)) return false;
                (*out)[key] = std::move(child);
                skip_ws();
                if (consume(',')) continue;
                if (consume('}')) return true;
                return fail(error, "expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos_;
            *out = json_value::array();
            skip_ws();
            if (consume(']')) return true;
            while (true) {
                json_value child;
                if (!parse_value(&child, error)) return false;
                out->push_back(std::move(child));
                skip_ws();
                if (consume(',')) continue;
                if (consume(']')) return true;
                return fail(error, "expected ',' or ']'");
            }
        }
        if (c == '"') {
            std::string s;
            if (!parse_string(&s, error)) return false;
            *out = json_value(std::string_view(s));
            return true;
        }
        if (literal("true")) {
            *out = json_value(true);
            return true;
        }
        if (literal("false")) {
            *out = json_value(false);
            return true;
        }
        if (literal("null")) {
            *out = json_value();
            return true;
        }
        return parse_number(out, error);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

}  // namespace

std::optional<json_value> json_value::parse(std::string_view text,
                                            std::string* error) {
    json_value out;
    parser p(text);
    if (!p.parse_document(&out, error)) return std::nullopt;
    return out;
}

const json_value* json_value::find(std::string_view key) const noexcept {
    if (kind_ != kind::object) return nullptr;
    for (std::size_t i = 0; i < keys_.size(); ++i) {
        if (keys_[i] == key) return &values_[i];
    }
    return nullptr;
}

double json_value::to_double() const noexcept {
    switch (kind_) {
        case kind::number: return number_;
        case kind::integer: return static_cast<double>(integer_);
        case kind::uinteger: return static_cast<double>(uinteger_);
        default: return 0.0;
    }
}

std::int64_t json_value::to_int64() const noexcept {
    switch (kind_) {
        case kind::number: return static_cast<std::int64_t>(number_);
        case kind::integer: return integer_;
        case kind::uinteger: return static_cast<std::int64_t>(uinteger_);
        default: return 0;
    }
}

json_value json_value::array() {
    json_value v;
    v.kind_ = kind::array;
    return v;
}

json_value json_value::object() {
    json_value v;
    v.kind_ = kind::object;
    return v;
}

void json_value::push_back(json_value v) {
    if (kind_ == kind::null) kind_ = kind::array;
    if (kind_ != kind::array) {
        throw std::logic_error("json_value::push_back on non-array");
    }
    elements_.push_back(std::move(v));
}

json_value& json_value::operator[](std::string_view key) {
    if (kind_ == kind::null) kind_ = kind::object;
    if (kind_ != kind::object) {
        throw std::logic_error("json_value::operator[] on non-object");
    }
    for (std::size_t i = 0; i < keys_.size(); ++i) {
        if (keys_[i] == key) return values_[i];
    }
    keys_.emplace_back(key);
    values_.emplace_back();
    return values_.back();
}

std::size_t json_value::size() const noexcept {
    if (kind_ == kind::array) return elements_.size();
    if (kind_ == kind::object) return keys_.size();
    return 0;
}

std::string json_value::escape(std::string_view s) {
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned>(c));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
    return out;
}

std::string json_value::dump(int indent) const {
    std::string out;
    dump_to(out, indent, 0);
    if (indent > 0) out += '\n';
    return out;
}

void json_value::dump_to(std::string& out, int indent, int depth) const {
    switch (kind_) {
        case kind::null: out += "null"; break;
        case kind::boolean: out += bool_ ? "true" : "false"; break;
        case kind::number: append_number(out, number_); break;
        case kind::integer: append_integer(out, integer_); break;
        case kind::uinteger: append_uinteger(out, uinteger_); break;
        case kind::string: out += escape(string_); break;
        case kind::array: {
            if (elements_.empty()) {
                out += "[]";
                break;
            }
            out += '[';
            for (std::size_t i = 0; i < elements_.size(); ++i) {
                if (i != 0) out += ',';
                append_indent(out, indent, depth + 1);
                elements_[i].dump_to(out, indent, depth + 1);
            }
            append_indent(out, indent, depth);
            out += ']';
            break;
        }
        case kind::object: {
            if (keys_.empty()) {
                out += "{}";
                break;
            }
            out += '{';
            for (std::size_t i = 0; i < keys_.size(); ++i) {
                if (i != 0) out += ',';
                append_indent(out, indent, depth + 1);
                out += escape(keys_[i]);
                out += indent > 0 ? ": " : ":";
                values_[i].dump_to(out, indent, depth + 1);
            }
            append_indent(out, indent, depth);
            out += '}';
            break;
        }
    }
}

}  // namespace csense::report
