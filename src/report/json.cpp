#include "src/report/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace csense::report {
namespace {

void append_number(std::string& out, double v) {
    if (!std::isfinite(v)) {
        // JSON has no Inf/NaN; emit null like most emitters do.
        out += "null";
        return;
    }
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    out.append(buf, res.ptr);
}

void append_integer(std::string& out, std::int64_t v) {
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    out.append(buf, res.ptr);
}

void append_uinteger(std::string& out, std::uint64_t v) {
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    out.append(buf, res.ptr);
}

void append_indent(std::string& out, int indent, int depth) {
    if (indent > 0) {
        out += '\n';
        out.append(static_cast<std::size_t>(indent) * depth, ' ');
    }
}

}  // namespace

json_value json_value::array() {
    json_value v;
    v.kind_ = kind::array;
    return v;
}

json_value json_value::object() {
    json_value v;
    v.kind_ = kind::object;
    return v;
}

void json_value::push_back(json_value v) {
    if (kind_ == kind::null) kind_ = kind::array;
    if (kind_ != kind::array) {
        throw std::logic_error("json_value::push_back on non-array");
    }
    elements_.push_back(std::move(v));
}

json_value& json_value::operator[](std::string_view key) {
    if (kind_ == kind::null) kind_ = kind::object;
    if (kind_ != kind::object) {
        throw std::logic_error("json_value::operator[] on non-object");
    }
    for (std::size_t i = 0; i < keys_.size(); ++i) {
        if (keys_[i] == key) return values_[i];
    }
    keys_.emplace_back(key);
    values_.emplace_back();
    return values_.back();
}

std::size_t json_value::size() const noexcept {
    if (kind_ == kind::array) return elements_.size();
    if (kind_ == kind::object) return keys_.size();
    return 0;
}

std::string json_value::escape(std::string_view s) {
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned>(c));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
    return out;
}

std::string json_value::dump(int indent) const {
    std::string out;
    dump_to(out, indent, 0);
    if (indent > 0) out += '\n';
    return out;
}

void json_value::dump_to(std::string& out, int indent, int depth) const {
    switch (kind_) {
        case kind::null: out += "null"; break;
        case kind::boolean: out += bool_ ? "true" : "false"; break;
        case kind::number: append_number(out, number_); break;
        case kind::integer: append_integer(out, integer_); break;
        case kind::uinteger: append_uinteger(out, uinteger_); break;
        case kind::string: out += escape(string_); break;
        case kind::array: {
            if (elements_.empty()) {
                out += "[]";
                break;
            }
            out += '[';
            for (std::size_t i = 0; i < elements_.size(); ++i) {
                if (i != 0) out += ',';
                append_indent(out, indent, depth + 1);
                elements_[i].dump_to(out, indent, depth + 1);
            }
            append_indent(out, indent, depth);
            out += ']';
            break;
        }
        case kind::object: {
            if (keys_.empty()) {
                out += "{}";
                break;
            }
            out += '{';
            for (std::size_t i = 0; i < keys_.size(); ++i) {
                if (i != 0) out += ',';
                append_indent(out, indent, depth + 1);
                out += escape(keys_[i]);
                out += indent > 0 ? ": " : ":";
                values_[i].dump_to(out, indent, depth + 1);
            }
            append_indent(out, indent, depth);
            out += '}';
            break;
        }
    }
}

}  // namespace csense::report
