// Minimal ordered JSON document builder for machine-readable bench and
// report output. Insertion order of object keys is preserved and numbers
// are rendered with shortest-round-trip formatting (std::to_chars), so a
// document built from the same values serialises to the same bytes on
// every run — a property the bench determinism test relies on.
//
// `json_value::parse` is the inverse: it reads any document this class
// emits back into an equivalent value, preserving key order and number
// kinds so that dump(parse(dump(v))) == dump(v) byte-for-byte. The
// checkpoint store uses this to splice previously-serialised scenario
// records into a resumed run's document without changing a byte.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace csense::report {

/// One JSON value: null, bool, number, string, array or object.
class json_value {
public:
    /// Constructs null.
    json_value() = default;
    json_value(bool b) : kind_(kind::boolean), bool_(b) {}
    json_value(double v) : kind_(kind::number), number_(v) {}
    json_value(int v) : kind_(kind::integer), integer_(v) {}
    json_value(std::int64_t v) : kind_(kind::integer), integer_(v) {}
    json_value(std::uint64_t v) : kind_(kind::uinteger), uinteger_(v) {}
    json_value(std::string_view s) : kind_(kind::string), string_(s) {}
    json_value(const char* s) : kind_(kind::string), string_(s) {}

    static json_value array();
    static json_value object();

    /// Parses one JSON document (the subset dump() emits: null, bool,
    /// number, string, array, object). Returns std::nullopt and fills
    /// `error` (when non-null) on malformed input or trailing garbage.
    /// Number kinds are chosen so re-serialisation is byte-stable:
    /// tokens with '.', 'e' or 'E' (and the literal "-0") become
    /// doubles, other tokens become (u)int64.
    static std::optional<json_value> parse(std::string_view text,
                                           std::string* error = nullptr);

    bool is_null() const noexcept { return kind_ == kind::null; }
    bool is_array() const noexcept { return kind_ == kind::array; }
    bool is_object() const noexcept { return kind_ == kind::object; }
    bool is_string() const noexcept { return kind_ == kind::string; }
    bool is_number() const noexcept {
        return kind_ == kind::number || kind_ == kind::integer ||
               kind_ == kind::uinteger;
    }

    /// Object member lookup without insertion; null for non-objects and
    /// missing keys.
    const json_value* find(std::string_view key) const noexcept;

    /// Array element access; requires is_array() and i < size().
    const json_value& at(std::size_t i) const { return elements_.at(i); }

    /// Object entry access in insertion order; requires is_object()
    /// and i < size().
    std::pair<const std::string&, const json_value&> entry(
        std::size_t i) const {
        return {keys_.at(i), values_.at(i)};
    }

    /// Numeric value widened to double (0.0 for non-numbers).
    double to_double() const noexcept;

    /// Numeric value narrowed to int64 (0 for non-numbers).
    std::int64_t to_int64() const noexcept;

    /// String payload ("" for non-strings).
    const std::string& to_string_value() const noexcept { return string_; }

    /// Appends to an array (a null value becomes an array first).
    void push_back(json_value v);

    /// Object lookup-or-insert, preserving insertion order (a null value
    /// becomes an object first). The returned reference stays valid
    /// across later inserts (children live in a std::deque).
    json_value& operator[](std::string_view key);

    /// Number of array elements or object entries.
    std::size_t size() const noexcept;

    /// Serialises the value. `indent` > 0 pretty-prints with that many
    /// spaces per level; 0 emits the compact single-line form.
    std::string dump(int indent = 2) const;

    /// Escapes `s` as a JSON string literal, including the quotes.
    static std::string escape(std::string_view s);

private:
    enum class kind {
        null, boolean, number, integer, uinteger, string, array, object
    };

    void dump_to(std::string& out, int indent, int depth) const;

    kind kind_ = kind::null;
    bool bool_ = false;
    double number_ = 0.0;
    std::int64_t integer_ = 0;
    std::uint64_t uinteger_ = 0;
    std::string string_;
    // deque, not vector: push_back must not invalidate references that
    // callers hold to earlier children.
    std::deque<json_value> elements_;       // array
    std::vector<std::string> keys_;         // object, parallel to values_
    std::deque<json_value> values_;
};

}  // namespace csense::report
