#include "src/report/table.hpp"

#include <cstdio>
#include <stdexcept>

namespace csense::report {

text_table::text_table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
    if (headers_.empty()) throw std::invalid_argument("text_table: no headers");
}

void text_table::add_row(std::vector<std::string> cells) {
    if (cells.size() != headers_.size()) {
        throw std::invalid_argument("text_table: row width mismatch");
    }
    rows_.push_back(std::move(cells));
}

std::string text_table::render() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
        for (const auto& row : rows_) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    std::string out;
    auto emit_row = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            out += cells[c];
            out.append(widths[c] - cells[c].size() + 2, ' ');
        }
        while (!out.empty() && out.back() == ' ') out.pop_back();
        out += '\n';
    };
    emit_row(headers_);
    std::size_t total = 0;
    for (auto w : widths) total += w + 2;
    out.append(total - 2, '-');
    out += '\n';
    for (const auto& row : rows_) emit_row(row);
    return out;
}

std::string fmt(double value, int precision) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
    return buffer;
}

std::string fmt_percent(double fraction, int precision) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f%%", precision, 100.0 * fraction);
    return buffer;
}

}  // namespace csense::report
