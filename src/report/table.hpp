// Fixed-width text tables for bench output: every bench binary prints the
// paper's rows in a form directly comparable with the thesis.
#pragma once

#include <string>
#include <vector>

namespace csense::report {

/// Simple column-aligned table builder.
class text_table {
public:
    explicit text_table(std::vector<std::string> headers);

    /// Append one row; must match the header count.
    void add_row(std::vector<std::string> cells);

    /// Render with column padding and a header underline.
    std::string render() const;

    std::size_t rows() const noexcept { return rows_.size(); }

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helpers for table cells.
std::string fmt(double value, int precision = 3);
std::string fmt_percent(double fraction, int precision = 0);

}  // namespace csense::report
