#include "src/serve/sweep_server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "src/report/json.hpp"
#include "src/store/run_keys.hpp"

namespace csense::serve {
namespace {

namespace report = csense::report;

std::optional<sweep_request> fail_parse(std::string* error,
                                        std::string why) {
    if (error != nullptr) *error = std::move(why);
    return std::nullopt;
}

}  // namespace

std::optional<sweep_request> parse_request(std::string_view line,
                                           std::string* error) {
    std::string parse_error;
    const auto doc = report::json_value::parse(line, &parse_error);
    if (!doc) return fail_parse(error, "malformed JSON: " + parse_error);
    if (!doc->is_object()) {
        return fail_parse(error, "request must be a JSON object");
    }
    const report::json_value* op = doc->find("op");
    if (op == nullptr || !op->is_string()) {
        return fail_parse(error, "missing string field 'op'");
    }
    sweep_request request;
    const std::string& op_name = op->to_string_value();
    if (op_name == "stats") {
        request.kind = sweep_request::op::stats;
        return request;
    }
    if (op_name == "shutdown") {
        request.kind = sweep_request::op::shutdown;
        return request;
    }
    if (op_name != "query") {
        return fail_parse(error, "unknown op '" + op_name +
                                     "' (want query/stats/shutdown)");
    }
    request.kind = sweep_request::op::query;
    const report::json_value* scenario = doc->find("scenario");
    if (scenario == nullptr || !scenario->is_string() ||
        scenario->to_string_value().empty()) {
        return fail_parse(error, "query needs a non-empty 'scenario'");
    }
    request.scenario = scenario->to_string_value();
    if (const report::json_value* seed = doc->find("seed");
        seed != nullptr) {
        if (!seed->is_number()) {
            return fail_parse(error, "'seed' must be a number");
        }
        request.seed = static_cast<std::uint64_t>(seed->to_int64());
    }
    if (const report::json_value* env = doc->find("env"); env != nullptr) {
        if (!env->is_object()) {
            return fail_parse(error, "'env' must be an object");
        }
        for (std::size_t i = 0; i < env->size(); ++i) {
            const auto& [name, value] = env->entry(i);
            if (name.rfind("CSENSE_", 0) != 0) {
                return fail_parse(error,
                                  "env key '" + name +
                                      "' is outside the CSENSE_* namespace");
            }
            if (name == "CSENSE_THREADS") {
                return fail_parse(
                    error,
                    "CSENSE_THREADS cannot key a query (results are "
                    "thread-count invariant)");
            }
            if (!value.is_string()) {
                return fail_parse(error, "env value for '" + name +
                                             "' must be a string");
            }
            if (value.to_string_value().find(';') != std::string::npos) {
                return fail_parse(error, "env value for '" + name +
                                             "' must not contain ';'");
            }
            request.env.emplace_back(name, value.to_string_value());
        }
    }
    std::sort(request.env.begin(), request.env.end());
    for (std::size_t i = 1; i < request.env.size(); ++i) {
        if (request.env[i - 1].first == request.env[i].first) {
            return fail_parse(error, "duplicate env key '" +
                                         request.env[i].first + "'");
        }
    }
    return request;
}

std::string query_record_key(const sweep_request& request) {
    std::vector<std::string> entries;
    entries.reserve(request.env.size());
    for (const auto& [name, value] : request.env) {
        entries.push_back(name + "=" + value);
    }
    const std::string env_fp =
        store::env_fingerprint_from_entries(std::move(entries));
    const std::string unit_fp = store::scenario_unit_fingerprint(
        request.scenario, request.seed, env_fp);
    // The byte-stable form every cached run converges on: one
    // repetition, no wall-clock fields.
    return store::scenario_record_key(unit_fp, /*repeat=*/1,
                                      /*timings=*/false);
}

struct sweep_server::inflight_job {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    bool ok = false;
};

sweep_server::sweep_server(config cfg)
    : config_(std::move(cfg)),
      store_(config_.store_root, std::string(store::kBenchStoreSchema)) {}

std::string sweep_server::error_response(std::string_view reason) {
    {
        std::scoped_lock lock(mutex_);
        ++counters_.errors;
    }
    report::json_value response = report::json_value::object();
    response["ok"] = false;
    response["error"] = reason;
    return response.dump(0);
}

std::string sweep_server::handle_line(std::string_view line) {
    std::string parse_error;
    const auto request = parse_request(line, &parse_error);
    if (!request) return error_response(parse_error);

    if (request->kind == sweep_request::op::stats) {
        const counters c = stats();
        report::json_value response = report::json_value::object();
        response["ok"] = true;
        response["hits"] = c.hits;
        response["misses"] = c.misses;
        response["jobs_started"] = c.jobs_started;
        response["coalesced"] = c.coalesced;
        response["errors"] = c.errors;
        return response.dump(0);
    }
    if (request->kind == sweep_request::op::shutdown) {
        {
            std::scoped_lock lock(mutex_);
            shutdown_ = true;
        }
        report::json_value response = report::json_value::object();
        response["ok"] = true;
        response["status"] = "shutting_down";
        return response.dump(0);
    }
    if (!config_.scenario_known || !config_.scenario_known(
                                       request->scenario)) {
        return error_response("unknown scenario '" + request->scenario +
                              "'");
    }
    return handle_query(*request);
}

std::string sweep_server::handle_query(const sweep_request& request) {
    const std::string key = query_record_key(request);
    const auto respond = [&](std::string_view payload,
                             std::string_view status) -> std::string {
        std::string record_error;
        auto record = report::json_value::parse(payload, &record_error);
        if (!record) {
            return error_response("stored record for key '" + key +
                                  "' is unparseable: " + record_error);
        }
        report::json_value response = report::json_value::object();
        response["ok"] = true;
        response["status"] = status;
        response["key"] = std::string_view(key);
        response["result"] = std::move(*record);
        return response.dump(0);
    };

    if (const auto payload = store_.load(key)) {
        std::scoped_lock lock(mutex_);
        ++counters_.hits;
        return respond(*payload, "hit");
    }

    // Miss: one job per key, everyone else queues behind it.
    std::shared_ptr<inflight_job> job;
    bool owner = false;
    {
        std::scoped_lock lock(mutex_);
        ++counters_.misses;
        auto it = inflight_.find(key);
        if (it != inflight_.end()) {
            job = it->second;
            ++counters_.coalesced;
        } else {
            job = std::make_shared<inflight_job>();
            inflight_.emplace(key, job);
            owner = true;
            ++counters_.jobs_started;
        }
    }
    if (owner) {
        bool ok = false;
        if (config_.runner) ok = config_.runner(request, key);
        {
            std::scoped_lock job_lock(job->mutex);
            job->done = true;
            job->ok = ok;
        }
        job->cv.notify_all();
        std::scoped_lock lock(mutex_);
        inflight_.erase(key);
    } else {
        std::unique_lock job_lock(job->mutex);
        job->cv.wait(job_lock, [&] { return job->done; });
    }
    // Success is defined by the store, not the runner's word: the
    // record must actually be loadable now.
    if (const auto payload = store_.load(key)) {
        return respond(*payload, "computed");
    }
    return error_response("job for key '" + key +
                          "' did not produce a record");
}

bool sweep_server::shutdown_requested() const {
    std::scoped_lock lock(mutex_);
    return shutdown_;
}

sweep_server::counters sweep_server::stats() const {
    std::scoped_lock lock(mutex_);
    return counters_;
}

int serve_unix_socket(sweep_server& server,
                      const std::filesystem::path& socket_path) {
    const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd < 0) {
        std::fprintf(stderr, "csense_sweep_serve: socket failed (errno "
                             "%d)\n", errno);
        return 1;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    const std::string path = socket_path.string();
    if (path.size() >= sizeof(addr.sun_path)) {
        std::fprintf(stderr, "csense_sweep_serve: socket path too long: "
                             "%s\n", path.c_str());
        ::close(listen_fd);
        return 1;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    ::unlink(path.c_str());  // a stale socket from a previous run
    if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd, 16) != 0) {
        std::fprintf(stderr, "csense_sweep_serve: cannot listen on %s "
                             "(errno %d)\n", path.c_str(), errno);
        ::close(listen_fd);
        return 1;
    }
    std::printf("csense_sweep_serve: listening on %s\n", path.c_str());
    std::fflush(stdout);

    std::vector<std::thread> connections;
    for (;;) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR) continue;
            // The shutdown handler shut the listening socket down to
            // wake this accept; anything else is a real error.
            if (server.shutdown_requested()) break;
            std::fprintf(stderr, "csense_sweep_serve: accept failed "
                                 "(errno %d)\n", errno);
            break;
        }
        connections.emplace_back([fd, listen_fd, &server] {
            std::string buffer;
            char chunk[4096];
            for (;;) {
                const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
                if (n <= 0) break;
                buffer.append(chunk, static_cast<std::size_t>(n));
                std::size_t eol;
                while ((eol = buffer.find('\n')) != std::string::npos) {
                    const std::string line = buffer.substr(0, eol);
                    buffer.erase(0, eol + 1);
                    if (line.empty()) continue;
                    std::string response = server.handle_line(line);
                    response += '\n';
                    std::size_t sent = 0;
                    while (sent < response.size()) {
                        const ssize_t w = ::send(
                            fd, response.data() + sent,
                            response.size() - sent, MSG_NOSIGNAL);
                        if (w <= 0) break;
                        sent += static_cast<std::size_t>(w);
                    }
                    if (server.shutdown_requested()) {
                        // Wake the accept loop; remaining buffered
                        // lines on this connection are dropped.
                        ::shutdown(listen_fd, SHUT_RDWR);
                        ::close(fd);
                        return;
                    }
                }
            }
            ::close(fd);
        });
    }
    for (auto& connection : connections) connection.join();
    ::close(listen_fd);
    ::unlink(path.c_str());
    return server.shutdown_requested() ? 0 : 1;
}

}  // namespace csense::serve
