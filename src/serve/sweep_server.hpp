// The sweep server: campaigns as a queryable service.
//
// A long-running csense_sweep_serve process owns one checkpoint store
// and answers parameter-sweep queries — "scenario X at seed S under
// CSENSE_* knobs E" — over a line-delimited JSON protocol on a local
// unix socket. The cache key is the store's existing scenario record
// key (run_keys.hpp): a cell that any past run (batch, sharded+merged,
// or a previous query) checkpointed is served straight from the store;
// a missing cell is computed once by a scheduled job and then served.
// Concurrent identical queries coalesce onto one in-flight job.
//
// Protocol (one JSON document per line, response per request line):
//
//   {"op":"query","scenario":"<name>","seed":<n>,"env":{"K":"V",...}}
//     -> {"ok":true,"status":"hit"|"computed","key":"<record key>",
//         "result":<the scenario's checkpoint record>}
//     -> {"ok":false,"error":"<reason>"}       (unknown scenario,
//         malformed env, job failure, ...)
//   {"op":"stats"}
//     -> {"ok":true,"hits":n,"misses":n,"jobs_started":n,
//         "coalesced":n,"errors":n}
//   {"op":"shutdown"}
//     -> {"ok":true,"status":"shutting_down"}
//
// `env` carries only CSENSE_* knobs (CSENSE_THREADS excluded — output
// is thread-count invariant); anything else is a structured error, not
// a cache miss, so a typo can never silently query the wrong cell.
//
// The class is transport-free and takes the job runner by injection:
// protocol tests drive handle_line() directly with a scripted runner,
// while csense_sweep_serve wires in subprocess jobs and the socket
// loop (serve_unix_socket).
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/store/result_store.hpp"

namespace csense::serve {

/// One parsed request line.
struct sweep_request {
    enum class op { query, stats, shutdown };
    op kind = op::query;
    std::string scenario;
    std::uint64_t seed = 7;  ///< csense_bench's default --seed
    /// Requested CSENSE_* knobs as sorted (name, value) pairs.
    std::vector<std::pair<std::string, std::string>> env;
};

/// Parses one protocol line. nullopt (and a reason in `error` when
/// non-null) on malformed JSON, an unknown op, or an env map that
/// steps outside the CSENSE_* namespace.
std::optional<sweep_request> parse_request(std::string_view line,
                                           std::string* error = nullptr);

/// The store record key a query resolves to (scenario record at
/// repeat=1 without timings — the byte-stable form).
std::string query_record_key(const sweep_request& request);

class sweep_server {
public:
    struct config {
        /// Root of the checkpoint store the server owns.
        std::filesystem::path store_root;
        /// Name check for queried scenarios (wire the bench registry
        /// in; reject-all when empty).
        std::function<bool(const std::string& name)> scenario_known;
        /// Computes one missing cell: run the scenario so its record
        /// lands in the store under `key`. Returns false on job
        /// failure. Runs outside the server lock; several distinct
        /// keys may compute concurrently, one job per key.
        std::function<bool(const sweep_request& request,
                           const std::string& key)>
            runner;
    };

    /// Throws std::runtime_error when the store cannot be opened.
    explicit sweep_server(config cfg);

    /// Handles one request line and returns the response line (no
    /// trailing newline). Blocks while a job for the queried key is in
    /// flight (its own or a coalesced one). Safe to call from many
    /// connection threads concurrently.
    std::string handle_line(std::string_view line);

    /// True once a shutdown request was handled.
    bool shutdown_requested() const;

    struct counters {
        std::uint64_t hits = 0;          ///< served from the store
        std::uint64_t misses = 0;        ///< required a job
        std::uint64_t jobs_started = 0;  ///< runner invocations
        std::uint64_t coalesced = 0;     ///< waited on another's job
        std::uint64_t errors = 0;        ///< error responses sent
    };
    counters stats() const;

private:
    struct inflight_job;

    std::string handle_query(const sweep_request& request);
    std::string error_response(std::string_view reason);

    config config_;
    store::result_store store_;
    mutable std::mutex mutex_;
    std::map<std::string, std::shared_ptr<inflight_job>> inflight_;
    counters counters_;
    bool shutdown_ = false;
};

/// Binds a unix stream socket at `socket_path` (unlinking a stale
/// one), then accepts connections and feeds each line through
/// `server.handle_line` until a shutdown request arrives. One thread
/// per connection: a query blocked on a long job never stalls other
/// clients. Returns 0 on clean shutdown, nonzero on socket errors.
int serve_unix_socket(sweep_server& server,
                      const std::filesystem::path& socket_path);

}  // namespace csense::serve
