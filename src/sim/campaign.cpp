#include "src/sim/campaign.hpp"

#include <stdexcept>

#include "src/core/parallel.hpp"

namespace csense::sim {

void campaign_options::validate() const {
    if (shard_size == 0) {
        throw std::invalid_argument("campaign_options: shard_size == 0");
    }
    if (threads < 0) {
        throw std::invalid_argument("campaign_options: negative threads");
    }
}

std::size_t campaign_shard_count(const campaign_options& options) {
    options.validate();
    return (options.replications + options.shard_size - 1) /
           options.shard_size;
}

void for_each_shard(
    const campaign_options& options,
    const std::function<void(std::size_t, std::size_t)>& shard_body) {
    options.validate();
    if (options.replications == 0) return;
    core::parallel_for(options.threads, options.replications,
                       options.shard_size, shard_body);
}

}  // namespace csense::sim
