#include "src/sim/campaign.hpp"

#include <stdexcept>

#include "src/core/parallel.hpp"

namespace csense::sim {

void campaign_options::validate() const {
    if (shard_size == 0) {
        throw std::invalid_argument("campaign_options: shard_size == 0");
    }
    if (threads < 0) {
        throw std::invalid_argument("campaign_options: negative threads");
    }
    if (process_shards < 1) {
        throw std::invalid_argument("campaign_options: process_shards < 1");
    }
    if (process_shard < 0 || process_shard >= process_shards) {
        throw std::invalid_argument(
            "campaign_options: process_shard outside [0, process_shards)");
    }
}

namespace detail {
void require_unsharded(const campaign_options& options, const char* what) {
    options.validate();
    if (options.process_shards > 1) {
        throw std::logic_error(
            std::string(what) +
            ": process_shards > 1 requires a checkpoint store "
            "(use run_replications_checkpointed)");
    }
}
}  // namespace detail

std::size_t campaign_shard_count(const campaign_options& options) {
    options.validate();
    return (options.replications + options.shard_size - 1) /
           options.shard_size;
}

void for_each_shard(
    const campaign_options& options,
    const std::function<void(std::size_t, std::size_t)>& shard_body) {
    options.validate();
    if (options.replications == 0) return;
    core::parallel_for(options.threads, options.replications,
                       options.shard_size, shard_body);
}

}  // namespace csense::sim
