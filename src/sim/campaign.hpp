// Deterministic Monte-Carlo campaign layer: shard independent
// replications (seed x topology x config) of a simulation or sampling
// kernel across the process-wide thread pool (src/core/parallel.hpp).
//
// The determinism contract mirrors the expectation engine's:
//  - every replication draws from its own split RNG stream, derived only
//    from (campaign seed, replication index) - never from execution
//    order;
//  - work is split into shards whose boundaries depend only on
//    (replications, shard_size), never on the thread count;
//  - per-replication results are placed by index, and shard partials are
//    merged in shard-index order on the calling thread.
//
// Consequently `run_replications` is bit-identical to a serial loop for
// every `threads` value, and `accumulate_replications` is bit-identical
// across thread counts (its shard-partial grouping differs from a plain
// serial fold only in floating-point association, which is fixed by the
// shard structure, not by the worker count).
//
// Replication callables run concurrently on pool workers: they must not
// touch shared mutable state beyond their own index's slot. Building a
// fresh simulator/network per replication (the intended pattern) is safe.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/stats/rng.hpp"
#include "src/store/result_store.hpp"

namespace csense::sim {

/// Identity of one checkpointed campaign: the store prefix its
/// replication records live under and the coverage promise
/// ("<prefix>/rep<0..replications-1>" exist, sharded on fixed
/// `shard_size` boundaries). Reported through
/// campaign_options::unit_sink so a multi-process driver can write a
/// shard manifest and a merge tool can verify coverage.
struct campaign_unit {
    std::string prefix;
    std::size_t replications = 0;
    std::size_t shard_size = 1;
};

/// Execution knobs for one campaign.
struct campaign_options {
    /// Independent replications to run.
    std::size_t replications = 0;

    /// Replications per shard (one shard = one scheduled task). Shard
    /// boundaries depend only on (replications, shard_size), so results
    /// are placed identically for every worker count. Pick it so one
    /// shard is coarse enough to amortize scheduling (a packet-level
    /// simulation run: 1; a cheap analytic sample: hundreds).
    std::size_t shard_size = 1;

    /// Worker threads; 0 = auto (CSENSE_THREADS env, else hardware
    /// concurrency). Purely a wall-clock knob: output never depends on it.
    int threads = 0;

    /// Base seed. Replication i draws from stats::rng(seed).split(i).
    std::uint64_t seed = 42;

    /// Multi-process partition: this process computes only the campaign
    /// shards it owns — shard j (= begin / shard_size) belongs to
    /// process i when j % process_shards == i. The partition reuses the
    /// fixed shard boundaries, so k processes cover [0, replications)
    /// disjointly and their checkpoint stores merge in index order.
    /// Only run_replications_checkpointed honors these: a process shard
    /// without a store would discard its slice, so the plain drivers
    /// throw when process_shards > 1.
    int process_shards = 1;
    int process_shard = 0;

    /// When set, run_replications_checkpointed reports the campaign's
    /// identity (prefix, replications, shard_size) here before running,
    /// so the driver can record a coverage manifest.
    std::function<void(const campaign_unit&)> unit_sink;

    /// Throws std::invalid_argument on nonsensical options.
    void validate() const;
};

namespace detail {
/// Throws std::logic_error when `options` asks for a multi-process
/// partition: `what` (the calling driver) has no checkpoint store, so
/// the non-owned slice would be silently dropped.
void require_unsharded(const campaign_options& options, const char* what);
}  // namespace detail

/// Number of shards the options partition the replications into.
std::size_t campaign_shard_count(const campaign_options& options);

/// Run `shard_body(begin, end)` over every shard of [0, replications),
/// sharded across the thread pool. The non-template driver behind the
/// templates below; exposed for callers that manage their own storage.
void for_each_shard(
    const campaign_options& options,
    const std::function<void(std::size_t, std::size_t)>& shard_body);

/// Run every replication and return its result by index. `replicate`
/// receives (replication index, that replication's own RNG stream).
/// Bit-identical to the serial loop for every thread count.
template <typename T, typename Replicate>
std::vector<T> run_replications(const campaign_options& options,
                                Replicate&& replicate) {
    // std::vector<bool> packs bits: concurrent per-index writes from
    // different shards would race on shared bytes. Wrap bool results in
    // a struct (or use char) instead.
    static_assert(!std::is_same_v<T, bool>,
                  "run_replications<bool> would race on vector<bool> bits");
    detail::require_unsharded(options, "run_replications");
    std::vector<T> results(options.replications);
    const stats::rng base(options.seed);
    for_each_shard(options, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
            stats::rng gen = base.split(static_cast<std::uint64_t>(i));
            results[i] = replicate(i, gen);
        }
    });
    return results;
}

/// run_replications with a per-replication checkpoint: when `checkpoint`
/// is non-null, replication i first tries to load
/// `<key_prefix>/rep<i>` from the store and `decode` it; on a hit the
/// replication is skipped, on a miss (or decode failure — a stale or
/// foreign payload) it is computed as usual and the `encode`d result is
/// stored before the call returns. Because every replication is
/// deterministic in (seed, index), a run killed mid-campaign and
/// restarted over the same store returns a vector bit-identical to an
/// uninterrupted run: `encode`/`decode` MUST round-trip exactly (see
/// store::encode_doubles). Replications shard across the pool, so the
/// store sees concurrent traffic on distinct keys only. `encode` maps
/// const T& -> std::string; `decode` maps (std::string_view, T&) ->
/// bool.
///
/// Under a multi-process partition (options.process_shards > 1) only
/// the shards this process owns are loaded/computed/stored; the
/// returned vector holds default-constructed values at every non-owned
/// index and MUST NOT feed metrics or gates — the merged store, not
/// this process's vector, is the campaign's result.
template <typename T, typename Replicate, typename Encode, typename Decode>
std::vector<T> run_replications_checkpointed(const campaign_options& options,
                                             store::result_store* checkpoint,
                                             std::string_view key_prefix,
                                             Replicate&& replicate,
                                             Encode&& encode,
                                             Decode&& decode) {
    static_assert(!std::is_same_v<T, bool>,
                  "run_replications<bool> would race on vector<bool> bits");
    if (checkpoint == nullptr) {
        return run_replications<T>(options,
                                   std::forward<Replicate>(replicate));
    }
    options.validate();
    if (options.unit_sink) {
        options.unit_sink(campaign_unit{std::string(key_prefix),
                                        options.replications,
                                        options.shard_size});
    }
    std::vector<T> results(options.replications);
    const stats::rng base(options.seed);
    for_each_shard(options, [&](std::size_t begin, std::size_t end) {
        // Multi-process partition: skip shards another process owns.
        if (options.process_shards > 1 &&
            static_cast<int>((begin / options.shard_size) %
                             static_cast<std::size_t>(
                                 options.process_shards)) !=
                options.process_shard) {
            return;
        }
        for (std::size_t i = begin; i < end; ++i) {
            const std::string key =
                std::string(key_prefix) + "/rep" + std::to_string(i);
            if (const auto payload = checkpoint->load(key);
                payload && decode(std::string_view(*payload), results[i])) {
                continue;
            }
            stats::rng gen = base.split(static_cast<std::uint64_t>(i));
            results[i] = replicate(i, gen);
            checkpoint->put(key, encode(results[i]));
        }
    });
    return results;
}

/// Fold every replication into an accumulator without materializing
/// per-replication results: each shard folds its own copy of `identity`
/// in index order, then shard partials merge into a final copy in
/// shard-index order on the calling thread. Thread-count invariant.
/// `identity` MUST be the fold's identity element (0.0, an empty
/// vector, ...): every shard starts from its own copy, so a non-identity
/// starting value would be counted once per shard.
/// `accumulate(acc, index, gen)` mutates the shard accumulator;
/// `merge(total, partial)` folds one shard partial into the total.
template <typename Acc, typename Accumulate, typename Merge>
Acc accumulate_replications(const campaign_options& options, Acc identity,
                            Accumulate&& accumulate, Merge&& merge) {
    detail::require_unsharded(options, "accumulate_replications");
    const std::size_t shards = campaign_shard_count(options);
    std::vector<Acc> partials(shards, identity);
    const stats::rng base(options.seed);
    for_each_shard(options, [&](std::size_t begin, std::size_t end) {
        Acc& acc = partials[begin / options.shard_size];
        for (std::size_t i = begin; i < end; ++i) {
            stats::rng gen = base.split(static_cast<std::uint64_t>(i));
            accumulate(acc, i, gen);
        }
    });
    Acc total = std::move(identity);
    for (auto& partial : partials) merge(total, std::move(partial));
    return total;
}

}  // namespace csense::sim
