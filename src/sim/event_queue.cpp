#include "src/sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace csense::sim {

event_id event_queue::schedule(time_us at, std::function<void()> action) {
    const event_id id = actions_.size();
    actions_.push_back(std::move(action));
    cancelled_.push_back(false);
    heap_.push(entry{at, next_sequence_++, id});
    ++pending_;
    return id;
}

bool event_queue::cancel(event_id id) {
    if (id >= cancelled_.size() || cancelled_[id] || !actions_[id]) {
        return false;
    }
    cancelled_[id] = true;
    actions_[id] = nullptr;  // release captured state eagerly
    --pending_;
    return true;
}

void event_queue::drop_cancelled() {
    while (!heap_.empty() && cancelled_[heap_.top().id]) {
        heap_.pop();
    }
}

bool event_queue::empty() const noexcept { return pending_ == 0; }

time_us event_queue::next_time() const {
    auto* self = const_cast<event_queue*>(this);
    self->drop_cancelled();
    if (heap_.empty()) throw std::logic_error("event_queue::next_time: empty");
    return heap_.top().at;
}

time_us event_queue::run_next() {
    auto [at, action] = pop_next();
    action();
    return at;
}

std::pair<time_us, std::function<void()>> event_queue::pop_next() {
    drop_cancelled();
    if (heap_.empty()) throw std::logic_error("event_queue::pop_next: empty");
    const entry top = heap_.top();
    heap_.pop();
    --pending_;
    auto action = std::move(actions_[top.id]);
    actions_[top.id] = nullptr;
    cancelled_[top.id] = true;
    return {top.at, std::move(action)};
}

}  // namespace csense::sim
