#include "src/sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <stdexcept>

namespace csense::sim {

namespace {

/// settle() bound meaning "no bound": larger than any clamped tick.
constexpr std::uint64_t kUnboundedTick = ~std::uint64_t{0};

}  // namespace

std::optional<queue_backend> forced_queue_backend() noexcept {
    // Read once: the env knob is a wall-clock A/B switch (both backends
    // are byte-identical in output), not per-queue state.
    static const std::optional<queue_backend> forced =
        []() -> std::optional<queue_backend> {
        const char* env = std::getenv("CSENSE_QUEUE_BACKEND");
        if (env == nullptr) return std::nullopt;
        if (std::strcmp(env, "heap") == 0) return queue_backend::heap;
        if (std::strcmp(env, "calendar") == 0) return queue_backend::calendar;
        return std::nullopt;
    }();
    return forced;
}

const event_queue_config& default_queue_config() noexcept {
    static const event_queue_config config = [] {
        event_queue_config c;
        c.backend = forced_queue_backend().value_or(queue_backend::calendar);
        return c;
    }();
    return config;
}

event_queue::event_queue(const event_queue_config& config) {
    reconfigure(config);
}

bool event_queue::reconfigure(const event_queue_config& config) {
    if (pending_ != 0 || heap_size() != 0) return false;
    backend_ = config.backend;
    bucket_width_ = config.bucket_width_us;
    current_tick_ = 0;
    wheel_hint_ = 0;
    if (backend_ == queue_backend::calendar) {
        if (!(bucket_width_ > 0.0)) bucket_width_ = 9.0;
        inv_bucket_width_ = 1.0 / bucket_width_;
        std::uint32_t count = std::max<std::uint32_t>(config.bucket_count, 64);
        count = std::bit_ceil(count);
        bucket_mask_ = count - 1;
        bucket_head_.assign(count, kNil);
        occupied_.assign(count / 64, 0);
    } else {
        inv_bucket_width_ = 0.0;
        bucket_mask_ = 0;
        bucket_head_.clear();
        occupied_.clear();
    }
    return true;
}

std::uint64_t event_queue::tick_of(time_us at) const noexcept {
    if (!(at > 0.0)) return 0;  // negative (and NaN) times order via near_
    // Multiply by the precomputed reciprocal: tick_of runs several
    // times per event and a divide costs ~10x a multiply. Rounding may
    // shift a boundary value by one tick relative to true division -
    // harmless, because pop order only needs tick_of to be monotone in
    // `at` (any monotone bucketing is; the near heap re-sorts by exact
    // time) and deterministic, which a fixed reciprocal is.
    const double quotient = at * inv_bucket_width_;
    // Clamp before the double -> integer cast: 4e18 < 2^62, so the
    // clamped tick still compares correctly against every real tick and
    // current_tick_ + bucket_count cannot overflow.
    constexpr double kMaxTick = 4.0e18;
    if (quotient >= kMaxTick) return static_cast<std::uint64_t>(kMaxTick);
    return static_cast<std::uint64_t>(quotient);
}

void event_queue::place(entry e) {
    // Precondition: e is live (its generation matches its slot), so
    // updating the slot's location tag here is always correct.
    const std::uint64_t tick = tick_of(e.at);
    if (tick <= current_tick_) {
        near_.push_back(e);
        std::push_heap(near_.begin(), near_.end(), std::greater<>{});
        slots_[e.slot].location = entry_loc::near_heap;
        return;
    }
    if (tick - current_tick_ <= bucket_mask_) {
        const auto b = static_cast<std::uint32_t>(tick & bucket_mask_);
        const std::uint32_t head = bucket_head_[b];
        wheel_node_[e.slot] = wheel_node{e.at, e.sequence, head, kNil};
        if (head != kNil) wheel_node_[head].prev = e.slot;
        bucket_head_[b] = e.slot;
        occupied_[b >> 6] |= std::uint64_t{1} << (b & 63);
        ++wheel_count_;
        slots_[e.slot].location = entry_loc::wheel;
        if (tick < wheel_hint_) wheel_hint_ = tick;
        return;
    }
    far_.push_back(e);
    std::push_heap(far_.begin(), far_.end(), std::greater<>{});
    slots_[e.slot].location = entry_loc::far_heap;
}

event_id event_queue::schedule(time_us at, inline_action action) {
    std::uint32_t index;
    if (!free_slots_.empty()) {
        index = free_slots_.back();
        free_slots_.pop_back();
    } else {
        index = static_cast<std::uint32_t>(slots_.size());
        slots_.emplace_back();
    }
    slots_[index].action = std::move(action);
    const std::uint32_t generation = slots_[index].generation;
    const entry e{at, next_sequence_++, index, generation};
    if (backend_ == queue_backend::heap) {
        heap_.push_back(e);
        std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
    } else {
        // Per-slot wheel storage grows only at the slot high-water mark.
        if (wheel_node_.size() < slots_.size()) {
            wheel_node_.resize(slots_.size());
        }
        place(e);
    }
    ++pending_;
    return make_id(index, generation);
}

void event_queue::release_slot(std::uint32_t index) {
    slots_[index].action.reset();  // release captured state eagerly
    ++slots_[index].generation;
    slots_[index].location = entry_loc::none;
    free_slots_.push_back(index);
}

bool event_queue::cancel(event_id id) {
    const auto index = static_cast<std::uint32_t>(id & 0xffffffffULL);
    const auto generation = static_cast<std::uint32_t>(id >> 32);
    if (index >= slots_.size() || slots_[index].generation != generation ||
        !slots_[index].action) {
        return false;
    }
    if (backend_ == queue_backend::calendar &&
        slots_[index].location == entry_loc::wheel) {
        // In-wheel entries unlink eagerly: O(bucket occupancy), which at
        // slot granularity is a handful of entries, and the wheel stays
        // free of stale entries (its slot storage is reused on the next
        // schedule of the same slot, so lazy dropping is not an option).
        unlink_wheel(index);
        release_slot(index);
        --pending_;
        return true;
    }
    release_slot(index);
    --pending_;
    ++stale_count_;  // its heap entry lingers until dropped or compacted
    maybe_compact();
    return true;
}

void event_queue::unlink_wheel(std::uint32_t index) {
    const wheel_node& node = wheel_node_[index];
    const std::uint32_t prev = node.prev;
    const std::uint32_t next = node.next;
    if (next != kNil) wheel_node_[next].prev = prev;
    if (prev != kNil) {
        wheel_node_[prev].next = next;
    } else {
        const std::uint64_t tick = tick_of(node.at);
        const auto b = static_cast<std::uint32_t>(tick & bucket_mask_);
        bucket_head_[b] = next;
        if (next == kNil) {
            occupied_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
        }
    }
    --wheel_count_;
}

bool event_queue::advance_wheel(std::uint64_t limit_tick) {
    // Nothing occupied at or before the limit: reject without scanning.
    if (wheel_hint_ > limit_tick) return false;
    // Find the first occupied bucket in circular order after the
    // current one (which is empty by the wheel invariant), 64 buckets
    // per bitmap word.
    const auto cur_pos = static_cast<std::uint32_t>(current_tick_ & bucket_mask_);
    const std::uint32_t start = (cur_pos + 1) & bucket_mask_;
    const auto words = static_cast<std::uint32_t>(occupied_.size());
    std::uint32_t found;
    const std::uint32_t start_word = start >> 6;
    const std::uint64_t first =
        occupied_[start_word] >> (start & 63);
    if (first != 0) {
        found = start + static_cast<std::uint32_t>(std::countr_zero(first));
    } else {
        found = 0;
        for (std::uint32_t step = 1;; ++step) {
            const std::uint32_t w = (start_word + step) & (words - 1);
            if (occupied_[w] != 0) {
                found = (w << 6) +
                        static_cast<std::uint32_t>(std::countr_zero(occupied_[w]));
                break;
            }
        }
    }
    // All entries in the found bucket share one tick; recover it from
    // the circular distance.
    const std::uint32_t delta = (found - cur_pos) & bucket_mask_;
    if (current_tick_ + delta > limit_tick) {
        // The scan found the exact earliest occupied tick; remember it
        // so repeated bounded pops before that event skip the scan.
        wheel_hint_ = current_tick_ + delta;
        return false;
    }
    current_tick_ += delta;
    wheel_hint_ = current_tick_;  // drained below; next minimum unknown
    std::uint32_t s = bucket_head_[found];
    std::size_t drained = 0;
    while (s != kNil) {
        const wheel_node& node = wheel_node_[s];
        // In-wheel entries are never stale (cancel unlinks eagerly), so
        // the slot's current generation is the entry's.
        near_.push_back(entry{node.at, node.sequence, s, slots_[s].generation});
        std::push_heap(near_.begin(), near_.end(), std::greater<>{});
        slots_[s].location = entry_loc::near_heap;
        ++drained;
        s = node.next;
    }
    bucket_head_[found] = kNil;
    wheel_count_ -= drained;
    occupied_[found >> 6] &= ~(std::uint64_t{1} << (found & 63));
    return true;
}

void event_queue::rebase(std::uint64_t tick) {
    current_tick_ = tick;
    wheel_hint_ = tick;
    rebase_scratch_.swap(far_);  // far_ becomes the (empty) scratch
    for (const entry& e : rebase_scratch_) {
        // Stale entries must be dropped here, not re-placed: their slot
        // may already carry a newer event, and place() would clobber its
        // wheel storage and location tag.
        if (stale(e)) {
            --stale_count_;
            continue;
        }
        place(e);
    }
    rebase_scratch_.clear();
}

void event_queue::settle(std::uint64_t limit_tick) {
    for (;;) {
        // Pull overflow entries the advancing horizon has reached. Every
        // far_ entry is later than every wheel entry (tick >= current +
        // buckets > any wheel tick), so migrating before the wheel
        // drains preserves pop order; skipping this would strand an
        // overflow event once current_tick_ moves past it.
        const std::uint64_t horizon = current_tick_ + bucket_mask_ + 1;
        while (!far_.empty()) {
            if (stale(far_.front())) {
                std::pop_heap(far_.begin(), far_.end(), std::greater<>{});
                far_.pop_back();
                --stale_count_;
                continue;
            }
            if (tick_of(far_.front().at) >= horizon) break;
            const entry e = far_.front();
            std::pop_heap(far_.begin(), far_.end(), std::greater<>{});
            far_.pop_back();
            place(e);
        }
        while (!near_.empty() && stale(near_.front())) {
            std::pop_heap(near_.begin(), near_.end(), std::greater<>{});
            near_.pop_back();
            --stale_count_;
        }
        if (!near_.empty()) return;
        if (wheel_count_ > 0) {
            if (!advance_wheel(limit_tick)) return;
            continue;
        }
        if (far_.empty()) return;  // queue is empty (pending_ == 0)
        const std::uint64_t target = tick_of(far_.front().at);
        // far_ is a min-heap, so if its top lies beyond the limit every
        // overflow entry does (tick_of is monotone): nothing to do.
        if (target > limit_tick) return;
        rebase(target);
    }
}

void event_queue::drop_cancelled() {
    while (!heap_.empty() && stale(heap_.front())) {
        std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
        heap_.pop_back();
        --stale_count_;
    }
}

void event_queue::maybe_compact() {
    // Compact only when stale entries dominate: O(n) rebuild amortizes to
    // O(1) per cancellation, and the threshold keeps small queues as-is.
    if (stale_count_ < 64 || stale_count_ * 2 < heap_size()) return;
    const auto is_stale = [this](const entry& e) { return stale(e); };
    if (backend_ == queue_backend::heap) {
        std::erase_if(heap_, is_stale);
        std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
    } else {
        // The wheel never holds stale entries (cancel unlinks eagerly),
        // so only the two heaps need sweeping.
        std::erase_if(near_, is_stale);
        std::make_heap(near_.begin(), near_.end(), std::greater<>{});
        std::erase_if(far_, is_stale);
        std::make_heap(far_.begin(), far_.end(), std::greater<>{});
    }
    stale_count_ = 0;
}

time_us event_queue::next_time() const {
    auto* self = const_cast<event_queue*>(this);
    if (backend_ == queue_backend::heap) {
        self->drop_cancelled();
        if (heap_.empty()) {
            throw std::logic_error("event_queue::next_time: empty");
        }
        return heap_.front().at;
    }
    self->settle(kUnboundedTick);
    if (near_.empty()) throw std::logic_error("event_queue::next_time: empty");
    return near_.front().at;
}

time_us event_queue::run_next() {
    auto [at, action] = pop_next();
    action();
    return at;
}

std::pair<time_us, inline_action> event_queue::pop_next() {
    auto next = pop_next_at_most(std::numeric_limits<time_us>::infinity());
    if (!next) throw std::logic_error("event_queue::pop_next: empty");
    return std::move(*next);
}

std::optional<std::pair<time_us, inline_action>> event_queue::pop_next_at_most(
    time_us until) {
    if (backend_ == queue_backend::heap) {
        drop_cancelled();
        if (heap_.empty() || heap_.front().at > until) return std::nullopt;
        const entry top = heap_.front();
        std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
        heap_.pop_back();
        std::optional<std::pair<time_us, inline_action>> out;
        out.emplace(top.at, std::move(slots_[top.slot].action));
        release_slot(top.slot);
        --pending_;
        return out;
    }
    settle(tick_of(until));
    if (near_.empty() || near_.front().at > until) return std::nullopt;
    const entry top = near_.front();
    std::pop_heap(near_.begin(), near_.end(), std::greater<>{});
    near_.pop_back();
    // Emplace straight into the optional: one inline_action move per
    // pop instead of two (the pair would otherwise be moved again).
    std::optional<std::pair<time_us, inline_action>> out;
    out.emplace(top.at, std::move(slots_[top.slot].action));
    release_slot(top.slot);
    --pending_;
    return out;
}

}  // namespace csense::sim
