#include "src/sim/event_queue.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace csense::sim {

event_id event_queue::schedule(time_us at, std::function<void()> action) {
    std::uint32_t index;
    if (!free_slots_.empty()) {
        index = free_slots_.back();
        free_slots_.pop_back();
    } else {
        index = static_cast<std::uint32_t>(slots_.size());
        slots_.emplace_back();
    }
    slots_[index].action = std::move(action);
    const std::uint32_t generation = slots_[index].generation;
    heap_.push_back(entry{at, next_sequence_++, index, generation});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
    ++pending_;
    return make_id(index, generation);
}

void event_queue::release_slot(std::uint32_t index) {
    slots_[index].action = nullptr;  // release captured state eagerly
    ++slots_[index].generation;
    free_slots_.push_back(index);
}

bool event_queue::cancel(event_id id) {
    const auto index = static_cast<std::uint32_t>(id & 0xffffffffULL);
    const auto generation = static_cast<std::uint32_t>(id >> 32);
    if (index >= slots_.size() || slots_[index].generation != generation ||
        !slots_[index].action) {
        return false;
    }
    release_slot(index);
    --pending_;
    ++stale_in_heap_;  // its heap entry lingers until dropped or compacted
    maybe_compact();
    return true;
}

void event_queue::drop_cancelled() {
    while (!heap_.empty() && stale(heap_.front())) {
        std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
        heap_.pop_back();
        --stale_in_heap_;
    }
}

void event_queue::maybe_compact() {
    // Compact only when stale entries dominate: O(n) rebuild amortizes to
    // O(1) per cancellation, and the threshold keeps small queues as-is.
    if (stale_in_heap_ < 64 || stale_in_heap_ * 2 < heap_.size()) return;
    std::erase_if(heap_, [this](const entry& e) { return stale(e); });
    std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
    stale_in_heap_ = 0;
}

bool event_queue::empty() const noexcept { return pending_ == 0; }

time_us event_queue::next_time() const {
    auto* self = const_cast<event_queue*>(this);
    self->drop_cancelled();
    if (heap_.empty()) throw std::logic_error("event_queue::next_time: empty");
    return heap_.front().at;
}

time_us event_queue::run_next() {
    auto [at, action] = pop_next();
    action();
    return at;
}

std::pair<time_us, std::function<void()>> event_queue::pop_next() {
    auto next =
        pop_next_at_most(std::numeric_limits<time_us>::infinity());
    if (!next) throw std::logic_error("event_queue::pop_next: empty");
    return std::move(*next);
}

std::optional<std::pair<time_us, std::function<void()>>>
event_queue::pop_next_at_most(time_us until) {
    drop_cancelled();
    if (heap_.empty() || heap_.front().at > until) return std::nullopt;
    const entry top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    heap_.pop_back();
    auto action = std::move(slots_[top.slot].action);
    release_slot(top.slot);
    --pending_;
    return std::make_pair(top.at, std::move(action));
}

}  // namespace csense::sim
