// Discrete-event queue with deterministic ordering: events at equal
// timestamps fire in insertion order (a strict requirement for
// reproducible MAC simulations, where DIFS expiry and slot boundaries
// coincide constantly).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace csense::sim {

/// Simulation time in microseconds. Double precision keeps sub-slot
/// resolution over multi-minute runs (2^53 us ~ 285 years).
using time_us = double;

/// Handle used to cancel a scheduled event.
using event_id = std::uint64_t;

/// Min-heap of (time, sequence) ordered events.
class event_queue {
public:
    /// Schedule `action` at absolute time `at`; returns a cancellable id.
    event_id schedule(time_us at, std::function<void()> action);

    /// Cancel a pending event; returns false if already fired/cancelled.
    bool cancel(event_id id);

    /// True when no pending events remain.
    bool empty() const noexcept;

    /// Number of pending (uncancelled) events.
    std::size_t size() const noexcept { return pending_; }

    /// Time of the earliest pending event; requires !empty().
    time_us next_time() const;

    /// Pop and run the earliest event; returns its time. Requires !empty().
    /// Note: the action runs with no notion of "now"; simulation kernels
    /// should use pop_next() and advance their clock before invoking.
    time_us run_next();

    /// Pop the earliest event without running it; returns its time and
    /// action so the caller can advance its clock first. Requires !empty().
    std::pair<time_us, std::function<void()>> pop_next();

private:
    struct entry {
        time_us at;
        std::uint64_t sequence;
        event_id id;

        bool operator>(const entry& other) const noexcept {
            if (at != other.at) return at > other.at;
            return sequence > other.sequence;
        }
    };

    void drop_cancelled();

    std::priority_queue<entry, std::vector<entry>, std::greater<>> heap_;
    std::vector<std::function<void()>> actions_;  // indexed by id
    std::vector<bool> cancelled_;
    std::uint64_t next_sequence_ = 0;
    std::size_t pending_ = 0;
};

}  // namespace csense::sim
