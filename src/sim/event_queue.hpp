// Discrete-event queue with deterministic ordering: events at equal
// timestamps fire in insertion order (a strict requirement for
// reproducible MAC simulations, where DIFS expiry and slot boundaries
// coincide constantly).
//
// Memory is bounded by the number of *concurrently pending* events, not
// the number ever scheduled: executed and cancelled events return their
// slot to a free list, and each slot carries a generation counter so a
// stale id can never cancel the slot's next occupant. Cancelled entries
// left inside the heap are dropped lazily when they surface, and the
// whole heap is compacted when stale entries outnumber live ones (the
// MAC's cancel-heavy timer pattern would otherwise accumulate them).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

namespace csense::sim {

/// Simulation time in microseconds. Double precision keeps sub-slot
/// resolution over multi-minute runs (2^53 us ~ 285 years).
using time_us = double;

/// Handle used to cancel a scheduled event: slot index in the low 32
/// bits, the slot's generation at schedule time in the high 32 bits.
using event_id = std::uint64_t;

/// Min-heap of (time, sequence) ordered events with slot-recycling
/// storage for the scheduled actions.
class event_queue {
public:
    /// Schedule `action` at absolute time `at`; returns a cancellable id.
    event_id schedule(time_us at, std::function<void()> action);

    /// Cancel a pending event; returns false if already fired/cancelled.
    /// Safe against stale ids: once an event fires or is cancelled its
    /// slot may be reused, and the old id can never affect the new event.
    bool cancel(event_id id);

    /// True when no pending events remain.
    bool empty() const noexcept;

    /// Number of pending (uncancelled) events.
    std::size_t size() const noexcept { return pending_; }

    /// Time of the earliest pending event; requires !empty().
    time_us next_time() const;

    /// Pop and run the earliest event; returns its time. Requires !empty().
    /// Note: the action runs with no notion of "now"; simulation kernels
    /// should use pop_next() and advance their clock before invoking.
    time_us run_next();

    /// Pop the earliest event without running it; returns its time and
    /// action so the caller can advance its clock first. Requires !empty().
    std::pair<time_us, std::function<void()>> pop_next();

    /// Pop the earliest event only if it is scheduled at or before
    /// `until`; std::nullopt when the queue is empty or the next event
    /// lies beyond the horizon. One fused top-of-heap inspection per
    /// event instead of the next_time() + pop_next() pair - the
    /// simulation kernel's run_until loop executes hundreds of millions
    /// of events in a dense-network campaign, so the duplicate
    /// stale-drop scan is worth eliding.
    std::optional<std::pair<time_us, std::function<void()>>> pop_next_at_most(
        time_us until);

    /// Size of the internal slot table: the high-water mark of
    /// *concurrently* pending events, independent of how many events were
    /// ever scheduled (the bounded-memory guarantee regression tests pin).
    std::size_t slot_count() const noexcept { return slots_.size(); }

    /// Heap entries currently held, including cancelled-but-not-yet
    /// dropped ones; compaction keeps this O(pending).
    std::size_t heap_size() const noexcept { return heap_.size(); }

private:
    struct entry {
        time_us at;
        std::uint64_t sequence;
        std::uint32_t slot;
        std::uint32_t generation;

        bool operator>(const entry& other) const noexcept {
            if (at != other.at) return at > other.at;
            return sequence > other.sequence;
        }
    };

    struct slot {
        std::function<void()> action;
        /// Incremented whenever the slot is released (fired or
        /// cancelled); an entry or id bearing an older generation is
        /// stale. Wraps after 2^32 reuses of one slot, which a simulation
        /// would take centuries of virtual time to reach.
        std::uint32_t generation = 0;
    };

    static event_id make_id(std::uint32_t index,
                            std::uint32_t generation) noexcept {
        return (static_cast<event_id>(generation) << 32) | index;
    }

    bool stale(const entry& e) const noexcept {
        return slots_[e.slot].generation != e.generation;
    }

    /// Return a slot to the free list and invalidate outstanding ids.
    void release_slot(std::uint32_t index);

    /// Pop stale entries off the heap top.
    void drop_cancelled();

    /// Rebuild the heap without stale entries once they dominate.
    void maybe_compact();

    std::vector<entry> heap_;  ///< std::push_heap/pop_heap, min at front
    std::vector<slot> slots_;
    std::vector<std::uint32_t> free_slots_;
    std::uint64_t next_sequence_ = 0;
    std::size_t pending_ = 0;
    std::size_t stale_in_heap_ = 0;
};

}  // namespace csense::sim
