// Discrete-event queue with deterministic ordering: events at equal
// timestamps fire in insertion order (a strict requirement for
// reproducible MAC simulations, where DIFS expiry and slot boundaries
// coincide constantly).
//
// Memory is bounded by the number of *concurrently pending* events, not
// the number ever scheduled: executed and cancelled events return their
// slot to a free list, and each slot carries a generation counter so a
// stale id can never cancel the slot's next occupant. Cancelled entries
// left inside the queue are dropped lazily when they surface, and the
// whole structure is compacted when stale entries outnumber live ones
// (the MAC's cancel-heavy timer pattern would otherwise accumulate
// them).
//
// Two backends share this contract and produce identical pop order:
//
//  - calendar: a timer wheel bucketed at MAC slot granularity with a
//    near-past heap and a beyond-horizon overflow heap. Arming and
//    cancelling are O(1) instead of the binary heap's O(log n) sift /
//    lazy-cancel churn, which is the win when thousands of nodes hold
//    standing backoff timers (the camp05 dense regime). Wheel buckets
//    are intrusive doubly-linked lists threaded through a dense
//    per-slot side array (a slot holds at most one pending event), so
//    the wheel performs zero heap allocations once the slot table
//    reaches its high-water mark and cancelling an in-wheel event
//    unlinks it eagerly in O(1) instead of leaving a stale entry
//    behind.
//  - heap: the original single binary heap, kept as the reference
//    implementation for differential tests and because it is the
//    faster structure when only a handful of events are pending (small
//    simulations; mac::network picks per scale at first run).
//
// Equivalence argument (why the calendar pops in exactly (time,
// sequence) order): tick(at) = floor(at / width) is monotone in `at`,
// so an entry with a strictly smaller tick is strictly earlier. The
// wheel only holds entries with tick in (current, current + buckets) -
// one tick per bucket - while the near heap holds tick <= current and
// the overflow heap tick >= current + buckets. The near heap is a full
// (time, sequence) min-heap, and entries only ever migrate overflow ->
// wheel -> near as the current tick advances, so the near heap's top is
// always the global minimum. Entries with equal times share a tick and
// therefore meet in the near heap, where insertion order breaks the
// tie. The randomized differential test in
// tests/test_event_queue_backends.cpp checks this end to end.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "src/sim/inline_action.hpp"

namespace csense::sim {

/// Simulation time in microseconds. Double precision keeps sub-slot
/// resolution over multi-minute runs (2^53 us ~ 285 years).
using time_us = double;

/// Handle used to cancel a scheduled event: slot index in the low 32
/// bits, the slot's generation at schedule time in the high 32 bits.
using event_id = std::uint64_t;

/// Scheduler backend selection. Both orders pops identically; the
/// calendar wheel is the fast default, the binary heap the reference.
enum class queue_backend { calendar, heap };

/// Tuning knobs for the calendar backend (ignored by the heap).
struct event_queue_config {
    queue_backend backend = queue_backend::calendar;
    /// Wheel bucket width. Defaults to the 802.11a/g slot time: MAC
    /// timers land on slot boundaries, so one bucket rarely holds more
    /// than a handful of events.
    time_us bucket_width_us = 9.0;
    /// Wheel size (power of two). 4096 slots x 9 us ~ 37 ms of horizon
    /// covers every MAC timer; only long timeouts and idle-source
    /// arrivals overflow.
    std::uint32_t bucket_count = 4096;
};

/// The process-default queue configuration: calendar backend, unless
/// the environment overrides it (CSENSE_QUEUE_BACKEND=heap|calendar).
/// Both backends produce byte-identical simulations, so the override
/// is a pure wall-clock knob for perf A/B runs (tools/perf).
const event_queue_config& default_queue_config() noexcept;

/// The backend forced by CSENSE_QUEUE_BACKEND, if any. Scale-aware
/// callers (mac::network) pick heap below a pending-population where a
/// binary heap is near-optimal and calendar above it; the env override
/// pins every queue in the process to one backend for A/B timing.
std::optional<queue_backend> forced_queue_backend() noexcept;

/// Deterministically ordered event queue with slot-recycling storage
/// for the scheduled actions.
class event_queue {
public:
    event_queue() : event_queue(default_queue_config()) {}
    explicit event_queue(const event_queue_config& config);

    /// Switch backend/tuning before any event is scheduled (or after
    /// every scheduled event has fired or been cancelled *and* been
    /// swept out). Returns false - leaving the queue untouched - if
    /// entries are still held anywhere. Lets owners that only learn
    /// their scale after construction (a network learns its node count
    /// as nodes are added) pick the backend at first run.
    bool reconfigure(const event_queue_config& config);

    /// Schedule `action` at absolute time `at`; returns a cancellable id.
    event_id schedule(time_us at, inline_action action);

    /// Cancel a pending event; returns false if already fired/cancelled.
    /// Safe against stale ids: once an event fires or is cancelled its
    /// slot may be reused, and the old id can never affect the new event.
    bool cancel(event_id id);

    /// True when no pending events remain.
    bool empty() const noexcept { return pending_ == 0; }

    /// Number of pending (uncancelled) events.
    std::size_t size() const noexcept { return pending_; }

    /// Time of the earliest pending event; requires !empty().
    time_us next_time() const;

    /// Pop and run the earliest event; returns its time. Requires !empty().
    /// Note: the action runs with no notion of "now"; simulation kernels
    /// should use pop_next() and advance their clock before invoking.
    time_us run_next();

    /// Pop the earliest event without running it; returns its time and
    /// action so the caller can advance its clock first. Requires !empty().
    std::pair<time_us, inline_action> pop_next();

    /// Pop the earliest event only if it is scheduled at or before
    /// `until`; std::nullopt when the queue is empty or the next event
    /// lies beyond the horizon. One fused settle + pop per event instead
    /// of the next_time() + pop_next() pair - the simulation kernel's
    /// run_until loop executes hundreds of millions of events in a
    /// dense-network campaign, so the duplicate stale-drop scan is worth
    /// eliding.
    std::optional<std::pair<time_us, inline_action>> pop_next_at_most(
        time_us until);

    /// Size of the internal slot table: the high-water mark of
    /// *concurrently* pending events, independent of how many events were
    /// ever scheduled (the bounded-memory guarantee regression tests pin).
    std::size_t slot_count() const noexcept { return slots_.size(); }

    /// Entries currently held across all internal structures, including
    /// cancelled-but-not-yet dropped ones; compaction keeps this
    /// O(pending).
    std::size_t heap_size() const noexcept {
        return near_.size() + wheel_count_ + far_.size() + heap_.size();
    }

    /// The backend this queue was constructed with.
    queue_backend backend() const noexcept { return backend_; }

private:
    struct entry {
        time_us at;
        std::uint64_t sequence;
        std::uint32_t slot;
        std::uint32_t generation;

        bool operator>(const entry& other) const noexcept {
            if (at != other.at) return at > other.at;
            return sequence > other.sequence;
        }
    };

    /// Which internal structure currently holds a slot's pending entry.
    /// Lets cancel() unlink in-wheel entries eagerly; entries in the
    /// heaps are cancelled lazily (heap removal would be O(n)).
    enum class entry_loc : std::uint8_t { none, near_heap, wheel, far_heap };

    struct slot {
        inline_action action;
        /// Incremented whenever the slot is released (fired or
        /// cancelled); an entry or id bearing an older generation is
        /// stale. Wraps after 2^32 reuses of one slot, which a simulation
        /// would take centuries of virtual time to reach.
        std::uint32_t generation = 0;
        entry_loc location = entry_loc::none;  ///< calendar backend only
    };

    /// Wheel residency of one slot (calendar backend): the entry payload
    /// minus what the slot table already holds (slot index is the array
    /// index, generation is current - in-wheel entries are never stale),
    /// plus doubly-linked intrusive bucket-list links so cancel unlinks
    /// in O(1). Kept in a dense 24-byte side array rather than inside
    /// the 128-byte slot struct: link/unlink touch *neighbouring* slots'
    /// nodes, and with thousands of pending timers (the camp05 regime)
    /// those foreign touches must land in a compact, cache-resident
    /// array instead of dragging in a full slot line each.
    struct wheel_node {
        time_us at;
        std::uint64_t sequence;
        std::uint32_t next;
        std::uint32_t prev;
    };

    static event_id make_id(std::uint32_t index,
                            std::uint32_t generation) noexcept {
        return (static_cast<event_id>(generation) << 32) | index;
    }

    bool stale(const entry& e) const noexcept {
        return slots_[e.slot].generation != e.generation;
    }

    /// Map a timestamp to its wheel tick; clamped to [0, kMaxTick] so
    /// negative and astronomically large times stay well-defined (they
    /// sort correctly via the heaps regardless).
    std::uint64_t tick_of(time_us at) const noexcept;

    /// Route a fresh entry to the near heap / wheel / overflow heap.
    void place(entry e);

    /// Return a slot to the free list and invalidate outstanding ids.
    void release_slot(std::uint32_t index);

    /// Establish: near_ top is the earliest live pending entry with
    /// tick <= limit_tick, or no such entry exists. Advances the wheel /
    /// rebases the overflow heap only through buckets at or before
    /// limit_tick - a bounded pop (run_until's horizon) must not drag
    /// current_tick_ to some far-future event, or every later schedule
    /// would land behind the wheel in the near heap and the structure
    /// degenerates into a plain binary heap. Never changes the
    /// observable pop order.
    void settle(std::uint64_t limit_tick);

    /// Drain the first occupied wheel bucket into the near heap and
    /// advance current_tick_ to its tick, unless that tick exceeds
    /// limit_tick (returns false, state untouched). Requires
    /// wheel_count_ > 0.
    bool advance_wheel(std::uint64_t limit_tick);

    /// Remove the slot's entry from its wheel bucket (cancel path).
    /// Requires slots_[index].location == entry_loc::wheel.
    void unlink_wheel(std::uint32_t index);

    /// Re-anchor the wheel at `tick` and re-place every overflow entry.
    void rebase(std::uint64_t tick);

    /// Heap backend: pop stale entries off the heap top.
    void drop_cancelled();

    /// Rebuild all structures without stale entries once they dominate.
    void maybe_compact();

    queue_backend backend_ = queue_backend::calendar;
    time_us bucket_width_ = 9.0;
    time_us inv_bucket_width_ = 0.0;  ///< 1 / bucket_width_ (tick_of)
    std::uint32_t bucket_mask_ = 0;  ///< bucket_count - 1 (power of two)

    // --- calendar backend state ---
    static constexpr std::uint32_t kNil = 0xffffffffu;  ///< list sentinel

    /// Entries with tick <= current_tick_: a (time, sequence) min-heap.
    /// The pop path only ever pops from here.
    std::vector<entry> near_;
    /// Wheel: bucket_head_[t & bucket_mask_] heads an intrusive list of
    /// exactly the entries of one tick t in (current_tick_,
    /// current_tick_ + bucket_count). List links and entry payloads live
    /// in wheel_node_, indexed by slot - a slot has at most one pending
    /// event, so this storage tracks the slot table's high-water mark
    /// and the wheel never allocates per insert.
    std::vector<std::uint32_t> bucket_head_;
    std::vector<wheel_node> wheel_node_;  ///< indexed by slot
    /// One bit per bucket: non-empty. Scanned 64 buckets at a step.
    std::vector<std::uint64_t> occupied_;
    /// Entries with tick >= current_tick_ + bucket_count, min-heap.
    std::vector<entry> far_;
    /// Reused by rebase() so re-anchoring allocates nothing in steady
    /// state.
    std::vector<entry> rebase_scratch_;
    std::uint64_t current_tick_ = 0;
    /// Lower bound on the tick of the earliest occupied wheel bucket:
    /// no bucket with tick in (current_tick_, wheel_hint_) is occupied.
    /// Lets a bounded advance_wheel() reject horizons before the next
    /// event in O(1) instead of re-scanning the occupancy bitmap on
    /// every run_until() that ends between events.
    std::uint64_t wheel_hint_ = 0;
    std::size_t wheel_count_ = 0;

    // --- heap backend state ---
    std::vector<entry> heap_;  ///< std::push_heap/pop_heap, min at front

    std::vector<slot> slots_;
    std::vector<std::uint32_t> free_slots_;
    std::uint64_t next_sequence_ = 0;
    std::size_t pending_ = 0;
    std::size_t stale_count_ = 0;
};

}  // namespace csense::sim
