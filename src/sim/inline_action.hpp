// Fixed-size, allocation-free callable for simulator events.
//
// Every event action in the hot path (DCF timers, medium delivery
// wakes, traffic arrivals, adaptive-CS epochs) captures a handful of
// pointers and PODs; boxing each one in a std::function costs a heap
// allocation plus a pointer chase per event, which dominates the
// scheduler at campaign scale. inline_action stores the closure in a
// 64-byte in-object buffer instead: construction is a placement-new,
// invocation a single indirect call, relocation a memcpy for the
// trivially-copyable closures the MAC produces.
//
// The capacity is a hard compile-time contract: a capture list that
// outgrows the buffer fails to build (static_assert below) rather than
// silently re-introducing an allocation. std::function<void()> itself
// fits the buffer, so call sites that genuinely need type erasure with
// unbounded captures can pass one explicitly - that is the approved
// shim the determinism linter's std-function-hot-path rule points at.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace csense::sim {

/// Small-buffer-only move-only callable with signature void().
/// Never allocates: callables must fit `capacity` bytes, align to at
/// most `alignment`, and be nothrow-move-constructible (enforced at
/// compile time). An empty inline_action is default-constructed or
/// moved-from; invoking one is undefined (checked via operator bool).
class inline_action {
public:
    /// Sized for the largest MAC closure (medium delivery wake: frame
    /// by value + listener pointer + power + timestamp = 64 bytes).
    static constexpr std::size_t capacity = 64;
    static constexpr std::size_t alignment = 16;

    inline_action() noexcept = default;

    /// Implicit by design: schedule sites pass lambdas exactly as they
    /// passed them to the std::function-based API.
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, inline_action>>>
    // NOLINTNEXTLINE(google-explicit-constructor,hicpp-explicit-conversions)
    inline_action(F&& fn) noexcept {
        using callable = std::decay_t<F>;
        static_assert(std::is_invocable_r_v<void, callable&>,
                      "inline_action requires a void() callable");
        static_assert(sizeof(callable) <= capacity,
                      "event closure exceeds the inline_action buffer; "
                      "shrink the capture list (capture pointers, not "
                      "objects) or pass a std::function explicitly");
        static_assert(alignof(callable) <= alignment,
                      "event closure is over-aligned for inline_action");
        static_assert(std::is_nothrow_move_constructible_v<callable>,
                      "event closures must be nothrow-move-constructible "
                      "so queue compaction cannot throw");
        ::new (static_cast<void*>(storage_)) callable(std::forward<F>(fn));
        invoke_ = [](void* p) { (*static_cast<callable*>(p))(); };
        // Trivially-copyable closures (the common MAC case) keep both
        // hooks null: relocation is a memcpy, destruction a no-op.
        if constexpr (!std::is_trivially_copyable_v<callable>) {
            relocate_ = [](void* dst, void* src) {
                auto* from = static_cast<callable*>(src);
                ::new (dst) callable(std::move(*from));
                from->~callable();
            };
        }
        if constexpr (!std::is_trivially_destructible_v<callable>) {
            destroy_ = [](void* p) { static_cast<callable*>(p)->~callable(); };
        }
    }

    inline_action(inline_action&& other) noexcept { move_from(other); }

    inline_action& operator=(inline_action&& other) noexcept {
        if (this != &other) {
            reset();
            move_from(other);
        }
        return *this;
    }

    inline_action(const inline_action&) = delete;
    inline_action& operator=(const inline_action&) = delete;

    ~inline_action() { reset(); }

    /// True when a callable is held.
    explicit operator bool() const noexcept { return invoke_ != nullptr; }

    /// Invoke the stored callable; requires operator bool().
    void operator()() { invoke_(storage_); }

    /// Destroy the stored callable (if any) and become empty.
    void reset() noexcept {
        if (destroy_ != nullptr) destroy_(storage_);
        invoke_ = nullptr;
        relocate_ = nullptr;
        destroy_ = nullptr;
    }

private:
    void move_from(inline_action& other) noexcept {
        invoke_ = other.invoke_;
        relocate_ = other.relocate_;
        destroy_ = other.destroy_;
        if (invoke_ != nullptr) {
            if (relocate_ != nullptr) {
                relocate_(storage_, other.storage_);
            } else {
                std::memcpy(storage_, other.storage_, capacity);
            }
        }
        other.invoke_ = nullptr;
        other.relocate_ = nullptr;
        other.destroy_ = nullptr;
    }

    alignas(alignment) std::byte storage_[capacity];
    void (*invoke_)(void*) = nullptr;
    /// Move-construct dst from src and destroy src; null means the
    /// callable relocates by memcpy (trivially copyable).
    void (*relocate_)(void* dst, void* src) = nullptr;
    /// Null means trivially destructible.
    void (*destroy_)(void*) = nullptr;
};

}  // namespace csense::sim
