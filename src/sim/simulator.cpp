#include "src/sim/simulator.hpp"

#include <stdexcept>

#include "src/core/parallel.hpp"

namespace csense::sim {
namespace {

// One cooperative cancellation check every 64k events: a packet-level
// replication can run for minutes, and shard boundaries alone would
// leave the bench watchdog waiting a whole replication before its
// cancel unwinds. The mask keeps the hot loop at one branch + one
// relaxed atomic load per slice.
constexpr std::uint64_t kCancelCheckMask = (1u << 16) - 1;

}  // namespace

event_id simulator::schedule_in(time_us delay, inline_action action) {
    if (delay < 0.0) throw std::invalid_argument("schedule_in: negative delay");
    return queue_.schedule(now_ + delay, std::move(action));
}

event_id simulator::schedule_at(time_us at, inline_action action) {
    if (at < now_) throw std::invalid_argument("schedule_at: time in the past");
    return queue_.schedule(at, std::move(action));
}

void simulator::run_until(time_us until) {
    // Fused horizon check + pop: one top-of-heap inspection per event
    // (the next_time()/pop_next() pair would drop stale entries twice).
    while (auto next = queue_.pop_next_at_most(until)) {
        now_ = next->first;  // advance the clock before the action runs
        next->second();
        if ((++executed_ & kCancelCheckMask) == 0) {
            core::throw_if_cancelled();
        }
    }
    if (now_ < until) now_ = until;
}

void simulator::run_all() {
    while (!queue_.empty()) {
        auto [at, action] = queue_.pop_next();
        now_ = at;
        action();
        if ((++executed_ & kCancelCheckMask) == 0) {
            core::throw_if_cancelled();
        }
    }
}

}  // namespace csense::sim
