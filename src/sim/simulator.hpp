// The simulation kernel: a clock plus the event queue, with run-until
// semantics. MAC components hold a reference to the simulator and
// schedule relative to now().
#pragma once

#include "src/sim/event_queue.hpp"

namespace csense::sim {

/// Discrete-event simulator kernel.
class simulator {
public:
    /// Current simulation time (us).
    time_us now() const noexcept { return now_; }

    /// Schedule an action `delay` microseconds from now (delay >= 0).
    event_id schedule_in(time_us delay, std::function<void()> action);

    /// Schedule an action at an absolute time (>= now).
    event_id schedule_at(time_us at, std::function<void()> action);

    /// Cancel a pending event.
    bool cancel(event_id id) { return queue_.cancel(id); }

    /// Run events until the queue empties or the clock passes `until`.
    /// Events at exactly `until` are executed.
    void run_until(time_us until);

    /// Run all events to exhaustion (use only with self-limiting models).
    void run_all();

    /// Number of events executed so far.
    std::uint64_t events_executed() const noexcept { return executed_; }

private:
    event_queue queue_;
    time_us now_ = 0.0;
    std::uint64_t executed_ = 0;
};

}  // namespace csense::sim
