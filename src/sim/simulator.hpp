// The simulation kernel: a clock plus the event queue, with run-until
// semantics. MAC components hold a reference to the simulator and
// schedule relative to now().
#pragma once

#include "src/sim/event_queue.hpp"

namespace csense::sim {

/// Discrete-event simulator kernel.
class simulator {
public:
    simulator() = default;

    /// Construct with an explicit queue configuration (backend
    /// selection / wheel tuning); both backends produce identical
    /// event order.
    explicit simulator(const event_queue_config& config) : queue_(config) {}

    /// Re-select the queue backend before the first event is scheduled;
    /// no-op (returns false) once events are in flight. Owners that
    /// learn their scale late use this: a binary heap is near-optimal
    /// for a handful of pending events, the calendar wheel wins once
    /// thousands of timers stand concurrently.
    bool reconfigure_queue(const event_queue_config& config) {
        return queue_.reconfigure(config);
    }

    /// The queue backend in use (A/B introspection).
    queue_backend queue_backend_kind() const noexcept {
        return queue_.backend();
    }

    /// Current simulation time (us).
    time_us now() const noexcept { return now_; }

    /// Schedule an action `delay` microseconds from now (delay >= 0).
    /// Actions are allocation-free inline_actions: captures must fit the
    /// 64-byte buffer (compile-time checked).
    event_id schedule_in(time_us delay, inline_action action);

    /// Schedule an action at an absolute time (>= now).
    event_id schedule_at(time_us at, inline_action action);

    /// Cancel a pending event.
    bool cancel(event_id id) { return queue_.cancel(id); }

    /// Run events until the queue empties or the clock passes `until`.
    /// Events at exactly `until` are executed.
    void run_until(time_us until);

    /// Run all events to exhaustion (use only with self-limiting models).
    void run_all();

    /// Number of events executed so far.
    std::uint64_t events_executed() const noexcept { return executed_; }

private:
    event_queue queue_;
    time_us now_ = 0.0;
    std::uint64_t executed_ = 0;
};

}  // namespace csense::sim
