#include "src/stats/distributions.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace csense::stats {

double normal_pdf(double x) noexcept {
    return std::exp(-0.5 * x * x) / std::sqrt(2.0 * std::numbers::pi);
}

double normal_cdf(double x) noexcept {
    return 0.5 * std::erfc(-x / std::numbers::sqrt2);
}

double normal_quantile(double p) {
    if (!(p > 0.0 && p < 1.0)) {
        throw std::domain_error("normal_quantile: p must be in (0, 1)");
    }
    // Acklam's approximation.
    static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                   -2.759285104469687e+02, 1.383577518672690e+02,
                                   -3.066479806614716e+01, 2.506628277459239e+00};
    static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                   -1.556989798598866e+02, 6.680131188771972e+01,
                                   -1.328068155288572e+01};
    static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                   -2.400758277161838e+00, -2.549732539343734e+00,
                                   4.374664141464968e+00,  2.938163982698783e+00};
    static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                   2.445134137142996e+00, 3.754408661907416e+00};
    constexpr double p_low = 0.02425;
    double x;
    if (p < p_low) {
        const double q = std::sqrt(-2.0 * std::log(p));
        x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    } else if (p <= 1.0 - p_low) {
        const double q = p - 0.5;
        const double r = q * q;
        x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
            (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
    } else {
        const double q = std::sqrt(-2.0 * std::log1p(-p));
        x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    // One Halley refinement step.
    const double e = normal_cdf(x) - p;
    const double u = e * std::sqrt(2.0 * std::numbers::pi) * std::exp(0.5 * x * x);
    x = x - u / (1.0 + 0.5 * x * u);
    return x;
}

double lognormal_shadowing::sample(rng& gen) const noexcept {
    return from_standard_normal(gen.normal());
}

double lognormal_shadowing::from_standard_normal(double z) const noexcept {
    return std::pow(10.0, sigma_db_ * z / 10.0);
}

double lognormal_shadowing::mean() const noexcept {
    const double s = sigma_db_ * std::numbers::ln10 / 10.0;
    return std::exp(0.5 * s * s);
}

double rayleigh_fading::sample_amplitude(rng& gen) noexcept {
    return std::sqrt(sample_power(gen));
}

double rayleigh_fading::sample_power(rng& gen) noexcept {
    return gen.exponential(1.0);
}

double rician_fading::sample_amplitude(rng& gen) const noexcept {
    return std::sqrt(sample_power(gen));
}

double rician_fading::sample_power(rng& gen) const noexcept {
    // Line-of-sight component has power K/(K+1); scattered component is a
    // complex Gaussian with total power 1/(K+1).
    const double los = std::sqrt(k_ / (k_ + 1.0));
    const double scatter_sigma = std::sqrt(0.5 / (k_ + 1.0));
    const double re = los + scatter_sigma * gen.normal();
    const double im = scatter_sigma * gen.normal();
    return re * re + im * im;
}

polar_point sample_uniform_disc(rng& gen, double radius) noexcept {
    return disc_from_uniforms(gen.uniform(), gen.uniform(), radius);
}

polar_point disc_from_uniforms(double u_radius, double u_angle,
                               double radius) noexcept {
    return polar_point{radius * std::sqrt(u_radius),
                       2.0 * std::numbers::pi * u_angle};
}

}  // namespace csense::stats
