// Probability distributions used throughout the carrier-sense model:
// lognormal shadowing expressed in dB, Rayleigh/Rician fading amplitudes,
// uniform sampling in a disc (the paper's receiver placement), and the
// normal CDF/quantile used in closed-form carrier-sense defer
// probabilities.
#pragma once

#include <utility>

#include "src/stats/rng.hpp"

namespace csense::stats {

/// Standard normal probability density.
double normal_pdf(double x) noexcept;

/// Standard normal cumulative distribution function.
double normal_cdf(double x) noexcept;

/// Standard normal quantile (inverse CDF) via Acklam's rational
/// approximation refined by one Halley step. Requires 0 < p < 1.
double normal_quantile(double p);

/// Lognormal shadowing: a multiplicative power factor whose dB value is
/// N(0, sigma_db^2). This is the paper's L_sigma.
class lognormal_shadowing {
public:
    explicit lognormal_shadowing(double sigma_db) noexcept
        : sigma_db_(sigma_db) {}

    /// Standard deviation in dB.
    double sigma_db() const noexcept { return sigma_db_; }

    /// Draw a linear power factor (median 1).
    double sample(rng& gen) const noexcept;

    /// Convert a standard-normal deviate into the linear power factor.
    /// Used by quadrature rules that integrate over the shadowing axis.
    double from_standard_normal(double z) const noexcept;

    /// E[L] = exp((ln10/10 * sigma)^2 / 2): lognormal mean exceeds median.
    double mean() const noexcept;

private:
    double sigma_db_;
};

/// Rayleigh-distributed amplitude with unit mean *power* (E[a^2] = 1):
/// the narrowband fading amplitude with no line of sight.
class rayleigh_fading {
public:
    /// Draw an amplitude; the squared value is the power fade factor.
    static double sample_amplitude(rng& gen) noexcept;

    /// Draw a power fade factor directly (exponential with mean 1).
    static double sample_power(rng& gen) noexcept;
};

/// Rician-distributed amplitude with K-factor (ratio of line-of-sight to
/// scattered power) and unit mean power.
class rician_fading {
public:
    explicit rician_fading(double k_factor) noexcept : k_(k_factor) {}

    double k_factor() const noexcept { return k_; }

    /// Draw an amplitude; the squared value is the power fade factor.
    double sample_amplitude(rng& gen) const noexcept;

    /// Draw a power fade factor.
    double sample_power(rng& gen) const noexcept;

private:
    double k_;
};

/// A point sampled uniformly over a disc of radius `radius`, returned in
/// polar coordinates (r, theta). This is the paper's receiver placement
/// within network range Rmax.
struct polar_point {
    double r;
    double theta;
};

polar_point sample_uniform_disc(rng& gen, double radius) noexcept;

/// Map two uniforms in [0,1) to a uniform-in-disc polar point; used by
/// deterministic low-discrepancy and common-random-number designs.
polar_point disc_from_uniforms(double u_radius, double u_angle,
                               double radius) noexcept;

}  // namespace csense::stats
