#include "src/stats/histogram.hpp"

#include <cmath>
#include <stdexcept>

namespace csense::stats {

histogram::histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
    if (!(hi > lo) || bins == 0) {
        throw std::invalid_argument("histogram: requires hi > lo and bins > 0");
    }
}

void histogram::add(double x) noexcept {
    ++total_;
    if (x < lo_) {
        ++underflow_;
        return;
    }
    if (x >= hi_) {
        ++overflow_;
        return;
    }
    auto bin = static_cast<std::size_t>((x - lo_) / width_);
    if (bin >= counts_.size()) bin = counts_.size() - 1;  // x just below hi_
    ++counts_[bin];
}

double histogram::bin_center(std::size_t bin) const {
    if (bin >= counts_.size()) throw std::out_of_range("histogram::bin_center");
    return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double histogram::cdf(double x) const noexcept {
    if (total_ == 0) return 0.0;
    if (x < lo_) return 0.0;
    std::size_t below = underflow_;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const double upper = lo_ + (static_cast<double>(i) + 1.0) * width_;
        if (upper <= x) {
            below += counts_[i];
        } else {
            break;
        }
    }
    if (x >= hi_) below += overflow_;
    return static_cast<double>(below) / static_cast<double>(total_);
}

double histogram::quantile(double q) const {
    if (total_ == 0) throw std::logic_error("histogram::quantile: empty");
    if (q < 0.0 || q > 1.0) throw std::invalid_argument("histogram::quantile: q");
    const double target = q * static_cast<double>(total_);
    double cumulative = static_cast<double>(underflow_);
    if (target <= cumulative) return lo_;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const double next = cumulative + static_cast<double>(counts_[i]);
        if (target <= next && counts_[i] > 0) {
            const double frac = (target - cumulative) / static_cast<double>(counts_[i]);
            return lo_ + (static_cast<double>(i) + frac) * width_;
        }
        cumulative = next;
    }
    return hi_;
}

}  // namespace csense::stats
