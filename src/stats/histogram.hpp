// Fixed-bin histogram with quantile queries, used to report throughput
// distributions and fairness in the testbed experiments.
#pragma once

#include <cstddef>
#include <vector>

namespace csense::stats {

/// Equal-width histogram over [lo, hi) with overflow/underflow buckets.
class histogram {
public:
    histogram(double lo, double hi, std::size_t bins);

    void add(double x) noexcept;

    std::size_t total() const noexcept { return total_; }
    std::size_t bin_count() const noexcept { return counts_.size(); }
    std::size_t underflow() const noexcept { return underflow_; }
    std::size_t overflow() const noexcept { return overflow_; }
    std::size_t count(std::size_t bin) const { return counts_.at(bin); }

    /// Center of the given bin.
    double bin_center(std::size_t bin) const;

    /// Fraction of all observations (including under/overflow) falling at
    /// or below x, computed from bin boundaries.
    double cdf(double x) const noexcept;

    /// Approximate q-quantile (0 <= q <= 1) by linear interpolation within
    /// the containing bin. Returns lo/hi for out-of-range tails.
    double quantile(double q) const;

private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::size_t> counts_;
    std::size_t underflow_ = 0;
    std::size_t overflow_ = 0;
    std::size_t total_ = 0;
};

}  // namespace csense::stats
