// Compensated (Kahan-Neumaier) floating-point accumulation.
//
// The packet-level medium keeps a per-node running sum of external
// power in milliwatts that is incremented on every transmission start
// and decremented on every end. Over millions of events a plain double
// accumulator drifts (catastrophically so when large and small powers
// mix, exactly the cumulative-interference regime); the compensated sum
// keeps the error at a few ulps of the *current* value independent of
// how many updates have been applied, which is what makes incremental
// power accounting deterministic-and-accurate enough to replace full
// re-summation (src/mac/medium.cpp).
//
// Header-only and trivially copyable so it can live in hot per-node
// arrays.
#pragma once

#include <cmath>

namespace csense::stats {

/// Neumaier variant of Kahan summation: a running sum plus a running
/// compensation term. Unlike classic Kahan it stays accurate when the
/// addend is larger than the sum, which happens constantly when a
/// nearby transmitter joins a field of weak ones.
class kahan_sum {
public:
    constexpr kahan_sum() noexcept = default;
    explicit constexpr kahan_sum(double value) noexcept : sum_(value) {}

    /// Add `x` (use a negative value to subtract; `sub` reads better).
    void add(double x) noexcept {
        const double t = sum_ + x;
        if (std::abs(sum_) >= std::abs(x)) {
            compensation_ += (sum_ - t) + x;
        } else {
            compensation_ += (x - t) + sum_;
        }
        sum_ = t;
    }

    /// Subtract `x` from the running sum.
    void sub(double x) noexcept { add(-x); }

    /// Current compensated value.
    constexpr double value() const noexcept { return sum_ + compensation_; }

    /// Reset to exactly `value` with zero compensation. The medium calls
    /// this whenever a node's audible set empties (the sum is exactly
    /// zero then) and on its periodic exact refresh, so drift can never
    /// accumulate across quiet periods.
    constexpr void reset(double value = 0.0) noexcept {
        sum_ = value;
        compensation_ = 0.0;
    }

private:
    double sum_ = 0.0;
    double compensation_ = 0.0;
};

}  // namespace csense::stats
