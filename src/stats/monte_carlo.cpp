#include "src/stats/monte_carlo.hpp"

namespace csense::stats {

mc_estimate mc_expectation(const std::function<double(rng&)>& f, const rng& base,
                           std::size_t samples) {
    running_summary summary;
    for (std::size_t i = 0; i < samples; ++i) {
        rng stream = base.split(static_cast<std::uint64_t>(i));
        summary.add(f(stream));
    }
    return {summary.mean(), summary.stderr_mean(), summary.count()};
}

mc_estimate mc_expectation_adaptive(const std::function<double(rng&)>& f,
                                    const rng& base, double target_stderr,
                                    std::size_t max_samples, std::size_t chunk) {
    running_summary summary;
    std::size_t i = 0;
    while (i < max_samples) {
        const std::size_t stop = (i + chunk < max_samples) ? i + chunk : max_samples;
        for (; i < stop; ++i) {
            rng stream = base.split(static_cast<std::uint64_t>(i));
            summary.add(f(stream));
        }
        if (summary.count() >= 2 && summary.stderr_mean() <= target_stderr) break;
    }
    return {summary.mean(), summary.stderr_mean(), summary.count()};
}

}  // namespace csense::stats
