// Monte Carlo estimation with common random numbers.
//
// The joint "optimal MAC" average in the carrier-sense model integrates
// over four spatial coordinates and four shadowing draws, which is beyond
// practical tensor-product quadrature; we estimate it by Monte Carlo.
// Estimates across a parameter sweep (e.g. a D sweep at fixed Rmax) reuse
// the same random inputs per sample index, so differences between sweep
// points are far less noisy than the points themselves.
#pragma once

#include <cstddef>
#include <functional>

#include "src/stats/rng.hpp"
#include "src/stats/summary.hpp"

namespace csense::stats {

/// Result of a Monte Carlo estimation.
struct mc_estimate {
    double mean = 0.0;
    double stderr_mean = 0.0;
    std::size_t samples = 0;
};

/// Estimate E[f] where f consumes a per-sample RNG stream. Sample i draws
/// from `base.split(i)`, so two estimations with the same base seed see
/// identical random inputs per index (common random numbers).
mc_estimate mc_expectation(const std::function<double(rng&)>& f, const rng& base,
                           std::size_t samples);

/// Estimate E[f] until the standard error of the mean drops below
/// `target_stderr` or `max_samples` is reached, in chunks of `chunk`.
mc_estimate mc_expectation_adaptive(const std::function<double(rng&)>& f,
                                    const rng& base, double target_stderr,
                                    std::size_t max_samples,
                                    std::size_t chunk = 4096);

}  // namespace csense::stats
