#include "src/stats/quadrature.hpp"

#include <cmath>
#include <map>
#include <mutex>
#include <numbers>
#include <shared_mutex>
#include <stdexcept>

namespace csense::stats {
namespace {

quadrature_rule compute_gauss_legendre(int n) {
    if (n < 1) throw std::invalid_argument("gauss_legendre: n must be >= 1");
    quadrature_rule rule;
    rule.nodes.resize(n);
    rule.weights.resize(n);
    const int m = (n + 1) / 2;
    for (int i = 0; i < m; ++i) {
        // Chebyshev-based initial guess for the i-th root.
        double x = std::cos(std::numbers::pi * (i + 0.75) / (n + 0.5));
        double pp = 0.0;
        for (int iter = 0; iter < 100; ++iter) {
            // Evaluate P_n(x) and P'_n(x) by the three-term recurrence.
            double p0 = 1.0, p1 = 0.0;
            for (int j = 0; j < n; ++j) {
                const double p2 = p1;
                p1 = p0;
                p0 = ((2.0 * j + 1.0) * x * p1 - j * p2) / (j + 1.0);
            }
            pp = n * (x * p0 - p1) / (x * x - 1.0);
            const double dx = p0 / pp;
            x -= dx;
            if (std::abs(dx) < 1e-15) break;
        }
        rule.nodes[i] = -x;
        rule.nodes[n - 1 - i] = x;
        const double w = 2.0 / ((1.0 - x * x) * pp * pp);
        rule.weights[i] = w;
        rule.weights[n - 1 - i] = w;
    }
    return rule;
}

quadrature_rule compute_gauss_hermite(int n) {
    if (n < 1) throw std::invalid_argument("gauss_hermite: n must be >= 1");
    quadrature_rule rule;
    rule.nodes.resize(n);
    rule.weights.resize(n);
    const double pim4 = 1.0 / std::pow(std::numbers::pi, 0.25);
    const int m = (n + 1) / 2;
    double x = 0.0;
    for (int i = 0; i < m; ++i) {
        // Initial guesses (Numerical Recipes).
        if (i == 0) {
            x = std::sqrt(2.0 * n + 1.0) - 1.85575 * std::pow(2.0 * n + 1.0, -1.0 / 6.0);
        } else if (i == 1) {
            x -= 1.14 * std::pow(static_cast<double>(n), 0.426) / x;
        } else if (i == 2) {
            x = 1.86 * x - 0.86 * rule.nodes[n - 1];
        } else if (i == 3) {
            x = 1.91 * x - 0.91 * rule.nodes[n - 2];
        } else {
            x = 2.0 * x - rule.nodes[n - i + 1];
        }
        double pp = 0.0;
        for (int iter = 0; iter < 200; ++iter) {
            // Orthonormal Hermite recurrence.
            double p1 = pim4;
            double p2 = 0.0;
            for (int j = 0; j < n; ++j) {
                const double p3 = p2;
                p2 = p1;
                p1 = x * std::sqrt(2.0 / (j + 1.0)) * p2 -
                     std::sqrt(static_cast<double>(j) / (j + 1.0)) * p3;
            }
            pp = std::sqrt(2.0 * n) * p2;
            const double dx = p1 / pp;
            x -= dx;
            if (std::abs(dx) < 1e-14) break;
        }
        rule.nodes[n - 1 - i] = x;
        rule.nodes[i] = -x;
        const double w = 2.0 / (pp * pp);
        rule.weights[n - 1 - i] = w;
        rule.weights[i] = w;
    }
    return rule;
}

const quadrature_rule& cached_rule(int n, bool hermite) {
    // Reader/writer cache: after a rule's first computation every lookup
    // takes only the shared lock, so concurrent engine workers never
    // serialize here. std::map references are stable across inserts, so
    // handing out references under the shared lock is safe.
    static std::shared_mutex mutex;
    static std::map<std::pair<int, bool>, quadrature_rule> cache;
    const std::pair<int, bool> key{n, hermite};
    {
        std::shared_lock lock(mutex);
        const auto it = cache.find(key);
        if (it != cache.end()) return it->second;
    }
    std::unique_lock lock(mutex);
    auto [it, inserted] = cache.try_emplace(key);
    if (inserted) {
        it->second = hermite ? compute_gauss_hermite(n) : compute_gauss_legendre(n);
    }
    return it->second;
}

double simpson(double a, double fa, double b, double fb, double fm) {
    return (b - a) / 6.0 * (fa + 4.0 * fm + fb);
}

double adaptive_step(const std::function<double(double)>& f, double a, double fa,
                     double b, double fb, double m, double fm, double whole,
                     double tol, int depth) {
    const double lm = 0.5 * (a + m);
    const double rm = 0.5 * (m + b);
    const double flm = f(lm);
    const double frm = f(rm);
    const double left = simpson(a, fa, m, fm, flm);
    const double right = simpson(m, fm, b, fb, frm);
    const double delta = left + right - whole;
    if (depth <= 0 || std::abs(delta) <= 15.0 * tol) {
        return left + right + delta / 15.0;
    }
    return adaptive_step(f, a, fa, m, fm, lm, flm, left, tol / 2.0, depth - 1) +
           adaptive_step(f, m, fm, b, fb, rm, frm, right, tol / 2.0, depth - 1);
}

}  // namespace

const quadrature_rule& gauss_legendre(int n) { return cached_rule(n, false); }

const quadrature_rule& gauss_hermite(int n) { return cached_rule(n, true); }

double integrate(const std::function<double(double)>& f, double a, double b,
                 int n) {
    const auto& rule = gauss_legendre(n);
    const double half = 0.5 * (b - a);
    const double mid = 0.5 * (a + b);
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
        sum += rule.weights[i] * f(mid + half * rule.nodes[i]);
    }
    return half * sum;
}

double integrate_adaptive(const std::function<double(double)>& f, double a,
                          double b, double tol, int max_depth) {
    const double m = 0.5 * (a + b);
    const double fa = f(a), fb = f(b), fm = f(m);
    const double whole = simpson(a, fa, b, fb, fm);
    return adaptive_step(f, a, fa, b, fb, m, fm, whole, tol, max_depth);
}

double normal_expectation(const std::function<double(double)>& f, int n) {
    const auto& rule = gauss_hermite(n);
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
        sum += rule.weights[i] * f(std::numbers::sqrt2 * rule.nodes[i]);
    }
    return sum / std::sqrt(std::numbers::pi);
}

double disc_average(const std::function<double(double, double)>& f, double radius,
                    int nr, int ntheta) {
    if (radius <= 0.0) throw std::invalid_argument("disc_average: radius <= 0");
    const auto& radial = gauss_legendre(nr);
    double sum = 0.0;
    const double dtheta = 2.0 * std::numbers::pi / ntheta;
    for (int i = 0; i < nr; ++i) {
        // Map [-1,1] -> [0, radius].
        const double r = 0.5 * radius * (radial.nodes[i] + 1.0);
        const double wr = 0.5 * radius * radial.weights[i];
        double ring = 0.0;
        for (int j = 0; j < ntheta; ++j) {
            // Offset half a step so theta = 0 (the interferer axis, where
            // the integrand varies fastest) is straddled symmetrically.
            const double theta = dtheta * (j + 0.5);
            ring += f(r, theta);
        }
        sum += wr * r * ring * dtheta;
    }
    const double area = std::numbers::pi * radius * radius;
    return sum / area;
}

}  // namespace csense::stats
