// Deterministic numerical integration. The carrier-sense model averages
// link capacity over receiver positions (a disc) and over lognormal
// shadowing (Gaussian axes). We use Gauss-Legendre quadrature radially,
// the (spectrally accurate) periodic rectangle rule in angle, and
// Gauss-Hermite quadrature for expectations over normal deviates.
#pragma once

#include <functional>
#include <vector>

namespace csense::stats {

/// Nodes and weights of an n-point quadrature rule.
struct quadrature_rule {
    std::vector<double> nodes;
    std::vector<double> weights;
};

/// n-point Gauss-Legendre rule on [-1, 1]. Exact for polynomials of
/// degree <= 2n-1. Computed by Newton iteration on Legendre polynomials;
/// results are cached per n.
const quadrature_rule& gauss_legendre(int n);

/// n-point Gauss-Hermite rule with weight exp(-x^2) on (-inf, inf).
/// Cached per n.
const quadrature_rule& gauss_hermite(int n);

/// Integrate f over [a, b] with an n-point Gauss-Legendre rule.
double integrate(const std::function<double(double)>& f, double a, double b,
                 int n = 64);

/// Adaptive Simpson integration with absolute tolerance `tol`.
double integrate_adaptive(const std::function<double(double)>& f, double a,
                          double b, double tol = 1e-9, int max_depth = 40);

/// E[f(Z)] for Z ~ N(0,1) using an n-point Gauss-Hermite rule.
double normal_expectation(const std::function<double(double)>& f, int n = 24);

/// Average of f(r, theta) over a disc of radius R, i.e.
/// (1 / (pi R^2)) * Int_0^R Int_0^{2pi} f(r, theta) r dtheta dr,
/// using nr Gauss-Legendre radial nodes and ntheta angular samples.
double disc_average(const std::function<double(double, double)>& f, double radius,
                    int nr = 48, int ntheta = 64);

}  // namespace csense::stats
