#include "src/stats/quantile.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace csense::stats {

namespace {

// Log-spaced bin edges over [0.1 us, 1e9 us] with ~5% geometric growth.
// bin i covers [x0 * g^i, x0 * g^(i+1)); everything below clamps into
// bin 0, everything at or above the top edge into the last bin.
constexpr double k_x0 = 0.1;
constexpr double k_growth = 1.05;
// ceil(log(1e9 / 0.1) / log(1.05)) = 472 interior edges.
constexpr std::size_t k_bins = 474;

std::size_t bin_index(double x) noexcept {
    if (!(x > k_x0)) return 0;
    const double idx = std::log(x / k_x0) / std::log(k_growth);
    const auto i = static_cast<std::size_t>(idx);
    return std::min(i + 1, k_bins - 1);
}

double bin_midpoint(std::size_t i) noexcept {
    if (i == 0) return k_x0 * 0.5;
    const double lo = k_x0 * std::pow(k_growth, static_cast<double>(i - 1));
    return lo * std::sqrt(k_growth);  // geometric midpoint of [lo, lo * g)
}

}  // namespace

streaming_quantiles::streaming_quantiles() : bins_(k_bins, 0) {}

void streaming_quantiles::add(double x) noexcept {
    ++bins_[bin_index(x)];
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
        abs_delta_sum_.add(std::abs(x - last_));
        ++delta_count_;
    }
    last_ = x;
    ++count_;
    sum_.add(x);
}

void streaming_quantiles::merge(const streaming_quantiles& other) noexcept {
    if (other.count_ == 0) return;
    for (std::size_t i = 0; i < k_bins; ++i) bins_[i] += other.bins_[i];
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    delta_count_ += other.delta_count_;
    last_ = other.last_;
    sum_.add(other.sum_.value());
    abs_delta_sum_.add(other.abs_delta_sum_.value());
}

double streaming_quantiles::quantile(double q) const noexcept {
    if (count_ == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double rank_real = q * static_cast<double>(count_);
    auto rank = static_cast<std::uint64_t>(std::ceil(rank_real));
    rank = std::clamp<std::uint64_t>(rank, 1, count_);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < k_bins; ++i) {
        cumulative += bins_[i];
        if (cumulative >= rank) return bin_midpoint(i);
    }
    return bin_midpoint(k_bins - 1);
}

double streaming_quantiles::mean() const noexcept {
    if (count_ == 0) return 0.0;
    return sum_.value() / static_cast<double>(count_);
}

double streaming_quantiles::jitter() const noexcept {
    if (delta_count_ == 0) return 0.0;
    return abs_delta_sum_.value() / static_cast<double>(delta_count_);
}

std::size_t streaming_quantiles::bin_count() noexcept { return k_bins; }

}  // namespace csense::stats
