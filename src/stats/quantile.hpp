// Deterministic streaming quantile accumulation for latency metrics.
//
// The unsaturated-traffic MAC runs (src/mac/dcf.cpp) feed every
// per-packet enqueue->ACK sojourn time into one of these accumulators;
// campaigns report p50/p99 queueing delay and jitter as first-class
// metrics. The estimator is a fixed log-spaced histogram rather than a
// sampling sketch: counts are integers, bin edges are compile-time
// constants, and merging is integer addition - so the same samples in
// the same order (or merged in a fixed order) produce bit-identical
// quantiles at any thread count, which sampling-based sketches (P^2,
// t-digest with data-dependent centroids) cannot promise.
//
// Resolution: bins grow geometrically by ~5% per bin over
// [0.1 us, 1e9 us], so any reported quantile is within ~2.5% (half a
// bin, geometric midpoint) of the true sample quantile - far below the
// run-to-run spread of a contention simulation. Values outside the
// range clamp into the edge bins.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/stats/kahan.hpp"

namespace csense::stats {

/// Streaming quantile/mean/jitter accumulator over positive samples
/// (microsecond latencies). Deterministic and exactly mergeable.
class streaming_quantiles {
public:
    streaming_quantiles();

    /// Incorporate one sample. Non-positive samples clamp into the
    /// lowest bin (a zero-delay packet is a legal, instant delivery).
    void add(double x) noexcept;

    /// Merge another accumulator into this one. Counts add exactly;
    /// the jitter term loses only the single boundary delta between the
    /// two streams (documented in jitter_us()).
    void merge(const streaming_quantiles& other) noexcept;

    /// Quantile estimate for q in [0, 1]: the geometric midpoint of the
    /// bin holding the ceil(q * count)-th smallest sample. Returns 0
    /// when empty.
    double quantile(double q) const noexcept;

    std::size_t count() const noexcept { return count_; }

    /// Compensated running mean; 0 when empty.
    double mean() const noexcept;

    /// Smallest / largest sample seen; 0 when empty.
    double min() const noexcept { return count_ > 0 ? min_ : 0.0; }
    double max() const noexcept { return count_ > 0 ? max_ : 0.0; }

    /// RFC 3550-flavoured jitter: the mean absolute difference between
    /// consecutive samples, accumulated with compensated summation.
    /// merge() concatenates the two streams without the cross-boundary
    /// delta (one term out of count-1; negligible for campaign-sized
    /// streams and the price of exact mergeability). 0 with fewer than
    /// two samples.
    double jitter() const noexcept;

    /// Number of histogram bins (fixed; exposed for tests).
    static std::size_t bin_count() noexcept;

private:
    std::vector<std::uint64_t> bins_;
    std::uint64_t count_ = 0;
    std::uint64_t delta_count_ = 0;  ///< consecutive-pair count for jitter
    double min_ = 0.0;
    double max_ = 0.0;
    double last_ = 0.0;  ///< previous sample (jitter); valid when count_ > 0
    kahan_sum sum_;
    kahan_sum abs_delta_sum_;
};

}  // namespace csense::stats
