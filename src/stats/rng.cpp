#include "src/stats/rng.hpp"

#include <cmath>

namespace csense::stats {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
}

std::uint64_t hash_tag(std::string_view tag) noexcept {
    // FNV-1a, then one splitmix64 round for avalanche.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : tag) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ULL;
    }
    return splitmix64(h);
}

}  // namespace

rng::rng(std::uint64_t seed) noexcept : seed_(seed) {
    std::uint64_t s = seed;
    for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t rng::next() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double rng::uniform() noexcept {
    // 53 random mantissa bits -> [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double rng::uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
}

std::uint64_t rng::uniform_int(std::uint64_t n) noexcept {
    // Lemire's multiply-shift rejection method, debiased.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
        const std::uint64_t threshold = (0 - n) % n;
        while (lo < threshold) {
            x = next();
            m = static_cast<__uint128_t>(x) * n;
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

double rng::normal() noexcept {
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    double u, v, s;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cached_normal_ = v * factor;
    has_cached_normal_ = true;
    return u * factor;
}

double rng::normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
}

double rng::exponential(double rate) noexcept {
    return -std::log1p(-uniform()) / rate;
}

rng rng::split(std::string_view tag) const noexcept {
    return split(hash_tag(tag));
}

rng rng::split(std::uint64_t tag) const noexcept {
    std::uint64_t s = seed_ ^ rotl(tag, 32) ^ 0xa5a5a5a5a5a5a5a5ULL;
    // Mix once more so that adjacent integer tags give unrelated streams.
    s = splitmix64(s);
    return rng{s ^ tag};
}

}  // namespace csense::stats
