// Deterministic pseudo-random number generation for csense.
//
// All stochastic components of the library draw from this generator so that
// every experiment is reproducible bit-for-bit from a seed, independent of
// the platform's std::random implementation. The generator is
// xoshiro256++ (Blackman & Vigna), seeded through splitmix64.
//
// `rng::split(tag)` derives an independent child stream from a string tag,
// which the Monte Carlo engine uses to implement common random numbers
// across parameter sweeps (same tag -> same stream regardless of what other
// streams were consumed in between).
#pragma once

#include <cstdint>
#include <limits>
#include <string_view>

namespace csense::stats {

/// splitmix64 step; used for seeding and for hashing stream tags.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// xoshiro256++ deterministic PRNG with named-substream derivation.
class rng {
public:
    using result_type = std::uint64_t;

    /// Construct from a 64-bit seed, expanded through splitmix64.
    explicit rng(std::uint64_t seed = 0x5eedc0de5eedc0deULL) noexcept;

    /// UniformRandomBitGenerator interface.
    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept {
        return std::numeric_limits<result_type>::max();
    }
    result_type operator()() noexcept { return next(); }

    /// Next raw 64-bit value.
    std::uint64_t next() noexcept;

    /// Uniform double in [0, 1).
    double uniform() noexcept;

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) noexcept;

    /// Uniform integer in [0, n). Requires n > 0.
    std::uint64_t uniform_int(std::uint64_t n) noexcept;

    /// Standard normal deviate (Marsaglia polar method, internally cached).
    double normal() noexcept;

    /// Normal deviate with the given mean and standard deviation.
    double normal(double mean, double stddev) noexcept;

    /// Exponential deviate with the given rate (mean 1/rate).
    double exponential(double rate) noexcept;

    /// Derive an independent child stream from a string tag. The child
    /// depends only on this generator's seed and the tag, not on how many
    /// values have been drawn, which makes common-random-number designs
    /// straightforward.
    rng split(std::string_view tag) const noexcept;

    /// Derive an independent child stream from an integer tag.
    rng split(std::uint64_t tag) const noexcept;

private:
    std::uint64_t state_[4];
    std::uint64_t seed_;
    double cached_normal_ = 0.0;
    bool has_cached_normal_ = false;
};

}  // namespace csense::stats
