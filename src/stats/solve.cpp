#include "src/stats/solve.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace csense::stats {

root_result find_root(const std::function<double(double)>& f, double a, double b,
                      double tol, int max_iter) {
    double fa = f(a);
    double fb = f(b);
    if (fa == 0.0) return {a, fa, 0, true};
    if (fb == 0.0) return {b, fb, 0, true};
    if ((fa > 0.0) == (fb > 0.0)) {
        throw std::invalid_argument("find_root: f(a) and f(b) must bracket a root");
    }
    double c = a, fc = fa;
    double d = b - a, e = d;
    root_result result;
    for (int iter = 1; iter <= max_iter; ++iter) {
        result.iterations = iter;
        if ((fb > 0.0) == (fc > 0.0)) {
            c = a;
            fc = fa;
            d = e = b - a;
        }
        if (std::abs(fc) < std::abs(fb)) {
            a = b; b = c; c = a;
            fa = fb; fb = fc; fc = fa;
        }
        const double tol1 = 2.0 * 1e-16 * std::abs(b) + 0.5 * tol;
        const double xm = 0.5 * (c - b);
        if (std::abs(xm) <= tol1 || fb == 0.0) {
            result.x = b;
            result.fx = fb;
            result.converged = true;
            return result;
        }
        if (std::abs(e) >= tol1 && std::abs(fa) > std::abs(fb)) {
            double p, q;
            const double s = fb / fa;
            if (a == c) {
                p = 2.0 * xm * s;
                q = 1.0 - s;
            } else {
                const double qq = fa / fc;
                const double r = fb / fc;
                p = s * (2.0 * xm * qq * (qq - r) - (b - a) * (r - 1.0));
                q = (qq - 1.0) * (r - 1.0) * (s - 1.0);
            }
            if (p > 0.0) q = -q;
            p = std::abs(p);
            if (2.0 * p < std::min(3.0 * xm * q - std::abs(tol1 * q), std::abs(e * q))) {
                e = d;
                d = p / q;
            } else {
                d = xm;
                e = d;
            }
        } else {
            d = xm;
            e = d;
        }
        a = b;
        fa = fb;
        b += (std::abs(d) > tol1) ? d : (xm > 0 ? tol1 : -tol1);
        fb = f(b);
    }
    result.x = b;
    result.fx = fb;
    result.converged = false;
    return result;
}

min_result minimize(const std::function<double(double)>& f, double a, double b,
                    double tol, int max_iter) {
    constexpr double golden = 0.3819660112501051;
    double x = a + golden * (b - a);
    double w = x, v = x;
    double fx = f(x), fw = fx, fv = fx;
    double d = 0.0, e = 0.0;
    min_result result;
    for (int iter = 1; iter <= max_iter; ++iter) {
        result.iterations = iter;
        const double xm = 0.5 * (a + b);
        const double tol1 = tol * std::abs(x) + 1e-12;
        const double tol2 = 2.0 * tol1;
        if (std::abs(x - xm) <= tol2 - 0.5 * (b - a)) break;
        bool use_golden = true;
        if (std::abs(e) > tol1) {
            // Parabolic fit through (x, w, v).
            const double r = (x - w) * (fx - fv);
            double q = (x - v) * (fx - fw);
            double p = (x - v) * q - (x - w) * r;
            q = 2.0 * (q - r);
            if (q > 0.0) p = -p;
            q = std::abs(q);
            const double e_old = e;
            e = d;
            if (std::abs(p) < std::abs(0.5 * q * e_old) && p > q * (a - x) &&
                p < q * (b - x)) {
                d = p / q;
                const double u = x + d;
                if (u - a < tol2 || b - u < tol2) d = (xm > x) ? tol1 : -tol1;
                use_golden = false;
            }
        }
        if (use_golden) {
            e = (x >= xm) ? a - x : b - x;
            d = golden * e;
        }
        const double u = (std::abs(d) >= tol1) ? x + d : x + (d > 0 ? tol1 : -tol1);
        const double fu = f(u);
        if (fu <= fx) {
            if (u >= x) a = x; else b = x;
            v = w; w = x; x = u;
            fv = fw; fw = fx; fx = fu;
        } else {
            if (u < x) a = u; else b = u;
            if (fu <= fw || w == x) {
                v = w; w = u;
                fv = fw; fw = fu;
            } else if (fu <= fv || v == x || v == w) {
                v = u;
                fv = fu;
            }
        }
    }
    result.x = x;
    result.fx = fx;
    return result;
}

nelder_mead_result nelder_mead(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> start, std::vector<double> scale, double tol,
    int max_iter) {
    const std::size_t n = start.size();
    if (scale.size() != n) {
        throw std::invalid_argument("nelder_mead: start/scale size mismatch");
    }
    std::vector<std::vector<double>> simplex(n + 1, start);
    std::vector<double> values(n + 1);
    for (std::size_t i = 0; i < n; ++i) simplex[i + 1][i] += scale[i];
    for (std::size_t i = 0; i <= n; ++i) values[i] = f(simplex[i]);

    std::vector<std::size_t> order(n + 1);
    nelder_mead_result result;
    for (int iter = 1; iter <= max_iter; ++iter) {
        result.iterations = iter;
        std::iota(order.begin(), order.end(), std::size_t{0});
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
        const std::size_t best = order[0];
        const std::size_t worst = order[n];
        const std::size_t second_worst = order[n - 1];
        if (std::abs(values[worst] - values[best]) <=
            tol * (std::abs(values[worst]) + std::abs(values[best]) + 1e-30)) {
            result.converged = true;
            result.x = simplex[best];
            result.fx = values[best];
            return result;
        }
        // Centroid of all points but the worst.
        std::vector<double> centroid(n, 0.0);
        for (std::size_t i = 0; i <= n; ++i) {
            if (i == worst) continue;
            for (std::size_t k = 0; k < n; ++k) centroid[k] += simplex[i][k];
        }
        for (double& c : centroid) c /= static_cast<double>(n);

        auto affine = [&](double t) {
            std::vector<double> p(n);
            for (std::size_t k = 0; k < n; ++k) {
                p[k] = centroid[k] + t * (simplex[worst][k] - centroid[k]);
            }
            return p;
        };

        auto reflected = affine(-1.0);
        const double fr = f(reflected);
        if (fr < values[best]) {
            auto expanded = affine(-2.0);
            const double fe = f(expanded);
            if (fe < fr) {
                simplex[worst] = std::move(expanded);
                values[worst] = fe;
            } else {
                simplex[worst] = std::move(reflected);
                values[worst] = fr;
            }
        } else if (fr < values[second_worst]) {
            simplex[worst] = std::move(reflected);
            values[worst] = fr;
        } else {
            auto contracted = affine(fr < values[worst] ? -0.5 : 0.5);
            const double fc = f(contracted);
            if (fc < std::min(fr, values[worst])) {
                simplex[worst] = std::move(contracted);
                values[worst] = fc;
            } else {
                // Shrink toward the best vertex.
                for (std::size_t i = 0; i <= n; ++i) {
                    if (i == best) continue;
                    for (std::size_t k = 0; k < n; ++k) {
                        simplex[i][k] =
                            simplex[best][k] + 0.5 * (simplex[i][k] - simplex[best][k]);
                    }
                    values[i] = f(simplex[i]);
                }
            }
        }
    }
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
    result.x = simplex[order[0]];
    result.fx = values[order[0]];
    result.converged = false;
    return result;
}

}  // namespace csense::stats
