// Scalar root finding and optimization used by the carrier-sense model:
// Brent's method locates the concurrency/multiplexing crossing point
// (the optimal carrier-sense threshold), Brent minimization tunes scalar
// thresholds under shadowing, and Nelder-Mead fits the propagation model
// of Figure 14 by maximum likelihood.
#pragma once

#include <functional>
#include <vector>

namespace csense::stats {

/// Result of a scalar root search.
struct root_result {
    double x = 0.0;
    double fx = 0.0;
    int iterations = 0;
    bool converged = false;
};

/// Find a root of f in [a, b] by Brent's method. Requires f(a) and f(b)
/// to have opposite signs (throws std::invalid_argument otherwise).
root_result find_root(const std::function<double(double)>& f, double a, double b,
                      double tol = 1e-10, int max_iter = 200);

/// Result of a scalar minimization.
struct min_result {
    double x = 0.0;
    double fx = 0.0;
    int iterations = 0;
};

/// Minimize f over [a, b] by Brent's parabolic-interpolation method.
min_result minimize(const std::function<double(double)>& f, double a, double b,
                    double tol = 1e-8, int max_iter = 200);

/// Result of a Nelder-Mead search.
struct nelder_mead_result {
    std::vector<double> x;
    double fx = 0.0;
    int iterations = 0;
    bool converged = false;
};

/// Minimize a multivariate function by the Nelder-Mead simplex method,
/// starting from `start` with initial simplex scale `scale` per axis.
nelder_mead_result nelder_mead(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> start, std::vector<double> scale, double tol = 1e-9,
    int max_iter = 5000);

}  // namespace csense::stats
