#include "src/stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "src/stats/distributions.hpp"

namespace csense::stats {

double jain_index(std::span<const double> throughputs) noexcept {
    double sum = 0.0, sum_sq = 0.0;
    for (double x : throughputs) {
        sum += x;
        sum_sq += x * x;
    }
    if (sum_sq <= 0.0) return 1.0;
    const double n = static_cast<double>(throughputs.size());
    return (sum * sum) / (n * sum_sq);
}

void running_summary::add(double x) noexcept {
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void running_summary::merge(const running_summary& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    mean_ += delta * nb / (na + nb);
    m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double running_summary::variance() const noexcept {
    if (count_ < 2) return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double running_summary::stddev() const noexcept { return std::sqrt(variance()); }

double running_summary::stderr_mean() const noexcept {
    if (count_ == 0) return 0.0;
    return stddev() / std::sqrt(static_cast<double>(count_));
}

double running_summary::ci_halfwidth(double confidence) const {
    if (count_ < 2) return 0.0;
    const double z = normal_quantile(0.5 + 0.5 * confidence);
    return z * stderr_mean();
}

}  // namespace csense::stats
