// Streaming descriptive statistics (Welford's algorithm) with normal-theory
// confidence intervals, used by the Monte Carlo engine and by the testbed
// experiment harness to report run-to-run variation.
#pragma once

#include <cstddef>
#include <span>

namespace csense::stats {

/// Jain's fairness index (sum x)^2 / (n * sum x^2) over a set of
/// throughputs: 1 = perfectly fair, 1/n = one receiver takes all.
/// Returns 1 for empty or all-zero inputs (a silent network is not
/// unfair). Shared by the fairness analysis and the many-pair runs.
double jain_index(std::span<const double> throughputs) noexcept;

/// Single-pass running mean / variance / extrema accumulator.
class running_summary {
public:
    /// Incorporate one observation.
    void add(double x) noexcept;

    /// Merge another summary into this one (parallel reduction).
    void merge(const running_summary& other) noexcept;

    std::size_t count() const noexcept { return count_; }
    double mean() const noexcept { return mean_; }

    /// Unbiased sample variance; 0 for fewer than two observations.
    double variance() const noexcept;
    double stddev() const noexcept;

    /// Standard error of the mean.
    double stderr_mean() const noexcept;

    /// Half-width of the normal-theory confidence interval at the given
    /// two-sided confidence level (default 95%).
    double ci_halfwidth(double confidence = 0.95) const;

    double min() const noexcept { return min_; }
    double max() const noexcept { return max_; }

private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

}  // namespace csense::stats
