#include "src/store/result_store.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>

namespace csense::store {
namespace {

constexpr std::string_view kMagic = "csense-store/1";

bool default_write_file(const std::filesystem::path& path,
                        std::string_view data) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    out.flush();
    return out.good();
}

bool default_rename_file(const std::filesystem::path& from,
                         const std::filesystem::path& to) {
    std::error_code ec;
    std::filesystem::rename(from, to, ec);
    return !ec;
}

/// Reads one whole file; nullopt when it cannot be opened.
std::optional<std::string> read_file(const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return std::nullopt;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) return std::nullopt;
    return buffer.str();
}

/// Consumes "<label> " from the front of `text` and returns the rest of
/// that line; nullopt when the label does not match.
std::optional<std::string_view> take_line(std::string_view* text,
                                          std::string_view label) {
    const std::size_t eol = text->find('\n');
    if (eol == std::string_view::npos) return std::nullopt;
    std::string_view line = text->substr(0, eol);
    text->remove_prefix(eol + 1);
    if (label.empty()) return line;
    if (line.size() < label.size() + 1 ||
        line.substr(0, label.size()) != label || line[label.size()] != ' ') {
        return std::nullopt;
    }
    return line.substr(label.size() + 1);
}

std::string hex64(std::uint64_t v) {
    char buf[17];
    for (int i = 15; i >= 0; --i) {
        buf[i] = "0123456789abcdef"[v & 0xf];
        v >>= 4;
    }
    return std::string(buf, 16);
}

}  // namespace

std::uint64_t fnv1a64(std::string_view data) noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : data) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::optional<record_view> parse_record(std::string_view raw,
                                        std::string* error) {
    const auto fail = [&](const char* why) -> std::optional<record_view> {
        if (error != nullptr) *error = why;
        return std::nullopt;
    };
    std::string_view rest = raw;
    const auto magic = take_line(&rest, "");
    if (!magic || *magic != kMagic) return fail("bad magic line");
    const auto schema = take_line(&rest, "schema");
    if (!schema) return fail("missing schema line");
    const auto stored_key = take_line(&rest, "key");
    if (!stored_key) return fail("missing key line");
    const auto size_field = take_line(&rest, "payload_bytes");
    if (!size_field) return fail("missing payload_bytes line");
    const auto checksum_field = take_line(&rest, "payload_fnv1a64");
    if (!checksum_field) return fail("missing payload_fnv1a64 line");
    const auto separator = take_line(&rest, "");
    if (!separator || *separator != "---") return fail("missing separator");

    std::size_t payload_bytes = 0;
    const auto res = std::from_chars(
        size_field->data(), size_field->data() + size_field->size(),
        payload_bytes);
    if (res.ec != std::errc() ||
        res.ptr != size_field->data() + size_field->size()) {
        return fail("unparseable payload_bytes");
    }
    // Truncation and trailing garbage both fail the exact-length check.
    if (rest.size() != payload_bytes) {
        return fail("payload length mismatch (truncated or padded)");
    }
    if (checksum_field->size() != 16 ||
        *checksum_field != hex64(fnv1a64(rest))) {
        return fail("payload checksum mismatch");
    }
    return record_view{*schema, *stored_key, rest};
}

result_store::result_store(std::filesystem::path root,
                           std::string schema_version, fs_hooks hooks)
    : root_(std::move(root)),
      schema_version_(std::move(schema_version)),
      hooks_(std::move(hooks)) {
    if (!hooks_.write_file) hooks_.write_file = &default_write_file;
    if (!hooks_.rename_file) hooks_.rename_file = &default_rename_file;
    std::error_code ec;
    std::filesystem::create_directories(root_, ec);
    if (ec || !std::filesystem::is_directory(root_)) {
        throw std::runtime_error("result_store: cannot create root '" +
                                 root_.string() + "': " + ec.message());
    }
}

std::filesystem::path result_store::path_for(std::string_view key) const {
    // Human-readable prefix (sanitized, truncated) + full-key hash so
    // distinct keys can never collide on sanitization alone.
    std::string name;
    name.reserve(64);
    for (const char c : key.substr(0, 48)) {
        const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                          c == '.';
        name += safe ? c : '_';
    }
    name += '-';
    name += hex64(fnv1a64(key));
    name += ".rec";
    return root_ / name;
}

std::filesystem::path result_store::quarantine_dir() const {
    return root_ / "quarantine";
}

bool result_store::quarantine(const std::filesystem::path& file) {
    std::error_code ec;
    std::filesystem::create_directories(quarantine_dir(), ec);
    std::filesystem::path dest = quarantine_dir() / file.filename();
    // Keep every quarantined generation: evidence for debugging, and a
    // repeat corruption must not silently overwrite the previous one.
    for (int n = 1; std::filesystem::exists(dest, ec); ++n) {
        dest = quarantine_dir() /
               (file.filename().string() + ".q" + std::to_string(n));
    }
    std::filesystem::rename(file, dest, ec);
    if (ec) {
        // Last resort: a corrupt record must never be re-read as valid.
        std::filesystem::remove(file, ec);
    }
    quarantined_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

std::optional<std::string> result_store::load(std::string_view key) {
    const std::filesystem::path file = path_for(key);
    std::error_code ec;
    if (!std::filesystem::exists(file, ec)) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    const std::optional<std::string> raw = read_file(file);
    const auto corrupt = [&]() -> std::optional<std::string> {
        quarantine(file);
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    };
    if (!raw) return corrupt();

    const auto record = parse_record(*raw);
    if (!record) return corrupt();
    // A record for a different key in this slot means the directory was
    // tampered with or a hash collision was hand-crafted: quarantine.
    if (record->key != key) return corrupt();
    // Stale schema: structurally valid, just from an older store
    // generation. Not corruption — report a miss and let the recompute
    // overwrite it in place.
    if (record->schema != schema_version_) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    return std::string(record->payload);
}

bool result_store::put(std::string_view key, std::string_view payload) {
    if (key.empty() || key.find('\n') != std::string_view::npos) {
        throw std::invalid_argument(
            "result_store::put: key must be non-empty and newline-free");
    }
    std::string record;
    record.reserve(payload.size() + 160);
    record += kMagic;
    record += "\nschema ";
    record += schema_version_;
    record += "\nkey ";
    record += key;
    record += "\npayload_bytes ";
    record += std::to_string(payload.size());
    record += "\npayload_fnv1a64 ";
    record += hex64(fnv1a64(payload));
    record += "\n---\n";
    record += payload;

    const std::filesystem::path file = path_for(key);
    const std::filesystem::path tmp =
        file.parent_path() / (file.filename().string() + ".tmp");
    std::error_code ec;
    std::filesystem::create_directories(file.parent_path(), ec);
    if (!hooks_.write_file(tmp, record) || !hooks_.rename_file(tmp, file)) {
        write_failures_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    writes_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

void result_store::erase(std::string_view key) {
    std::error_code ec;
    std::filesystem::remove(path_for(key), ec);
}

store_stats result_store::stats() const noexcept {
    store_stats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.writes = writes_.load(std::memory_order_relaxed);
    s.write_failures = write_failures_.load(std::memory_order_relaxed);
    s.quarantined = quarantined_.load(std::memory_order_relaxed);
    return s;
}

std::string encode_doubles(const double* values, std::size_t count) {
    std::string out;
    out.reserve(count * 24);
    char buf[64];
    for (std::size_t i = 0; i < count; ++i) {
        const auto res = std::to_chars(buf, buf + sizeof(buf), values[i]);
        if (i != 0) out += ' ';
        out.append(buf, res.ptr);
    }
    return out;
}

bool decode_doubles(std::string_view payload, double* values,
                    std::size_t count) {
    std::size_t pos = 0;
    for (std::size_t i = 0; i < count; ++i) {
        if (i != 0) {
            if (pos >= payload.size() || payload[pos] != ' ') return false;
            ++pos;
        }
        const auto res = std::from_chars(payload.data() + pos,
                                         payload.data() + payload.size(),
                                         values[i]);
        if (res.ec != std::errc()) return false;
        pos = static_cast<std::size_t>(res.ptr - payload.data());
    }
    return pos == payload.size();
}

}  // namespace csense::store
