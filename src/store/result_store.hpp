// Keyed, versioned, crash-safe on-disk result store.
//
// Generalizes the old ad-hoc testbed ensemble cache into the layer the
// ROADMAP's sharding/server mode sits on: expensive deterministic units
// of work (scenario results, campaign replication shards, testbed
// ensembles) persist under a string key as they complete, and a
// restarted run loads completed units instead of recomputing them.
//
// Guarantees:
//  - Atomic visibility: a record is written to `<file>.tmp` and renamed
//    into place, so readers only ever see a complete rename or nothing.
//    (Rename gives consistency, not durability: a power cut may lose a
//    recent record, never corrupt the store silently.)
//  - Self-validation: every record carries a magic line, the store's
//    schema version, its own key, the payload byte count and an FNV-1a
//    checksum. Truncated, bit-flipped or misplaced records fail
//    validation on load.
//  - Quarantine-then-recompute: a record that fails validation is moved
//    to `<root>/quarantine/` (never deleted, never trusted) and load()
//    reports a miss, so the caller transparently recomputes. A record
//    with a different schema version is merely stale: it reads as a
//    miss and is overwritten by the recompute.
//
// Thread safety: concurrent load/put on *distinct* keys is safe
// (distinct files, atomic counters). Concurrent access to one key is
// the caller's responsibility — the campaign layer's per-replication
// keys satisfy this by construction.
//
// The filesystem mutation points (temp-file write, rename) are
// injectable through fs_hooks so fault-injection tests can simulate
// torn writes, truncated files, bit flips and crashes between shards
// without touching production code paths.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace csense::store {

/// FNV-1a 64-bit content hash (record checksums, key -> filename).
std::uint64_t fnv1a64(std::string_view data) noexcept;

/// Structural view into one raw record image (the bytes of a `.rec`
/// file). Views point into the caller's buffer.
struct record_view {
    std::string_view schema;   ///< schema line, e.g. "csense-bench/1"
    std::string_view key;      ///< the key the record claims to hold
    std::string_view payload;  ///< checksum-verified payload bytes
};

/// Validates one raw record image: magic, header lines, payload byte
/// count and FNV-1a checksum. Returns nullopt (and a reason in `error`
/// when non-null) on any structural failure. Schema/key policy is the
/// caller's: result_store::load treats a schema mismatch as a stale
/// miss, the shard-merge validator treats it as a reportable fault.
std::optional<record_view> parse_record(std::string_view raw,
                                        std::string* error = nullptr);

/// Test-only filesystem shim over the store's two mutation points.
/// Default-constructed hooks perform the real operation; tests swap in
/// faulty implementations (write half the bytes, skip the rename, ...).
struct fs_hooks {
    /// Writes `data` to `path`, truncating. Returns false on failure.
    std::function<bool(const std::filesystem::path& path,
                       std::string_view data)>
        write_file;
    /// Renames `from` onto `to` (atomic within a filesystem). Returning
    /// false simulates a crash between the temp write and the rename.
    std::function<bool(const std::filesystem::path& from,
                       const std::filesystem::path& to)>
        rename_file;
};

/// Monotonic operation counters (snapshot; see result_store::stats).
struct store_stats {
    std::uint64_t hits = 0;          ///< valid record loaded
    std::uint64_t misses = 0;        ///< no record / stale schema
    std::uint64_t writes = 0;        ///< records stored
    std::uint64_t write_failures = 0;
    std::uint64_t quarantined = 0;   ///< corrupt records moved aside
};

class result_store {
public:
    /// Opens (creating if needed) the store rooted at `root`. Records
    /// validate against `schema_version` (e.g. "csense-testbed/1"):
    /// bump it whenever the payload semantics change and every old
    /// record becomes a clean miss. Throws std::runtime_error when the
    /// root cannot be created.
    explicit result_store(std::filesystem::path root,
                          std::string schema_version,
                          fs_hooks hooks = {});

    /// Loads the payload stored under `key`. Corrupt records are
    /// quarantined and read as a miss; stale-schema records read as a
    /// miss in place.
    std::optional<std::string> load(std::string_view key);

    /// Stores `payload` under `key` (overwriting) via temp-file +
    /// rename. Returns false when either filesystem step fails.
    bool put(std::string_view key, std::string_view payload);

    /// Removes the record for `key` if present.
    void erase(std::string_view key);

    /// The record file a key maps to (sanitized key + key hash).
    std::filesystem::path path_for(std::string_view key) const;

    const std::filesystem::path& root() const noexcept { return root_; }
    std::filesystem::path quarantine_dir() const;
    store_stats stats() const noexcept;

private:
    bool quarantine(const std::filesystem::path& file);

    std::filesystem::path root_;
    std::string schema_version_;
    fs_hooks hooks_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> writes_{0};
    std::atomic<std::uint64_t> write_failures_{0};
    std::atomic<std::uint64_t> quarantined_{0};
};

/// Exact round-trip codec for fixed-width double payloads (shortest
/// round-trip std::to_chars text, one value per field): the encode ->
/// store -> decode path must reproduce bit-identical doubles or a
/// resumed campaign would diverge from an uninterrupted one.
std::string encode_doubles(const double* values, std::size_t count);

/// Decodes exactly `count` doubles; false on any mismatch.
bool decode_doubles(std::string_view payload, double* values,
                    std::size_t count);

}  // namespace csense::store
