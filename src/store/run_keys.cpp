#include "src/store/run_keys.hpp"

#include <algorithm>

extern char** environ;

namespace csense::store {

std::string env_fingerprint_from_entries(std::vector<std::string> entries) {
    std::erase_if(entries, [](const std::string& entry) {
        const std::string_view e(entry);
        return e.rfind("CSENSE_", 0) != 0 ||
               e.rfind("CSENSE_THREADS=", 0) == 0;
    });
    std::sort(entries.begin(), entries.end());
    std::string fp;
    for (const auto& e : entries) {
        if (!fp.empty()) fp += ';';
        fp += e;
    }
    return fp;
}

std::string current_env_fingerprint() {
    std::vector<std::string> entries;
    for (char** env = environ; env != nullptr && *env != nullptr; ++env) {
        entries.emplace_back(*env);
    }
    return env_fingerprint_from_entries(std::move(entries));
}

std::string scenario_unit_fingerprint(std::string_view scenario_name,
                                      std::uint64_t seed,
                                      std::string_view env_fp) {
    std::string fp;
    fp.reserve(scenario_name.size() + env_fp.size() + 40);
    fp += scenario_name;
    fp += "?seed=";
    fp += std::to_string(seed);
    fp += "&env=";
    fp += env_fp;
    return fp;
}

std::string scenario_record_key(std::string_view unit_fp, int repeat,
                                bool timings) {
    std::string key;
    key.reserve(unit_fp.size() + 40);
    key += "scenario/";
    key += unit_fp;
    key += "&repeat=";
    key += std::to_string(repeat);
    key += "&timings=";
    key += timings ? '1' : '0';
    return key;
}

std::string replication_prefix(std::string_view unit_fp) {
    std::string prefix;
    prefix.reserve(unit_fp.size() + 8);
    prefix += "shard/";
    prefix += unit_fp;
    return prefix;
}

}  // namespace csense::store
