// The one place the checkpoint-store key scheme lives.
//
// PR 7 grew these strings inline in bench/main.cpp; now that three
// binaries must agree on them byte-for-byte (csense_bench writing
// shard stores, csense_merge validating and splicing them,
// csense_sweep_serve using them as sweep-cache keys), the scheme is a
// library contract:
//
//   env fingerprint   sorted "K=V;K=V" of every CSENSE_* variable
//                     except CSENSE_THREADS (results are thread-count
//                     invariant by contract)
//   unit fingerprint  "<scenario>?seed=<n>&env=<fp>"
//   scenario record   "scenario/<unit_fp>&repeat=<n>&timings=<0|1>"
//   replication shard "shard/<unit_fp>/<campaign-suffix>/rep<i>"
//                     (the campaign suffix, e.g. "/n500", is chosen by
//                     the scenario; replication_prefix() returns the
//                     "shard/<unit_fp>" stem)
//   shard manifest    "manifest/run" — one per shard store, written by
//                     a completed `csense_bench --shard i/k` run
//
// Any change here is a store schema change: bump kBenchStoreSchema so
// old records read as stale misses instead of aliasing.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace csense::store {

/// Schema version every csense_bench checkpoint store validates
/// against.
inline constexpr std::string_view kBenchStoreSchema = "csense-bench/1";

/// Key of the per-shard run manifest record (see shard_merge.hpp).
inline constexpr std::string_view kManifestKey = "manifest/run";

/// Builds the environment fingerprint from raw "K=V" entries: keeps
/// CSENSE_* (except CSENSE_THREADS), sorts, joins with ';'.
std::string env_fingerprint_from_entries(std::vector<std::string> entries);

/// Fingerprint of the calling process's own environment.
std::string current_env_fingerprint();

/// "<scenario>?seed=<n>&env=<fp>" — the run-configuration fingerprint
/// every checkpoint record of one scenario keys on.
std::string scenario_unit_fingerprint(std::string_view scenario_name,
                                      std::uint64_t seed,
                                      std::string_view env_fp);

/// "scenario/<unit_fp>&repeat=<n>&timings=<0|1>" — the key of the
/// completed-scenario JSON record.
std::string scenario_record_key(std::string_view unit_fp, int repeat,
                                bool timings);

/// "shard/<unit_fp>" — the stem campaign replication records hang off.
std::string replication_prefix(std::string_view unit_fp);

}  // namespace csense::store
