#include "src/store/shard_merge.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

#include "src/report/json.hpp"
#include "src/store/result_store.hpp"
#include "src/store/run_keys.hpp"

namespace csense::store {
namespace {

constexpr std::string_view kManifestSchema = "csense-shard-manifest/1";

std::optional<std::string> read_file(const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return std::nullopt;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) return std::nullopt;
    return buffer.str();
}

/// The .rec files directly under a store root, sorted by name so issue
/// reporting is deterministic (directory iteration order is not).
std::vector<std::filesystem::path> record_files(
    const std::filesystem::path& root) {
    std::vector<std::filesystem::path> files;
    std::error_code ec;
    for (std::filesystem::directory_iterator it(root, ec), end;
         !ec && it != end; it.increment(ec)) {
        if (!it->is_regular_file(ec)) continue;
        if (it->path().extension() != ".rec") continue;
        files.push_back(it->path());
    }
    std::sort(files.begin(), files.end());
    return files;
}

bool units_equal(const manifest_unit& a, const manifest_unit& b) {
    return a.prefix == b.prefix && a.replications == b.replications &&
           a.shard_size == b.shard_size;
}

bool manifests_agree(const shard_manifest& a, const shard_manifest& b,
                     std::string* why) {
    const auto differ = [&](const char* field) {
        *why = std::string("field '") + field + "' differs";
        return false;
    };
    if (a.shard_count != b.shard_count) return differ("shard_count");
    if (a.seed != b.seed) return differ("seed");
    if (a.filter != b.filter) return differ("filter");
    if (a.repeat != b.repeat) return differ("repeat");
    if (a.timings != b.timings) return differ("timings");
    if (a.env_fp != b.env_fp) return differ("env");
    if (a.scenarios != b.scenarios) return differ("scenarios");
    if (a.units.size() != b.units.size()) return differ("units");
    for (std::size_t i = 0; i < a.units.size(); ++i) {
        if (!units_equal(a.units[i], b.units[i])) return differ("units");
    }
    return true;
}

}  // namespace

std::string encode_manifest(const shard_manifest& manifest) {
    namespace report = csense::report;
    report::json_value doc = report::json_value::object();
    doc["schema"] = kManifestSchema;
    doc["shard_index"] = manifest.shard_index;
    doc["shard_count"] = manifest.shard_count;
    doc["seed"] = manifest.seed;
    doc["filter"] = std::string_view(manifest.filter);
    doc["repeat"] = manifest.repeat;
    doc["timings"] = manifest.timings ? 1 : 0;
    doc["env"] = std::string_view(manifest.env_fp);
    report::json_value scenarios = report::json_value::array();
    for (const auto& name : manifest.scenarios) {
        scenarios.push_back(std::string_view(name));
    }
    doc["scenarios"] = std::move(scenarios);
    report::json_value units = report::json_value::array();
    for (const auto& unit : manifest.units) {
        report::json_value u = report::json_value::object();
        u["prefix"] = std::string_view(unit.prefix);
        u["replications"] = unit.replications;
        u["shard_size"] = unit.shard_size;
        units.push_back(std::move(u));
    }
    doc["units"] = std::move(units);
    return doc.dump(0);
}

std::optional<shard_manifest> decode_manifest(std::string_view payload,
                                              std::string* error) {
    namespace report = csense::report;
    const auto fail = [&](std::string why) -> std::optional<shard_manifest> {
        if (error != nullptr) *error = std::move(why);
        return std::nullopt;
    };
    std::string parse_error;
    const auto doc = report::json_value::parse(payload, &parse_error);
    if (!doc) return fail("unparseable manifest JSON: " + parse_error);
    const report::json_value* schema = doc->find("schema");
    if (schema == nullptr || schema->to_string_value() != kManifestSchema) {
        return fail("wrong manifest schema (want '" +
                    std::string(kManifestSchema) + "')");
    }
    shard_manifest m;
    const auto int_field = [&](const char* name, auto* out) {
        const report::json_value* v = doc->find(name);
        if (v == nullptr || !v->is_number()) return false;
        *out = static_cast<std::remove_pointer_t<decltype(out)>>(
            v->to_int64());
        return true;
    };
    int timings = 0;
    if (!int_field("shard_index", &m.shard_index) ||
        !int_field("shard_count", &m.shard_count) ||
        !int_field("seed", &m.seed) || !int_field("repeat", &m.repeat) ||
        !int_field("timings", &timings)) {
        return fail("missing or non-numeric manifest field");
    }
    m.timings = timings != 0;
    const report::json_value* filter = doc->find("filter");
    const report::json_value* env = doc->find("env");
    if (filter == nullptr || !filter->is_string() || env == nullptr ||
        !env->is_string()) {
        return fail("missing filter/env field");
    }
    m.filter = filter->to_string_value();
    m.env_fp = env->to_string_value();
    const report::json_value* scenarios = doc->find("scenarios");
    if (scenarios == nullptr || !scenarios->is_array()) {
        return fail("missing scenarios array");
    }
    for (std::size_t i = 0; i < scenarios->size(); ++i) {
        m.scenarios.push_back(scenarios->at(i).to_string_value());
    }
    const report::json_value* units = doc->find("units");
    if (units == nullptr || !units->is_array()) {
        return fail("missing units array");
    }
    for (std::size_t i = 0; i < units->size(); ++i) {
        const report::json_value& u = units->at(i);
        const report::json_value* prefix = u.find("prefix");
        const report::json_value* replications = u.find("replications");
        const report::json_value* shard_size = u.find("shard_size");
        if (prefix == nullptr || !prefix->is_string() ||
            replications == nullptr || !replications->is_number() ||
            shard_size == nullptr || !shard_size->is_number()) {
            return fail("malformed unit entry");
        }
        manifest_unit unit;
        unit.prefix = prefix->to_string_value();
        unit.replications = replications->to_int64();
        unit.shard_size = shard_size->to_int64();
        if (unit.replications < 0 || unit.shard_size < 1) {
            return fail("unit with negative replications or shard_size < 1");
        }
        m.units.push_back(std::move(unit));
    }
    if (m.shard_count < 1 || m.shard_index < 0 ||
        m.shard_index >= m.shard_count) {
        return fail("shard_index/shard_count out of range");
    }
    return m;
}

const char* merge_issue_kind_name(merge_issue_kind kind) {
    switch (kind) {
        case merge_issue_kind::missing_shard: return "missing-shard";
        case merge_issue_kind::manifest_mismatch: return "manifest-mismatch";
        case merge_issue_kind::env_mismatch: return "env-mismatch";
        case merge_issue_kind::corrupt_record: return "corrupt-record";
        case merge_issue_kind::stale_schema: return "stale-schema";
        case merge_issue_kind::duplicate_claim: return "duplicate-claim";
        case merge_issue_kind::coverage_gap: return "coverage-gap";
    }
    return "unknown";
}

int merge_exit_code(const std::vector<merge_issue>& issues) {
    int code = kMergeOk;
    // Precedence: an incomplete/mismatched shard set invalidates finer
    // diagnostics; corruption beats staleness beats ownership beats gaps.
    const auto rank = [](int exit_code) {
        switch (exit_code) {
            case kMergeMissingShard: return 5;
            case kMergeCorrupt: return 4;
            case kMergeStale: return 3;
            case kMergeDuplicate: return 2;
            case kMergeGap: return 1;
            default: return 0;
        }
    };
    for (const auto& issue : issues) {
        int issue_code = kMergeOk;
        switch (issue.kind) {
            case merge_issue_kind::missing_shard:
            case merge_issue_kind::manifest_mismatch:
            case merge_issue_kind::env_mismatch:
                issue_code = kMergeMissingShard;
                break;
            case merge_issue_kind::corrupt_record:
                issue_code = kMergeCorrupt;
                break;
            case merge_issue_kind::stale_schema:
                issue_code = kMergeStale;
                break;
            case merge_issue_kind::duplicate_claim:
                issue_code = kMergeDuplicate;
                break;
            case merge_issue_kind::coverage_gap:
                issue_code = kMergeGap;
                break;
        }
        if (rank(issue_code) > rank(code)) code = issue_code;
    }
    return code;
}

merge_result merge_shard_stores(
    const std::vector<std::filesystem::path>& shard_roots,
    const std::filesystem::path& out_root,
    const std::optional<std::string>& expected_env_fp) {
    merge_result result;
    const int k = static_cast<int>(shard_roots.size());
    const auto issue = [&](merge_issue_kind kind, int shard, std::string key,
                           std::string detail) {
        result.issues.push_back(
            {kind, shard, std::move(key), std::move(detail)});
    };

    // Pass 1: read every record of every shard store, validating
    // structure and schema. std::map keeps per-shard key sets ordered
    // so downstream reporting is deterministic.
    std::vector<std::map<std::string, std::string>> records(
        static_cast<std::size_t>(k));
    std::vector<std::optional<shard_manifest>> manifests(
        static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) {
        const std::filesystem::path& root = shard_roots[i];
        std::error_code ec;
        if (!std::filesystem::is_directory(root, ec)) {
            issue(merge_issue_kind::missing_shard, i, "",
                  "store directory '" + root.string() + "' does not exist");
            continue;
        }
        for (const auto& file : record_files(root)) {
            const auto raw = read_file(file);
            if (!raw) {
                issue(merge_issue_kind::corrupt_record, i,
                      file.filename().string(), "unreadable record file");
                continue;
            }
            std::string error;
            const auto record = parse_record(*raw, &error);
            if (!record) {
                issue(merge_issue_kind::corrupt_record, i,
                      file.filename().string(), error);
                continue;
            }
            if (record->schema != kBenchStoreSchema) {
                issue(merge_issue_kind::stale_schema, i,
                      std::string(record->key),
                      "record schema '" + std::string(record->schema) +
                          "' (store expects '" +
                          std::string(kBenchStoreSchema) + "')");
                continue;
            }
            records[static_cast<std::size_t>(i)].emplace(
                record->key, std::string(record->payload));
        }
        const auto manifest_it =
            records[static_cast<std::size_t>(i)].find(
                std::string(kManifestKey));
        if (manifest_it == records[static_cast<std::size_t>(i)].end()) {
            issue(merge_issue_kind::missing_shard, i, "",
                  "no manifest record — the shard run did not complete");
            continue;
        }
        std::string error;
        auto manifest = decode_manifest(manifest_it->second, &error);
        if (!manifest) {
            issue(merge_issue_kind::corrupt_record, i,
                  std::string(kManifestKey), error);
            continue;
        }
        if (manifest->shard_index != i) {
            issue(merge_issue_kind::manifest_mismatch, i, "",
                  "manifest claims shard " +
                      std::to_string(manifest->shard_index) +
                      " but was passed as shard " + std::to_string(i));
            continue;
        }
        if (manifest->shard_count != k) {
            issue(merge_issue_kind::manifest_mismatch, i, "",
                  "manifest expects " +
                      std::to_string(manifest->shard_count) +
                      " shards, merge was given " + std::to_string(k));
            continue;
        }
        manifests[static_cast<std::size_t>(i)] = std::move(manifest);
    }

    // Pass 2: cross-manifest agreement. The lowest-indexed decoded
    // manifest is the reference the others (and the environment) must
    // match.
    const shard_manifest* reference = nullptr;
    for (int i = 0; i < k; ++i) {
        const auto& manifest = manifests[static_cast<std::size_t>(i)];
        if (!manifest) continue;
        if (reference == nullptr) {
            reference = &*manifest;
            continue;
        }
        std::string why;
        if (!manifests_agree(*reference, *manifest, &why)) {
            issue(merge_issue_kind::manifest_mismatch, i, "",
                  "disagrees with shard " +
                      std::to_string(reference->shard_index) + ": " + why);
        }
    }
    if (reference != nullptr && expected_env_fp &&
        reference->env_fp != *expected_env_fp) {
        issue(merge_issue_kind::env_mismatch, reference->shard_index, "",
              "shards ran under CSENSE_* env '" + reference->env_fp +
                  "' but the merge is running under '" + *expected_env_fp +
                  "'");
    }

    // Pass 3: ownership and coverage against the reference manifest's
    // promise. Owner of replication j is (j / shard_size) % k — the
    // same fixed boundary rule the campaign layer shards by.
    if (reference != nullptr) {
        for (const auto& unit : reference->units) {
            for (std::int64_t j = 0; j < unit.replications; ++j) {
                const int owner = static_cast<int>(
                    (j / unit.shard_size) % static_cast<std::int64_t>(k));
                const std::string key =
                    unit.prefix + "/rep" + std::to_string(j);
                for (int i = 0; i < k; ++i) {
                    const bool present =
                        records[static_cast<std::size_t>(i)].count(key) > 0;
                    if (i == owner && !present &&
                        manifests[static_cast<std::size_t>(i)]) {
                        issue(merge_issue_kind::coverage_gap, i, key,
                              "owned replication record is missing");
                    }
                    if (i != owner && present) {
                        issue(merge_issue_kind::duplicate_claim, i, key,
                              "replication is owned by shard " +
                                  std::to_string(owner));
                    }
                }
            }
        }
        // Anything outside the manifest's promise (old scenario/ records
        // from a non-shard run in the same dir, ...) is skipped, counted,
        // and never merged.
        for (int i = 0; i < k; ++i) {
            for (const auto& [key, payload] :
                 records[static_cast<std::size_t>(i)]) {
                if (key == kManifestKey) continue;
                bool claimed = false;
                for (const auto& unit : reference->units) {
                    if (key.size() > unit.prefix.size() &&
                        key.compare(0, unit.prefix.size(), unit.prefix) ==
                            0 &&
                        key.compare(unit.prefix.size(), 4, "/rep") == 0) {
                        claimed = true;
                        break;
                    }
                }
                if (!claimed) ++result.records_ignored;
            }
        }
    }

    if (reference != nullptr) result.manifest = *reference;
    if (!result.issues.empty() || reference == nullptr) return result;

    // Clean: splice every owned record into the merged store in index
    // order. put() rebuilds each record header around the identical
    // payload, so the merged store is byte-identical to one an
    // unsharded checkpointed run would have written.
    result_store merged(out_root, std::string(kBenchStoreSchema));
    for (const auto& unit : reference->units) {
        for (std::int64_t j = 0; j < unit.replications; ++j) {
            const int owner = static_cast<int>(
                (j / unit.shard_size) % static_cast<std::int64_t>(k));
            const std::string key = unit.prefix + "/rep" + std::to_string(j);
            const auto it =
                records[static_cast<std::size_t>(owner)].find(key);
            merged.put(key, it->second);
            ++result.records_merged;
        }
    }
    return result;
}

}  // namespace csense::store
