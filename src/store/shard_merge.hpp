// Shard-run manifests and the k-way shard-store merge.
//
// A `csense_bench --shard i/k --checkpoint <dir>` run computes only the
// replication shards it owns (index j is owned by process i when
// (j / shard_size) % k == i — the campaign layer's fixed shard
// boundaries, so the partition is deterministic and independent of
// thread count). On success it writes one manifest record
// (store::kManifestKey) describing the run: which slice of which run
// configuration this store holds, and how many replications each
// campaign unit has in total.
//
// merge_shard_stores() validates k such stores against each other and
// against the manifest's coverage promise, then splices every
// replication record into one merged store in index order. Validation
// failures are *collected*, not thrown: the caller gets every issue at
// once (a missing shard plus two corrupt records is three lines, not
// three reruns), and the merged store is only written when the issue
// list is empty — a merge can never silently drop cells.
//
// The merged store is a plain `--checkpoint` store: running
// `csense_bench --checkpoint <merged> --no-timings --json out.json`
// over it replays every scenario from the cached replications and
// emits the exact bytes an unsharded run would have produced.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

namespace csense::store {

/// One campaign unit's coverage promise: records
/// "<prefix>/rep<0..replications-1>" exist across the k stores.
struct manifest_unit {
    std::string prefix;           ///< e.g. "shard/<unit_fp>/n500"
    std::int64_t replications = 0;
    std::int64_t shard_size = 1;  ///< campaign_options::shard_size
};

/// The per-shard run manifest (store key kManifestKey), written only
/// when a `--shard i/k` run completes with no degraded scenario.
struct shard_manifest {
    int shard_index = 0;
    int shard_count = 1;
    std::uint64_t seed = 0;
    std::string filter;
    int repeat = 1;
    bool timings = false;
    std::string env_fp;
    std::vector<std::string> scenarios;  ///< selected scenario names
    std::vector<manifest_unit> units;
};

/// Serialises a manifest as a compact csense-shard-manifest/1 JSON
/// document (the record payload under kManifestKey).
std::string encode_manifest(const shard_manifest& manifest);

/// Parses an encoded manifest; nullopt (and a reason in `error` when
/// non-null) on malformed input or a wrong manifest schema.
std::optional<shard_manifest> decode_manifest(std::string_view payload,
                                              std::string* error = nullptr);

/// Everything that can make a merge refuse to emit output. Ordered by
/// reporting precedence: an incomplete shard set (missing_shard,
/// manifest_mismatch, env_mismatch) invalidates finer diagnostics, so
/// it wins the exit code even when corrupt records were also seen.
enum class merge_issue_kind {
    missing_shard,      ///< shard dir or its manifest record absent
    manifest_mismatch,  ///< shards describe different runs
    env_mismatch,       ///< manifest env fp != expected env fp
    corrupt_record,     ///< structural/checksum failure in a .rec file
    stale_schema,       ///< record from another store schema version
    duplicate_claim,    ///< a record in a shard that does not own it
    coverage_gap,       ///< an owned record is missing
};

const char* merge_issue_kind_name(merge_issue_kind kind);

struct merge_issue {
    merge_issue_kind kind;
    int shard = -1;      ///< shard index, -1 when not shard-specific
    std::string key;     ///< record key or file name, "" when n/a
    std::string detail;  ///< human-readable reason
};

/// csense_merge exit codes (documented in docs/robustness.md).
inline constexpr int kMergeOk = 0;
inline constexpr int kMergeFatal = 1;
inline constexpr int kMergeUsage = 2;
inline constexpr int kMergeCorrupt = 3;
inline constexpr int kMergeStale = 4;
inline constexpr int kMergeMissingShard = 5;
inline constexpr int kMergeDuplicate = 6;
inline constexpr int kMergeGap = 7;

/// Maps an issue list to the exit code of its highest-precedence kind
/// (missing/mismatch > corrupt > stale > duplicate > gap); kMergeOk
/// when empty.
int merge_exit_code(const std::vector<merge_issue>& issues);

struct merge_result {
    std::vector<merge_issue> issues;
    /// The agreed run manifest (set when every shard parsed one and
    /// they match; the merge's emission step needs seed/filter/repeat).
    std::optional<shard_manifest> manifest;
    std::size_t records_merged = 0;   ///< replication records spliced
    std::size_t records_ignored = 0;  ///< keys outside the manifest
};

/// Validates the k shard stores and, when clean, writes every
/// replication record into a fresh store at `out_root` in index order.
/// `expected_env_fp` (pass current_env_fingerprint()) must match every
/// manifest: a merge under different CSENSE_* knobs would emit a JSON
/// document keyed to an environment that never ran. Pass nullopt to
/// skip the check (tests with synthetic fingerprints).
merge_result merge_shard_stores(
    const std::vector<std::filesystem::path>& shard_roots,
    const std::filesystem::path& out_root,
    const std::optional<std::string>& expected_env_fp);

}  // namespace csense::store
