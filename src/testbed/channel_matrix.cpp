#include "src/testbed/channel_matrix.hpp"

#include <cmath>
#include <stdexcept>

#include "src/propagation/path_loss.hpp"
#include "src/propagation/shadowing.hpp"
#include "src/stats/quadrature.hpp"

namespace csense::testbed {

channel_matrix::channel_matrix(const std::vector<placed_node>& nodes,
                               const channel_params& params,
                               mac::radio_config radio)
    : count_(nodes.size()), radio_(radio),
      gains_db_(nodes.size() * nodes.size(), -500.0) {
    if (nodes.empty()) throw std::invalid_argument("channel_matrix: no nodes");
    const propagation::indoor_floor_path_loss loss(
        params.alpha, params.reference_loss_db, params.floor_attenuation_db, 0);
    const double iid_sigma = params.sigma_db * std::sqrt(params.iid_fraction);
    const double corr_sigma =
        params.sigma_db * std::sqrt(1.0 - params.iid_fraction);
    const propagation::iid_shadowing iid(iid_sigma, params.seed);
    const propagation::correlated_shadowing corr(
        corr_sigma, params.decorrelation_m, params.seed ^ 0xc0c0c0c0);
    for (std::size_t a = 0; a < count_; ++a) {
        for (std::size_t b = a + 1; b < count_; ++b) {
            const double d = std::max(node_distance_m(nodes[a], nodes[b]), 0.5);
            const double pl =
                loss.loss_db(d, floors_crossed(nodes[a], nodes[b]));
            // Obstructions are roughly columnar: evaluate the correlated
            // field on the floor plan (x, y) regardless of floor.
            const propagation::position pa{nodes[a].pos.x, nodes[a].pos.y};
            const propagation::position pb{nodes[b].pos.x, nodes[b].pos.y};
            const double sh = corr.shadow_db(pa, pb) +
                              iid.shadow_db(nodes[a].id, nodes[b].id);
            const double gain = -(pl + sh);
            gains_db_[a * count_ + b] = gain;
            gains_db_[b * count_ + a] = gain;
        }
    }
}

double channel_matrix::gain_db(std::uint32_t a, std::uint32_t b) const {
    if (a >= count_ || b >= count_ || a == b) {
        throw std::invalid_argument("channel_matrix::gain_db: bad link");
    }
    return gains_db_[a * count_ + b];
}

double channel_matrix::snr_db(std::uint32_t a, std::uint32_t b) const {
    return radio_.tx_power_dbm + gain_db(a, b) - radio_.noise_floor_dbm;
}

double channel_matrix::expected_delivery(
    std::uint32_t tx, std::uint32_t rx, const capacity::phy_rate& rate,
    int payload_bytes, const capacity::error_model& errors) const {
    const double snr = snr_db(tx, rx);
    if (radio_.fading_sigma_db <= 0.0) {
        return errors.delivery_rate(rate, snr, payload_bytes);
    }
    return stats::normal_expectation(
        [&](double z) {
            return errors.delivery_rate(
                rate, snr + radio_.fading_sigma_db * z, payload_bytes);
        },
        24);
}

std::vector<link> channel_matrix::links_by_delivery(
    double lo, double hi, const capacity::phy_rate& rate, int payload_bytes,
    const capacity::error_model& errors) const {
    std::vector<link> result;
    for (std::uint32_t a = 0; a < count_; ++a) {
        for (std::uint32_t b = 0; b < count_; ++b) {
            if (a == b) continue;
            const double delivery =
                expected_delivery(a, b, rate, payload_bytes, errors);
            if (delivery >= lo && delivery <= hi) {
                result.push_back(link{a, b});
            }
        }
    }
    return result;
}

}  // namespace csense::testbed
