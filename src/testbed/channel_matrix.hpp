// The frozen channel matrix of the synthetic testbed: per-pair link gains
// drawn once from the path-loss/shadowing model the thesis fits to its
// own building (alpha ~ 3.5, sigma ~ 10 dB at 2.4 GHz, Figure 14 /
// footnote 2), plus derived quantities: SNR, expected delivery rate at a
// given bitrate, and link categories for the §4 experiments.
#pragma once

#include <cstdint>
#include <vector>

#include "src/capacity/error_models.hpp"
#include "src/mac/wireless_config.hpp"
#include "src/testbed/layout.hpp"

namespace csense::testbed {

/// Propagation parameters of the synthetic building.
///
/// Shadowing is split between a spatially *correlated* field (obstacles
/// affect all links through a region coherently) and a small i.i.d.
/// residue. Purely i.i.d. shadowing - fine for the analytic model -
/// produces unphysical triangles in a concrete layout (e.g. an interferer
/// 10 m from a receiver yet inaudible to a sender 30 m away), flooding
/// the ensemble with catastrophic hidden terminals real buildings do not
/// exhibit at that rate.
struct channel_params {
    double alpha = 3.5;             ///< thesis' own-testbed fit (fn. 2)
    double sigma_db = 10.0;         ///< total shadowing std dev
    double iid_fraction = 0.25;     ///< variance fraction that is i.i.d.
    double decorrelation_m = 20.0;  ///< correlated-field length scale
    double reference_loss_db = 40.0;///< loss at 1 m, ~2.4 GHz Friis
    double floor_attenuation_db = 6.0;
    std::uint64_t seed = 1;
};

/// A directed sender -> receiver link.
struct link {
    std::uint32_t sender = 0;
    std::uint32_t receiver = 0;
};

/// Frozen channel matrix plus derived link metrics.
class channel_matrix {
public:
    channel_matrix(const std::vector<placed_node>& nodes,
                   const channel_params& params, mac::radio_config radio);

    std::size_t node_count() const noexcept { return count_; }
    const mac::radio_config& radio() const noexcept { return radio_; }

    /// Symmetric link gain in dB (median path loss + frozen shadow).
    double gain_db(std::uint32_t a, std::uint32_t b) const;

    /// Mean SNR of the link in dB (before per-packet fading).
    double snr_db(std::uint32_t a, std::uint32_t b) const;

    /// Expected delivery rate at a bitrate, averaged over per-packet
    /// fading (radio.fading_sigma_db) with the given error model.
    double expected_delivery(std::uint32_t tx, std::uint32_t rx,
                             const capacity::phy_rate& rate, int payload_bytes,
                             const capacity::error_model& errors) const;

    /// All directed links whose 6 Mb/s delivery rate falls within
    /// [lo, hi] - the thesis' link-quality category selector.
    std::vector<link> links_by_delivery(double lo, double hi,
                                        const capacity::phy_rate& rate,
                                        int payload_bytes,
                                        const capacity::error_model& errors) const;

private:
    std::size_t count_;
    mac::radio_config radio_;
    std::vector<double> gains_db_;
};

}  // namespace csense::testbed
