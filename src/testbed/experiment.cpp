#include "src/testbed/experiment.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/capacity/rate_table.hpp"
#include "src/mac/network.hpp"
#include "src/sim/campaign.hpp"
#include "src/stats/rng.hpp"

namespace csense::testbed {
namespace {

/// Extract the six inter-node gains of a two-pair scenario.
mac::two_pair_gains gains_for(const channel_matrix& m, const link& p1,
                              const link& p2) {
    mac::two_pair_gains g;
    g.s1_r1 = m.gain_db(p1.sender, p1.receiver);
    g.s2_r2 = m.gain_db(p2.sender, p2.receiver);
    g.s1_s2 = m.gain_db(p1.sender, p2.sender);
    g.s1_r2 = m.gain_db(p1.sender, p2.receiver);
    g.s2_r1 = m.gain_db(p2.sender, p1.receiver);
    g.r1_r2 = m.gain_db(p1.receiver, p2.receiver);
    return g;
}

bool distinct_nodes(const link& a, const link& b) {
    return a.sender != b.sender && a.sender != b.receiver &&
           a.receiver != b.sender && a.receiver != b.receiver;
}

}  // namespace

testbed make_default_testbed(int node_count, std::uint64_t seed,
                             double fading_sigma_db) {
    testbed bed;
    building b;
    bed.nodes = make_layout(b, node_count, seed);
    bed.radio.fading_sigma_db = fading_sigma_db;
    // 5 GHz (802.11a, the §4 band): ~47 dB Friis loss at 1 m and heavier
    // floor attenuation; the same shadowing environment.
    bed.channel_5ghz.reference_loss_db = 47.0;
    bed.channel_5ghz.floor_attenuation_db = 9.0;
    bed.channel_5ghz.seed = seed ^ 0x5ca1ab1e;
    // 2.4 GHz (the Fig. 14 survey band): ~40 dB at 1 m.
    bed.channel_24ghz.reference_loss_db = 40.0;
    bed.channel_24ghz.floor_attenuation_db = 6.0;
    bed.channel_24ghz.seed = seed ^ 0x5ca1ab1e;  // same obstacles, same shadows
    bed.matrix = std::make_unique<channel_matrix>(bed.nodes, bed.channel_5ghz,
                                                  bed.radio);
    bed.matrix_24ghz = std::make_unique<channel_matrix>(
        bed.nodes, bed.channel_24ghz, bed.radio);
    return bed;
}

experiment_config short_range_config() {
    experiment_config cfg;
    cfg.category_lo = 0.94;
    cfg.category_hi = 1.00;
    // The thesis' short-range ensemble is dominated by mutually-far pairs
    // (multiplexing averages only 58% of optimal): weight the strata
    // toward low sender-sender RSSI.
    cfg.rssi_strata_lo_db = -16.0;
    cfg.rssi_strata_hi_db = 22.0;
    return cfg;
}

experiment_config long_range_config() {
    experiment_config cfg;
    cfg.category_lo = 0.80;
    cfg.category_hi = 0.95;
    // Long-range links span longer distances, so the thesis' competing
    // pairs overlap more often: weight the strata toward the transition.
    cfg.rssi_strata_lo_db = -9.0;
    cfg.rssi_strata_hi_db = 28.0;
    return cfg;
}

experiment_result run_experiment(const testbed& bed,
                                 const experiment_config& config) {
    if (!bed.matrix) throw std::invalid_argument("run_experiment: no matrix");
    const auto& matrix = *bed.matrix;
    const capacity::logistic_per_model errors(config.logistic_width_db);
    const auto& base_rate = capacity::rate_by_mbps(6.0);
    const auto candidates = matrix.links_by_delivery(
        config.category_lo, config.category_hi, base_rate,
        config.payload_bytes, errors);
    if (candidates.size() < 4) {
        throw std::runtime_error(
            "run_experiment: too few links in the delivery category");
    }

    const auto& rates = capacity::thesis_sweep_rates();
    const double duration_us = config.duration_s * 1e6;

    experiment_result result;
    double category_snr_sum = 0.0;
    for (const auto& l : candidates) {
        category_snr_sum += matrix.snr_db(l.sender, l.receiver);
    }
    result.category_snr_db =
        category_snr_sum / static_cast<double>(candidates.size());

    // Each run is one independent replication: its pair sampling and
    // every simulation inside it draw only from the run's own split RNG
    // stream, so runs shard over the campaign layer with results placed
    // by run index (identical for every thread count).
    sim::campaign_options campaign;
    campaign.replications = static_cast<std::size_t>(config.runs);
    campaign.shard_size = 1;  // one packet-level run is plenty per task
    campaign.threads = config.threads;
    campaign.seed = config.seed;
    result.runs = sim::run_replications<run_result>(campaign, [&](
        std::size_t run, stats::rng& picker) {
        // Sample two node-disjoint links from the category. When
        // stratifying, aim each run at a target sender-sender RSSI so the
        // ensemble covers the near / transition / far axis the way the
        // thesis' scatter plots do.
        link p1{}, p2{};
        double target_rssi = 0.0;
        if (config.stratify_rssi) {
            target_rssi = picker.uniform(config.rssi_strata_lo_db,
                                         config.rssi_strata_hi_db);
        }
        int attempts = 0;
        link closest1{}, closest2{};
        double best_miss = 1e300;
        for (;;) {
            p1 = candidates[picker.uniform_int(candidates.size())];
            p2 = candidates[picker.uniform_int(candidates.size())];
            ++attempts;
            if (!distinct_nodes(p1, p2)) {
                if (attempts > 2000) {
                    throw std::runtime_error(
                        "run_experiment: cannot find disjoint pairs");
                }
                continue;
            }
            if (!config.stratify_rssi) break;
            const double rssi = matrix.snr_db(p1.sender, p2.sender);
            const double miss = std::abs(rssi - target_rssi);
            if (miss < best_miss) {
                best_miss = miss;
                closest1 = p1;
                closest2 = p2;
            }
            if (miss <= 2.0 || attempts > 400) {
                p1 = closest1;
                p2 = closest2;
                break;
            }
        }

        run_result r;
        r.pair1 = p1;
        r.pair2 = p2;
        r.snr1_db = matrix.snr_db(p1.sender, p1.receiver);
        r.snr2_db = matrix.snr_db(p2.sender, p2.receiver);
        r.sender_rssi_db = matrix.snr_db(p1.sender, p2.sender);
        const auto gains = gains_for(matrix, p1, p2);
        const std::uint64_t run_seed =
            config.seed * 1000003ULL + static_cast<std::uint64_t>(run);

        // Multiplexing: each pair alone, best rate independently.
        double best1 = 0.0, best2 = 0.0;
        for (const auto& rate : rates) {
            best1 = std::max(best1, mac::run_single_pair(
                                        bed.radio, gains.s1_r1, rate,
                                        duration_us, config.payload_bytes,
                                        run_seed ^ 0x111));
            best2 = std::max(best2, mac::run_single_pair(
                                        bed.radio, gains.s2_r2, rate,
                                        duration_us, config.payload_bytes,
                                        run_seed ^ 0x222));
        }
        r.mux_pps = 0.5 * (best1 + best2);

        // Concurrency and carrier sense: joint runs across the rate sweep,
        // each transmitter's best rate identified independently (§4).
        for (const auto mode :
             {mac::cs_mode::disabled, mac::cs_mode::energy_and_preamble}) {
            double best_p1 = 0.0, best_p2 = 0.0;
            for (const auto& rate : rates) {
                const auto joint = mac::run_two_pair_competition(
                    bed.radio, gains, rate, rate, mode, duration_us,
                    config.payload_bytes, run_seed ^ 0x333);
                best_p1 = std::max(best_p1, joint.pps_pair1);
                best_p2 = std::max(best_p2, joint.pps_pair2);
            }
            if (mode == mac::cs_mode::disabled) {
                r.conc_pair1 = best_p1;
                r.conc_pair2 = best_p2;
                r.conc_pps = best_p1 + best_p2;
            } else {
                r.cs_pair1 = best_p1;
                r.cs_pair2 = best_p2;
                r.cs_pps = best_p1 + best_p2;
            }
        }
        return r;
    });

    for (const auto& r : result.runs) {
        result.avg_mux += r.mux_pps;
        result.avg_conc += r.conc_pps;
        result.avg_cs += r.cs_pps;
        result.avg_optimal += r.optimal_pps();
    }
    const auto n = static_cast<double>(result.runs.size());
    result.avg_mux /= n;
    result.avg_conc /= n;
    result.avg_cs /= n;
    result.avg_optimal /= n;
    return result;
}

}  // namespace csense::testbed
