// The §4 experiment methodology, reproduced end to end:
//  - select sender -> receiver links by 6 Mb/s delivery-rate category
//    (>= 94% = "short range", 80-95% = "long range");
//  - sample competing pair-of-pairs from the category;
//  - for each run, measure multiplexing (each pair alone), concurrency
//    (carrier sense disabled, both senders saturated), and carrier sense
//    (default hardware behaviour), each repeated at every rate in
//    {6, 9, 12, 18, 24} Mb/s with the best rate identified independently
//    per transmitter (the thesis' oracle-adaptation method);
//  - report per-run points (Figures 10-13) and ensemble averages
//    (the §4.1 / §4.2 summary tables).
#pragma once

#include <memory>
#include <vector>

#include "src/testbed/channel_matrix.hpp"

namespace csense::testbed {

/// Experiment knobs. Defaults mirror the thesis.
struct experiment_config {
    int runs = 40;                 ///< competing pair-of-pairs sampled
    double duration_s = 15.0;      ///< per-measurement run time
    int payload_bytes = 1400;
    double category_lo = 0.94;     ///< delivery-rate window at 6 Mb/s
    double category_hi = 1.00;
    std::uint64_t seed = 7;
    double logistic_width_db = 2.5;///< PER waterfall width for the PHY
    /// Stratify sampled pair-of-pairs across the sender-sender RSSI axis
    /// (the x-axis of Figures 11/13, which the thesis' points cover
    /// roughly uniformly). Disable for purely geometric sampling.
    bool stratify_rssi = true;
    double rssi_strata_lo_db = -5.0;
    double rssi_strata_hi_db = 35.0;
    /// Worker threads for sharding runs over the campaign layer
    /// (src/sim/campaign.hpp). 0 = auto; purely a wall-clock knob -
    /// every run draws from its own split RNG stream, so results are
    /// identical for every value.
    int threads = 0;
};

/// One competing-pairs measurement (one column of Figure 10/12).
struct run_result {
    link pair1, pair2;
    double mux_pps = 0.0;          ///< (best1 + best2) / 2, each alone
    double conc_pps = 0.0;         ///< CS disabled, both saturated
    double cs_pps = 0.0;           ///< CS enabled
    double conc_pair1 = 0.0, conc_pair2 = 0.0;
    double cs_pair1 = 0.0, cs_pair2 = 0.0;
    double sender_rssi_db = 0.0;   ///< sender-sender SNR above the floor
    double snr1_db = 0.0, snr2_db = 0.0;

    /// The thesis' "optimal": best of the strategies actually measured.
    double optimal_pps() const noexcept {
        return std::max(mux_pps, conc_pps);
    }
};

/// Ensemble result: per-run points plus the summary-table averages.
struct experiment_result {
    std::vector<run_result> runs;
    double avg_mux = 0.0;
    double avg_conc = 0.0;
    double avg_cs = 0.0;
    double avg_optimal = 0.0;
    double category_snr_db = 0.0;  ///< mean SNR of the selected links

    double cs_fraction() const noexcept { return avg_cs / avg_optimal; }
    double mux_fraction() const noexcept { return avg_mux / avg_optimal; }
    double conc_fraction() const noexcept { return avg_conc / avg_optimal; }
};

/// A complete synthetic testbed: layout + per-band channel matrices.
/// The thesis runs its §4 experiments in 802.11a mode (5 GHz) but its
/// Figure 14 RSSI survey at 2.4 GHz (fn. 20 notes the two are not
/// directly comparable); we build both matrices over the same layout.
struct testbed {
    std::vector<placed_node> nodes;
    channel_params channel_5ghz;
    channel_params channel_24ghz;
    mac::radio_config radio;
    std::unique_ptr<channel_matrix> matrix;       ///< 5 GHz: §4 experiments
    std::unique_ptr<channel_matrix> matrix_24ghz; ///< 2.4 GHz: Fig. 14 survey
};

/// Build the default ~50-node two-floor testbed. `fading_sigma_db`
/// introduces per-packet wideband fading residue (a few dB, per the
/// appendix's discussion).
testbed make_default_testbed(int node_count = 50, std::uint64_t seed = 11,
                             double fading_sigma_db = 5.0);

/// Run the full §4 experiment over one category window.
experiment_result run_experiment(const testbed& bed,
                                 const experiment_config& config);

/// Convenience: the thesis' two categories.
experiment_config short_range_config();
experiment_config long_range_config();

}  // namespace csense::testbed
