#include "src/testbed/exposed.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/mac/network.hpp"
#include "src/sim/campaign.hpp"
#include "src/stats/rng.hpp"

namespace csense::testbed {

exposed_gain_result run_exposed_gain_experiment(
    const testbed& bed, const experiment_config& config) {
    if (!bed.matrix) {
        throw std::invalid_argument("run_exposed_gain_experiment: no matrix");
    }
    const auto& matrix = *bed.matrix;
    const capacity::logistic_per_model errors(config.logistic_width_db);
    const auto& base_rate = capacity::rate_by_mbps(6.0);
    const auto candidates = matrix.links_by_delivery(
        config.category_lo, config.category_hi, base_rate,
        config.payload_bytes, errors);
    if (candidates.size() < 4) {
        throw std::runtime_error(
            "run_exposed_gain_experiment: too few category links");
    }
    const auto& rates = capacity::thesis_sweep_rates();
    const double duration_us = config.duration_s * 1e6;

    // One run = one replication on the campaign layer: pair selection
    // and the simulations inside draw only from the run's split stream,
    // so runs shard across workers with thread-count-invariant results.
    struct run_gains {
        double base_cs = 0.0;
        double base_exposed = 0.0;
        double adapted_cs = 0.0;
        double adapted_exposed = 0.0;
    };
    sim::campaign_options campaign;
    campaign.replications = static_cast<std::size_t>(config.runs);
    campaign.shard_size = 1;
    campaign.threads = config.threads;
    campaign.seed = config.seed;
    const auto runs = sim::run_replications<run_gains>(campaign, [&](
        std::size_t run, stats::rng& picker) {
        link p1{}, p2{};
        int attempts = 0;
        do {
            p1 = candidates[picker.uniform_int(candidates.size())];
            p2 = candidates[picker.uniform_int(candidates.size())];
            if (++attempts > 1000) {
                throw std::runtime_error(
                    "run_exposed_gain_experiment: cannot find disjoint pairs");
            }
        } while (p1.sender == p2.sender || p1.sender == p2.receiver ||
                 p1.receiver == p2.sender || p1.receiver == p2.receiver);

        mac::two_pair_gains gains;
        gains.s1_r1 = matrix.gain_db(p1.sender, p1.receiver);
        gains.s2_r2 = matrix.gain_db(p2.sender, p2.receiver);
        gains.s1_s2 = matrix.gain_db(p1.sender, p2.sender);
        gains.s1_r2 = matrix.gain_db(p1.sender, p2.receiver);
        gains.s2_r1 = matrix.gain_db(p2.sender, p1.receiver);
        gains.r1_r2 = matrix.gain_db(p1.receiver, p2.receiver);
        const std::uint64_t run_seed =
            config.seed * 2000003ULL + static_cast<std::uint64_t>(run);

        double base_cs = 0.0, base_conc = 0.0;
        double best_cs = 0.0, best_conc = 0.0;
        for (const auto mode :
             {mac::cs_mode::energy_and_preamble, mac::cs_mode::disabled}) {
            double best_p1 = 0.0, best_p2 = 0.0;
            double base_total = 0.0;
            for (const auto& rate : rates) {
                const auto joint = mac::run_two_pair_competition(
                    bed.radio, gains, rate, rate, mode, duration_us,
                    config.payload_bytes, run_seed ^ 0x444);
                if (rate.mbps == 6.0) {
                    base_total = joint.total_pps();
                }
                best_p1 = std::max(best_p1, joint.pps_pair1);
                best_p2 = std::max(best_p2, joint.pps_pair2);
            }
            if (mode == mac::cs_mode::energy_and_preamble) {
                base_cs = base_total;
                best_cs = best_p1 + best_p2;
            } else {
                base_conc = base_total;
                best_conc = best_p1 + best_p2;
            }
        }
        run_gains gains_out;
        gains_out.base_cs = base_cs;
        gains_out.base_exposed = std::max(base_cs, base_conc);
        gains_out.adapted_cs = best_cs;
        gains_out.adapted_exposed = std::max(best_cs, best_conc);
        return gains_out;
    });

    exposed_gain_result result;
    for (const auto& r : runs) {
        result.base_cs += r.base_cs;
        result.base_exposed += r.base_exposed;
        result.adapted_cs += r.adapted_cs;
        result.adapted_exposed += r.adapted_exposed;
    }
    const auto n = static_cast<double>(config.runs);
    result.base_cs /= n;
    result.base_exposed /= n;
    result.adapted_cs /= n;
    result.adapted_exposed /= n;
    return result;
}

}  // namespace csense::testbed
