// The §5 informal experiment: how much does exploiting exposed terminals
// buy, compared with (and on top of) bitrate adaptation? The thesis
// reports, on the short-range test set:
//  - bitrate adaptation alone more than doubles throughput over the
//    6 Mb/s base rate;
//  - perfectly exploiting exposed terminals at the base rate gains just
//    shy of 10%;
//  - exposed-terminal exploitation on top of adaptation adds only ~3%.
#pragma once

#include "src/testbed/experiment.hpp"

namespace csense::testbed {

/// Ensemble averages for the four strategies of the comparison.
struct exposed_gain_result {
    double base_cs = 0.0;        ///< 6 Mb/s, carrier sense
    double base_exposed = 0.0;   ///< 6 Mb/s, best of CS / concurrency per run
    double adapted_cs = 0.0;     ///< best rate, carrier sense
    double adapted_exposed = 0.0;///< best rate, best of CS / concurrency

    /// Adaptation gain over base rate (thesis: "more than doubles").
    double adaptation_gain() const noexcept { return adapted_cs / base_cs; }
    /// Exposed-terminal gain at fixed base rate (thesis: ~1.10).
    double exposed_gain_base() const noexcept {
        return base_exposed / base_cs;
    }
    /// Exposed-terminal gain on top of adaptation (thesis: ~1.03).
    double exposed_gain_adapted() const noexcept {
        return adapted_exposed / adapted_cs;
    }
};

/// Run the comparison on the short-range ensemble.
exposed_gain_result run_exposed_gain_experiment(
    const testbed& bed, const experiment_config& config);

}  // namespace csense::testbed
