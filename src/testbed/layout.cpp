#include "src/testbed/layout.hpp"

#include <cmath>
#include <stdexcept>

#include "src/stats/rng.hpp"

namespace csense::testbed {

std::vector<placed_node> make_layout(const building& b, int count,
                                     std::uint64_t seed) {
    if (count < 1 || b.floors < 1) {
        throw std::invalid_argument("make_layout: count and floors must be >= 1");
    }
    std::vector<placed_node> nodes;
    nodes.reserve(count);
    stats::rng gen(seed);
    const int per_floor = (count + b.floors - 1) / b.floors;
    // Grid shape close to the floor's aspect ratio.
    const int cols = std::max(
        1, static_cast<int>(std::lround(
               std::sqrt(per_floor * b.width_m / b.depth_m))));
    const int rows = (per_floor + cols - 1) / cols;
    const double dx = b.width_m / cols;
    const double dy = b.depth_m / rows;
    for (int i = 0; i < count; ++i) {
        const int floor = i / per_floor;
        const int slot = i % per_floor;
        const int cx = slot % cols;
        const int cy = slot / cols;
        placed_node node;
        node.id = static_cast<std::uint32_t>(i);
        node.floor = floor;
        // Jitter within the central 80% of the grid cell.
        node.pos.x = (cx + 0.1 + 0.8 * gen.uniform()) * dx;
        node.pos.y = (cy + 0.1 + 0.8 * gen.uniform()) * dy;
        node.pos.z = floor * b.floor_height_m;
        nodes.push_back(node);
    }
    return nodes;
}

double node_distance_m(const placed_node& a, const placed_node& b) {
    return propagation::distance(a.pos, b.pos);
}

int floors_crossed(const placed_node& a, const placed_node& b) {
    return std::abs(a.floor - b.floor);
}

}  // namespace csense::testbed
