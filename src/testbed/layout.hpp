// Synthetic stand-in for the thesis' physical testbed: ~50 single-board
// computers "scattered about two closely-coupled floors of a large,
// modern office building" (§4). Nodes are placed on a jittered grid per
// floor, deterministically from a seed.
#pragma once

#include <cstdint>
#include <vector>

#include "src/propagation/units.hpp"

namespace csense::testbed {

/// One placed testbed node.
struct placed_node {
    std::uint32_t id = 0;
    propagation::position3 pos;  ///< meters; z encodes the floor height
    int floor = 0;
};

/// Building geometry. The default footprint corresponds to the thesis'
/// "large, modern office building": node pairs span from ~20 m neighbours
/// to >150 m across-the-building separations, so sampled competing pairs
/// cover the whole near / transition / far spectrum.
struct building {
    double width_m = 125.0;     ///< per-floor footprint
    double depth_m = 80.0;
    double floor_height_m = 4.0;
    int floors = 2;
};

/// Deterministic jittered-grid layout of `count` nodes over the floors.
std::vector<placed_node> make_layout(const building& b, int count,
                                     std::uint64_t seed);

/// 3-D distance between two placed nodes (floor height included).
double node_distance_m(const placed_node& a, const placed_node& b);

/// Number of floors separating two nodes.
int floors_crossed(const placed_node& a, const placed_node& b);

}  // namespace csense::testbed
