#include "src/testbed/rssi_survey.hpp"

#include <stdexcept>

#include "src/stats/rng.hpp"

namespace csense::testbed {

rssi_survey_result run_rssi_survey(const testbed& bed,
                                   const rssi_survey_config& config) {
    // The survey runs in the 2.4 GHz band, like the thesis' (fn. 20).
    if (!bed.matrix_24ghz) {
        throw std::invalid_argument("run_rssi_survey: no 2.4 GHz matrix");
    }
    const auto& matrix = *bed.matrix_24ghz;
    rssi_survey_result result;
    result.true_alpha = bed.channel_24ghz.alpha;
    result.true_sigma_db = bed.channel_24ghz.sigma_db;
    stats::rng gen(config.seed);

    for (std::uint32_t a = 0; a < bed.nodes.size(); ++a) {
        for (std::uint32_t b = a + 1; b < bed.nodes.size(); ++b) {
            propagation::rssi_observation obs;
            obs.distance = node_distance_m(bed.nodes[a], bed.nodes[b]);
            const double snr = matrix.snr_db(a, b) +
                               config.measurement_noise_db * gen.normal();
            if (snr < config.detection_threshold_db) {
                obs.censored = true;
                ++result.censored_count;
            } else {
                obs.snr_db = snr;
            }
            result.observations.push_back(obs);
        }
    }

    result.fit = propagation::fit_path_loss(
        result.observations, config.reference_distance_m,
        config.detection_threshold_db, propagation::censoring_mode::censored);
    result.naive_fit = propagation::fit_path_loss(
        result.observations, config.reference_distance_m,
        config.detection_threshold_db, propagation::censoring_mode::ignore);
    return result;
}

}  // namespace csense::testbed
