// The Figure 14 survey: measure "RSSI" (mean SNR) for every detectable
// node pair in the testbed, mark sub-threshold pairs as censored, and fit
// the path-loss/shadowing model by maximum likelihood - recovering the
// parameters the channel was generated with (the thesis recovers
// alpha = 3.6, sigma = 10.4 dB on its hardware).
#pragma once

#include <vector>

#include "src/propagation/ml_fit.hpp"
#include "src/testbed/experiment.hpp"

namespace csense::testbed {

/// Survey configuration.
struct rssi_survey_config {
    double detection_threshold_db = 4.0;  ///< SNR below which pairs vanish
    double measurement_noise_db = 1.0;    ///< residual probe averaging noise
    double reference_distance_m = 20.0;   ///< the thesis quotes RSSI0(R=20)
    std::uint64_t seed = 3;
};

/// Survey result: dataset plus corrected and naive fits.
struct rssi_survey_result {
    std::vector<propagation::rssi_observation> observations;
    propagation::path_loss_fit fit;        ///< censoring-corrected ML
    propagation::path_loss_fit naive_fit;  ///< ignores invisible links
    double true_alpha = 0.0;
    double true_sigma_db = 0.0;
    int censored_count = 0;
};

/// Run the survey over all node pairs of the testbed.
rssi_survey_result run_rssi_survey(const testbed& bed,
                                   const rssi_survey_config& config);

}  // namespace csense::testbed
