// Known-bad fixture for LP (lint-pragma): pragmas that are malformed,
// name unknown rules, lack justification, or suppress nothing.
#include <random>

double fixture_pragma_bad(unsigned seed) {
    // csense-lint: allow(raw-rng)
    std::mt19937 gen(seed);  // line 7: R2 survives (pragma on 6 is LP)
    // csense-lint: allow(no-such-rule) -- the rule name is wrong
    std::mt19937_64 wide(seed);  // line 9: R2 survives
    // csense-lint: allow(nondeterminism-source) -- nothing here to allow
    const double x = 0.5;  // line 11: unused pragma -> LP at line 10
    return x + static_cast<double>(gen() + wide());
}
