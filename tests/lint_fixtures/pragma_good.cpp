// Known-good fixture for the pragma layer: justified allow-pragmas in
// both positions (own line above, trailing on the line) suppress the
// violation and nothing else.
#include <random>

double fixture_pragma_good(unsigned seed) {
    // csense-lint: allow(raw-rng) -- fixture exercising suppression of
    // a deliberate raw engine; never copy this pattern into src/.
    std::mt19937 gen(seed);
    std::mt19937_64 wide(seed);  // csense-lint: allow(raw-rng) -- trailing-position fixture, deliberate raw engine
    return static_cast<double>(gen() + wide());
}
