// Known-bad fixture for R1 (nondeterminism-source). Every banned
// source below must fire at the exact line test_lint.cpp asserts.
#include <chrono>
#include <ctime>
#include <random>

int fixture_r1() {
    std::random_device entropy;                       // line 8: R1
    const int a = static_cast<int>(entropy());
    const int b = rand();                             // line 10: R1
    srand(42);                                        // line 11: R1
    const auto t = time(nullptr);                     // line 12: R1
    const auto c = clock();                           // line 13: R1
    const auto now =
        std::chrono::steady_clock::now();             // line 15: R1
    const auto wall = std::chrono::system_clock::now();  // line 16: R1
    std::hash<const int*> addr_hash;                  // line 17: R1
    const void* p = &a;
    const auto bits = reinterpret_cast<std::uintptr_t>(p);  // line 19: R1
    return a + b + static_cast<int>(t) + static_cast<int>(c) +
           static_cast<int>(bits) +
           static_cast<int>(now.time_since_epoch().count()) +
           static_cast<int>(wall.time_since_epoch().count()) +
           static_cast<int>(addr_hash(&a));
}
