// Known-good fixture for R1: near-misses the tokenizer must not trip
// on. None of these lines may produce a violation. Mentioning
// std::random_device or steady_clock::now() in comments — or "rand()"
// and "time(nullptr)" in string literals — is fine.
#include <cstdint>
#include <string>

namespace fixture {

struct sampler {
    int time(int x) const { return x; }  // member named time: allowed
    int clock = 0;                        // data member named clock
};

std::uint64_t run_time(std::uint64_t t) { return t; }  // suffix match

int fixture_r1_good() {
    sampler s;
    const int a = s.time(3);          // member call, not ::time
    const auto b = run_time(9);       // identifier merely ends in "time"
    const std::string msg = "rand() and time(nullptr) and R\"(clock())\"";
    const std::uint64_t time_us = 7;  // identifier, no call
    std::hash<std::string> h;         // hashing a value type: allowed
    return a + static_cast<int>(b + time_us + h(msg)) + s.clock;
}

}  // namespace fixture
