// Known-bad fixture for R2 (raw-rng): raw <random> engines and
// distributions outside the split-RNG facade.
#include <random>

double fixture_r2(unsigned seed) {
    std::mt19937 gen(seed);                            // line 6: R2
    std::uniform_real_distribution<double> u(0, 1);    // line 7: R2
    std::normal_distribution<double> n(0, 1);          // line 8: R2
    std::mt19937_64 wide(seed);                        // line 9: R2
    return u(gen) + n(gen) + static_cast<double>(wide());
}
