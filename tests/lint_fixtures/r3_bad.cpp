// Known-bad fixture for R3 (unordered-iteration): folds whose order
// depends on hash-table layout.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

struct fixture_stats {
    std::unordered_map<std::uint32_t, std::uint64_t> decoded_by_src;
};

double fixture_r3(const fixture_stats& stats,
                  const std::unordered_set<int>& live) {
    double sum = 0.0;
    for (const auto& [src, count] : stats.decoded_by_src) {  // line 15: R3
        sum += static_cast<double>(src + count);
    }
    const auto& by_src = stats.decoded_by_src;
    for (const auto& entry : by_src) {                       // line 19: R3
        sum += static_cast<double>(entry.second);
    }
    for (auto it = live.begin(); it != live.end(); ++it) {   // line 22: R3
        sum += *it;
    }
    return sum;
}
