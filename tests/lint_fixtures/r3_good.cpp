// Known-good fixture for R3: point lookups into unordered containers
// and loops over ordered containers are fine, and a justified
// allow-pragma suppresses a deliberate order-free fold.
#include <cstdint>
#include <unordered_map>
#include <vector>

double fixture_r3_good(
    const std::unordered_map<std::uint32_t, double>& gains,
    const std::vector<std::uint32_t>& order) {
    double sum = 0.0;
    for (const auto id : order) {  // ordered container: allowed
        const auto it = gains.find(id);  // point lookup: allowed
        if (it != gains.end()) sum += it->second;
    }
    std::size_t links = 0;
    // csense-lint: allow(unordered-iteration) -- pure counting fold;
    // the result is independent of visitation order.
    for (const auto& [id, gain] : gains) {
        links += static_cast<std::size_t>(id == id);
        static_cast<void>(gain);
    }
    return sum + static_cast<double>(links);
}
