// Known-bad fixture for R4 (loop-float-accumulation). test_lint.cpp
// lints this under the synthetic path "src/mac/r4_bad.cpp" so the rule
// is in scope, and feeds r4_header.hpp as the sibling-header context
// (declaring the float member `total_pps`).
#include <cstddef>
#include <vector>

struct r4_result;

double fixture_r4(const std::vector<double>& samples, r4_result* result);

double fixture_r4_impl(const std::vector<double>& samples, double extra) {
    double sum = 0.0;
    for (const double s : samples) {
        sum += s;                                  // line 15: R4
    }
    std::vector<double> bins(4, 0.0);
    std::size_t i = 0;
    while (i < samples.size()) {
        bins[i % 4] += samples[i];                 // line 20: R4
        ++i;
    }
    for (std::size_t j = 0; j < samples.size(); ++j)
        extra += samples[j];                       // line 24: R4 (braceless)
    return sum + bins[0] + extra;
}
