// Sibling-header context for the R4 fixtures: declares the
// floating-point member a .cpp accumulates into, mirroring how
// multi_pair_result::total_pps is declared in multi_pair.hpp.
#pragma once

struct r4_result {
    double total_pps = 0.0;
    long frames = 0;
};
