// R4 with a member declared only in the sibling header (r4_header.hpp):
// the accumulation target's type is not visible in this file alone.
#include <vector>

struct r4_result;

void fixture_r4_member(const std::vector<double>& pps, r4_result& result);

void fixture_r4_member_impl(const std::vector<double>& pps,
                            r4_result& result);

// Definitions live out of line so the only type information about
// result.total_pps comes from the header context.
void run_fold(const std::vector<double>& pps, r4_result& result) {
    for (const double v : pps) {
        result.total_pps += v;                     // line 16: R4
        result.frames += 1;                        // integer: allowed
    }
}
