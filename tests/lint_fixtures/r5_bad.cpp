// Known-bad fixture for R5 (mutable-static): shared mutable state at
// file, namespace, function and class scope. test_lint.cpp also lints
// this same content under a whitelisted path (src/core/parallel.cpp)
// and expects silence.
#include <cstdint>
#include <string>
#include <vector>

static int fixture_call_count = 0;                    // line 9: R5

namespace fixture {
static std::vector<int> cache;                        // line 12: R5
thread_local std::uint64_t worker_scratch = 0;        // line 13: R5
}  // namespace fixture

int fixture_r5() {
    static std::string last_result;                   // line 17: R5
    last_result = "x";
    return ++fixture_call_count +
           static_cast<int>(fixture::cache.size() +
                            fixture::worker_scratch +
                            last_result.size());
}

struct fixture_registry {
    static int live_instances;                        // line 26: R5
};
