// Known-good fixture for R5: immutable statics, static functions and
// static_cast/static_assert must never fire.
#include <string>
#include <vector>

static_assert(sizeof(int) >= 4, "sanity");

namespace fixture {

static constexpr int kMaxWorkers = 64;          // constexpr: allowed
static const std::string kName = "csense";      // const: allowed

static int helper(int x) { return x + 1; }      // static function: allowed

const std::vector<int>& table() {
    static const std::vector<int> rates = {6, 9, 12, 18};  // const: allowed
    return rates;
}

}  // namespace fixture

int fixture_r5_good() {
    return fixture::helper(fixture::kMaxWorkers) +
           static_cast<int>(fixture::kName.size() +
                            fixture::table().size());
}
