// R6 corpus: std::function reaching the simulator hot path. Linted
// under a src/mac/ (and src/sim/) path label by test_lint.
#include <functional>

namespace csense::mac {

struct scheduler_shim {
    // A member boxing the event action: allocates per schedule.
    std::function<void()> pending_action;  // line 9: R6

    void arm(std::function<void()> action) {  // line 11: R6
        pending_action = action;
    }
};

using timer_callback = std::function<void(double)>;  // line 16: R6

}  // namespace csense::mac
