// R6 corpus, clean side: inline_action captures, near-miss
// identifiers, and the justified-pragma escape hatch.

namespace csense::mac {

struct inline_action_like {
    void operator()() {}
};

struct node {
    inline_action_like wake;  // fixed-size capture: fine

    // Identifiers merely containing "function" are not the std one.
    int function_count = 0;
    void transfer_function() {}

    // The approved shim: explicit type erasure, justified in place.
    // csense-lint: allow(std-function-hot-path) -- fixture exercising the R6 escape hatch for unbounded captures
    std::function<void()> escape_hatch;
};

}  // namespace csense::mac
