// The closed-loop carrier-sense controllers (src/mac/adaptive_cs.hpp):
// clamping, the disabled-policy inertness guarantee (adaptation off must
// leave runs byte-identical - the camp01/camp02 compatibility contract),
// determinism, and convergence of the online iterative fixed point to
// its closed-form equilibrium on a symmetric two-pair topology.
#include <gtest/gtest.h>

#include <cmath>

#include "src/mac/adaptive_cs.hpp"
#include "src/mac/multi_pair.hpp"
#include "src/propagation/units.hpp"

namespace {

using namespace csense;
using mac::cs_adapt_policy;

mac::cs_adaptation_config adapt_config(cs_adapt_policy policy) {
    mac::cs_adaptation_config config;
    config.policy = policy;
    return config;
}

mac::adaptive_cs_sample busy_sample(double busy) {
    mac::adaptive_cs_sample sample;
    sample.busy_fraction = busy;
    sample.attempts = 10.0;
    sample.delivered = 10.0;
    sample.mean_external_power_mw = propagation::dbm_to_mw(-80.0);
    return sample;
}

TEST(AdaptiveCsController, ThresholdClampedToConfiguredRange) {
    auto config = adapt_config(cs_adapt_policy::target_busy);
    config.min_threshold_dbm = -90.0;
    config.max_threshold_dbm = -75.0;
    config.busy_target = 0.5;
    config.busy_gain_db = 50.0;  // huge gain: every step wants to overshoot
    mac::adaptive_cs_controller controller(config, -82.0, -65.0, -95.0, 2,
                                           stats::rng(1));
    // A pegged-busy channel drives the threshold up; it must stop at max.
    for (int i = 0; i < 20; ++i) {
        const double thr = controller.on_epoch(busy_sample(1.0));
        EXPECT_GE(thr, config.min_threshold_dbm);
        EXPECT_LE(thr, config.max_threshold_dbm);
    }
    EXPECT_DOUBLE_EQ(controller.threshold_dbm(), config.max_threshold_dbm);
    // A silent channel drives it down; it must stop at min.
    for (int i = 0; i < 40; ++i) {
        const double thr = controller.on_epoch(busy_sample(0.0));
        EXPECT_GE(thr, config.min_threshold_dbm);
        EXPECT_LE(thr, config.max_threshold_dbm);
    }
    EXPECT_DOUBLE_EQ(controller.threshold_dbm(), config.min_threshold_dbm);
}

TEST(AdaptiveCsController, InitialThresholdClampedToo) {
    auto config = adapt_config(cs_adapt_policy::aimd);
    config.min_threshold_dbm = -85.0;
    config.max_threshold_dbm = -70.0;
    mac::adaptive_cs_controller low(config, -120.0, -65.0, -95.0, 2,
                                    stats::rng(1));
    EXPECT_DOUBLE_EQ(low.threshold_dbm(), -85.0);
    mac::adaptive_cs_controller high(config, -10.0, -65.0, -95.0, 2,
                                     stats::rng(1));
    EXPECT_DOUBLE_EQ(high.threshold_dbm(), -70.0);
}

TEST(AdaptiveCsController, FixedPolicyNeverMoves) {
    mac::adaptive_cs_controller controller(
        adapt_config(cs_adapt_policy::fixed), -82.0, -65.0, -95.0, 2,
        stats::rng(1));
    for (int i = 0; i < 10; ++i) {
        EXPECT_DOUBLE_EQ(controller.on_epoch(busy_sample(i % 2 ? 1.0 : 0.0)),
                         -82.0);
    }
}

TEST(AdaptiveCsController, RejectsBadConfig) {
    auto config = adapt_config(cs_adapt_policy::aimd);
    config.epoch_us = 0.0;
    EXPECT_THROW(mac::adaptive_cs_controller(config, -82.0, -65.0, -95.0, 2,
                                             stats::rng(1)),
                 std::invalid_argument);
    config = adapt_config(cs_adapt_policy::aimd);
    config.min_threshold_dbm = -60.0;
    config.max_threshold_dbm = -90.0;
    EXPECT_THROW(mac::adaptive_cs_controller(config, -82.0, -65.0, -95.0, 2,
                                             stats::rng(1)),
                 std::invalid_argument);
    config = adapt_config(cs_adapt_policy::aimd);
    config.ewma_weight = 0.0;
    EXPECT_THROW(mac::adaptive_cs_controller(config, -82.0, -65.0, -95.0, 2,
                                             stats::rng(1)),
                 std::invalid_argument);
    config = adapt_config(cs_adapt_policy::aimd);
    config.jitter_db = -1.0;
    EXPECT_THROW(mac::adaptive_cs_controller(config, -82.0, -65.0, -95.0, 2,
                                             stats::rng(1)),
                 std::invalid_argument);
}

TEST(AdaptiveCsController, InterferenceEwmaTracksSensedPower) {
    mac::adaptive_cs_controller controller(
        adapt_config(cs_adapt_policy::target_busy), -82.0, -65.0, -95.0, 2,
        stats::rng(1));
    // Starts at the noise floor, then tracks the fed sensed power.
    EXPECT_DOUBLE_EQ(controller.interference_ewma_mw(),
                     propagation::dbm_to_mw(-95.0));
    const double sensed_mw = propagation::dbm_to_mw(-80.0);
    for (int i = 0; i < 50; ++i) controller.on_epoch(busy_sample(0.5));
    EXPECT_NEAR(controller.interference_ewma_mw(), sensed_mw,
                0.01 * sensed_mw);
}

TEST(AdaptiveCsController, AimdBacksOffOnLoss) {
    auto config = adapt_config(cs_adapt_policy::aimd);
    config.ewma_weight = 1.0;  // trust each epoch alone
    mac::adaptive_cs_controller controller(config, -82.0, -65.0, -95.0, 2,
                                           stats::rng(1));
    // Clean epoch: additive raise.
    mac::adaptive_cs_sample clean = busy_sample(0.3);
    const double raised = controller.on_epoch(clean);
    EXPECT_DOUBLE_EQ(raised, -82.0 + config.ai_step_db);
    // Congested epoch: multiplicative (in dB) back-off.
    mac::adaptive_cs_sample lossy = busy_sample(0.3);
    lossy.delivered = 1.0;
    EXPECT_DOUBLE_EQ(controller.on_epoch(lossy),
                     raised - config.md_backoff_db);
}

// Fixture: a symmetric two-pair topology; senders 60 m apart, each
// receiver 10 m from its sender on the outward side.
mac::multi_pair_topology symmetric_two_pair() {
    mac::multi_pair_topology topology;
    topology.senders = {{30.0, 60.0}, {90.0, 60.0}};
    topology.receivers = {{20.0, 60.0}, {100.0, 60.0}};
    return topology;
}

mac::multi_pair_config base_config() {
    mac::multi_pair_config config;
    config.rate = &capacity::rate_by_mbps(6.0);
    config.duration_us = 1e6;
    config.seed = 99;
    return config;
}

TEST(AdaptiveCsRun, DisabledAdaptationIsByteIdentical) {
    // The camp01/camp02 compatibility contract: policy == fixed must not
    // schedule a single epoch event, so a run is exactly (==, not
    // nearly) the run of a config that never heard of adaptation - even
    // when every other adaptation knob is set to something wild. Guards
    // the bench cache keys too: no behaviour change, no key bump.
    const auto topology = symmetric_two_pair();
    const auto plain = mac::run_multi_pair(topology, base_config());
    auto wild = base_config();
    wild.adapt.policy = cs_adapt_policy::fixed;
    wild.adapt.epoch_us = 1.0;
    wild.adapt.busy_gain_db = 1000.0;
    wild.adapt.jitter_db = 50.0;
    const auto same = mac::run_multi_pair(topology, wild);
    ASSERT_EQ(plain.per_pair_pps.size(), same.per_pair_pps.size());
    for (std::size_t i = 0; i < plain.per_pair_pps.size(); ++i) {
        EXPECT_DOUBLE_EQ(plain.per_pair_pps[i], same.per_pair_pps[i]);
    }
    EXPECT_EQ(plain.counters.transmissions, same.counters.transmissions);
    EXPECT_EQ(plain.counters.busy_starts, same.counters.busy_starts);
    EXPECT_TRUE(same.final_cs_threshold_dbm.empty());
    EXPECT_TRUE(same.mean_threshold_trajectory_dbm.empty());
}

TEST(AdaptiveCsRun, AdaptiveRunsAreDeterministic) {
    const auto topology = symmetric_two_pair();
    auto config = base_config();
    config.adapt.policy = cs_adapt_policy::target_busy;
    config.adapt.jitter_db = 0.5;  // exercise the per-node dither streams
    const auto a = mac::run_multi_pair(topology, config);
    const auto b = mac::run_multi_pair(topology, config);
    ASSERT_EQ(a.final_cs_threshold_dbm.size(), 2u);
    ASSERT_EQ(a.final_cs_threshold_dbm.size(),
              b.final_cs_threshold_dbm.size());
    for (std::size_t i = 0; i < a.final_cs_threshold_dbm.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.final_cs_threshold_dbm[i],
                         b.final_cs_threshold_dbm[i]);
    }
    ASSERT_EQ(a.mean_threshold_trajectory_dbm.size(),
              b.mean_threshold_trajectory_dbm.size());
    EXPECT_GT(a.mean_threshold_trajectory_dbm.size(), 10u);
    for (std::size_t i = 0; i < a.per_pair_pps.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.per_pair_pps[i], b.per_pair_pps[i]);
    }
}

TEST(AdaptiveCsRun, FixedPointMatchesClosedFormOnSymmetricTwoPair) {
    // The online iterative_fixed_point balance
    //   log2(1 + S/(N + P_thr)) = 0.5 * log2(1 + S/N)
    // has the closed-form equilibrium
    //   P_thr = S / (sqrt(1 + S/N) - 1) - N,
    // with S the sender->receiver power and N the noise floor. On a
    // symmetric topology both controllers see the same S, so both
    // settled thresholds must match the closed form.
    const auto topology = symmetric_two_pair();
    auto config = base_config();
    config.duration_us = 3e6;  // 60 epochs: well past the transient
    config.adapt.policy = cs_adapt_policy::iterative_fixed_point;
    const auto run = mac::run_multi_pair(topology, config);
    ASSERT_EQ(run.final_cs_threshold_dbm.size(), 2u);

    const double s_mw =
        propagation::dbm_to_mw(config.threshold_dbm_for_distance(10.0));
    const double n_mw = propagation::dbm_to_mw(config.radio.noise_floor_dbm);
    const double snr = s_mw / n_mw;
    const double closed_form_dbm = propagation::mw_to_dbm(
        s_mw / (std::sqrt(1.0 + snr) - 1.0) - n_mw);
    for (const double thr : run.final_cs_threshold_dbm) {
        EXPECT_NEAR(thr, closed_form_dbm, 0.75)
            << "closed form: " << closed_form_dbm;
    }
    // Symmetric topology, symmetric controllers: identical fixed points.
    EXPECT_NEAR(run.final_cs_threshold_dbm[0], run.final_cs_threshold_dbm[1],
                1e-9);
}

TEST(AdaptiveCsRun, ThresholdTrajectoryStaysInsideClampRange) {
    const auto topology = symmetric_two_pair();
    auto config = base_config();
    config.adapt.policy = cs_adapt_policy::target_busy;
    config.adapt.min_threshold_dbm = -88.0;
    config.adapt.max_threshold_dbm = -72.0;
    const auto run = mac::run_multi_pair(topology, config);
    for (const double thr : run.mean_threshold_trajectory_dbm) {
        EXPECT_GE(thr, config.adapt.min_threshold_dbm);
        EXPECT_LE(thr, config.adapt.max_threshold_dbm);
    }
    for (const double thr : run.final_cs_threshold_dbm) {
        EXPECT_GE(thr, config.adapt.min_threshold_dbm);
        EXPECT_LE(thr, config.adapt.max_threshold_dbm);
    }
}

TEST(AdaptiveCsRun, ThresholdDistanceMappingRoundTrips) {
    const auto config = base_config();
    for (const double d : {2.0, 10.0, 42.7, 120.0}) {
        EXPECT_NEAR(config.distance_for_threshold_dbm(
                        config.threshold_dbm_for_distance(d)),
                    d, 1e-9);
    }
    // The factory default maps near the model's tuned crossing distance.
    EXPECT_NEAR(config.distance_for_threshold_dbm(-82.0), 46.4, 0.1);
}

TEST(AdaptiveCsManager, RejectsEmptyLinksAndDoubleStart) {
    mac::network net(mac::radio_config{}, 7);
    mac::mac_config sender_cfg;
    sender_cfg.adapt = adapt_config(cs_adapt_policy::aimd);
    const auto s = net.add_node(sender_cfg);
    const auto r = net.add_node(sender_cfg);
    net.set_link_gain_db(s, r, -60.0);
    EXPECT_THROW(mac::adaptive_cs_manager(net, {}, 1),
                 std::invalid_argument);
    mac::adaptive_cs_manager manager(net, {{s, r}}, 1);
    manager.start();
    EXPECT_THROW(manager.start(), std::logic_error);
}

TEST(AdaptiveCsManager, ControllersReadPerNodeConfig) {
    // The manager must honor each sender's own mac_config::adapt (the
    // per-node hook), including its clamp range, not a shared config.
    mac::network net(mac::radio_config{}, 7);
    mac::mac_config narrow;
    narrow.adapt = adapt_config(cs_adapt_policy::aimd);
    narrow.adapt.min_threshold_dbm = -79.0;
    narrow.adapt.max_threshold_dbm = -78.0;
    const auto s = net.add_node(narrow);
    const auto r = net.add_node(mac::mac_config{});
    net.set_link_gain_db(s, r, -60.0);
    mac::adaptive_cs_manager manager(net, {{s, r}}, 1);
    manager.start();
    // The initial install already applies the per-node clamp.
    EXPECT_DOUBLE_EQ(net.node(s).cs_threshold_dbm(), -79.0);
}

}  // namespace
