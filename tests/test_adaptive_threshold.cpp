// The Kim & Kim iterative fixed-point threshold solver
// (src/core/adaptive_threshold.hpp): agreement with the Brent crossing
// of src/core/threshold.hpp (the closed-form answer for the
// deterministic two-pair model), trajectory bookkeeping, and the
// degenerate regimes.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/adaptive_threshold.hpp"
#include "src/core/threshold.hpp"

namespace {

using namespace csense::core;

expectation_engine make_engine(double sigma, double noise_db = -65.0) {
    model_params p;
    p.alpha = 3.0;
    p.sigma_db = sigma;
    p.noise_db = noise_db;
    quadrature_options q;
    q.radial_nodes = 32;
    q.angular_nodes = 48;
    q.shadow_nodes = 12;
    return expectation_engine(p, q, {30000, 42});
}

TEST(AdaptiveThreshold, MatchesBrentCrossingSigma0) {
    // sigma = 0 makes the two-pair model deterministic: the crossing
    // solved by Brent is the closed-form reference the iteration must
    // reproduce on the symmetric two-pair topology.
    const auto engine = make_engine(0.0);
    for (double rmax : {20.0, 55.0}) {
        const auto brent = optimal_threshold(engine, rmax);
        ASSERT_TRUE(brent.found);
        const auto fp = solve_threshold_fixed_point(engine, rmax);
        EXPECT_TRUE(fp.converged);
        EXPECT_NEAR(fp.d_thresh / brent.d_thresh, 1.0, 1e-4)
            << "rmax = " << rmax;
        // The fixed point sits on the crossing: <C_conc> = <C_mux>.
        EXPECT_NEAR(engine.expected_concurrent(rmax, fp.d_thresh),
                    engine.expected_multiplexing(rmax), 1e-4);
        EXPECT_NEAR(fp.crossing_value, engine.expected_multiplexing(rmax),
                    1e-12);
    }
}

TEST(AdaptiveThreshold, MatchesBrentCrossingShadowed) {
    const auto engine = make_engine(8.0);
    const auto brent = optimal_threshold(engine, 40.0);
    ASSERT_TRUE(brent.found);
    const auto fp = solve_threshold_fixed_point(engine, 40.0);
    EXPECT_TRUE(fp.converged);
    EXPECT_NEAR(fp.d_thresh / brent.d_thresh, 1.0, 1e-4);
}

TEST(AdaptiveThreshold, UndampedGainStillConverges) {
    // gain = 1 is the raw Kim & Kim update; the crossing's log-slope is
    // mild enough that it remains a contraction here.
    const auto engine = make_engine(0.0);
    fixed_point_options options;
    options.gain = 1.0;
    const auto fp = solve_threshold_fixed_point(engine, 20.0, options);
    EXPECT_TRUE(fp.converged);
    EXPECT_NEAR(fp.d_thresh, optimal_threshold(engine, 20.0).d_thresh,
                1e-3 * fp.d_thresh);
}

TEST(AdaptiveThreshold, TrajectoryRecordsEveryIterate) {
    const auto engine = make_engine(0.0);
    const auto fp = solve_threshold_fixed_point(engine, 20.0);
    ASSERT_TRUE(fp.converged);
    ASSERT_EQ(fp.trajectory.size(),
              static_cast<std::size_t>(fp.iterations) + 1);
    // Default start is rmax; the last iterate is the answer.
    EXPECT_DOUBLE_EQ(fp.trajectory.front(), 20.0);
    EXPECT_DOUBLE_EQ(fp.trajectory.back(), fp.d_thresh);
}

TEST(AdaptiveThreshold, HonorsInitialPoint) {
    const auto engine = make_engine(0.0);
    fixed_point_options options;
    options.initial_d = 5.0;
    const auto fp = solve_threshold_fixed_point(engine, 20.0, options);
    EXPECT_DOUBLE_EQ(fp.trajectory.front(), 5.0);
    EXPECT_TRUE(fp.converged);
    EXPECT_NEAR(fp.d_thresh, optimal_threshold(engine, 20.0).d_thresh,
                1e-3 * fp.d_thresh);
}

TEST(AdaptiveThreshold, ExtremeLongRangeHasNoFixedPoint) {
    // N = -20 dB: concurrency beats the fair share even collocated (the
    // CDMA-like regime); mirror optimal_threshold's found = false.
    const auto engine = make_engine(0.0, -20.0);
    const auto fp = solve_threshold_fixed_point(engine, 50.0);
    EXPECT_FALSE(fp.converged);
    EXPECT_DOUBLE_EQ(fp.d_thresh, 0.0);
}

TEST(AdaptiveThreshold, RejectsBadOptions) {
    const auto engine = make_engine(0.0);
    fixed_point_options bad;
    bad.gain = 0.0;
    EXPECT_THROW(solve_threshold_fixed_point(engine, 20.0, bad),
                 std::invalid_argument);
    bad = {};
    bad.gain = 1.5;
    EXPECT_THROW(solve_threshold_fixed_point(engine, 20.0, bad),
                 std::invalid_argument);
    bad = {};
    bad.max_iterations = 0;
    EXPECT_THROW(solve_threshold_fixed_point(engine, 20.0, bad),
                 std::invalid_argument);
    bad = {};
    bad.log_tolerance = 0.0;
    EXPECT_THROW(solve_threshold_fixed_point(engine, 20.0, bad),
                 std::invalid_argument);
    EXPECT_THROW(solve_threshold_fixed_point(engine, 0.0), std::domain_error);
}

}  // namespace
