// Determinism regression for the csense_bench runner: the same scenario
// with the same --seed must produce byte-identical JSON (--no-timings
// strips the only intentionally non-deterministic fields), and a
// different seed must actually reach the stats/rng seeding path and move
// the Monte Carlo metrics. fig05_cs_piecewise is used because its
// "opt_at_3rmax_norm" metric carries the U-statistic Monte Carlo term.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace {

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

int run_bench_in(const std::string& workdir, const std::string& filter,
                 const std::string& json_path, unsigned seed,
                 int threads = 0, const std::string& extra_env = "") {
    std::string command =
        "cd \"" + workdir + "\" && CSENSE_FAST=1 " + extra_env + " \"" +
        CSENSE_BENCH_BINARY + "\" --filter " + filter + " --seed " +
        std::to_string(seed) + " --no-timings --json \"" + json_path + "\"";
    if (threads > 0) command += " --threads " + std::to_string(threads);
    command += " > /dev/null";
    return std::system(command.c_str());
}

int run_bench(const std::string& json_path, unsigned seed) {
    return run_bench_in(".", "fig05_cs_piecewise", json_path, seed);
}

TEST(BenchDeterminism, SameSeedByteIdenticalJson) {
    const std::string dir = ::testing::TempDir();
    const std::string a = dir + "csense_bench_det_a.json";
    const std::string b = dir + "csense_bench_det_b.json";
    ASSERT_EQ(run_bench(a, 1234), 0);
    ASSERT_EQ(run_bench(b, 1234), 0);
    const std::string json_a = read_file(a);
    const std::string json_b = read_file(b);
    ASSERT_FALSE(json_a.empty());
    EXPECT_EQ(json_a, json_b)
        << "same scenario + same seed must serialise identically";
}

TEST(BenchDeterminism, CacheRoundTripByteIdentical) {
    // tab03 exercises bench::dataset(): the first run computes the
    // ensemble and writes the TSV cache, the second reloads it. The JSON
    // must not change across that compute-then-load boundary (guards the
    // full-precision cache write and the .meta sidecar handling).
    const std::filesystem::path work =
        std::filesystem::path(::testing::TempDir()) / "csense_cache_rt";
    std::filesystem::remove_all(work);
    std::filesystem::create_directories(work);
    const std::string a = (work / "cold.json").string();
    const std::string b = (work / "cached.json").string();
    ASSERT_EQ(run_bench_in(work.string(), "tab03_short_summary", a, 99), 0);
    ASSERT_TRUE(std::filesystem::exists(work / "csense_bench_cache"))
        << "expected the run to write an ensemble cache";
    ASSERT_EQ(run_bench_in(work.string(), "tab03_short_summary", b, 99), 0);
    const std::string json_a = read_file(a);
    const std::string json_b = read_file(b);
    ASSERT_FALSE(json_a.empty());
    EXPECT_EQ(json_a, json_b)
        << "cached reload must reproduce the computed run byte-for-byte";
}

TEST(BenchDeterminism, ThreadCountInvariantJson) {
    // The deterministic parallel engine (src/core/parallel.hpp) must
    // make --threads purely a wall-clock knob: 1 vs 4 workers produce
    // byte-identical JSON. fig07 drives the quadrature + threshold-sweep
    // hot path end to end; fig05 adds the Monte Carlo U-statistic term;
    // camp01 drives the campaign layer (src/sim/campaign.hpp) sharding
    // whole packet-level simulations across workers; camp03 adds the
    // per-node adaptive-CS controllers, whose dither streams are keyed
    // by node index and must not depend on shard scheduling; camp06
    // drives the unsaturated-traffic path (per-node Poisson arrival
    // streams, FIFO queues, streaming-quantile latency merges, ARF),
    // whose arrival RNGs are split per node and whose quantile merges
    // run in pair-index order - neither may depend on thread count.
    for (const char* filter : {"fig07_optimal_threshold",
                               "fig05_cs_piecewise",
                               "camp01_cumulative_interference",
                               "camp03_adaptive_convergence",
                               "camp06_unsaturated_load"}) {
        // Fresh working directory per run so cwd-relative scenario
        // artifacts (the testbed cache) can never leak state from the
        // 1-thread run into the 4-thread run and mask a divergence.
        const std::filesystem::path base =
            std::filesystem::path(::testing::TempDir()) /
            (std::string("csense_threads_") + filter);
        std::filesystem::remove_all(base);
        const auto work1 = base / "t1";
        const auto work4 = base / "t4";
        std::filesystem::create_directories(work1);
        std::filesystem::create_directories(work4);
        const std::string t1 = (base / "t1.json").string();
        const std::string t4 = (base / "t4.json").string();
        ASSERT_EQ(run_bench_in(work1.string(), filter, t1, 1, /*threads=*/1),
                  0);
        ASSERT_EQ(run_bench_in(work4.string(), filter, t4, 1, /*threads=*/4),
                  0);
        const std::string json_t1 = read_file(t1);
        ASSERT_FALSE(json_t1.empty());
        EXPECT_EQ(json_t1, read_file(t4))
            << filter << ": --threads must never change the output";
    }
}

TEST(BenchDeterminism, DenseCampaignThreadInvariantJson) {
    // camp05 runs the neighbor-culled medium (audibility CSR + the
    // incremental Kahan power accounting) at scale; its replications
    // shard over the campaign layer, so --threads must stay a pure
    // wall-clock knob there too. The sweep is capped at N = 500 (the
    // same cap the CI heavy-tier smoke uses) to keep the test quick.
    const std::filesystem::path base =
        std::filesystem::path(::testing::TempDir()) / "csense_camp05_threads";
    std::filesystem::remove_all(base);
    const auto work1 = base / "t1";
    const auto work4 = base / "t4";
    std::filesystem::create_directories(work1);
    std::filesystem::create_directories(work4);
    const std::string t1 = (base / "t1.json").string();
    const std::string t4 = (base / "t4.json").string();
    ASSERT_EQ(run_bench_in(work1.string(), "camp05_dense_network", t1, 1,
                           /*threads=*/1, "CSENSE_CAMP05_NMAX=500"),
              0);
    ASSERT_EQ(run_bench_in(work4.string(), "camp05_dense_network", t4, 1,
                           /*threads=*/4, "CSENSE_CAMP05_NMAX=500"),
              0);
    const std::string json_t1 = read_file(t1);
    ASSERT_FALSE(json_t1.empty());
    EXPECT_EQ(json_t1, read_file(t4))
        << "camp05: --threads must never change the output";
}

TEST(BenchDeterminism, RepeatRecordsWallTimeStatsAndKeepsMetrics) {
    // --repeat N reruns each scenario and records per-scenario wall-time
    // stats next to the metrics; --no-timings must keep stripping every
    // wall-clock field so repeated runs stay byte-comparable.
    const std::string dir = ::testing::TempDir();
    const std::string timed = dir + "csense_repeat_timed.json";
    const std::string bare_a = dir + "csense_repeat_bare_a.json";
    const std::string bare_b = dir + "csense_repeat_bare_b.json";
    ASSERT_EQ(std::system((std::string("CSENSE_FAST=1 \"") +
                           CSENSE_BENCH_BINARY +
                           "\" --filter x01_shadowing_example --seed 3 "
                           "--repeat 2 --json \"" +
                           timed + "\" > /dev/null")
                              .c_str()),
              0);
    const std::string timed_json = read_file(timed);
    ASSERT_FALSE(timed_json.empty());
    EXPECT_NE(timed_json.find("\"repeat\": 2"), std::string::npos);
    EXPECT_NE(timed_json.find("elapsed_ms_mean"), std::string::npos);
    EXPECT_NE(timed_json.find("elapsed_ms_min"), std::string::npos);
    EXPECT_NE(timed_json.find("elapsed_ms_max"), std::string::npos);

    ASSERT_EQ(run_bench_in(".", "x01_shadowing_example", bare_a, 3), 0);
    std::string repeated =
        std::string("CSENSE_FAST=1 \"") + CSENSE_BENCH_BINARY +
        "\" --filter x01_shadowing_example --seed 3 --repeat 2 "
        "--no-timings --json \"" + bare_b + "\" > /dev/null";
    ASSERT_EQ(std::system(repeated.c_str()), 0);
    std::string json_a = read_file(bare_a);
    std::string json_b = read_file(bare_b);
    // The only legitimate difference is the "repeat" header field.
    const auto strip_repeat = [](std::string& text) {
        const auto pos = text.find("\"repeat\"");
        ASSERT_NE(pos, std::string::npos);
        text.erase(pos, text.find('\n', pos) - pos);
    };
    strip_repeat(json_a);
    strip_repeat(json_b);
    EXPECT_EQ(json_a, json_b)
        << "--repeat with --no-timings must reproduce the single-run "
           "document (metrics identical, no wall-clock fields)";
}

TEST(BenchDeterminism, FilterAcceptsCommaSeparatedGlobList) {
    // --filter 'a,b' selects the union of the globs - the mechanism the
    // BENCH_pr5.json baseline uses to cover perf_micro and camp05 in
    // one document.
    const std::string list = ::testing::TempDir() + "csense_multi_list.txt";
    ASSERT_EQ(std::system((std::string("\"") + CSENSE_BENCH_BINARY +
                           "\" --list --filter 'x01*,fn12*' > \"" + list +
                           "\"")
                              .c_str()),
              0);
    const std::string text = read_file(list);
    EXPECT_NE(text.find("x01_shadowing_example"), std::string::npos);
    EXPECT_NE(text.find("fn12_slope_bound"), std::string::npos);
    EXPECT_NE(text.find("(2 scenarios)"), std::string::npos) << text;
}

TEST(BenchDeterminism, MarkdownCatalogIsStableAndComplete) {
    // docs/scenarios.md is generated from --list-markdown (the
    // docs_scenarios CMake target); two invocations must be
    // byte-identical, and every scenario --list knows about must appear
    // as a table row, or the checked-in catalog could silently go stale.
    const std::string dir = ::testing::TempDir();
    const std::string a = dir + "csense_catalog_a.md";
    const std::string b = dir + "csense_catalog_b.md";
    const std::string list = dir + "csense_list.txt";
    ASSERT_EQ(std::system((std::string("\"") + CSENSE_BENCH_BINARY +
                           "\" --list-markdown > \"" + a + "\"")
                              .c_str()),
              0);
    ASSERT_EQ(std::system((std::string("\"") + CSENSE_BENCH_BINARY +
                           "\" --list-markdown > \"" + b + "\"")
                              .c_str()),
              0);
    const std::string catalog = read_file(a);
    ASSERT_FALSE(catalog.empty());
    EXPECT_EQ(catalog, read_file(b)) << "--list-markdown must be stable";

    ASSERT_EQ(std::system((std::string("\"") + CSENSE_BENCH_BINARY +
                           "\" --list > \"" + list + "\"")
                              .c_str()),
              0);
    std::istringstream lines(read_file(list));
    std::string line;
    int scenarios = 0;
    while (std::getline(lines, line)) {
        if (line.empty() || line[0] == '(') continue;
        const std::string name = line.substr(0, line.find(' '));
        ++scenarios;
        EXPECT_NE(catalog.find("| `" + name + "` |"), std::string::npos)
            << "scenario missing from the markdown catalog: " << name;
    }
    EXPECT_GE(scenarios, 33);
}

TEST(BenchDeterminism, JsonCatalogIsStableAndComplete) {
    // --list-json is the machine-readable twin of --list-markdown: the
    // same whole-registry catalog as a csense-bench-catalog/1 document.
    // Two invocations must be byte-identical, and every scenario must
    // appear with a name and a recognised tier.
    const std::string dir = ::testing::TempDir();
    const std::string a = dir + "csense_catalog_a.json";
    const std::string b = dir + "csense_catalog_b.json";
    ASSERT_EQ(std::system((std::string("\"") + CSENSE_BENCH_BINARY +
                           "\" --list-json > \"" + a + "\"")
                              .c_str()),
              0);
    ASSERT_EQ(std::system((std::string("\"") + CSENSE_BENCH_BINARY +
                           "\" --list-json > \"" + b + "\"")
                              .c_str()),
              0);
    const std::string catalog = read_file(a);
    ASSERT_FALSE(catalog.empty());
    EXPECT_EQ(catalog, read_file(b)) << "--list-json must be stable";
    EXPECT_NE(catalog.find("\"schema\": \"csense-bench-catalog/1\""),
              std::string::npos);
    // Spot-check entries across tiers, including the new campaign.
    EXPECT_NE(catalog.find("\"name\": \"camp06_unsaturated_load\""),
              std::string::npos);
    EXPECT_NE(catalog.find("\"name\": \"camp05_dense_network\""),
              std::string::npos);
    EXPECT_NE(catalog.find("\"tier\": \"heavy\""), std::string::npos);
    EXPECT_NE(catalog.find("\"tier\": \"slow\""), std::string::npos);
    EXPECT_NE(catalog.find("CSENSE_CAMP06_NMAX"), std::string::npos)
        << "knobs must ride along in the JSON catalog";

    // Same scenario count as --list: the catalog covers the registry.
    const std::string list = dir + "csense_catalog_list.txt";
    ASSERT_EQ(std::system((std::string("\"") + CSENSE_BENCH_BINARY +
                           "\" --list > \"" + list + "\"")
                              .c_str()),
              0);
    std::istringstream lines(read_file(list));
    std::string line;
    int scenarios = 0;
    while (std::getline(lines, line)) {
        if (line.empty() || line[0] == '(') continue;
        const std::string name = line.substr(0, line.find(' '));
        ++scenarios;
        EXPECT_NE(catalog.find("\"name\": \"" + name + "\""),
                  std::string::npos)
            << "scenario missing from the JSON catalog: " << name;
    }
    std::size_t names = 0;
    for (std::size_t pos = catalog.find("\"name\":"); pos != std::string::npos;
         pos = catalog.find("\"name\":", pos + 1)) {
        ++names;
    }
    EXPECT_EQ(names, static_cast<std::size_t>(scenarios));
}

TEST(BenchDeterminism, DifferentSeedChangesMonteCarloMetrics) {
    const std::string dir = ::testing::TempDir();
    const std::string a = dir + "csense_bench_det_s1.json";
    const std::string b = dir + "csense_bench_det_s2.json";
    ASSERT_EQ(run_bench(a, 1), 0);
    ASSERT_EQ(run_bench(b, 2), 0);
    std::string json_a = read_file(a);
    std::string json_b = read_file(b);
    ASSERT_FALSE(json_a.empty());
    ASSERT_FALSE(json_b.empty());
    // The documents differ in the "seed" field by construction; strip it
    // so the comparison only sees scenario output.
    const auto strip_seed = [](std::string& text) {
        const auto pos = text.find("\"seed\"");
        ASSERT_NE(pos, std::string::npos);
        text.erase(pos, text.find('\n', pos) - pos);
    };
    strip_seed(json_a);
    strip_seed(json_b);
    EXPECT_NE(json_a, json_b)
        << "--seed must reach the rng path and perturb Monte Carlo metrics";
}

}  // namespace
