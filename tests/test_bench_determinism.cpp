// Determinism regression for the csense_bench runner: the same scenario
// with the same --seed must produce byte-identical JSON (--no-timings
// strips the only intentionally non-deterministic fields), and a
// different seed must actually reach the stats/rng seeding path and move
// the Monte Carlo metrics. fig05_cs_piecewise is used because its
// "opt_at_3rmax_norm" metric carries the U-statistic Monte Carlo term.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace {

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

int run_bench_in(const std::string& workdir, const std::string& filter,
                 const std::string& json_path, unsigned seed) {
    const std::string command =
        "cd \"" + workdir + "\" && CSENSE_FAST=1 \"" + CSENSE_BENCH_BINARY +
        "\" --filter " + filter + " --seed " + std::to_string(seed) +
        " --no-timings --json \"" + json_path + "\" > /dev/null";
    return std::system(command.c_str());
}

int run_bench(const std::string& json_path, unsigned seed) {
    return run_bench_in(".", "fig05_cs_piecewise", json_path, seed);
}

TEST(BenchDeterminism, SameSeedByteIdenticalJson) {
    const std::string dir = ::testing::TempDir();
    const std::string a = dir + "csense_bench_det_a.json";
    const std::string b = dir + "csense_bench_det_b.json";
    ASSERT_EQ(run_bench(a, 1234), 0);
    ASSERT_EQ(run_bench(b, 1234), 0);
    const std::string json_a = read_file(a);
    const std::string json_b = read_file(b);
    ASSERT_FALSE(json_a.empty());
    EXPECT_EQ(json_a, json_b)
        << "same scenario + same seed must serialise identically";
}

TEST(BenchDeterminism, CacheRoundTripByteIdentical) {
    // tab03 exercises bench::dataset(): the first run computes the
    // ensemble and writes the TSV cache, the second reloads it. The JSON
    // must not change across that compute-then-load boundary (guards the
    // full-precision cache write and the .meta sidecar handling).
    const std::filesystem::path work =
        std::filesystem::path(::testing::TempDir()) / "csense_cache_rt";
    std::filesystem::remove_all(work);
    std::filesystem::create_directories(work);
    const std::string a = (work / "cold.json").string();
    const std::string b = (work / "cached.json").string();
    ASSERT_EQ(run_bench_in(work.string(), "tab03_short_summary", a, 99), 0);
    ASSERT_TRUE(std::filesystem::exists(work / "csense_bench_cache"))
        << "expected the run to write an ensemble cache";
    ASSERT_EQ(run_bench_in(work.string(), "tab03_short_summary", b, 99), 0);
    const std::string json_a = read_file(a);
    const std::string json_b = read_file(b);
    ASSERT_FALSE(json_a.empty());
    EXPECT_EQ(json_a, json_b)
        << "cached reload must reproduce the computed run byte-for-byte";
}

TEST(BenchDeterminism, DifferentSeedChangesMonteCarloMetrics) {
    const std::string dir = ::testing::TempDir();
    const std::string a = dir + "csense_bench_det_s1.json";
    const std::string b = dir + "csense_bench_det_s2.json";
    ASSERT_EQ(run_bench(a, 1), 0);
    ASSERT_EQ(run_bench(b, 2), 0);
    std::string json_a = read_file(a);
    std::string json_b = read_file(b);
    ASSERT_FALSE(json_a.empty());
    ASSERT_FALSE(json_b.empty());
    // The documents differ in the "seed" field by construction; strip it
    // so the comparison only sees scenario output.
    const auto strip_seed = [](std::string& text) {
        const auto pos = text.find("\"seed\"");
        ASSERT_NE(pos, std::string::npos);
        text.erase(pos, text.find('\n', pos) - pos);
    };
    strip_seed(json_a);
    strip_seed(json_b);
    EXPECT_NE(json_a, json_b)
        << "--seed must reach the rng path and perturb Monte Carlo metrics";
}

}  // namespace
