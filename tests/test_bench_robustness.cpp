// Robustness regression for the csense_bench driver: the degraded-record
// path (scenario throws / watchdog budget exceeded), the documented
// exit-code taxonomy (0 ok / 1 fatal / 2 usage / 3 partial) and the
// near-miss suggestions for a filter that matches nothing. Everything
// runs the real binary via the x00_fault_drill scenario, whose
// CSENSE_DRILL_MODE knob injects the failure shapes on demand.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "src/report/json.hpp"

#if __has_include(<sys/wait.h>)
#include <sys/wait.h>
#endif

#ifdef WEXITSTATUS
#define CSENSE_EXIT(code) (WIFEXITED(code) ? WEXITSTATUS(code) : -1)
#else
#define CSENSE_EXIT(code) (code)
#endif

namespace {

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

int run_bench(const std::string& args, const std::string& stdout_path,
              const std::string& env = "") {
    const std::string command = "CSENSE_FAST=1 " + env + " \"" +
                                CSENSE_BENCH_BINARY + "\" " + args + " > \"" +
                                stdout_path + "\" 2>&1";
    return CSENSE_EXIT(std::system(command.c_str()));
}

const csense::report::json_value* find_scenario(
    const csense::report::json_value& doc, const std::string& name) {
    const auto* scenarios = doc.find("scenarios");
    if (scenarios == nullptr) return nullptr;
    for (std::size_t i = 0; i < scenarios->size(); ++i) {
        const auto* entry_name = scenarios->at(i).find("name");
        if (entry_name != nullptr &&
            entry_name->to_string_value() == name) {
            return &scenarios->at(i);
        }
    }
    return nullptr;
}

TEST(BenchRobustness, CleanRunExitsZero) {
    const std::string dir = ::testing::TempDir();
    EXPECT_EQ(run_bench("--filter x00_fault_drill --no-timings",
                        dir + "rb_ok.txt"),
              0);
}

TEST(BenchRobustness, UsageErrorsExitTwo) {
    const std::string dir = ::testing::TempDir();
    EXPECT_EQ(run_bench("--bogus-flag", dir + "rb_usage.txt"), 2);
    EXPECT_EQ(run_bench("--seed not-a-number", dir + "rb_seed.txt"), 2);
    EXPECT_EQ(run_bench("--watchdog-ms -5", dir + "rb_wd.txt"), 2);
}

TEST(BenchRobustness, ShardModeUsageErrorsExitTwo) {
    const std::string dir = ::testing::TempDir();
    const std::string log = dir + "rb_shard.txt";
    // Malformed <i>/<k> forms.
    EXPECT_EQ(run_bench("--shard 3/3 --checkpoint \"" + dir + "rb_sck\"",
                        log),
              2);
    EXPECT_NE(read_file(log).find("bad --shard '3/3'"), std::string::npos)
        << read_file(log);
    EXPECT_EQ(run_bench("--shard a/b --checkpoint \"" + dir + "rb_sck\"",
                        log),
              2);
    EXPECT_EQ(run_bench("--shard -1/3 --checkpoint \"" + dir + "rb_sck\"",
                        log),
              2);
    EXPECT_EQ(run_bench("--shard 2 --checkpoint \"" + dir + "rb_sck\"",
                        log),
              2);
    // A shard without a store would silently discard its slice.
    EXPECT_EQ(run_bench("--shard 0/3 --filter x00_fault_drill", log), 2);
    EXPECT_NE(read_file(log).find("--shard requires --checkpoint"),
              std::string::npos)
        << read_file(log);
    // Timing repetitions are per-process: combined with sharding they
    // would double-count shard records.
    EXPECT_EQ(run_bench("--shard 0/3 --repeat 2 --checkpoint \"" + dir +
                            "rb_sck\" --filter x00_fault_drill",
                        log),
              2);
    EXPECT_NE(
        read_file(log).find("--shard cannot be combined with --repeat"),
        std::string::npos)
        << read_file(log);
}

TEST(BenchRobustness, NoMatchingScenarioIsFatalWithSuggestions) {
    const std::string dir = ::testing::TempDir();
    const std::string log = dir + "rb_nomatch.txt";
    EXPECT_EQ(run_bench("--filter 'camp5*'", log), 1)
        << "a filter matching nothing must be fatal, not a silent ok";
    const std::string text = read_file(log);
    EXPECT_NE(text.find("no scenario matches"), std::string::npos) << text;
    EXPECT_NE(text.find("camp05_dense_network"), std::string::npos)
        << "expected the near-miss suggestion to name the intended "
           "scenario:\n"
        << text;
}

TEST(BenchRobustness, UnwritableJsonIsFatal) {
    // A path that routes through a regular file is unwritable for any
    // uid (tests may run as root, where permission bits don't bite).
    const std::string dir = ::testing::TempDir();
    std::ofstream(dir + "rb_not_a_dir").put('x');
    EXPECT_EQ(run_bench("--filter x00_fault_drill --json \"" + dir +
                        "rb_not_a_dir/out.json\"",
                        dir + "rb_json.txt"),
              1);
}

TEST(BenchRobustness, UnusableCheckpointDirIsFatal) {
    const std::string dir = ::testing::TempDir();
    std::ofstream(dir + "rb_ck_not_a_dir").put('x');
    EXPECT_EQ(run_bench("--filter x00_fault_drill --checkpoint \"" + dir +
                        "rb_ck_not_a_dir/ck\"",
                        dir + "rb_ck.txt"),
              1);
}

TEST(BenchRobustness, ThrowingScenarioDegradesAndRunContinues) {
    const std::string dir = ::testing::TempDir();
    const std::string json = dir + "rb_throw.json";
    // Scenarios run in sorted name order, so pair the drill (x00...)
    // with a scenario sorting after it to prove the run went on.
    const int code = run_bench(
        "--filter 'x01_shadowing_example,x00_fault_drill' --no-timings "
        "--json \"" + json + "\"",
        dir + "rb_throw.txt", "CSENSE_DRILL_MODE=throw");
    EXPECT_EQ(code, 3) << "a degraded scenario must exit partial (3)";
    const auto doc = csense::report::json_value::parse(read_file(json));
    ASSERT_TRUE(doc.has_value());
    const auto* drill = find_scenario(*doc, "x00_fault_drill");
    ASSERT_NE(drill, nullptr);
    EXPECT_EQ(drill->find("status")->to_int64(), -1);
    const auto* degraded = drill->find("degraded");
    ASSERT_NE(degraded, nullptr) << "missing the degraded record";
    EXPECT_EQ(degraded->find("reason")->to_string_value(), "exception");
    EXPECT_NE(degraded->find("detail")->to_string_value().find(
                  "injected scenario exception"),
              std::string::npos);
    // The other scenario completed normally in the same run.
    const auto* other = find_scenario(*doc, "x01_shadowing_example");
    ASSERT_NE(other, nullptr) << "the run must continue past a degraded "
                                 "scenario";
    EXPECT_EQ(other->find("status")->to_int64(), 0);
    EXPECT_EQ(other->find("degraded"), nullptr);
}

TEST(BenchRobustness, WatchdogBudgetDegradesStuckScenario) {
    const std::string dir = ::testing::TempDir();
    const std::string json = dir + "rb_wdto.json";
    // The drill sleeps for 60 s in 5 ms cancellation-checked slices; a
    // 300 ms budget must unwind it promptly via the cooperative token.
    const int code = run_bench(
        "--filter 'x00_fault_drill,x01_shadowing_example' --no-timings "
        "--watchdog-ms 300 --json \"" + json + "\"",
        dir + "rb_wdto.txt",
        "CSENSE_DRILL_MODE=sleep CSENSE_DRILL_MS=60000");
    EXPECT_EQ(code, 3);
    const auto doc = csense::report::json_value::parse(read_file(json));
    ASSERT_TRUE(doc.has_value());
    const auto* drill = find_scenario(*doc, "x00_fault_drill");
    ASSERT_NE(drill, nullptr);
    const auto* degraded = drill->find("degraded");
    ASSERT_NE(degraded, nullptr);
    EXPECT_EQ(degraded->find("reason")->to_string_value(),
              "watchdog_timeout");
    EXPECT_EQ(degraded->find("budget_ms")->to_int64(), 300);
    const auto* other = find_scenario(*doc, "x01_shadowing_example");
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(other->find("status")->to_int64(), 0);
}

TEST(BenchRobustness, GateFailureExitsPartialWithoutDegradedRecord) {
    const std::string dir = ::testing::TempDir();
    const std::string json = dir + "rb_fail.json";
    const int code = run_bench("--filter x00_fault_drill --no-timings "
                               "--json \"" + json + "\"",
                               dir + "rb_fail.txt", "CSENSE_DRILL_MODE=fail");
    EXPECT_EQ(code, 3) << "a completed-but-failed gate is partial, not "
                          "fatal";
    const auto doc = csense::report::json_value::parse(read_file(json));
    ASSERT_TRUE(doc.has_value());
    const auto* drill = find_scenario(*doc, "x00_fault_drill");
    ASSERT_NE(drill, nullptr);
    EXPECT_EQ(drill->find("status")->to_int64(), 1);
    EXPECT_EQ(drill->find("degraded"), nullptr)
        << "gate failures are completed runs; only throws/timeouts "
           "degrade";
}

TEST(BenchRobustness, DegradedScenariosAreNeverCheckpointed) {
    const std::string dir = ::testing::TempDir();
    const std::string ck = dir + "rb_nockpt_store";
    const std::string json_a = dir + "rb_nockpt_a.json";
    const std::string json_b = dir + "rb_nockpt_b.json";
    std::system(("rm -rf \"" + ck + "\"").c_str());
    EXPECT_EQ(run_bench("--filter x00_fault_drill --no-timings "
                        "--checkpoint \"" + ck + "\" --json \"" + json_a +
                        "\"",
                        dir + "rb_nockpt_a.txt", "CSENSE_DRILL_MODE=throw"),
              3);
    // Rerun in ok mode over the same store: had the degraded record been
    // checkpointed, the failure would be replayed from the store. (The
    // drill-mode env var is part of the checkpoint key anyway — use the
    // same mode to prove the stronger property.)
    EXPECT_EQ(run_bench("--filter x00_fault_drill --no-timings "
                        "--checkpoint \"" + ck + "\" --json \"" + json_b +
                        "\"",
                        dir + "rb_nockpt_b.txt", "CSENSE_DRILL_MODE=throw"),
              3)
        << "degraded scenarios must recompute on resume, not replay";
    const auto doc = csense::report::json_value::parse(read_file(json_b));
    ASSERT_TRUE(doc.has_value());
    const auto* drill = find_scenario(*doc, "x00_fault_drill");
    ASSERT_NE(drill, nullptr);
    ASSERT_NE(drill->find("degraded"), nullptr);
    const std::string log = read_file(dir + "rb_nockpt_b.txt");
    EXPECT_EQ(log.find("loaded from checkpoint"), std::string::npos)
        << "a degraded record leaked into the checkpoint store:\n" << log;
}

TEST(BenchRobustness, CheckpointedGateFailureReplaysAsPartial) {
    // Gate failures are complete results and therefore DO checkpoint;
    // a resumed run must reload them and still exit partial.
    const std::string dir = ::testing::TempDir();
    const std::string ck = dir + "rb_gate_store";
    std::system(("rm -rf \"" + ck + "\"").c_str());
    EXPECT_EQ(run_bench("--filter x00_fault_drill --no-timings "
                        "--checkpoint \"" + ck + "\"",
                        dir + "rb_gate_a.txt", "CSENSE_DRILL_MODE=fail"),
              3);
    EXPECT_EQ(run_bench("--filter x00_fault_drill --no-timings "
                        "--checkpoint \"" + ck + "\"",
                        dir + "rb_gate_b.txt", "CSENSE_DRILL_MODE=fail"),
              3)
        << "a reloaded gate failure must still exit partial";
    const std::string log = read_file(dir + "rb_gate_b.txt");
    EXPECT_NE(log.find("loaded from checkpoint"), std::string::npos) << log;
}

}  // namespace
