// The deterministic campaign layer: sharded replications must place
// results by index, reproduce the serial loop bit-for-bit at any thread
// count, and keep shard-partial accumulation invariant to the worker
// count (the --threads-is-only-a-wall-clock-knob contract).
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <numeric>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/campaign.hpp"

namespace {

using namespace csense::sim;

campaign_options options_with(std::size_t replications, std::size_t shard,
                              int threads, std::uint64_t seed = 99) {
    campaign_options opt;
    opt.replications = replications;
    opt.shard_size = shard;
    opt.threads = threads;
    opt.seed = seed;
    return opt;
}

TEST(Campaign, MapMatchesSerialLoopBitwise) {
    // run_replications at any thread count == the hand-written serial
    // loop with the same split-RNG discipline, bit for bit.
    const std::size_t n = 1000;
    std::vector<double> serial(n);
    const csense::stats::rng base(99);
    for (std::size_t i = 0; i < n; ++i) {
        csense::stats::rng gen = base.split(i);
        serial[i] = gen.normal() + gen.uniform();
    }
    for (int threads : {1, 2, 4, 7}) {
        const auto mapped = run_replications<double>(
            options_with(n, 16, threads),
            [](std::size_t, csense::stats::rng& gen) {
                return gen.normal() + gen.uniform();
            });
        ASSERT_EQ(mapped.size(), n);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(mapped[i], serial[i]) << "index " << i << ", threads "
                                            << threads;
        }
    }
}

TEST(Campaign, MapIsInvariantToShardSize) {
    // Shard size groups work but never changes per-index placement.
    const std::size_t n = 257;  // deliberately not a multiple of any shard
    auto run = [&](std::size_t shard) {
        return run_replications<double>(
            options_with(n, shard, 4),
            [](std::size_t i, csense::stats::rng& gen) {
                return gen.uniform() + static_cast<double>(i);
            });
    };
    const auto a = run(1);
    const auto b = run(16);
    const auto c = run(1000);  // one shard holding everything
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, c);
}

TEST(Campaign, AccumulateIsThreadCountInvariant) {
    // The shard-partial fold must be bitwise identical for every worker
    // count (grouping fixed by shard boundaries alone).
    const std::size_t n = 10'000;
    auto run = [&](int threads) {
        return accumulate_replications<double>(
            options_with(n, 128, threads), 0.0,
            [](double& acc, std::size_t, csense::stats::rng& gen) {
                acc += std::log1p(gen.uniform());
            },
            [](double& total, double partial) { total += partial; });
    };
    const double t1 = run(1);
    EXPECT_EQ(t1, run(2));
    EXPECT_EQ(t1, run(4));
    EXPECT_EQ(t1, run(13));
}

TEST(Campaign, AccumulateMergesShardsInIndexOrder) {
    // Record which replication indices each shard saw: merged in shard
    // order they must reconstruct 0..n-1 exactly.
    const std::size_t n = 100;
    using list = std::vector<std::size_t>;
    const auto seen = accumulate_replications<list>(
        options_with(n, 7, 4), list{},
        [](list& acc, std::size_t i, csense::stats::rng&) {
            acc.push_back(i);
        },
        [](list& total, list partial) {
            total.insert(total.end(), partial.begin(), partial.end());
        });
    list expected(n);
    std::iota(expected.begin(), expected.end(), 0u);
    EXPECT_EQ(seen, expected);
}

TEST(Campaign, ReplicationStreamsAreDecorrelated) {
    // Adjacent replications must not share RNG state: the mean of many
    // split streams' first uniforms behaves like independent draws.
    const std::size_t n = 4000;
    const auto draws = run_replications<double>(
        options_with(n, 64, 2),
        [](std::size_t, csense::stats::rng& gen) { return gen.uniform(); });
    const double mean =
        std::accumulate(draws.begin(), draws.end(), 0.0) / double(n);
    EXPECT_NEAR(mean, 0.5, 0.03);
    std::size_t equal_neighbours = 0;
    for (std::size_t i = 1; i < n; ++i) {
        if (draws[i] == draws[i - 1]) ++equal_neighbours;
    }
    EXPECT_EQ(equal_neighbours, 0u);
}

TEST(Campaign, EmptyCampaignIsANoOp) {
    const auto results = run_replications<int>(
        options_with(0, 8, 4),
        [](std::size_t, csense::stats::rng&) { return 1; });
    EXPECT_TRUE(results.empty());
    const double total = accumulate_replications<double>(
        options_with(0, 8, 4), 0.0,
        [](double& acc, std::size_t, csense::stats::rng&) { acc += 1.0; },
        [](double& t, double p) { t += p; });
    EXPECT_EQ(total, 0.0);
}

TEST(Campaign, RejectsBadOptions) {
    EXPECT_THROW(campaign_shard_count(options_with(10, 0, 1)),
                 std::invalid_argument);
    EXPECT_THROW(for_each_shard(options_with(10, 0, 1),
                                [](std::size_t, std::size_t) {}),
                 std::invalid_argument);
    EXPECT_THROW(for_each_shard(options_with(10, 4, -1),
                                [](std::size_t, std::size_t) {}),
                 std::invalid_argument);
}

TEST(Campaign, ShardCountCoversAllReplications) {
    EXPECT_EQ(campaign_shard_count(options_with(0, 8, 1)), 0u);
    EXPECT_EQ(campaign_shard_count(options_with(8, 8, 1)), 1u);
    EXPECT_EQ(campaign_shard_count(options_with(9, 8, 1)), 2u);
    EXPECT_EQ(campaign_shard_count(options_with(64, 8, 1)), 8u);
}

TEST(Campaign, ExceptionsPropagateToCaller) {
    EXPECT_THROW(
        run_replications<int>(options_with(100, 4, 2),
                              [](std::size_t i, csense::stats::rng&) -> int {
                                  if (i == 57) {
                                      throw std::runtime_error("boom");
                                  }
                                  return 0;
                              }),
        std::runtime_error);
}

// append-based: GCC 12's -Wrestrict misfires on the
// `const char* + std::string&&` operator+ overload.
std::string shard_dir_name(int shard) {
    std::string name = "s";
    name += std::to_string(shard);
    return name;
}

TEST(Campaign, ProcessShardsPartitionReplicationsDisjointly) {
    // k process-sharded runs into k stores must together hold exactly
    // one record per replication, with payloads identical to the
    // unsharded checkpointed run's.
    const std::size_t n = 37;  // not a multiple of shard_size * k
    const int k = 3;
    const auto replicate = [](std::size_t, csense::stats::rng& gen) {
        return gen.normal();
    };
    const auto encode = [](const double& v) {
        return csense::store::encode_doubles(&v, 1);
    };
    const auto decode = [](std::string_view payload, double& v) {
        return csense::store::decode_doubles(payload, &v, 1);
    };

    namespace fs = std::filesystem;
    const fs::path base =
        fs::path(::testing::TempDir()) / "csense_campaign_pshard";
    fs::remove_all(base);
    csense::store::result_store reference(base / "ref", "test/1");
    {
        campaign_options opt = options_with(n, 4, 2);
        run_replications_checkpointed<double>(opt, &reference, "shard/unit",
                                              replicate, encode, decode);
    }
    std::size_t stored = 0;
    for (int shard = 0; shard < k; ++shard) {
        campaign_options opt = options_with(n, 4, 2);
        opt.process_shards = k;
        opt.process_shard = shard;
        csense::store::result_store store(
            base / shard_dir_name(shard), "test/1");
        run_replications_checkpointed<double>(opt, &store, "shard/unit",
                                              replicate, encode, decode);
        stored += store.stats().writes;
    }
    EXPECT_EQ(stored, n) << "the k slices must cover [0, n) exactly once";
    for (std::size_t i = 0; i < n; ++i) {
        // Built with += : GCC 12's -Wrestrict misfires on the
        // `const char* + std::string&&` overload here.
        std::string key = "shard/unit/rep";
        key += std::to_string(i);
        const auto expected = reference.load(key);
        ASSERT_TRUE(expected.has_value()) << key;
        int holders = 0;
        for (int shard = 0; shard < k; ++shard) {
            csense::store::result_store store(
                base / shard_dir_name(shard), "test/1");
            if (const auto payload = store.load(key)) {
                ++holders;
                EXPECT_EQ(*payload, *expected) << key << " in shard "
                                               << shard;
            }
        }
        EXPECT_EQ(holders, 1) << key << " must live in exactly one store";
    }
}

TEST(Campaign, UnitSinkReportsTheCampaignIdentity) {
    namespace fs = std::filesystem;
    const fs::path root =
        fs::path(::testing::TempDir()) / "csense_campaign_sink";
    fs::remove_all(root);
    csense::store::result_store store(root, "test/1");
    campaign_options opt = options_with(12, 4, 1);
    std::vector<campaign_unit> units;
    opt.unit_sink = [&units](const campaign_unit& unit) {
        units.push_back(unit);
    };
    run_replications_checkpointed<double>(
        opt, &store, "shard/unit",
        [](std::size_t, csense::stats::rng& gen) { return gen.uniform(); },
        [](const double& v) { return csense::store::encode_doubles(&v, 1); },
        [](std::string_view p, double& v) {
            return csense::store::decode_doubles(p, &v, 1);
        });
    ASSERT_EQ(units.size(), 1u);
    EXPECT_EQ(units[0].prefix, "shard/unit");
    EXPECT_EQ(units[0].replications, 12u);
    EXPECT_EQ(units[0].shard_size, 4u);
}

TEST(Campaign, ProcessShardingRequiresACheckpointStore) {
    // A plain driver has nowhere to persist the owned slice: the
    // non-owned replications would be silently dropped.
    campaign_options opt = options_with(10, 2, 1);
    opt.process_shards = 2;
    EXPECT_THROW(run_replications<int>(
                     opt, [](std::size_t, csense::stats::rng&) { return 1; }),
                 std::logic_error);
    EXPECT_THROW(
        accumulate_replications<double>(
            opt, 0.0,
            [](double& acc, std::size_t, csense::stats::rng&) {
                acc += 1.0;
            },
            [](double& t, double p) { t += p; }),
        std::logic_error);
}

TEST(Campaign, RejectsBadProcessShardOptions) {
    campaign_options opt = options_with(10, 2, 1);
    opt.process_shards = 0;
    EXPECT_THROW(opt.validate(), std::invalid_argument);
    opt.process_shards = 3;
    opt.process_shard = 3;  // must be in [0, process_shards)
    EXPECT_THROW(opt.validate(), std::invalid_argument);
    opt.process_shard = -1;
    EXPECT_THROW(opt.validate(), std::invalid_argument);
}

}  // namespace
