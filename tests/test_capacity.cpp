// Capacity layer: Shannon model, 802.11a rate tables, air-time
// arithmetic, and SINR -> PER error models.
#include <gtest/gtest.h>

#include <cmath>

#include "src/capacity/error_models.hpp"
#include "src/capacity/rate_table.hpp"
#include "src/capacity/shannon.hpp"

namespace {

using namespace csense::capacity;

TEST(Shannon, KnownPoints) {
    EXPECT_DOUBLE_EQ(shannon_bits_per_hz(0.0), 0.0);
    EXPECT_DOUBLE_EQ(shannon_bits_per_hz(1.0), 1.0);
    EXPECT_DOUBLE_EQ(shannon_bits_per_hz(3.0), 2.0);
    EXPECT_NEAR(shannon_bits_per_hz_db(20.0), std::log2(101.0), 1e-12);
}

TEST(Shannon, InverseRoundTrip) {
    for (double c : {0.1, 1.0, 3.3, 8.0}) {
        EXPECT_NEAR(shannon_bits_per_hz(snr_for_bits_per_hz(c)), c, 1e-12);
    }
}

TEST(Shannon, GapReducesCapacity) {
    EXPECT_LT(gapped_shannon_bits_per_hz(100.0, 3.0),
              shannon_bits_per_hz(100.0));
    EXPECT_DOUBLE_EQ(gapped_shannon_bits_per_hz(100.0, 0.0),
                     shannon_bits_per_hz(100.0));
}

TEST(Shannon, RejectsNegativeSnr) {
    EXPECT_THROW(shannon_bits_per_hz(-0.1), std::domain_error);
    EXPECT_THROW(snr_for_bits_per_hz(-1.0), std::domain_error);
}

TEST(RateTable, EightAscendingRates) {
    const auto& rates = ofdm_rates();
    ASSERT_EQ(rates.size(), 8u);
    for (std::size_t i = 1; i < rates.size(); ++i) {
        EXPECT_GT(rates[i].mbps, rates[i - 1].mbps);
        EXPECT_GT(rates[i].min_snr_db, rates[i - 1].min_snr_db);
        EXPECT_GT(rates[i].bits_per_symbol, rates[i - 1].bits_per_symbol);
    }
    EXPECT_DOUBLE_EQ(rates.front().mbps, 6.0);
    EXPECT_DOUBLE_EQ(rates.back().mbps, 54.0);
}

TEST(RateTable, BitsPerSymbolConsistentWithMbps) {
    // 4 us per symbol: mbps = bits_per_symbol / 4.
    for (const auto& rate : ofdm_rates()) {
        EXPECT_NEAR(rate.mbps, rate.bits_per_symbol / 4.0, 1e-12);
    }
}

TEST(RateTable, ThesisSweepIsTheDriverSubset) {
    const auto& sweep = thesis_sweep_rates();
    ASSERT_EQ(sweep.size(), 5u);
    EXPECT_DOUBLE_EQ(sweep.front().mbps, 6.0);
    EXPECT_DOUBLE_EQ(sweep.back().mbps, 24.0);
}

TEST(RateTable, LookupByMbps) {
    EXPECT_EQ(rate_by_mbps(18.0).mod, modulation::qpsk);
    EXPECT_THROW(rate_by_mbps(11.0), std::invalid_argument);
}

TEST(RateTable, BestRateForSnr) {
    EXPECT_DOUBLE_EQ(best_rate_for_snr(-10.0).mbps, 6.0);  // floor rate
    EXPECT_DOUBLE_EQ(best_rate_for_snr(9.0).mbps, 12.0);
    EXPECT_DOUBLE_EQ(best_rate_for_snr(40.0).mbps, 54.0);
}

TEST(Airtime, KnownFrameDurations) {
    // 1400 B at 24 Mb/s: 22 + 11200 bits over 96 bits/symbol = 117 symbols
    // -> 20 us PLCP + 468 us = 488 us.
    EXPECT_NEAR(frame_airtime_us(rate_by_mbps(24.0), 1400), 488.0, 1e-9);
    // Same frame at 6 Mb/s: 11222 / 24 = 468 symbols -> 1892 us.
    EXPECT_NEAR(frame_airtime_us(rate_by_mbps(6.0), 1400), 1892.0, 1e-9);
    EXPECT_THROW(frame_airtime_us(rate_by_mbps(6.0), 0), std::invalid_argument);
}

TEST(Airtime, MonotoneInLengthAndRate) {
    const auto& r6 = rate_by_mbps(6.0);
    const auto& r54 = rate_by_mbps(54.0);
    EXPECT_GT(frame_airtime_us(r6, 1400), frame_airtime_us(r6, 700));
    EXPECT_GT(frame_airtime_us(r6, 1400), frame_airtime_us(r54, 1400));
}

TEST(Airtime, SaturatedBroadcastThroughput) {
    // 24 Mb/s, 1400 B: cycle = 34 (DIFS) + 67.5 (mean backoff) + 488 us.
    const double pps = saturated_broadcast_pps(rate_by_mbps(24.0), 1400);
    EXPECT_NEAR(pps, 1e6 / (34.0 + 67.5 + 488.0), 1.0);
}

TEST(ErrorModels, PerMonotoneInSnr) {
    const logistic_per_model logistic;
    const awgn_per_model awgn;
    for (const error_model* model :
         {static_cast<const error_model*>(&logistic),
          static_cast<const error_model*>(&awgn)}) {
        for (const auto& rate : ofdm_rates()) {
            double prev = 1.1;
            for (double snr = -5.0; snr <= 40.0; snr += 1.0) {
                const double per = model->packet_error_rate(rate, snr, 1400);
                EXPECT_LE(per, prev + 1e-12);
                EXPECT_GE(per, 0.0);
                EXPECT_LE(per, 1.0);
                prev = per;
            }
        }
    }
}

TEST(ErrorModels, HigherRateNeedsMoreSnr) {
    const logistic_per_model model;
    // At a mid SNR, faster modulations fail harder.
    const double snr = 12.0;
    double prev = -0.1;
    for (const auto& rate : ofdm_rates()) {
        const double per = model.packet_error_rate(rate, snr, 1400);
        EXPECT_GE(per, prev - 1e-9) << rate.mbps;
        prev = per;
    }
}

TEST(ErrorModels, LogisticCalibratedAtSensitivity) {
    const logistic_per_model model(1.0, 1000);
    for (const auto& rate : ofdm_rates()) {
        EXPECT_NEAR(model.packet_error_rate(rate, rate.min_snr_db, 1000), 0.1,
                    1e-9)
            << rate.mbps;
    }
}

TEST(ErrorModels, LongerFramesFailMore) {
    const logistic_per_model model;
    const auto& rate = rate_by_mbps(12.0);
    const double snr = rate.min_snr_db + 1.0;
    EXPECT_GT(model.packet_error_rate(rate, snr, 1400),
              model.packet_error_rate(rate, snr, 100));
}

TEST(ErrorModels, AwgnBerOrderingByModulation) {
    const double snr = 10.0;  // linear
    EXPECT_LT(awgn_per_model::uncoded_ber(modulation::bpsk, snr),
              awgn_per_model::uncoded_ber(modulation::qpsk, snr) + 1e-15);
    EXPECT_LT(awgn_per_model::uncoded_ber(modulation::qpsk, snr),
              awgn_per_model::uncoded_ber(modulation::qam16, snr));
    EXPECT_LT(awgn_per_model::uncoded_ber(modulation::qam16, snr),
              awgn_per_model::uncoded_ber(modulation::qam64, snr));
}

TEST(ErrorModels, ExtremesSaturate) {
    const logistic_per_model model;
    const auto& rate = rate_by_mbps(6.0);
    EXPECT_NEAR(model.packet_error_rate(rate, 60.0, 1400), 0.0, 1e-6);
    EXPECT_NEAR(model.packet_error_rate(rate, -30.0, 1400), 1.0, 1e-6);
}

TEST(ErrorModels, DeliveryRateComplement) {
    const logistic_per_model model;
    const auto& rate = rate_by_mbps(12.0);
    EXPECT_NEAR(model.delivery_rate(rate, 9.0, 1000) +
                    model.packet_error_rate(rate, 9.0, 1000),
                1.0, 1e-12);
}

TEST(ErrorModels, RejectsBadPayload) {
    const logistic_per_model model;
    EXPECT_THROW(model.packet_error_rate(rate_by_mbps(6.0), 10.0, 0),
                 std::invalid_argument);
    EXPECT_THROW(logistic_per_model(0.0), std::invalid_argument);
}

TEST(ModulationNames, AllDistinct) {
    EXPECT_EQ(modulation_name(modulation::bpsk), "BPSK");
    EXPECT_EQ(modulation_name(modulation::qam64), "64-QAM");
}

}  // namespace
