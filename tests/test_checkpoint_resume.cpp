// Crash-safety regression for `csense_bench --checkpoint <dir>`: a run
// killed with SIGKILL mid-sweep and rerun over the same checkpoint
// store must produce JSON byte-identical to an uninterrupted run (with
// --no-timings), loading completed units instead of recomputing them.
// This is the in-tree twin of the CI kill-and-resume smoke job.
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#if __has_include(<sys/wait.h>)
#include <sys/wait.h>
#include <unistd.h>
#define CSENSE_HAVE_FORK 1
#else
#define CSENSE_HAVE_FORK 0
#endif

namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

int run_bench(const fs::path& workdir, const std::string& args,
              const std::string& env, const fs::path& log) {
    const std::string command = "cd \"" + workdir.string() +
                                "\" && CSENSE_FAST=1 " + env + " \"" +
                                CSENSE_BENCH_BINARY + "\" " + args + " > \"" +
                                log.string() + "\" 2>&1";
    const int code = std::system(command.c_str());
#ifdef WEXITSTATUS
    return WIFEXITED(code) ? WEXITSTATUS(code) : -1;
#else
    return code;
#endif
}

TEST(CheckpointResume, ResumedRunIsByteIdenticalToUninterrupted) {
    // No kill needed for byte-identity itself: complete half the sweep,
    // then the full sweep over the same store. The camp01+x01 pairing
    // covers both a campaign scenario and a plain one.
    const fs::path base =
        fs::path(::testing::TempDir()) / "csense_ckpt_resume";
    fs::remove_all(base);
    fs::create_directories(base / "full");
    fs::create_directories(base / "part");
    const std::string filter = "'fn12_slope_bound,x01_shadowing_example'";
    ASSERT_EQ(run_bench(base / "full",
                        "--filter " + filter +
                            " --no-timings --json full.json",
                        "", base / "full.log"),
              0);
    ASSERT_EQ(run_bench(base / "part",
                        "--filter fn12_slope_bound --no-timings "
                        "--checkpoint ck --json half.json",
                        "", base / "part_a.log"),
              0);
    ASSERT_EQ(run_bench(base / "part",
                        "--filter " + filter +
                            " --no-timings --checkpoint ck --json "
                            "resumed.json",
                        "", base / "part_b.log"),
              0);
    const std::string full = read_file(base / "full" / "full.json");
    ASSERT_FALSE(full.empty());
    EXPECT_EQ(full, read_file(base / "part" / "resumed.json"))
        << "resume over a checkpoint store must be byte-identical to an "
           "uninterrupted run";
    EXPECT_NE(read_file(base / "part_b.log").find("loaded from checkpoint"),
              std::string::npos)
        << "the resumed run recomputed a completed scenario";
}

TEST(CheckpointResume, KilledMidSweepResumesByteIdentical) {
#if !CSENSE_HAVE_FORK
    GTEST_SKIP() << "needs fork/kill";
#else
    // The real crash drill: SIGKILL the runner while the drill scenario
    // sleeps (after fn12 completed and checkpointed), then rerun the
    // same command. The merged JSON must match an uninterrupted run
    // byte-for-byte.
    const fs::path base = fs::path(::testing::TempDir()) / "csense_ckpt_kill";
    fs::remove_all(base);
    fs::create_directories(base / "full");
    fs::create_directories(base / "kill");
    const std::string filter = "'fn12_slope_bound,x00_fault_drill'";
    // The same drill knobs everywhere: CSENSE_* env vars are part of
    // every checkpoint key, so the resumed run must match the killed
    // one. 4 s of cancellation-checked sleep is the kill window.
    const std::string env =
        "CSENSE_DRILL_MODE=sleep CSENSE_DRILL_MS=4000";
    ASSERT_EQ(run_bench(base / "full",
                        "--filter " + filter +
                            " --no-timings --json out.json",
                        env, base / "full.log"),
              0);

    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        // Re-exec the bench in its own process group so the SIGKILL hits
        // the runner itself, exactly like an OOM kill or operator ^C -9.
        const std::string command =
            "cd \"" + (base / "kill").string() + "\" && exec env " + env +
            " CSENSE_FAST=1 \"" + CSENSE_BENCH_BINARY + "\" --filter " +
            filter + " --no-timings --checkpoint ck --json out.json " +
            "> run.log 2>&1";
        execl("/bin/sh", "sh", "-c", command.c_str(),
              static_cast<char*>(nullptr));
        _exit(127);
    }
    // Wait until fn12's scenario record lands in the store (the drill is
    // sleeping by then), then SIGKILL the whole tree mid-run.
    const fs::path store = base / "kill" / "ck";
    bool checkpointed = false;
    for (int i = 0; i < 2000; ++i) {
        if (fs::exists(store)) {
            for (const auto& entry : fs::directory_iterator(store)) {
                const std::string name = entry.path().filename().string();
                if (name.rfind("scenario_fn12", 0) == 0) {
                    checkpointed = true;
                    break;
                }
            }
        }
        if (checkpointed) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    kill(child, SIGKILL);
    int status = 0;
    waitpid(child, &status, 0);
    ASSERT_TRUE(checkpointed)
        << "fn12 never checkpointed; log:\n"
        << read_file(base / "kill" / "run.log");
    ASSERT_FALSE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "the run was supposed to die mid-sweep";
    ASSERT_FALSE(fs::exists(base / "kill" / "out.json"))
        << "the killed run must not have produced a merged document";

    // Resume the identical command: fn12 loads from the store, the
    // drill (killed mid-sleep, so never checkpointed) recomputes.
    ASSERT_EQ(run_bench(base / "kill",
                        "--filter " + filter +
                            " --no-timings --checkpoint ck --json out.json",
                        env, base / "resume.log"),
              0);
    const std::string resumed_log = read_file(base / "resume.log");
    EXPECT_NE(resumed_log.find("loaded from checkpoint"), std::string::npos)
        << resumed_log;

    const std::string full = read_file(base / "full" / "out.json");
    ASSERT_FALSE(full.empty());
    EXPECT_EQ(full, read_file(base / "kill" / "out.json"))
        << "kill -9 + resume must reproduce the uninterrupted document "
           "byte-for-byte";
#endif
}

}  // namespace
