// The expectation engine: limits, orderings, the carrier-sense piecewise
// structure, defer probabilities, the U-statistic estimator, and the
// §3.4 Jensen effect of shadowing at long range.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/core/expected.hpp"
#include "src/stats/rng.hpp"

namespace {

using namespace csense::core;

expectation_engine make_engine(double sigma = 0.0) {
    model_params p;
    p.alpha = 3.0;
    p.sigma_db = sigma;
    p.noise_db = -65.0;
    quadrature_options q;
    q.radial_nodes = 32;
    q.angular_nodes = 48;
    q.shadow_nodes = 12;
    mc_options mc;
    mc.samples = 30000;
    return expectation_engine(p, q, mc);
}

TEST(Expected, SingleDecreasesWithRange) {
    const auto engine = make_engine();
    double prev = 1e18;
    for (double rmax : {10.0, 20.0, 40.0, 80.0, 120.0}) {
        const double c = engine.expected_single(rmax);
        EXPECT_GT(c, 0.0);
        EXPECT_LT(c, prev);
        prev = c;
    }
}

TEST(Expected, MultiplexingIsHalfSingle) {
    const auto engine = make_engine();
    EXPECT_DOUBLE_EQ(engine.expected_multiplexing(55.0),
                     0.5 * engine.expected_single(55.0));
}

class ConcurrentMonotone : public ::testing::TestWithParam<double> {};

TEST_P(ConcurrentMonotone, IncreasesWithD) {
    const double rmax = GetParam();
    const auto engine = make_engine();
    double prev = 0.0;
    for (double d = 2.0; d <= 400.0; d *= 1.6) {
        const double c = engine.expected_concurrent(rmax, d);
        EXPECT_GT(c, prev) << "rmax " << rmax << " d " << d;
        prev = c;
    }
}

INSTANTIATE_TEST_SUITE_P(Ranges, ConcurrentMonotone,
                         ::testing::Values(20.0, 55.0, 120.0));

TEST(Expected, ConcurrentLimits) {
    const auto engine = make_engine();
    const double single = engine.expected_single(20.0);
    // Far interferer: concurrency approaches the competition-free value
    // (each sender transmits all the time).
    EXPECT_NEAR(engine.expected_concurrent(20.0, 5000.0), single,
                single * 0.01);
    // Collocated-ish interferer: far below multiplexing.
    EXPECT_LT(engine.expected_concurrent(20.0, 0.5),
              engine.expected_multiplexing(20.0));
}

TEST(Expected, DeferProbabilityStepWithoutShadowing) {
    const auto engine = make_engine(0.0);
    EXPECT_DOUBLE_EQ(engine.defer_probability(54.9, 55.0), 1.0);
    EXPECT_DOUBLE_EQ(engine.defer_probability(55.1, 55.0), 0.0);
}

TEST(Expected, DeferProbabilityUnderShadowing) {
    const auto engine = make_engine(8.0);
    // At the threshold the sensing margin is 0 dB: 50/50.
    EXPECT_NEAR(engine.defer_probability(55.0, 55.0), 0.5, 1e-12);
    // Monotone decreasing in D.
    double prev = 1.0;
    for (double d = 10.0; d <= 300.0; d *= 1.4) {
        const double pd = engine.defer_probability(d, 55.0);
        EXPECT_LE(pd, prev + 1e-12);
        EXPECT_GE(pd, 0.0);
        EXPECT_LE(pd, 1.0);
        prev = pd;
    }
    // Far from the threshold the decision is nearly deterministic.
    EXPECT_GT(engine.defer_probability(10.0, 55.0), 0.99);
    EXPECT_LT(engine.defer_probability(300.0, 55.0), 0.02);
}

TEST(Expected, DeferProbabilityZeroThresholdNeverDefers) {
    const auto engine = make_engine(8.0);
    EXPECT_DOUBLE_EQ(engine.defer_probability(10.0, 0.0), 0.0);
}

TEST(Expected, CarrierSensePiecewiseWithoutShadowing) {
    const auto engine = make_engine(0.0);
    const double d_thresh = 55.0;
    const double mux = engine.expected_multiplexing(40.0);
    // Below the threshold CS is exactly multiplexing.
    EXPECT_DOUBLE_EQ(engine.expected_carrier_sense(40.0, 30.0, d_thresh), mux);
    // Above, exactly concurrency.
    EXPECT_DOUBLE_EQ(engine.expected_carrier_sense(40.0, 90.0, d_thresh),
                     engine.expected_concurrent(40.0, 90.0));
}

TEST(Expected, CarrierSenseInterpolatesUnderShadowing) {
    const auto engine = make_engine(8.0);
    const double mux = engine.expected_multiplexing(40.0);
    const double conc = engine.expected_concurrent(40.0, 55.0);
    const double cs = engine.expected_carrier_sense(40.0, 55.0, 55.0);
    EXPECT_GT(cs, std::min(mux, conc) - 1e-12);
    EXPECT_LT(cs, std::max(mux, conc) + 1e-12);
}

TEST(Expected, OptimalDominatesBothPolicies) {
    for (double sigma : {0.0, 8.0}) {
        const auto engine = make_engine(sigma);
        for (double d : {20.0, 55.0, 120.0}) {
            const auto opt = engine.expected_optimal(55.0, d);
            const double mux = engine.expected_multiplexing(55.0);
            const double conc = engine.expected_concurrent(55.0, d);
            const double slack = 3.0 * opt.stderr_mean + 2e-3;
            EXPECT_GE(opt.mean, mux - slack) << "sigma " << sigma << " d " << d;
            EXPECT_GE(opt.mean, conc - slack) << "sigma " << sigma << " d " << d;
        }
    }
}

TEST(Expected, UpperBoundDominatesOptimal) {
    // <C_UBmax> >= <C_max>: the per-pair bound ignores the coupling
    // constraint (footnote 10's gap).
    const auto engine = make_engine(0.0);
    for (double d : {30.0, 55.0, 90.0}) {
        const auto opt = engine.expected_optimal(55.0, d);
        const double ub = engine.expected_upper_bound(55.0, d);
        EXPECT_GE(ub, opt.mean - 3.0 * opt.stderr_mean) << "d = " << d;
    }
}

TEST(Expected, OptimalConvergesToBranchesAtExtremes) {
    const auto engine = make_engine(0.0);
    // Small D: optimal ~ multiplexing. Large D: optimal ~ concurrency.
    const auto near = engine.expected_optimal(55.0, 2.0);
    EXPECT_NEAR(near.mean, engine.expected_multiplexing(55.0),
                0.01 * near.mean);
    const auto far = engine.expected_optimal(55.0, 2000.0);
    EXPECT_NEAR(far.mean, engine.expected_concurrent(55.0, 2000.0),
                0.01 * far.mean);
}

TEST(RectifiedPairMean, MatchesBruteForce) {
    csense::stats::rng gen(17);
    for (int trial = 0; trial < 6; ++trial) {
        std::vector<double> samples;
        const int k = 40 + trial * 30;
        for (int i = 0; i < k; ++i) samples.push_back(gen.normal(0.1, 1.0));
        double brute = 0.0;
        for (int i = 0; i < k; ++i) {
            for (int j = 0; j < k; ++j) {
                if (i == j) continue;
                brute += std::max(samples[i] + samples[j], 0.0);
            }
        }
        brute /= static_cast<double>(k) * (k - 1);
        const auto fast = rectified_pair_mean(samples);
        EXPECT_NEAR(fast.mean, brute, 1e-10) << "k = " << k;
    }
}

TEST(RectifiedPairMean, AllNegativeGivesZero) {
    const auto result = rectified_pair_mean({-5.0, -1.0, -2.0, -0.5});
    EXPECT_DOUBLE_EQ(result.mean, 0.0);
}

TEST(RectifiedPairMean, AllPositiveGivesSumStructure) {
    // E[(x+y)^+] over i != j of {1, 2} = (1+2 + 2+1) / 2 = 3.
    const auto result = rectified_pair_mean({1.0, 2.0});
    EXPECT_DOUBLE_EQ(result.mean, 3.0);
}

TEST(RectifiedPairMean, RejectsTinySamples) {
    EXPECT_THROW(rectified_pair_mean({1.0}), std::invalid_argument);
}

TEST(Expected, ShadowingRaisesLongRangeConcurrency) {
    // §3.4: "incorporating zero-mean variation ... has a net positive
    // impact on average capacity", particularly at long range under
    // concurrency ("you can't make a bad link worse than no link, but you
    // can make it a whole lot better").
    const auto det = make_engine(0.0);
    const auto shadowed = make_engine(8.0);
    const double c_det = det.expected_concurrent(120.0, 120.0);
    const double c_shadow = shadowed.expected_concurrent(120.0, 120.0);
    EXPECT_GT(c_shadow, c_det * 1.05);
}

TEST(Expected, SampleDeltasCommonRandomNumbers) {
    const auto engine = make_engine(8.0);
    const auto a = engine.sample_deltas(55.0, 54.0, 500);
    const auto b = engine.sample_deltas(55.0, 56.0, 500);
    ASSERT_EQ(a.size(), b.size());
    // With common random numbers the per-index difference reflects only
    // the 2-unit interferer move; with an independent stream it reflects
    // the full configuration variance. CRN should be far tighter.
    model_params p;
    p.alpha = 3.0;
    p.sigma_db = 8.0;
    quadrature_options q;
    mc_options other_seed;
    other_seed.samples = 30000;
    other_seed.seed = 777;
    const expectation_engine independent(p, q, other_seed);
    const auto c = independent.sample_deltas(55.0, 56.0, 500);
    double crn_diff = 0.0, ind_diff = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        crn_diff += std::abs(a[i] - b[i]);
        ind_diff += std::abs(a[i] - c[i]);
    }
    EXPECT_LT(crn_diff, ind_diff / 3.0);
}

TEST(Expected, FixedRateVariantsBehave) {
    const auto engine = make_engine(0.0);
    const double rate = 3.0;  // bits/s/Hz
    // Multiplexing: half the rate times the coverage probability; bounded
    // by rate/2 and decreasing in Rmax.
    const double mux20 = engine.expected_multiplexing_fixed_rate(20.0, rate);
    const double mux120 = engine.expected_multiplexing_fixed_rate(120.0, rate);
    EXPECT_LE(mux20, rate / 2.0 + 1e-12);
    EXPECT_GT(mux20, mux120);
    // Concurrent: increases with D and saturates below `rate`.
    const double near = engine.expected_concurrent_fixed_rate(20.0, 5.0, rate);
    const double far = engine.expected_concurrent_fixed_rate(20.0, 500.0, rate);
    EXPECT_LT(near, far);
    EXPECT_LE(far, rate + 1e-12);
}

TEST(Expected, MemoizedIntegralsMatchDirectComputation) {
    // expected_carrier_sense memoizes <C_single>(rmax) and
    // <C_conc>(rmax, d) across a threshold sweep; every memo hit must
    // return exactly what a fresh engine computes from scratch.
    const auto warm = make_engine(8.0);
    const double rmax = 40.0, d = 55.0;
    std::vector<double> swept;
    for (double d_thresh : {20.0, 40.0, 55.0, 80.0, 120.0}) {
        swept.push_back(warm.expected_carrier_sense(rmax, d, d_thresh));
    }
    for (std::size_t i = 0; i < swept.size(); ++i) {
        const auto fresh = make_engine(8.0);
        const double d_thresh = std::vector<double>{20.0, 40.0, 55.0, 80.0,
                                                    120.0}[i];
        EXPECT_EQ(swept[i], fresh.expected_carrier_sense(rmax, d, d_thresh))
            << "d_thresh " << d_thresh;
    }
    // The memoized quantities themselves.
    const auto fresh = make_engine(8.0);
    EXPECT_EQ(warm.expected_single(rmax), fresh.expected_single(rmax));
    EXPECT_EQ(warm.expected_concurrent(rmax, d),
              fresh.expected_concurrent(rmax, d));
}

TEST(Expected, CopiesShareTheMemoConsistently) {
    const auto engine = make_engine(8.0);
    const double direct = engine.expected_single(40.0);
    const expectation_engine copy = engine;  // shares the memo
    EXPECT_EQ(copy.expected_single(40.0), direct);
    EXPECT_EQ(copy.expected_concurrent(40.0, 55.0),
              engine.expected_concurrent(40.0, 55.0));
}

expectation_engine make_threaded_engine(double sigma, int threads) {
    model_params p;
    p.alpha = 3.0;
    p.sigma_db = sigma;
    p.noise_db = -65.0;
    quadrature_options q;
    q.radial_nodes = 20;
    q.angular_nodes = 24;
    q.shadow_nodes = 8;
    mc_options mc;
    mc.samples = 5000;
    mc.threads = threads;
    return expectation_engine(p, q, mc);
}

TEST(Expected, ThreadCountInvariance) {
    // The core determinism guarantee: every engine quantity is
    // bit-identical no matter how many workers computed it.
    const auto serial = make_threaded_engine(8.0, 1);
    for (int threads : {2, 4}) {
        const auto parallel = make_threaded_engine(8.0, threads);
        EXPECT_EQ(parallel.expected_single(40.0),
                  serial.expected_single(40.0))
            << threads;
        EXPECT_EQ(parallel.expected_concurrent(40.0, 55.0),
                  serial.expected_concurrent(40.0, 55.0))
            << threads;
        EXPECT_EQ(parallel.expected_upper_bound(40.0, 55.0),
                  serial.expected_upper_bound(40.0, 55.0))
            << threads;
        EXPECT_EQ(parallel.expected_concurrent_fixed_rate(40.0, 55.0, 3.0),
                  serial.expected_concurrent_fixed_rate(40.0, 55.0, 3.0))
            << threads;
        EXPECT_EQ(parallel.sample_deltas(40.0, 55.0, 5000),
                  serial.sample_deltas(40.0, 55.0, 5000))
            << threads;
        const auto opt_p = parallel.expected_optimal(40.0, 55.0);
        const auto opt_s = serial.expected_optimal(40.0, 55.0);
        EXPECT_EQ(opt_p.mean, opt_s.mean) << threads;
        EXPECT_EQ(opt_p.stderr_mean, opt_s.stderr_mean) << threads;
    }
}

TEST(Expected, InputValidation) {
    const auto engine = make_engine();
    EXPECT_THROW(engine.expected_single(0.0), std::domain_error);
    EXPECT_THROW(engine.expected_concurrent(-5.0, 10.0), std::domain_error);
    EXPECT_THROW(engine.defer_probability(0.0, 10.0), std::domain_error);
    model_params bad;
    bad.alpha = -1.0;
    EXPECT_THROW(expectation_engine(bad, {}, {}), std::invalid_argument);
    mc_options tiny;
    tiny.samples = 2;
    EXPECT_THROW(expectation_engine(model_params{}, {}, tiny),
                 std::invalid_argument);
    mc_options negative_threads;
    negative_threads.threads = -1;
    EXPECT_THROW(expectation_engine(model_params{}, {}, negative_threads),
                 std::invalid_argument);
}

}  // namespace
