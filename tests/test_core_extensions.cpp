// Extension modules: the fairness analysis of §3.3.3's starvation claims
// and the n > 2 senders generalization of §3.2.1.
#include <gtest/gtest.h>

#include "src/core/fairness.hpp"
#include "src/core/multi_sender.hpp"
#include "src/core/threshold.hpp"

namespace {

using namespace csense::core;

expectation_engine make_engine(double sigma) {
    model_params p;
    p.alpha = 3.0;
    p.sigma_db = sigma;
    quadrature_options q;
    q.radial_nodes = 28;
    q.angular_nodes = 40;
    q.shadow_nodes = 10;
    return expectation_engine(p, q, {30000, 42});
}

TEST(Fairness, ShortRangeNoStarvationAnywhere) {
    // §3.3.3: "In short range networks ... every receiver has a
    // reasonable share, because whenever concurrency is employed,
    // interferers are too far from the network to have a localized
    // impact."
    const auto engine = make_engine(0.0);
    const double rmax = 20.0;
    const auto thresh = optimal_threshold(engine, rmax);
    for (double d : {10.0, 30.0, 50.0, 80.0, 150.0}) {
        const auto report =
            analyze_fairness(engine, rmax, d, thresh.d_thresh, 20000);
        EXPECT_LT(report.starved_fraction, 0.01) << "d = " << d;
    }
}

TEST(Fairness, LongRangeStarvesNearInterferer) {
    // Long range: concurrency runs with the interferer inside the
    // network; a small nearby fraction is smothered.
    const auto engine = make_engine(0.0);
    const double rmax = 120.0;
    const auto thresh = optimal_threshold(engine, rmax);
    // Concurrency engages just beyond the threshold, which is inside the
    // network (long range): the interferer at that distance starves a
    // visible fraction.
    const double d = thresh.d_thresh * 1.05;
    ASSERT_LT(thresh.d_thresh, rmax);  // confirms the long-range premise
    const auto report = analyze_fairness(engine, rmax, d, thresh.d_thresh,
                                         20000);
    EXPECT_GT(report.starved_fraction, 0.01);
    EXPECT_LT(report.starved_fraction, 0.30);
}

TEST(Fairness, JainIndexDegradesFromShortToLong) {
    const auto engine = make_engine(0.0);
    const auto short_thresh = optimal_threshold(engine, 20.0);
    const auto long_thresh = optimal_threshold(engine, 120.0);
    const auto short_report = analyze_fairness(
        engine, 20.0, short_thresh.d_thresh * 1.05, short_thresh.d_thresh,
        20000);
    const auto long_report = analyze_fairness(
        engine, 120.0, long_thresh.d_thresh * 1.05, long_thresh.d_thresh,
        20000);
    EXPECT_GT(short_report.jain_index, long_report.jain_index);
}

TEST(Fairness, MeanMatchesExpectationEngine) {
    const auto engine = make_engine(8.0);
    const auto report = analyze_fairness(engine, 40.0, 55.0, 55.0, 60000);
    const double expected = engine.expected_carrier_sense(40.0, 55.0, 55.0);
    EXPECT_NEAR(report.mean, expected, 0.05 * expected);
}

TEST(Fairness, DeferredNetworkIsFairest) {
    // With D far inside the threshold the network multiplexes: no
    // starvation regardless of range.
    const auto engine = make_engine(8.0);
    const auto report = analyze_fairness(engine, 120.0, 10.0, 60.0, 20000);
    EXPECT_LT(report.starved_fraction, 0.01);
}

TEST(Fairness, RejectsBadArguments) {
    const auto engine = make_engine(0.0);
    EXPECT_THROW(analyze_fairness(engine, 0.0, 10.0, 55.0),
                 std::invalid_argument);
    EXPECT_THROW(analyze_fairness(engine, 20.0, 10.0, 55.0, 10),
                 std::invalid_argument);
}

TEST(MultiSender, ReducesTowardPairModelAtN2) {
    // The n = 2 multi-sender evaluation should land near the main
    // engine's numbers (geometry conventions match; MC vs quadrature).
    model_params p;
    p.sigma_db = 0.0;
    const auto engine = make_engine(0.0);
    const auto ms = evaluate_multi_sender(p, 2, 40.0, 55.0, 55.0, 60000);
    EXPECT_NEAR(ms.multiplexing, engine.expected_multiplexing(40.0), 0.02);
    EXPECT_NEAR(ms.concurrent, engine.expected_concurrent(40.0, 55.0), 0.03);
}

class MultiSenderN : public ::testing::TestWithParam<int> {};

TEST_P(MultiSenderN, EfficiencyStaysHighWithTunedThreshold) {
    // The thesis' §3.2.1 assertion: small n > 2 does not fundamentally
    // alter the results. With more senders the aggregate interference
    // grows, so the fair comparison gives each n its own best threshold
    // (exactly as §3.3.3 ties the two-sender threshold to the
    // environment); efficiency then stays in the same band.
    const int n = GetParam();
    model_params p;
    p.sigma_db = 8.0;
    std::vector<double> candidates;
    for (double t = 25.0; t <= 220.0; t *= 1.25) candidates.push_back(t);
    for (double rmax : {20.0, 40.0}) {
        for (double d : {30.0, 55.0, 100.0}) {
            const auto sweep = evaluate_multi_sender_thresholds(
                p, n, rmax, d, candidates, 30000);
            double best = 0.0;
            for (const auto& point : sweep) {
                best = std::max(best, point.efficiency());
                EXPECT_LE(point.carrier_sense, point.optimal + 1e-9);
                EXPECT_GE(point.optimal,
                          std::max(point.multiplexing, point.concurrent) -
                              1e-9);
            }
            // The binary cluster approximation (everyone defers if any
            // pair senses) is pessimistic for larger n - real DCF defers
            // per pair - so the bound relaxes with n. Even so, no
            // catastrophe appears: the compromise structure survives.
            const double bound = (n <= 3) ? 0.8 : (n == 4) ? 0.72 : 0.65;
            EXPECT_GT(best, bound)
                << "n " << n << " rmax " << rmax << " d " << d;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Counts, MultiSenderN, ::testing::Values(2, 3, 4, 5));

TEST(MultiSender, ConcurrencyDegradesWithN) {
    // More concurrent senders means more interference per receiver.
    model_params p;
    p.sigma_db = 0.0;
    double prev = 1e9;
    for (int n : {2, 3, 4, 5}) {
        const auto point = evaluate_multi_sender(p, n, 40.0, 55.0, 55.0,
                                                 30000);
        EXPECT_LT(point.concurrent, prev) << "n = " << n;
        prev = point.concurrent;
    }
}

TEST(MultiSender, TdmaShareShrinksWithN) {
    model_params p;
    p.sigma_db = 0.0;
    const auto two = evaluate_multi_sender(p, 2, 40.0, 200.0, 55.0, 30000);
    const auto four = evaluate_multi_sender(p, 4, 40.0, 200.0, 55.0, 30000);
    EXPECT_NEAR(four.multiplexing, two.multiplexing * 0.5,
                0.05 * two.multiplexing);
}

TEST(MultiSender, RejectsBadArguments) {
    model_params p;
    EXPECT_THROW(evaluate_multi_sender(p, 1, 40.0, 55.0, 55.0),
                 std::invalid_argument);
    EXPECT_THROW(evaluate_multi_sender(p, 3, -1.0, 55.0, 55.0),
                 std::invalid_argument);
}

}  // namespace
