// End-to-end reproduction checks against the numbers printed in the
// thesis: the §3.2.5 efficiency tables, the footnote 12 slope bound, the
// §3.4 worked example, and the sigma*sqrt(3) SNR-estimate uncertainty.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/efficiency.hpp"
#include "src/core/shadowing_analysis.hpp"
#include "src/core/threshold.hpp"

namespace {

using namespace csense::core;

expectation_engine paper_engine() {
    model_params p;
    p.alpha = 3.0;
    p.sigma_db = 8.0;
    p.noise_db = -65.0;
    quadrature_options q;
    q.radial_nodes = 40;
    q.angular_nodes = 48;
    q.shadow_nodes = 14;
    return expectation_engine(p, q, {120000, 42});
}

struct table_cell {
    double rmax;
    double d;
    double paper_efficiency;
};

class PaperTable1 : public ::testing::TestWithParam<table_cell> {};

TEST_P(PaperTable1, EfficiencyMatchesWithFixedThreshold) {
    // §3.2.5 first table: fixed D_thresh = 55, alpha = 3, sigma = 8 dB.
    const auto cell = GetParam();
    const auto engine = paper_engine();
    const auto point = evaluate_policies(engine, cell.rmax, cell.d, 55.0);
    EXPECT_NEAR(point.efficiency(), cell.paper_efficiency, 0.025)
        << "Rmax " << cell.rmax << " D " << cell.d;
}

INSTANTIATE_TEST_SUITE_P(
    Cells, PaperTable1,
    ::testing::Values(table_cell{20, 20, 0.96}, table_cell{20, 55, 0.88},
                      table_cell{20, 120, 0.96}, table_cell{40, 20, 0.96},
                      table_cell{40, 55, 0.87}, table_cell{40, 120, 0.96},
                      table_cell{120, 20, 0.89}, table_cell{120, 55, 0.83},
                      table_cell{120, 120, 0.92}));

TEST(PaperHeadline, CarrierSenseWithin15PercentOfOptimal) {
    // §1: "average throughput is typically less than 15% below optimal".
    const auto engine = paper_engine();
    for (double rmax : {20.0, 40.0, 120.0}) {
        for (double d : {20.0, 55.0, 120.0}) {
            const auto point = evaluate_policies(engine, rmax, d, 55.0);
            EXPECT_GT(point.efficiency(), 0.80)
                << "Rmax " << rmax << " D " << d;
        }
    }
}

TEST(PaperTable2, TunedThresholdsChangeLittle) {
    // §3.2.5: "Very little change is observed" with per-scenario tuning.
    const auto engine = paper_engine();
    for (double rmax : {20.0, 40.0, 120.0}) {
        const auto tuned = optimal_threshold(engine, rmax);
        ASSERT_TRUE(tuned.found);
        for (double d : {20.0, 55.0, 120.0}) {
            const auto fixed = evaluate_policies(engine, rmax, d, 55.0);
            const auto opt = evaluate_policies(engine, rmax, d, tuned.d_thresh);
            EXPECT_NEAR(fixed.efficiency(), opt.efficiency(), 0.06)
                << "Rmax " << rmax << " D " << d;
        }
    }
}

TEST(PaperRobustness, AlphaAndSigmaSweepsChangeLittle) {
    // §3.2.5: "alpha varying from 2 to 4 and sigma from 4 dB to 12 dB ...
    // very little change is observed." Spot-check the transition cell,
    // the table's weakest point.
    for (double alpha : {2.0, 4.0}) {
        for (double sigma : {4.0, 12.0}) {
            model_params p;
            p.alpha = alpha;
            p.sigma_db = sigma;
            quadrature_options q;
            q.radial_nodes = 28;
            q.angular_nodes = 40;
            q.shadow_nodes = 10;
            expectation_engine engine(p, q, {60000, 42});
            // Express the 55-at-alpha-3 threshold as the same sensed power
            // under this alpha.
            const double d_thresh = threshold_distance_from_power_db(
                threshold_power_db(55.0, 3.0), alpha);
            const double rmax = std::pow(40.0, 3.0 / alpha);
            const auto point = evaluate_policies(engine, rmax,
                                                 d_thresh, d_thresh);
            EXPECT_GT(point.efficiency(), 0.80)
                << "alpha " << alpha << " sigma " << sigma;
        }
    }
}

TEST(Footnote12, ConcurrencySlopeBound) {
    // "for alpha = 3, sigma = 0, the slope of the concurrency curve (in
    // our Rmax = 20 normalized capacity units) is bounded above by
    // 1.37 / Rmax for all D > Rmax."
    model_params p;
    p.sigma_db = 0.0;
    quadrature_options q;
    q.radial_nodes = 40;
    q.angular_nodes = 56;
    expectation_engine engine(p, q, {30000, 42});
    const double unit = engine.normalization();
    for (double rmax : {20.0, 55.0, 120.0}) {
        double worst = 0.0;
        for (double d = rmax * 1.05; d < rmax * 6.0; d *= 1.15) {
            const double h = d * 0.01;
            const double slope = (engine.expected_concurrent(rmax, d + h) -
                                  engine.expected_concurrent(rmax, d - h)) /
                                 (2.0 * h) / unit;
            worst = std::max(worst, slope);
        }
        EXPECT_LE(worst, 1.37 / rmax * 1.02) << "Rmax = " << rmax;
        EXPECT_GT(worst, 0.0);
    }
}

TEST(Section34, WorkedExampleProbabilities) {
    // Rmax = 20, D_thresh = 40, interferer apparently at D = 20:
    // ~20% spurious concurrency, ~20% vulnerable receivers, ~4% severe.
    model_params p;
    p.alpha = 3.0;
    p.sigma_db = 8.0;
    const auto outcome = severe_outcome_probability(p, 20.0, 40.0, 20.0);
    EXPECT_NEAR(outcome.p_spurious_concurrency, 0.20, 0.025);
    EXPECT_NEAR(outcome.fraction_vulnerable, 0.20, 0.01);
    EXPECT_NEAR(outcome.p_severe, 0.04, 0.01);
}

TEST(Section34, SnrEstimateUncertainty) {
    // "sigma_SNRest = sigma * sqrt(3) ~ 14 dB ... assuming sigma = 8 dB".
    model_params p;
    p.sigma_db = 8.0;
    EXPECT_NEAR(snr_estimate_sigma_db(p), 13.86, 0.01);
}

TEST(Section34, DbToDistanceFactor) {
    // "Under alpha = 3, 14 dB's equivalent in path loss is a distance
    // factor of about 3x."
    model_params p;
    p.alpha = 3.0;
    EXPECT_NEAR(db_to_distance_factor(p, 14.0), 2.93, 0.05);
}

TEST(Section34, MistakeProbabilitiesDeterministicLimits) {
    model_params det;
    det.sigma_db = 0.0;
    EXPECT_DOUBLE_EQ(spurious_concurrency_probability(det, 20.0, 40.0), 0.0);
    EXPECT_DOUBLE_EQ(spurious_concurrency_probability(det, 50.0, 40.0), 1.0);
    EXPECT_DOUBLE_EQ(spurious_multiplexing_probability(det, 50.0, 40.0), 0.0);
    EXPECT_DOUBLE_EQ(spurious_multiplexing_probability(det, 20.0, 40.0), 1.0);
}

TEST(Section34, MistakeProbabilitiesComplementAtThreshold) {
    model_params p;
    p.sigma_db = 8.0;
    EXPECT_NEAR(spurious_concurrency_probability(p, 40.0, 40.0), 0.5, 1e-12);
    EXPECT_NEAR(spurious_multiplexing_probability(p, 40.0, 40.0), 0.5, 1e-12);
}

TEST(Efficiency, TableBuilderShapes) {
    const auto engine = paper_engine();
    const auto table = build_efficiency_table(engine, {20.0, 40.0},
                                              {20.0, 55.0}, 55.0);
    ASSERT_EQ(table.rows.size(), 2u);
    ASSERT_EQ(table.rows[0].size(), 2u);
    EXPECT_EQ(table.d_thresh.size(), 2u);
    for (const auto& row : table.rows) {
        for (const auto& cell : row) {
            EXPECT_GT(cell.efficiency(), 0.5);
            EXPECT_LE(cell.efficiency(), 1.05);
        }
    }
    EXPECT_THROW(build_efficiency_table(engine, {20.0}, {20.0}, {55.0, 60.0}),
                 std::invalid_argument);
}

TEST(Efficiency, InefficiencyDecompositionSidesOfThreshold) {
    model_params p;
    p.sigma_db = 0.0;
    quadrature_options q;
    q.radial_nodes = 24;
    q.angular_nodes = 32;
    expectation_engine engine(p, q, {20000, 42});
    const auto parts =
        decompose_inefficiency(engine, 55.0, 55.0, 10.0, 160.0, 30);
    EXPECT_GE(parts.exposed_area, 0.0);
    EXPECT_GE(parts.hidden_area, 0.0);
    // With the optimal threshold the avoidable triangles nearly vanish
    // compared with a badly mistuned threshold.
    const auto bad =
        decompose_inefficiency(engine, 55.0, 100.0, 10.0, 160.0, 30);
    EXPECT_GT(bad.avoidable_exposed,
              parts.avoidable_exposed + parts.avoidable_hidden + 0.01);
}

}  // namespace
