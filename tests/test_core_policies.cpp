// Point capacities and geometry of the two-pair model (§3.2.2).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "src/core/geometry.hpp"
#include "src/core/model.hpp"
#include "src/core/policies.hpp"

namespace {

using namespace csense::core;

model_params default_params() {
    model_params p;
    p.alpha = 3.0;
    p.sigma_db = 0.0;
    p.noise_db = -65.0;
    return p;
}

TEST(Geometry, InterfererDistanceOnAxis) {
    // Receiver on the +x axis (theta = 0): distance r + D.
    EXPECT_NEAR(interferer_distance(10.0, 0.0, 55.0), 65.0, 1e-12);
    // Receiver on the -x axis (theta = pi): |D - r|.
    EXPECT_NEAR(interferer_distance(10.0, std::numbers::pi, 55.0), 45.0, 1e-9);
    EXPECT_NEAR(interferer_distance(60.0, std::numbers::pi, 55.0), 5.0, 1e-9);
    // Perpendicular: hypotenuse.
    EXPECT_NEAR(interferer_distance(30.0, std::numbers::pi / 2.0, 40.0), 50.0,
                1e-9);
}

TEST(Geometry, DiscFractionLimits) {
    EXPECT_NEAR(disc_fraction_closer_to_interferer(0.0, 20.0), 0.5, 1e-12);
    EXPECT_DOUBLE_EQ(disc_fraction_closer_to_interferer(40.0, 20.0), 0.0);
    EXPECT_DOUBLE_EQ(disc_fraction_closer_to_interferer(60.0, 20.0), 0.0);
}

TEST(Geometry, DiscFractionThesisExample) {
    // §3.4: interferer at D = Rmax = 20 -> ~20% of the disc is closer to
    // the interferer than to the sender.
    EXPECT_NEAR(disc_fraction_closer_to_interferer(20.0, 20.0), 0.1955, 0.002);
}

TEST(Geometry, DiscFractionMonotoneInD) {
    double prev = 1.0;
    for (double d = 0.0; d <= 45.0; d += 5.0) {
        const double f = disc_fraction_closer_to_interferer(d, 20.0);
        EXPECT_LE(f, prev + 1e-12);
        prev = f;
    }
}

TEST(ModelParams, Validation) {
    model_params p = default_params();
    EXPECT_NO_THROW(p.validate());
    p.alpha = 0.0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = default_params();
    p.sigma_db = -1.0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = default_params();
    p.noise_db = 1.0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ModelParams, NoiseLinear) {
    model_params p = default_params();
    EXPECT_NEAR(p.noise_linear(), std::pow(10.0, -6.5), 1e-18);
}

TEST(Policies, SingleCapacityAtKnownSnr) {
    const model_params p = default_params();
    // At r = 20, SNR = 65 - 30*log10(20) = 25.97 dB (§3.2.2's "roughly
    // 26 dB ... reasonable for 802.11a/g 54 Mb/s").
    const double snr_db = 10.0 * std::log10(snr_single(p, 20.0));
    EXPECT_NEAR(snr_db, 26.0, 0.1);
    EXPECT_NEAR(capacity_single(p, 20.0),
                std::log2(1.0 + std::pow(10.0, snr_db / 10.0)), 1e-9);
}

TEST(Policies, EdgeOfUsefulRange) {
    const model_params p = default_params();
    // r = 120: "an SNR just shy of 3 dB ... about the minimum practical".
    const double snr_db = 10.0 * std::log10(snr_single(p, 120.0));
    EXPECT_GT(snr_db, 2.0);
    EXPECT_LT(snr_db, 3.0);
}

TEST(Policies, SingleDecreasingInR) {
    const model_params p = default_params();
    double prev = 1e18;
    for (double r = 1.0; r <= 120.0; r *= 1.5) {
        const double c = capacity_single(p, r);
        EXPECT_LT(c, prev);
        prev = c;
    }
}

TEST(Policies, MultiplexingIsHalf) {
    const model_params p = default_params();
    for (double r : {5.0, 20.0, 80.0}) {
        EXPECT_DOUBLE_EQ(capacity_multiplexing(p, r),
                         0.5 * capacity_single(p, r));
    }
}

TEST(Policies, ConcurrentBelowSingleAboveZero) {
    const model_params p = default_params();
    for (double d : {10.0, 55.0, 200.0}) {
        for (double r : {5.0, 20.0, 60.0}) {
            const double conc = capacity_concurrent(p, r, 1.0, d);
            EXPECT_GT(conc, 0.0);
            EXPECT_LT(conc, capacity_single(p, r));
        }
    }
}

TEST(Policies, ConcurrentApproachesSingleAtLargeD) {
    const model_params p = default_params();
    const double single = capacity_single(p, 20.0);
    const double far = capacity_concurrent(p, 20.0, 1.0, 1e5);
    EXPECT_NEAR(far, single, single * 1e-3);
}

TEST(Policies, ConcurrentImprovesWithDOnAxis) {
    // Pointwise monotonicity in D holds for receivers on the +x axis
    // (interferer distance r + D is then strictly increasing in D).
    const model_params p = default_params();
    double prev = 0.0;
    for (double d = 5.0; d <= 500.0; d *= 2.0) {
        const double c = capacity_concurrent(p, 20.0, 0.0, d);
        EXPECT_GT(c, prev);
        prev = c;
    }
}

TEST(Policies, ConcurrentNotPointwiseMonotoneOffAxis) {
    // Off-axis, a growing D can first move the interferer *closer* to the
    // receiver (it slides along the -x axis): capacity dips before it
    // recovers. Only the disc-averaged curve is monotone.
    const model_params p = default_params();
    const double near = capacity_concurrent(p, 20.0, 2.0, 5.0);
    const double mid = capacity_concurrent(p, 20.0, 2.0, 8.3);
    EXPECT_LT(mid, near);
}

TEST(Policies, CollocatedInterfererGivesSub0dbSinr) {
    // §3.2.4: senders coincident -> "no receiver has an SNR better than
    // 0 dB" (equal signal and interference powers at best, plus noise).
    const model_params p = default_params();
    for (double r : {5.0, 20.0, 60.0}) {
        for (double theta : {0.0, 1.0, 3.0}) {
            EXPECT_LT(sinr_concurrent(p, r, theta, 0.0), 1.0);
        }
    }
}

TEST(Policies, UpperBoundDominatesBoth) {
    const model_params p = default_params();
    for (double d : {10.0, 55.0, 120.0}) {
        for (double r : {5.0, 25.0, 70.0}) {
            const double ub = capacity_upper_bound(p, r, 2.0, d);
            EXPECT_GE(ub, capacity_concurrent(p, r, 2.0, d) - 1e-12);
            EXPECT_GE(ub, capacity_multiplexing(p, r) - 1e-12);
        }
    }
}

TEST(Policies, ShadowingFactorsScaleSnr) {
    const model_params p = default_params();
    EXPECT_GT(capacity_single(p, 20.0, 4.0), capacity_single(p, 20.0, 1.0));
    EXPECT_LT(capacity_concurrent(p, 20.0, 1.0, 55.0, 1.0, 4.0),
              capacity_concurrent(p, 20.0, 1.0, 55.0, 1.0, 1.0));
}

TEST(Policies, FixedRateStep) {
    const double rate = 2.0;  // bits/s/Hz -> needs SNR 3 (linear)
    EXPECT_DOUBLE_EQ(capacity_fixed_rate(3.0, rate), rate);
    EXPECT_DOUBLE_EQ(capacity_fixed_rate(2.99, rate), 0.0);
    EXPECT_DOUBLE_EQ(capacity_fixed_rate(100.0, rate), rate);
    EXPECT_THROW(capacity_fixed_rate(1.0, -1.0), std::domain_error);
}

TEST(Policies, RejectsNonPositiveRadius) {
    const model_params p = default_params();
    EXPECT_THROW(capacity_single(p, 0.0), std::domain_error);
    EXPECT_THROW(sinr_concurrent(p, -1.0, 0.0, 10.0), std::domain_error);
}

}  // namespace
