// Threshold selection (§3.3.3) and regime classification: crossing-point
// optima, the thesis' quoted threshold values, the short-range asymptote
// of footnote 13, and the short/transition/long boundaries.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/regimes.hpp"
#include "src/core/threshold.hpp"

namespace {

using namespace csense::core;

expectation_engine make_engine(double sigma, double alpha = 3.0,
                               double noise_db = -65.0) {
    model_params p;
    p.alpha = alpha;
    p.sigma_db = sigma;
    p.noise_db = noise_db;
    quadrature_options q;
    q.radial_nodes = 32;
    q.angular_nodes = 48;
    q.shadow_nodes = 12;
    return expectation_engine(p, q, {30000, 42});
}

TEST(Threshold, ThesisValuesWithoutShadowing) {
    // §3.3.3: "Rmax = 20 corresponds to an optimal threshold about
    // Dthresh ~ 40, and Rmax = 120 corresponds to Dthresh ~ 75."
    const auto engine = make_engine(0.0);
    EXPECT_NEAR(optimal_threshold(engine, 20.0).d_thresh, 40.0, 3.5);
    EXPECT_NEAR(optimal_threshold(engine, 120.0).d_thresh, 75.0, 4.0);
}

TEST(Threshold, ThesisValuesWithShadowing) {
    // Table 2's tuned thresholds at sigma = 8 dB: 40 / 55 / 60.
    const auto engine = make_engine(8.0);
    EXPECT_NEAR(optimal_threshold(engine, 20.0).d_thresh, 40.0, 3.5);
    EXPECT_NEAR(optimal_threshold(engine, 40.0).d_thresh, 55.0, 4.0);
    EXPECT_NEAR(optimal_threshold(engine, 120.0).d_thresh, 60.0, 4.0);
}

TEST(Threshold, ShadowingShiftsLongRangeThresholdLeft) {
    // §3.4: shadowing produces "a leftward shift in their optimal
    // thresholds" at long range.
    const auto det = make_engine(0.0);
    const auto shadowed = make_engine(8.0);
    EXPECT_LT(optimal_threshold(shadowed, 120.0).d_thresh,
              optimal_threshold(det, 120.0).d_thresh - 5.0);
}

TEST(Threshold, CrossingValueEqualsMultiplexing) {
    const auto engine = make_engine(0.0);
    const auto result = optimal_threshold(engine, 40.0);
    ASSERT_TRUE(result.found);
    EXPECT_NEAR(engine.expected_concurrent(40.0, result.d_thresh),
                engine.expected_multiplexing(40.0), 1e-6);
    EXPECT_NEAR(result.crossing_value, engine.expected_multiplexing(40.0),
                1e-9);
}

TEST(Threshold, MonotoneInRmax) {
    const auto engine = make_engine(0.0);
    double prev = 0.0;
    for (double rmax : {10.0, 20.0, 40.0, 80.0}) {
        const auto result = optimal_threshold(engine, rmax);
        ASSERT_TRUE(result.found);
        EXPECT_GT(result.d_thresh, prev);
        prev = result.d_thresh;
    }
}

TEST(Threshold, ShortRangeAsymptote) {
    // Footnote 13: D_thresh ~ e^{-1/4} Rmax^{1/2} N^{-1/(2 alpha)} in the
    // very short range limit.
    const auto engine = make_engine(0.0);
    model_params p;
    p.alpha = 3.0;
    p.sigma_db = 0.0;
    p.noise_db = -65.0;
    for (double rmax : {0.5, 1.0, 2.0}) {
        const double exact = optimal_threshold(engine, rmax).d_thresh;
        const double asymptote = short_range_threshold_asymptote(p, rmax);
        EXPECT_NEAR(exact / asymptote, 1.0, 0.15) << "rmax = " << rmax;
    }
}

TEST(Threshold, Alpha3EquivalentDistance) {
    EXPECT_DOUBLE_EQ(equivalent_distance_alpha3(55.0, 3.0), 55.0);
    // Same sensed power under alpha = 2: D_eq = D^(2/3).
    EXPECT_NEAR(equivalent_distance_alpha3(64.0, 2.0), std::pow(64.0, 2.0 / 3.0),
                1e-9);
    EXPECT_THROW(equivalent_distance_alpha3(0.0, 3.0), std::domain_error);
}

TEST(Threshold, PowerDistanceRoundTrip) {
    for (double alpha : {2.0, 3.0, 4.0}) {
        for (double d : {10.0, 55.0, 120.0}) {
            const double p_db = threshold_power_db(d, alpha);
            EXPECT_NEAR(threshold_distance_from_power_db(p_db, alpha), d, 1e-9);
        }
    }
    // Thesis: Dthresh ~ 55 is "equivalent to Pthresh ~ 13 dB" above the
    // -65 dB noise floor: -10*3*log10(55) = -52.2 dB, 12.8 dB over N.
    EXPECT_NEAR(threshold_power_db(55.0, 3.0) - (-65.0), 12.8, 0.2);
}

TEST(Threshold, CompromiseMatchesThesisRecommendation) {
    // §3.3.3: splitting the difference between Rmax = 20 and Rmax = 120
    // optima gives Dthresh ~ 55.
    const auto engine = make_engine(0.0);
    EXPECT_NEAR(compromise_threshold(engine, 20.0, 120.0), 55.0, 4.0);
}

TEST(Threshold, ExtremeLongRangeHasNoCrossing) {
    // With a huge noise floor (N = -20 dB), links are so weak that
    // concurrency wins even for collocated senders: the CDMA-like regime
    // of footnote 11.
    const auto engine = make_engine(0.0, 3.0, -20.0);
    const auto result = optimal_threshold(engine, 50.0);
    EXPECT_FALSE(result.found);
    EXPECT_DOUBLE_EQ(result.d_thresh, 0.0);
}

TEST(Regimes, EdgeSnr) {
    model_params p;
    EXPECT_NEAR(edge_snr_db(p, 20.0), 26.0, 0.1);
    EXPECT_NEAR(edge_snr_db(p, 120.0), 2.6, 0.1);
    EXPECT_NEAR(rmax_for_edge_snr(p, edge_snr_db(p, 55.0)), 55.0, 1e-6);
}

TEST(Regimes, ClassificationBoundaries) {
    // At alpha = 3, sigma = 8: Rmax = 20 is short range (threshold ~ 40 >
    // 2 * 20 boundary is exactly marginal; use 15 for clearly short),
    // Rmax = 120 is long range (threshold ~ 60 < 120).
    const auto engine = make_engine(8.0);
    EXPECT_EQ(classify_network(engine, 15.0).regime,
              network_regime::short_range);
    EXPECT_EQ(classify_network(engine, 120.0).regime,
              network_regime::long_range);
    EXPECT_EQ(classify_network(engine, 40.0).regime,
              network_regime::transition);
}

TEST(Regimes, TransitionWindowMatchesThesis) {
    // §3.3.4: "For typical alpha ~ 3, this range is roughly
    // 18 < Rmax < 60, equivalent to 12 dB < SNR < 27 dB at the edge".
    const auto engine = make_engine(8.0);
    const auto low = classify_network(engine, 17.0);
    const auto high = classify_network(engine, 65.0);
    EXPECT_EQ(low.regime, network_regime::short_range);
    EXPECT_EQ(high.regime, network_regime::long_range);
}

TEST(Regimes, ExtremeLongRangeClassified) {
    const auto engine = make_engine(0.0, 3.0, -20.0);
    EXPECT_EQ(classify_network(engine, 50.0).regime,
              network_regime::extreme_long_range);
}

TEST(Regimes, Names) {
    EXPECT_EQ(regime_name(network_regime::short_range), "short range");
    EXPECT_EQ(regime_name(network_regime::extreme_long_range),
              "extreme long range");
}

}  // namespace
