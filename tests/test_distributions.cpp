// Distribution correctness: normal CDF/quantile, lognormal shadowing
// moments, Rayleigh/Rician fading power normalization, and uniform-disc
// placement statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "src/stats/distributions.hpp"

namespace {

using namespace csense::stats;

TEST(NormalCdf, KnownValues) {
    EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-9);
    EXPECT_NEAR(normal_cdf(-1.0), 1.0 - 0.8413447460685429, 1e-9);
    EXPECT_NEAR(normal_cdf(1.959963984540054), 0.975, 1e-9);
    EXPECT_NEAR(normal_cdf(-6.0), 9.865876450377018e-10, 1e-15);
}

TEST(NormalPdf, KnownValues) {
    EXPECT_NEAR(normal_pdf(0.0), 1.0 / std::sqrt(2.0 * std::numbers::pi), 1e-12);
    EXPECT_NEAR(normal_pdf(2.0), 0.05399096651318806, 1e-12);
}

TEST(NormalQuantile, RoundTripsThroughCdf) {
    for (double p : {1e-6, 1e-3, 0.05, 0.25, 0.5, 0.75, 0.95, 0.999, 1.0 - 1e-6}) {
        EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-9) << "p = " << p;
    }
}

TEST(NormalQuantile, RejectsOutOfRange) {
    EXPECT_THROW(normal_quantile(0.0), std::domain_error);
    EXPECT_THROW(normal_quantile(1.0), std::domain_error);
    EXPECT_THROW(normal_quantile(-0.5), std::domain_error);
}

class ShadowingSigma : public ::testing::TestWithParam<double> {};

TEST_P(ShadowingSigma, SampleMomentsMatchTheory) {
    const double sigma = GetParam();
    lognormal_shadowing shadow(sigma);
    rng gen(101);
    double sum_db = 0.0, sum_db2 = 0.0, sum_lin = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double l = shadow.sample(gen);
        const double db = 10.0 * std::log10(l);
        sum_db += db;
        sum_db2 += db * db;
        sum_lin += l;
    }
    const double mean_db = sum_db / n;
    const double sd_db = std::sqrt(sum_db2 / n - mean_db * mean_db);
    EXPECT_NEAR(mean_db, 0.0, 0.1 + sigma * 0.02);
    EXPECT_NEAR(sd_db, sigma, sigma * 0.02 + 0.01);
    // The lognormal mean exceeds the median (= 1): E[L] = exp(s^2/2).
    // The sample mean of a heavy-tailed lognormal converges slowly:
    // tolerance = 4 standard errors of the mean.
    const double s_ln = sigma * std::log(10.0) / 10.0;
    const double rel_stderr =
        std::sqrt((std::exp(s_ln * s_ln) - 1.0) / n);
    EXPECT_NEAR(sum_lin / n, shadow.mean(),
                shadow.mean() * (4.0 * rel_stderr + 0.01));
}

INSTANTIATE_TEST_SUITE_P(Sigmas, ShadowingSigma,
                         ::testing::Values(2.0, 4.0, 8.0, 12.0));

TEST(Shadowing, ZeroSigmaIsDeterministicUnity) {
    lognormal_shadowing shadow(0.0);
    rng gen(1);
    for (int i = 0; i < 100; ++i) {
        EXPECT_DOUBLE_EQ(shadow.sample(gen), 1.0);
    }
    EXPECT_DOUBLE_EQ(shadow.mean(), 1.0);
}

TEST(Shadowing, FromStandardNormalIsExactPowerOf10) {
    lognormal_shadowing shadow(8.0);
    EXPECT_DOUBLE_EQ(shadow.from_standard_normal(0.0), 1.0);
    EXPECT_NEAR(shadow.from_standard_normal(1.0), std::pow(10.0, 0.8), 1e-12);
    EXPECT_NEAR(shadow.from_standard_normal(-1.0), std::pow(10.0, -0.8), 1e-12);
}

TEST(RayleighFading, UnitMeanPower) {
    rng gen(7);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) sum += rayleigh_fading::sample_power(gen);
    EXPECT_NEAR(sum / n, 1.0, 0.02);
}

TEST(RayleighFading, AmplitudeSquaredIsPower) {
    rng gen(7);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double a = rayleigh_fading::sample_amplitude(gen);
        sum += a * a;
    }
    EXPECT_NEAR(sum / n, 1.0, 0.03);
}

class RicianK : public ::testing::TestWithParam<double> {};

TEST_P(RicianK, UnitMeanPowerForAllK) {
    const double k = GetParam();
    rician_fading rician(k);
    rng gen(23);
    double sum = 0.0, sum2 = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double p = rician.sample_power(gen);
        sum += p;
        sum2 += p * p;
    }
    EXPECT_NEAR(sum / n, 1.0, 0.02) << "K = " << k;
    // Power variance shrinks as K grows: Var = (1 + 2K) / (1 + K)^2.
    const double mean = sum / n;
    const double var = sum2 / n - mean * mean;
    const double expected_var = (1.0 + 2.0 * k) / ((1.0 + k) * (1.0 + k));
    EXPECT_NEAR(var, expected_var, expected_var * 0.1 + 0.01) << "K = " << k;
}

INSTANTIATE_TEST_SUITE_P(KFactors, RicianK,
                         ::testing::Values(0.0, 1.0, 5.0, 20.0));

TEST(UniformDisc, RadiusDistribution) {
    rng gen(5);
    const double radius = 10.0;
    double sum_r2 = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const auto p = sample_uniform_disc(gen, radius);
        ASSERT_LE(p.r, radius);
        ASSERT_GE(p.r, 0.0);
        sum_r2 += p.r * p.r;
    }
    // E[r^2] = R^2 / 2 for uniform area sampling.
    EXPECT_NEAR(sum_r2 / n, radius * radius / 2.0, radius * radius * 0.01);
}

TEST(UniformDisc, AngleIsUniform) {
    rng gen(6);
    double sum_cos = 0.0, sum_sin = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const auto p = sample_uniform_disc(gen, 1.0);
        sum_cos += std::cos(p.theta);
        sum_sin += std::sin(p.theta);
    }
    EXPECT_NEAR(sum_cos / n, 0.0, 0.01);
    EXPECT_NEAR(sum_sin / n, 0.0, 0.01);
}

TEST(UniformDisc, FromUniformsIsDeterministic) {
    const auto p = disc_from_uniforms(0.25, 0.5, 10.0);
    EXPECT_DOUBLE_EQ(p.r, 5.0);  // sqrt(0.25) * 10
    EXPECT_NEAR(p.theta, std::numbers::pi, 1e-12);
}

}  // namespace
