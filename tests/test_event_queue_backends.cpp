// Calendar-queue backend edge cases and the heap-vs-wheel differential
// contract: both event_queue backends must produce exactly the same
// (time, insertion-sequence) pop order for any schedule/cancel stream.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <optional>
#include <vector>

#include "src/sim/event_queue.hpp"
#include "src/sim/simulator.hpp"
#include "src/stats/rng.hpp"

namespace {

using namespace csense;

sim::event_queue_config heap_config() {
    sim::event_queue_config config;
    config.backend = sim::queue_backend::heap;
    return config;
}

// Wheel horizon of the default configuration: 4096 buckets x 9 us.
constexpr double kHorizonUs = 4096 * 9.0;

TEST(CalendarQueue, FarFutureEventFiresOnTimeWhileWheelStaysBusy) {
    // Regression: an overflow (beyond-horizon) event must migrate into
    // the wheel as the horizon advances, even though the wheel never
    // drains. A driver event rescheduling itself every 7 us keeps the
    // wheel occupied from t=0 to well past the far event's time.
    sim::event_queue q;
    std::vector<double> fired;
    const double far_at = kHorizonUs + 13000.0;
    q.schedule(far_at, [&fired, far_at] { fired.push_back(far_at); });

    struct driver {
        sim::event_queue* q;
        std::vector<double>* fired;
        double at;
        void operator()() const {
            fired->push_back(at);
            if (at < kHorizonUs + 26000.0) {
                driver next{q, fired, at + 7.0};
                q->schedule(next.at, next);
            }
        }
    };
    q.schedule(7.0, driver{&q, &fired, 7.0});

    while (!q.empty()) q.run_next();
    ASSERT_FALSE(fired.empty());
    // Pop times must be globally nondecreasing - the far event fired in
    // place, not late.
    for (std::size_t i = 1; i < fired.size(); ++i) {
        ASSERT_LE(fired[i - 1], fired[i]) << "out of order at " << i;
    }
    ASSERT_NE(std::find(fired.begin(), fired.end(), far_at), fired.end());
}

TEST(CalendarQueue, SameTickBurstPopsInInsertionOrder) {
    sim::event_queue q;
    std::vector<int> order;
    // 100 events at one timestamp (same tick), interleaved with events
    // in the neighboring buckets on both sides of the tick boundary.
    const double t = 9.0 * 1000.0;  // exactly on a bucket boundary
    for (int i = 0; i < 100; ++i) {
        q.schedule(t, [&order, i] { order.push_back(i); });
    }
    q.schedule(t - 0.5, [&order] { order.push_back(-1); });  // previous tick
    q.schedule(t + 9.0, [&order] { order.push_back(1000); });  // next tick
    q.schedule(std::nextafter(t, 0.0), [&order] { order.push_back(-2); });
    while (!q.empty()) q.run_next();
    ASSERT_EQ(order.size(), 103u);
    EXPECT_EQ(order[0], -1);  // earlier times first...
    EXPECT_EQ(order[1], -2);  // ...in time order, not insertion order
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(order[static_cast<std::size_t>(i) + 2], i);
    }
    EXPECT_EQ(order.back(), 1000);
}

TEST(CalendarQueue, CancelThenReuseKeepsStaleIdsInert) {
    sim::event_queue q;
    int fired = 0;
    const auto first = q.schedule(50.0, [&fired] { ++fired; });
    ASSERT_TRUE(q.cancel(first));
    EXPECT_FALSE(q.cancel(first));  // double-cancel is a no-op
    // The slot is recycled for a new event; the stale id must not be
    // able to cancel it, and the new event must still fire.
    const auto second = q.schedule(60.0, [&fired] { fired += 10; });
    EXPECT_EQ(second & 0xffffffffULL, first & 0xffffffffULL);  // same slot
    EXPECT_FALSE(q.cancel(first));
    while (!q.empty()) q.run_next();
    EXPECT_EQ(fired, 10);
}

TEST(CalendarQueue, CancelHeavyOverflowStaysCompacted) {
    // Same contract the heap backend pins in test_sim.cpp: a
    // schedule/cancel storm entirely beyond the wheel horizon (the
    // overflow heap) must not accumulate stale entries.
    sim::event_queue q;
    int fired = 0;
    q.schedule(1e12, [&fired] { ++fired; });
    for (int i = 0; i < 200000; ++i) {
        const auto id = q.schedule(1e9 + i, [] {});
        ASSERT_TRUE(q.cancel(id));
    }
    EXPECT_LE(q.slot_count(), 4u);
    EXPECT_LE(q.heap_size(), 256u);
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.next_time(), 1e12);
}

TEST(CalendarQueue, NegativeAndHugeTimesStayOrdered) {
    sim::event_queue q;
    std::vector<double> fired;
    const auto record = [&fired, &q](double at) {
        q.schedule(at, [&fired, at] { fired.push_back(at); });
    };
    record(-50.0);
    record(1e17);  // far beyond any tick the wheel can represent
    record(0.0);
    record(3.0);
    record(1e16);
    record(-50.0);
    while (!q.empty()) q.run_next();
    const std::vector<double> want{-50.0, -50.0, 0.0, 3.0, 1e16, 1e17};
    EXPECT_EQ(fired, want);
}

TEST(CalendarQueue, BackendsReportConfiguredKind) {
    sim::event_queue calendar;
    sim::event_queue heap(heap_config());
    EXPECT_EQ(calendar.backend(), sim::queue_backend::calendar);
    EXPECT_EQ(heap.backend(), sim::queue_backend::heap);
}

// The differential fuzz: one deterministic stream of schedule / cancel /
// bounded-pop operations applied to both backends must yield identical
// ids, identical cancel outcomes, and an identical pop sequence.
TEST(EventQueueDifferential, RandomStreamsPopIdentically) {
    sim::event_queue calendar;
    sim::event_queue heap(heap_config());
    stats::rng gen(20260808);

    struct popped {
        double at;
        int tag;
        bool operator==(const popped&) const = default;
    };
    std::vector<popped> cal_pops;
    std::vector<popped> heap_pops;
    std::vector<std::pair<sim::event_id, sim::event_id>> live;
    double clock = 0.0;
    int next_tag = 0;

    const auto draw_time = [&gen, &clock] {
        const double u = gen.uniform();
        if (u < 0.30) {
            // Slot-aligned: forces same-tick ties and bucket-boundary
            // collisions.
            return clock + 9.0 * static_cast<double>(gen.uniform_int(64));
        }
        if (u < 0.60) return clock + gen.uniform(0.0, 200.0);
        if (u < 0.85) return clock + gen.uniform(0.0, 2.0 * kHorizonUs);
        if (u < 0.95) return clock + gen.uniform(0.0, 100.0 * kHorizonUs);
        return clock;  // exactly "now"
    };

    for (int step = 0; step < 30000; ++step) {
        const double u = gen.uniform();
        if (u < 0.5) {
            const double at = draw_time();
            const int tag = next_tag++;
            const auto cal_id = calendar.schedule(
                at, [&cal_pops, at, tag] { cal_pops.push_back({at, tag}); });
            const auto heap_id = heap.schedule(
                at, [&heap_pops, at, tag] { heap_pops.push_back({at, tag}); });
            live.emplace_back(cal_id, heap_id);
        } else if (u < 0.7) {
            if (live.empty()) continue;
            const auto pick = gen.uniform_int(live.size());
            const auto [cal_id, heap_id] = live[pick];
            ASSERT_EQ(calendar.cancel(cal_id), heap.cancel(heap_id));
            live[pick] = live.back();
            live.pop_back();
        } else if (u < 0.9) {
            auto cal_next = calendar.pop_next_at_most(clock + 500.0);
            auto heap_next = heap.pop_next_at_most(clock + 500.0);
            ASSERT_EQ(cal_next.has_value(), heap_next.has_value());
            if (cal_next) {
                ASSERT_EQ(cal_next->first, heap_next->first);
                clock = std::max(clock, cal_next->first);
                cal_next->second();
                heap_next->second();
            }
        } else {
            ASSERT_EQ(calendar.empty(), heap.empty());
            if (!calendar.empty()) {
                ASSERT_EQ(calendar.next_time(), heap.next_time());
            }
        }
        ASSERT_EQ(calendar.size(), heap.size());
    }

    // Drain both queues completely.
    while (!calendar.empty() || !heap.empty()) {
        ASSERT_FALSE(calendar.empty());
        ASSERT_FALSE(heap.empty());
        auto cal_next = calendar.pop_next();
        auto heap_next = heap.pop_next();
        ASSERT_EQ(cal_next.first, heap_next.first);
        cal_next.second();
        heap_next.second();
    }
    ASSERT_EQ(cal_pops.size(), heap_pops.size());
    EXPECT_EQ(cal_pops, heap_pops);
}

TEST(EventQueueDifferential, SimulatorRunsIdenticallyOnBothBackends) {
    // Kernel-level differential: the same self-scheduling workload under
    // a simulator on each backend executes the same number of events and
    // finishes at the same clock.
    const auto run = [](const sim::event_queue_config& config) {
        sim::simulator s(config);
        stats::rng gen(77);
        std::uint64_t sum = 0;
        struct ticker {
            sim::simulator* s;
            stats::rng* gen;
            std::uint64_t* sum;
            int remaining;
            void operator()() const {
                *sum += static_cast<std::uint64_t>(s->now() * 16.0);
                if (remaining > 0) {
                    ticker next{s, gen, sum, remaining - 1};
                    s->schedule_in(gen->uniform(0.0, 50.0), next);
                }
            }
        };
        for (int i = 0; i < 16; ++i) {
            s.schedule_in(gen.uniform(0.0, 100.0), ticker{&s, &gen, &sum, 400});
        }
        s.run_all();
        return std::pair{s.events_executed(), sum};
    };
    sim::event_queue_config calendar;
    const auto a = run(calendar);
    const auto b = run(heap_config());
    EXPECT_EQ(a.first, b.first);
    EXPECT_EQ(a.second, b.second);
}

}  // namespace
