// Cross-validation of the thesis' two methodologies against each other:
// the analytic Shannon-capacity model (§3) and the packet-level 802.11
// simulator (§4) should agree on the *structure* of two-pair competition
// even though one speaks bits/s/Hz and the other delivered packets.
//
// For controlled geometries (no shadowing, receivers at fixed distances)
// we check that:
//  - the concurrency/multiplexing preference flips at the same sender
//    separation in both worlds;
//  - the throughput ratios conc/mux track the capacity ratios within a
//    discretization allowance (the simulator has only 8 rates);
//  - carrier sense in the simulator lands on the branch the analytic
//    model says it should, on both sides of the threshold.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/capacity/error_models.hpp"
#include "src/capacity/rate_adaptation.hpp"
#include "src/capacity/rate_table.hpp"
#include "src/capacity/shannon.hpp"
#include "src/core/policies.hpp"
#include "src/mac/network.hpp"

namespace {

using namespace csense;
using capacity::rate_by_mbps;

constexpr int payload = 1400;
constexpr double run_us = 4e6;

// Map the analytic model's normalized units onto the simulator's dBm
// world: the model's r is chosen so that its SNR matches the simulated
// link's SNR. Simulator: tx 15 dBm, floor -95 dBm; model: N = -65 dB.
// A link gain g dB gives SNR = 110 + g; the model distance with the same
// SNR satisfies -10 alpha log10(r) + 65 = 110 + g.
double model_distance_for_gain(double alpha, double gain_db) {
    return std::pow(10.0, -(110.0 + gain_db - 65.0) / (10.0 * alpha));
}

// Oracle throughput of one simulated pair alone at the best fixed rate.
double sim_alone_pps(double gain_db, std::uint64_t seed) {
    mac::radio_config radio;
    double best = 0.0;
    for (const auto& rate : capacity::ofdm_rates()) {
        best = std::max(best, mac::run_single_pair(radio, gain_db, rate,
                                                   run_us, payload, seed));
    }
    return best;
}

// Oracle total throughput of two simulated pairs under a CS mode.
double sim_joint_pps(const mac::two_pair_gains& gains, mac::cs_mode mode,
                     std::uint64_t seed) {
    mac::radio_config radio;
    double best1 = 0.0, best2 = 0.0;
    for (const auto& rate : capacity::ofdm_rates()) {
        const auto result = mac::run_two_pair_competition(
            radio, gains, rate, rate, mode, run_us, payload, seed);
        best1 = std::max(best1, result.pps_pair1);
        best2 = std::max(best2, result.pps_pair2);
    }
    return best1 + best2;
}

// Symmetric two-pair geometry: both links have gain `link_gain_db`; the
// cross gains correspond to a sender separation with gain `cross_db`.
mac::two_pair_gains symmetric_gains(double link_gain_db, double cross_db) {
    mac::two_pair_gains g;
    g.s1_r1 = g.s2_r2 = link_gain_db;
    g.s1_s2 = g.s1_r2 = g.s2_r1 = g.r1_r2 = cross_db;
    return g;
}

TEST(ModelVsSim, ConcurrencyMultiplexingCrossoverAgrees) {
    // Sweep the pair separation; both worlds must flip preference from
    // multiplexing (close) to concurrency (far), and roughly together.
    core::model_params params;
    params.sigma_db = 0.0;
    const double link_gain = -75.0;  // 35 dB SNR links
    const double r = model_distance_for_gain(params.alpha, link_gain);

    int analytic_flip = -1, sim_flip = -1;
    const double cross_gains[] = {-70.0, -78.0, -86.0, -94.0, -102.0, -110.0};
    for (int i = 0; i < 6; ++i) {
        const double d = model_distance_for_gain(params.alpha, cross_gains[i]);
        // Analytic per-pair capacities with the receiver at angle pi/2
        // (the symmetric geometry's representative position).
        const double mux = core::capacity_multiplexing(params, r);
        const double conc = core::capacity_concurrent(
            params, r, 1.5707963267948966, d);
        if (analytic_flip < 0 && conc > mux) analytic_flip = i;

        const auto gains = symmetric_gains(link_gain, cross_gains[i]);
        const double sim_mux =
            0.5 * (sim_alone_pps(link_gain, 100 + i) +
                   sim_alone_pps(link_gain, 200 + i));
        const double sim_conc =
            sim_joint_pps(gains, mac::cs_mode::disabled, 300 + i);
        if (sim_flip < 0 && sim_conc > sim_mux) sim_flip = i;
    }
    ASSERT_GE(analytic_flip, 1);  // close pairs prefer multiplexing...
    ASSERT_GE(sim_flip, 1);
    // ...and the two crossovers land within one sweep step of each other.
    EXPECT_LE(std::abs(analytic_flip - sim_flip), 1);
}

TEST(ModelVsSim, FarSeparationRatioApproachesTwo) {
    // Both worlds: far pairs double throughput over multiplexing.
    const double link_gain = -75.0;
    const auto gains = symmetric_gains(link_gain, -130.0);
    const double sim_mux = 0.5 * (sim_alone_pps(link_gain, 11) +
                                  sim_alone_pps(link_gain, 12));
    const double sim_conc = sim_joint_pps(gains, mac::cs_mode::disabled, 13);
    EXPECT_NEAR(sim_conc / sim_mux, 2.0, 0.15);

    core::model_params params;
    params.sigma_db = 0.0;
    const double r = model_distance_for_gain(params.alpha, link_gain);
    const double d = model_distance_for_gain(params.alpha, -130.0);
    const double analytic_ratio =
        core::capacity_concurrent(params, r, 1.57, d) /
        core::capacity_multiplexing(params, r);
    EXPECT_NEAR(analytic_ratio, 2.0, 0.05);
}

TEST(ModelVsSim, CarrierSenseLandsOnThePredictedBranch) {
    // The simulator's CS threshold (-82 dBm) corresponds to a sensed
    // gain of -97 dB. Give the pairs separations clearly on each side
    // and check the simulated CS throughput tracks the branch the model
    // predicts: multiplexing when audible, concurrency when not.
    const double link_gain = -75.0;
    for (double cross : {-85.0, -109.0}) {
        const bool should_defer = (15.0 + cross) >= -82.0;
        const auto gains = symmetric_gains(link_gain, cross);
        const double cs = sim_joint_pps(
            gains, mac::cs_mode::energy_and_preamble, 21);
        const double conc = sim_joint_pps(gains, mac::cs_mode::disabled, 22);
        const double mux = 0.5 * (sim_alone_pps(link_gain, 23) +
                                  sim_alone_pps(link_gain, 24));
        if (should_defer) {
            // CS behaves like (slightly better than) multiplexing.
            EXPECT_NEAR(cs, mux, 0.15 * mux) << "cross " << cross;
        } else {
            EXPECT_NEAR(cs, conc, 0.12 * conc) << "cross " << cross;
        }
    }
}

TEST(ModelVsSim, ShannonTracksOracleRateChoice) {
    // The analytic model uses Shannon capacity as "a rough proportional
    // estimate" of adaptive-bitrate throughput (§2). Check the
    // proportionality on clean links: oracle goodput (pkt/s x bits) vs
    // Shannon capacity across SNRs, constant within a factor band.
    const capacity::logistic_per_model errors;
    double min_ratio = 1e30, max_ratio = 0.0;
    for (double snr_db = 8.0; snr_db <= 30.0; snr_db += 4.0) {
        const auto& best = capacity::best_fixed_rate_oracle(
            capacity::ofdm_rates(), errors, snr_db, payload);
        const double goodput_bits =
            capacity::saturated_broadcast_pps(best, payload) *
            errors.delivery_rate(best, snr_db, payload) * payload * 8.0;
        const double shannon =
            capacity::shannon_bits_per_hz_db(snr_db) * 20e6;  // 20 MHz
        const double ratio = goodput_bits / shannon;
        min_ratio = std::min(min_ratio, ratio);
        max_ratio = std::max(max_ratio, ratio);
    }
    // 802.11a's discrete rates and overheads sit well below Shannon but
    // track it: the ratio stays within a ~2.5x band over 22 dB of SNR.
    EXPECT_GT(min_ratio, 0.05);
    EXPECT_LT(max_ratio / min_ratio, 2.5);
}

}  // namespace
