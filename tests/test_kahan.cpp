// Compensated accumulation (src/stats/kahan.hpp): the medium's
// incremental power accounting leans on three properties - accuracy
// under large/small mixing, exact cancellation of add/sub pairs beyond
// what plain doubles give, and reset semantics.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/stats/kahan.hpp"
#include "src/stats/rng.hpp"

namespace {

using csense::stats::kahan_sum;

TEST(KahanSum, RecoversWhatPlainSummationLoses) {
    // 1 + 1e16 - 1e16 repeated: a plain double sum drops the 1s.
    kahan_sum k;
    double plain = 0.0;
    for (int i = 0; i < 1000; ++i) {
        k.add(1.0);
        k.add(1e16);
        k.sub(1e16);
        plain += 1.0;
        plain += 1e16;
        plain -= 1e16;
    }
    EXPECT_DOUBLE_EQ(k.value(), 1000.0);
    EXPECT_NE(plain, 1000.0) << "if plain summation were exact here the "
                                "test would prove nothing";
}

TEST(KahanSum, AddendLargerThanSum) {
    // The Neumaier branch: compensation must also work when |x| > |sum|.
    kahan_sum k;
    k.add(1.0);
    k.add(1e100);
    k.sub(1e100);
    EXPECT_DOUBLE_EQ(k.value(), 1.0);
}

TEST(KahanSum, ManyTransmitterChurnStaysNearExact) {
    // The medium's access pattern: powers spanning ~12 orders of
    // magnitude joining and leaving in random order. After removing
    // everything the compensated value must return to ~0 at a tolerance
    // far tighter than the smallest power involved.
    csense::stats::rng gen(42);
    std::vector<double> powers;
    for (int i = 0; i < 4096; ++i) {
        powers.push_back(std::pow(10.0, gen.uniform(-12.0, 0.0)));
    }
    kahan_sum k;
    for (const double p : powers) k.add(p);
    for (const double p : powers) k.sub(p);
    EXPECT_LT(std::abs(k.value()), 1e-24);
}

TEST(KahanSum, ResetClearsCompensation) {
    kahan_sum k;
    k.add(1e16);
    k.add(1.0);
    k.reset();
    EXPECT_EQ(k.value(), 0.0);
    k.add(2.5);
    EXPECT_DOUBLE_EQ(k.value(), 2.5);
    k.reset(7.0);
    EXPECT_EQ(k.value(), 7.0);
}

}  // namespace
