// Tests for tools/lint: each rule fires exactly where the fixture
// corpus says it should, allow-pragmas suppress correctly (and are
// themselves policed), and the real source tree is violation-free.
//
// Fixtures live in tests/lint_fixtures/ (skipped by lint_tree so the
// known-bad corpus never fails the project-wide lint run); the paths
// are injected by the build as compile definitions.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "tools/lint/lexer.hpp"
#include "tools/lint/rules.hpp"

namespace {

namespace fs = std::filesystem;
using csense::lint::lint_source;
using csense::lint::lint_tree;
using csense::lint::violation;

fs::path fixture_dir() { return fs::path(CSENSE_LINT_FIXTURE_DIR); }

std::string read_fixture(const std::string& name) {
    const fs::path p = fixture_dir() / name;
    std::ifstream in(p, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << "missing fixture " << p;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/// (rule, line) pairs, sorted, for compact whole-file assertions.
std::vector<std::pair<std::string, int>> fired(
    const std::vector<violation>& vs) {
    std::vector<std::pair<std::string, int>> out;
    out.reserve(vs.size());
    for (const auto& v : vs) out.emplace_back(v.rule, v.line);
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) {
                  return a.second != b.second ? a.second < b.second
                                              : a.first < b.first;
              });
    return out;
}

using pairs = std::vector<std::pair<std::string, int>>;

TEST(LintLexer, ScrubStripsCommentsAndLiterals) {
    const auto src = csense::lint::scrub(
        "int a; // rand()\n"
        "const char* s = \"time(nullptr)\";\n"
        "/* std::random_device */ int b = 1'000'000;\n");
    EXPECT_EQ(src.code.find("rand"), std::string::npos);
    EXPECT_EQ(src.code.find("time"), std::string::npos);
    EXPECT_EQ(src.code.find("random_device"), std::string::npos);
    EXPECT_NE(src.code.find("1'000'000"), std::string::npos);
    ASSERT_EQ(src.comments.size(), 2u);
    EXPECT_EQ(src.comments[0].line, 1);
    EXPECT_FALSE(src.comments[0].own_line);
}

TEST(LintLexer, RawStringsAreOpaque) {
    const auto src = csense::lint::scrub(
        "auto s = R\"(std::mt19937 rand() time(0))\";\nint x = 0;\n");
    EXPECT_EQ(src.code.find("mt19937"), std::string::npos);
    const auto vs = lint_source("src/core/x.cpp", src.code);
    EXPECT_TRUE(vs.empty());
}

TEST(LintRules, CatalogIsStable) {
    const auto& rules = csense::lint::rules();
    ASSERT_EQ(rules.size(), 7u);
    EXPECT_EQ(rules[0].id, "R1");
    EXPECT_EQ(rules[0].name, "nondeterminism-source");
    EXPECT_EQ(rules[4].id, "R5");
    EXPECT_EQ(rules[5].id, "R6");
    EXPECT_EQ(rules[5].name, "std-function-hot-path");
    EXPECT_EQ(rules[6].id, "LP");
    const std::string table = csense::lint::list_rules_markdown();
    EXPECT_NE(table.find("| Id | Pragma name | Enforces |"),
              std::string::npos);
    for (const auto& r : rules) {
        EXPECT_NE(table.find(std::string(r.name)), std::string::npos);
    }
}

TEST(LintR1, FiresOnEveryBannedSource) {
    const auto vs =
        lint_source("src/core/r1_bad.cpp", read_fixture("r1_bad.cpp"));
    EXPECT_EQ(fired(vs),
              (pairs{{"R1", 8},
                     {"R1", 10},
                     {"R1", 11},
                     {"R1", 12},
                     {"R1", 13},
                     {"R1", 15},
                     {"R1", 16},
                     {"R1", 17},
                     {"R1", 19}}));
}

TEST(LintR1, IgnoresNearMisses) {
    const auto vs =
        lint_source("src/core/r1_good.cpp", read_fixture("r1_good.cpp"));
    EXPECT_EQ(fired(vs), pairs{});
}

TEST(LintR1, ClockNowAllowedOnlyInTimingReport) {
    const std::string content = "auto t = clock::now();\n";
    EXPECT_EQ(fired(lint_source("src/core/x.cpp", content)),
              (pairs{{"R1", 1}}));
    EXPECT_EQ(fired(lint_source("bench/main.cpp", content)), pairs{});
    // The whitelist is an exact path suffix, not a substring.
    EXPECT_EQ(fired(lint_source("xbench/main.cpp", content)),
              (pairs{{"R1", 1}}));
}

TEST(LintR2, FiresOutsideTheFacade) {
    const auto vs =
        lint_source("src/sim/r2_bad.cpp", read_fixture("r2_bad.cpp"));
    EXPECT_EQ(fired(vs),
              (pairs{{"R2", 6}, {"R2", 7}, {"R2", 8}, {"R2", 9}}));
}

TEST(LintR2, FacadeFilesAreExempt) {
    const auto content = read_fixture("r2_bad.cpp");
    EXPECT_EQ(fired(lint_source("src/stats/rng.cpp", content)), pairs{});
    EXPECT_EQ(fired(lint_source("src/stats/rng.hpp", content)), pairs{});
}

TEST(LintR3, FiresOnUnorderedIteration) {
    const auto vs =
        lint_source("src/mac/r3_bad.cpp", read_fixture("r3_bad.cpp"));
    const auto got = fired(vs);
    const pairs expect_r3 = {{"R3", 15}, {"R3", 19}, {"R3", 22}};
    pairs got_r3;
    for (const auto& p : got) {
        if (p.first == "R3") got_r3.push_back(p);
    }
    EXPECT_EQ(got_r3, expect_r3);
}

TEST(LintR3, LookupsAndPragmaAreClean) {
    const auto vs = lint_source("src/mac/r3_good.cpp",
                                read_fixture("r3_good.cpp"));
    pairs got_r3;
    for (const auto& p : fired(vs)) {
        if (p.first == "R3" || p.first == "LP") got_r3.push_back(p);
    }
    EXPECT_EQ(got_r3, pairs{});
}

TEST(LintR4, FiresInsideMacAndSimLoops) {
    const auto content = read_fixture("r4_bad.cpp");
    EXPECT_EQ(fired(lint_source("src/mac/r4_bad.cpp", content)),
              (pairs{{"R4", 15}, {"R4", 20}, {"R4", 24}}));
    EXPECT_EQ(fired(lint_source("src/sim/r4_bad.cpp", content)),
              (pairs{{"R4", 15}, {"R4", 20}, {"R4", 24}}));
}

TEST(LintR4, StreamingQuantilePathsAreInScope) {
    // The quantile accumulator feeds merge-order-sensitive latency
    // metrics, so its float sums are linted like the packet path.
    const auto content = read_fixture("r4_bad.cpp");
    EXPECT_EQ(fired(lint_source("src/stats/quantile.cpp", content)),
              (pairs{{"R4", 15}, {"R4", 20}, {"R4", 24}}));
    EXPECT_EQ(fired(lint_source("src/stats/quantile.hpp", content)),
              (pairs{{"R4", 15}, {"R4", 20}, {"R4", 24}}));
}

TEST(LintR4, OutOfScopePathsAreExempt) {
    const auto content = read_fixture("r4_bad.cpp");
    EXPECT_EQ(fired(lint_source("src/core/r4_bad.cpp", content)), pairs{});
    EXPECT_EQ(fired(lint_source("bench/r4_bad.cpp", content)), pairs{});
    // Only the quantile paths of src/stats/ are in scope; the rest of
    // the stats library is order-insensitive math.
    EXPECT_EQ(fired(lint_source("src/stats/solve.cpp", content)), pairs{});
}

TEST(LintR4, SiblingHeaderDeclaresTheAccumulator) {
    const auto content = read_fixture("r4_member.cpp");
    const auto header = read_fixture("r4_header.hpp");
    // Without the header the member's type is unknown: silent.
    EXPECT_EQ(fired(lint_source("src/mac/r4_member.cpp", content)),
              pairs{});
    // With it, the float accumulation is caught; the integer is not.
    EXPECT_EQ(fired(lint_source("src/mac/r4_member.cpp", content, header)),
              (pairs{{"R4", 16}}));
}

TEST(LintR5, FiresOnMutableStatics) {
    const auto vs =
        lint_source("src/core/r5_bad.cpp", read_fixture("r5_bad.cpp"));
    EXPECT_EQ(fired(vs),
              (pairs{{"R5", 9},
                     {"R5", 12},
                     {"R5", 13},
                     {"R5", 17},
                     {"R5", 26}}));
}

TEST(LintR5, RegisteredSingletonFilesAreExempt) {
    const auto content = read_fixture("r5_bad.cpp");
    EXPECT_EQ(fired(lint_source("src/core/parallel.cpp", content)), pairs{});
    EXPECT_EQ(fired(lint_source("src/stats/quadrature.cpp", content)),
              pairs{});
    EXPECT_EQ(fired(lint_source("bench/registry.cpp", content)), pairs{});
}

TEST(LintR5, ImmutableAndFunctionStaticsAreClean) {
    const auto vs =
        lint_source("src/core/r5_good.cpp", read_fixture("r5_good.cpp"));
    EXPECT_EQ(fired(vs), pairs{});
}

TEST(LintR6, FiresOnStdFunctionInMacAndSim) {
    const auto content = read_fixture("r6_bad.cpp");
    EXPECT_EQ(fired(lint_source("src/mac/r6_bad.cpp", content)),
              (pairs{{"R6", 9}, {"R6", 11}, {"R6", 16}}));
    EXPECT_EQ(fired(lint_source("src/sim/r6_bad.cpp", content)),
              (pairs{{"R6", 9}, {"R6", 11}, {"R6", 16}}));
}

TEST(LintR6, CampaignLayerAndColdPathsAreExempt) {
    const auto content = read_fixture("r6_bad.cpp");
    EXPECT_EQ(fired(lint_source("src/sim/campaign.cpp", content)), pairs{});
    EXPECT_EQ(fired(lint_source("src/sim/campaign.hpp", content)), pairs{});
    EXPECT_EQ(fired(lint_source("src/core/parallel.hpp", content)), pairs{});
    EXPECT_EQ(fired(lint_source("src/stats/solve.cpp", content)), pairs{});
    EXPECT_EQ(fired(lint_source("bench/r6_bad.cpp", content)), pairs{});
}

TEST(LintR6, InlineActionCapturesAndPragmaAreClean) {
    const auto vs = lint_source("src/mac/r6_good.cpp",
                                read_fixture("r6_good.cpp"));
    EXPECT_EQ(fired(vs), pairs{});
}

TEST(LintPragmas, MalformedUnknownAndUnusedAreViolations) {
    const auto vs = lint_source("src/core/pragma_bad.cpp",
                                read_fixture("pragma_bad.cpp"));
    EXPECT_EQ(fired(vs),
              (pairs{{"LP", 6},    // missing justification
                     {"R2", 7},    // ...so the violation survives
                     {"LP", 8},    // unknown rule
                     {"R2", 9},
                     {"LP", 10}}));  // valid but suppresses nothing
}

TEST(LintPragmas, JustifiedPragmasSuppressBothPositions) {
    const auto vs = lint_source("src/core/pragma_good.cpp",
                                read_fixture("pragma_good.cpp"));
    EXPECT_EQ(fired(vs), pairs{});
}

TEST(LintTree, FixtureCorpusIsSkipped) {
    std::size_t files = 0;
    const auto vs = lint_tree({fixture_dir().parent_path()},
                              fixture_dir().parent_path().parent_path(),
                              &files);
    // tests/ itself is linted (this file included)...
    EXPECT_GT(files, 0u);
    // ...but no violation may come from the known-bad corpus.
    for (const auto& v : vs) {
        EXPECT_EQ(v.file.find("lint_fixtures"), std::string::npos)
            << v.file << ":" << v.line;
    }
}

// The enforcement test: the real tree must be lint-clean. This is the
// same check as the `lint` CMake target and the CI lint job, run here
// so a violation fails plain ctest too.
TEST(LintTree, SourceTreeIsViolationFree) {
    const fs::path root = fs::path(CSENSE_LINT_SOURCE_ROOT);
    ASSERT_TRUE(fs::exists(root / "src"));
    std::size_t files = 0;
    const auto vs = lint_tree(
        {root / "src", root / "bench", root / "tests"}, root, &files);
    EXPECT_GT(files, 100u);
    for (const auto& v : vs) {
        ADD_FAILURE() << v.file << ":" << v.line << ": [" << v.rule << "] "
                      << v.message;
    }
}

}  // namespace
